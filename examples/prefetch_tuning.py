#!/usr/bin/env python
"""Tuning translation-entry prefetch (the Figure 8 experiment).

Sweeps the number of translation entries the NIC fetches per Shared
UTLB-Cache miss for the Radix workload and charts miss rate and average
lookup cost — showing why aggressive prefetch pays: DMA setup dominates,
so fetching 32 entries costs barely more than fetching one.

Run:  python examples/prefetch_tuning.py [scale]
"""

import sys

from repro.sim.experiments import figure8, render_figure8


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    data = figure8(scale=scale, nodes=1, seed=1,
                   sizes=(1024, 4096, 16384), degrees=(1, 2, 4, 8, 16, 32))
    print(render_figure8(data))
    print()
    for size in sorted(data):
        curve = data[size]
        best = min(curve, key=lambda d: curve[d]["lookup_cost_us"])
        print("cache %5d entries: best prefetch degree = %2d "
              "(%.1f us/lookup, miss rate %.2f)"
              % (size, best, curve[best]["lookup_cost_us"],
                 curve[best]["miss_rate"]))


if __name__ == "__main__":
    main()
