#!/usr/bin/env python
"""Trace-driven analysis: UTLB vs the interrupt-based baseline.

Generates the synthetic SPLASH-2-like communication traces and replays
them through both translation mechanisms across NIC cache sizes — a
miniature of the paper's Tables 4 and 6.

Run:  python examples/trace_analysis.py [scale]
      (scale defaults to 0.15; 1.0 reproduces paper-sized workloads)
"""

import sys

from repro.sim.config import SimConfig
from repro.sim.report import format_table
from repro.sim.sweep import generate_traces, run_on_traces
from repro.traces.synth import make_app

APPS = ("barnes", "fft", "radix")
CACHE_SIZES = (1024, 4096, 16384)


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    rows = []
    for name in APPS:
        app = make_app(name)
        traces = generate_traces(app, nodes=2, seed=1, scale=scale)
        for size in CACHE_SIZES:
            config = SimConfig(cache_entries=size)
            utlb = run_on_traces(traces, config, "utlb").stats
            intr = run_on_traces(traces, config, "intr").stats
            rows.append([
                name, "%dK" % (size // 1024),
                round(utlb.check_miss_rate, 2),
                round(utlb.ni_miss_rate, 2),
                round(utlb.avg_lookup_cost_us, 1),
                round(intr.avg_lookup_cost_us, 1),
                intr.interrupts,
            ])
    print(format_table(
        ["app", "cache", "check miss", "NI miss",
         "UTLB us/lookup", "Intr us/lookup", "Intr interrupts"],
        rows,
        title="UTLB vs interrupt-based translation (scale=%.2f)" % scale))
    print()
    print("UTLB raised 0 interrupts in every configuration; the baseline")
    print("paid one 10 us interrupt per NIC translation miss.")


if __name__ == "__main__":
    main()
