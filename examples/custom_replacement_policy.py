#!/usr/bin/env python
"""Application-specific pinned-page replacement (Section 3.4).

"Because the application process often has knowledge about its virtual
memory access, it can use a custom replacement policy to minimize the
number of page pinning and unpinning operations."

This example runs a cyclic-scan workload (a streaming stencil whose
working set slightly exceeds the pinning budget) under all five
predefined policies, then plugs in a *user-defined* policy that exploits
application knowledge — it protects the scan's hot prefix — and beats
every predefined one.

Run:  python examples/custom_replacement_policy.py
"""

from repro import params
from repro.core.policies import PIN_POLICIES, PinnedPagePolicy
from repro.sim.config import SimConfig
from repro.sim.report import format_table
from repro.sim.simulator import simulate_node
from repro.traces.record import OP_SEND, TraceRecord

BUDGET_PAGES = 64
SCAN_PAGES = BUDGET_PAGES + 16
PASSES = 12


class ScanAwarePolicy(PinnedPagePolicy):
    """A user policy that knows the workload is a cyclic scan.

    The optimal strategy for a scan is to keep a fixed resident prefix
    and recycle a single victim slot for the remainder (OPT for cyclic
    reference strings).  Pages below ``keep`` are never evicted.
    """

    name = "scan-aware"

    def __init__(self, keep):
        super().__init__()
        self.keep = keep
        self._order = []

    def _record_pin(self, vpage):
        self._order.append(vpage)

    def _record_access(self, vpage):
        pass

    def _record_unpin(self, vpage):
        self._order.remove(vpage)

    def _choose(self, n, exclude):
        victims = []
        for vpage in reversed(self._order):      # newest transient first
            if vpage in exclude or vpage < self.keep:
                continue
            victims.append(vpage)
            if len(victims) == n:
                break
        return victims


def scan_trace():
    records = []
    timestamp = 0
    for _ in range(PASSES):
        for page in range(SCAN_PAGES):
            records.append(TraceRecord(
                timestamp, 0, 1, OP_SEND,
                0x10000000 + page * params.PAGE_SIZE, params.PAGE_SIZE))
            timestamp += 10
    return records


def run(policy):
    trace = scan_trace()
    config = SimConfig(cache_entries=1024, pin_policy="lru",
                       memory_limit_bytes=BUDGET_PAGES * params.PAGE_SIZE)
    # simulate_node builds its own UTLBs from config; for the custom
    # policy we inject the instance through the config's policy field.
    config.pin_policy = policy
    return simulate_node(trace, config).stats


def main():
    rows = []
    for name in sorted(PIN_POLICIES):
        stats = run(name)
        rows.append([name, stats.pages_unpinned,
                     round(stats.check_miss_rate, 3),
                     round(stats.avg_lookup_cost_us, 1)])
    custom = run(ScanAwarePolicy(keep=BUDGET_PAGES - 1))
    rows.append(["scan-aware*", custom.pages_unpinned,
                 round(custom.check_miss_rate, 3),
                 round(custom.avg_lookup_cost_us, 1)])
    print(format_table(
        ["policy", "unpins", "check miss rate", "us/lookup"], rows,
        title="Cyclic scan of %d pages under a %d-page pinning budget"
              % (SCAN_PAGES, BUDGET_PAGES)))
    print()
    print("* user-defined policy exploiting application knowledge")
    by_name = {row[0]: row[1] for row in rows}
    # Knowing the access pattern matters enormously: the scan-aware
    # policy (and MRU, which happens to fit scans) unpin a few pages per
    # pass, while LRU — the only policy the paper evaluated — evicts
    # exactly what the scan needs next and unpins 4-5x more.
    assert custom.pages_unpinned < 0.3 * by_name["lru"]
    best_predefined = min(row[1] for row in rows[:-1])
    assert custom.pages_unpinned <= 1.1 * best_predefined
    print("scan-aware unpins %d pages; LRU (the paper's default) unpins "
          "%d — a %.1fx reduction from using application knowledge."
          % (custom.pages_unpinned, by_name["lru"],
             by_name["lru"] / custom.pages_unpinned))


if __name__ == "__main__":
    main()
