#!/usr/bin/env python
"""The paper's complete methodology, end to end.

The ASPLOS paper (1) ran SPLASH-2 programs on a home-based SVM protocol
over VMMC, (2) traced every send and remote-read with a global clock,
and (3) fed the traces to a UTLB simulator.  This example does all three
with live simulated components:

  1. run a parallel stencil kernel on the SVM layer (real page fetches
     and zero-copy diff stores through the simulated NICs and UTLBs),
     verifying the numerical result against a serial reference;
  2. capture the communication trace with a TraceRecorder;
  3. replay the captured trace through both translation-mechanism
     simulators and compare them, Table-4 style.

Run:  python examples/svm_application.py
"""

import random

from repro.sim.config import SimConfig
from repro.sim.report import format_table
from repro.sim.sweep import run_on_traces
from repro.svm import SvmCluster
from repro.svm.apps import parallel_stencil, serial_stencil
from repro.traces.capture import TraceRecorder
from repro.traces.merge import split_by_node
from repro.traces.record import count_lookups, footprint_pages


def main():
    rng = random.Random(42)

    # -- 1. run the program on SVM over VMMC ---------------------------------
    recorder = TraceRecorder()
    svm = SvmCluster(num_ranks=4, region_pages=64, nodes=2,
                     recorder=recorder)
    n = 64                              # 64x64 int32 grid = 4 pages/grid
    grid = [[rng.randrange(-500, 500) for _ in range(n)] for _ in range(n)]
    iterations = 3

    result = parallel_stencil(svm, grid, iterations)
    assert result == serial_stencil(grid, iterations), "wrong answer!"
    svm.check_invariants()

    stats = svm.translation_stats()
    print("stencil(%dx%d, %d iterations) on 4 ranks / 2 nodes: correct"
          % (n, n, iterations))
    print("  SVM page fetches: %d   diff stores: %d (%d bytes of diffs)"
          % (svm.total_fetches(), svm.diff_stores, svm.diff_bytes))
    print("  UTLB: %d lookups, %d pin ioctls, %d interrupts"
          % (stats.lookups, stats.pin_calls, stats.interrupts))
    assert stats.interrupts == 0

    # -- 2. the captured trace -------------------------------------------------
    records = recorder.records()
    print()
    print("captured trace: %d records, %d lookups, %d distinct pages"
          % (len(records), count_lookups(records),
             footprint_pages(records)))

    # -- 3. trace-driven analysis (Table 4 in miniature) -----------------------
    by_node = split_by_node(records)
    rows = []
    for entries in (64, 256, 1024):
        config = SimConfig(cache_entries=entries)
        utlb = run_on_traces(by_node, config, "utlb").stats
        intr = run_on_traces(by_node, config, "intr").stats
        rows.append([
            entries,
            round(utlb.check_miss_rate, 2),
            round(utlb.ni_miss_rate, 2),
            round(utlb.avg_lookup_cost_us, 1),
            round(intr.avg_lookup_cost_us, 1),
            intr.interrupts,
        ])
    print()
    print(format_table(
        ["cache entries", "check miss", "NI miss",
         "UTLB us/lookup", "Intr us/lookup", "Intr interrupts"],
        rows,
        title="Replaying the captured trace through both mechanisms"))


if __name__ == "__main__":
    main()
