#!/usr/bin/env python
"""A message channel built on the public API — what a downstream user
would write on top of VMMC + UTLB.

A single-producer single-consumer channel: the consumer exports a ring
of message slots and enables (interrupt-free) poll-mode notifications;
the producer remote-stores messages into successive slots.  The consumer
never blocks in the OS and never takes an interrupt — it learns about
arrivals from the user-level notification queue, exactly the usage the
UTLB design targets.

Run:  python examples/message_channel.py
"""

from repro.vmmc import Cluster, barrier

RING_SLOTS = 8
SLOT_BYTES = 512
RING_BASE = 0x40000000
SEND_BASE = 0x10000000


class Producer:
    def __init__(self, cluster, library, handle):
        self.cluster = cluster
        self.library = library
        self.handle = handle
        self.next_slot = 0

    def send(self, message):
        if len(message) > SLOT_BYTES - 4:
            raise ValueError("message too large for a slot")
        slot = self.next_slot % RING_SLOTS
        self.next_slot += 1
        framed = len(message).to_bytes(4, "little") + message
        # Zero-copy discipline: the posted buffer must stay untouched
        # until the NIC has sent it, so each in-flight message gets its
        # own staging slot (mirroring the ring).
        staging = SEND_BASE + slot * SLOT_BYTES
        self.library.write_memory(staging, framed)
        self.library.send(staging, len(framed), self.handle,
                          remote_offset=slot * SLOT_BYTES)


class Consumer:
    def __init__(self, library, export_id):
        self.library = library
        self.export_id = export_id
        library.enable_notifications(export_id, mode="poll")

    def poll(self):
        """Drain arrived messages (user level; zero syscalls)."""
        messages = []
        for record in self.library.poll_notifications():
            slot_base = RING_BASE + (record.offset // SLOT_BYTES) * SLOT_BYTES
            length = int.from_bytes(
                self.library.read_memory(slot_base, 4), "little")
            messages.append(self.library.read_memory(slot_base + 4, length))
        return messages


def main():
    cluster = Cluster(num_nodes=2)
    producer_lib = cluster.node(0).create_process()
    consumer_lib = cluster.node(1).create_process()

    export_id = consumer_lib.export(RING_BASE, RING_SLOTS * SLOT_BYTES)
    handle = producer_lib.import_buffer(1, export_id)
    producer = Producer(cluster, producer_lib, handle)
    consumer = Consumer(consumer_lib, export_id)

    outgoing = [("msg-%02d: " % i).encode() + b"payload " * (i % 5 + 1)
                for i in range(20)]
    received = []
    queue = list(outgoing)
    while queue or len(received) < len(outgoing):
        # Producer pushes a burst (bounded by ring slots in flight).
        burst = min(RING_SLOTS // 2, len(queue))
        for _ in range(burst):
            producer.send(queue.pop(0))
        barrier(cluster)
        # Consumer polls, with no OS involvement whatsoever.
        received.extend(consumer.poll())

    assert received == outgoing, "messages lost or reordered!"
    print("delivered %d messages through a %d-slot ring" %
          (len(received), RING_SLOTS))
    stats = consumer_lib.stats
    print("consumer: %d interrupts, %d syscalls after setup"
          % (stats.interrupts, 0))
    assert cluster.node(1).interrupts.raised == 0
    print("the consumer learned about every arrival from the user-level")
    print("notification queue -- no interrupts, no polling syscalls.")


if __name__ == "__main__":
    main()
