#!/usr/bin/env python
"""Reliable communication under faults (VMMC-2, Section 4.1).

Drives remote stores through (a) a badly lossy fabric and (b) a switch
port failure healed by dynamic node remapping, and verifies that every
byte arrives exactly once, in order — while the UTLB data path still
never touches the OS.

Run:  python examples/fault_tolerance.py
"""

from repro import params
from repro.vmmc import Cluster, barrier

SEND = 0x10000000
RECV = 0x40000000


def lossy_fabric_demo():
    print("-- 30% packet loss --")
    cluster = Cluster(num_nodes=2, loss_rate=0.3, seed=13)
    sender = cluster.node(0).create_process()
    receiver = cluster.node(1).create_process()
    export_id = receiver.export(RECV, 8 * params.PAGE_SIZE)
    handle = sender.import_buffer(1, export_id)

    payload = bytes(range(256)) * 96        # 24 KB
    sender.write_memory(SEND, payload)
    sender.send(SEND, len(payload), handle)
    steps = barrier(cluster)
    assert receiver.read_memory(RECV, len(payload)) == payload

    stats = cluster.node(0).endpoint.stats
    print("  %d bytes delivered in %d steps" % (len(payload), steps))
    print("  packets sent: %d, retransmitted: %d, duplicates dropped "
          "by receiver: %d" % (stats.sent, stats.retransmitted,
                               cluster.node(1).endpoint.stats.duplicates))


def node_remapping_demo():
    print("-- switch port failure + dynamic node remapping --")
    cluster = Cluster(num_nodes=2, latency_steps=3)
    sender = cluster.node(0).create_process()
    receiver = cluster.node(1).create_process()
    export_id = receiver.export(RECV, 8 * params.PAGE_SIZE)
    handle = sender.import_buffer(1, export_id)

    payload = b"survives-port-failure " * 800
    sender.write_memory(SEND, payload)
    sender.send(SEND, len(payload), handle)

    # One step: the MCP has pushed the burst into the fabric, nothing
    # has reached node 1 yet (3-step links).  Now the port dies.
    cluster.step(1)
    new_port = cluster.fabric.remap_node(1)
    print("  port failed mid-burst; node 1 remapped to port %d" % new_port)

    steps = barrier(cluster)
    assert receiver.read_memory(RECV, len(payload)) == payload
    print("  all %d bytes recovered by retransmission in %d total steps"
          % (len(payload), steps))
    retransmitted = cluster.node(0).endpoint.stats.retransmitted
    print("  retransmissions: %d" % retransmitted)


def main():
    lossy_fabric_demo()
    print()
    node_remapping_demo()
    print()
    print("data path used 0 interrupts and 0 extra syscalls throughout.")


if __name__ == "__main__":
    main()
