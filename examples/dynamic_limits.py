#!/usr/bin/env python
"""Dynamic pinning limits: the OS reclaiming pinned memory (Section 3.4).

The paper notes that a *dynamic* pinning limit "requires that the OS
synchronize with the user-level UTLB data structures when reclaiming
pinned physical pages" — and leaves it there.  This example runs the
implemented version: two processes with different working sets share a
host; the OS squeezes the bigger pinner under memory pressure, limits
change at runtime, and every UTLB structure stays consistent throughout
(pages held by outstanding sends are never victims).

Run:  python examples/dynamic_limits.py
"""

from repro.core import (
    CountingFrameDriver,
    HierarchicalUtlb,
    ReclaimCoordinator,
    SharedUtlbCache,
)


def main():
    cache = SharedUtlbCache(num_entries=4096)
    driver = CountingFrameDriver()
    coordinator = ReclaimCoordinator()

    database = coordinator.register(
        HierarchicalUtlb("database", cache, driver=driver))
    web = coordinator.register(
        HierarchicalUtlb("web", cache, driver=driver))

    # The database pins a large buffer pool; the web server a small one.
    for page in range(400):
        database.access_page(page)
    for page in range(60):
        web.access_page(page)
    print("initial pinned pages: database=%d web=%d (host total %d)"
          % (len(database.pool), len(web.pool),
             coordinator.pinned_pages()))

    # The web server has a request in flight: those pages are untouchable.
    for page in range(8):
        web.hold(page)

    # Memory pressure: the OS reclaims 150 pages host-wide.
    coordinator.reclaim(150)
    print("after reclaiming 150 pages: database=%d web=%d"
          % (len(database.pool), len(web.pool)))
    assert all(web.bitvector.test(page) for page in range(8)), \
        "a held page was reclaimed!"

    # An administrator caps the database's pinning at runtime.
    evicted = coordinator.set_limit("database", 100)
    print("capping database at 100 pages evicted %d more" % evicted)

    # The database keeps running — demand pinning now works against the
    # new limit, evicting via its own LRU policy.
    for page in range(1000, 1050):
        database.access_page(page)
    print("database after more traffic: %d pinned (limit 100), "
          "%d unpins so far" % (len(database.pool),
                                database.stats.pages_unpinned))

    database.check_invariants()
    web.check_invariants()
    for page in range(8):
        web.release(page)
    print()
    print("all UTLB invariants held across %d reclaimed pages and a "
          "runtime limit change." % coordinator.stats.pages_reclaimed)


if __name__ == "__main__":
    main()
