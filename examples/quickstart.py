#!/usr/bin/env python
"""Quickstart: protected user-level communication with UTLB translation.

Builds a two-node Myrinet-style cluster, exports a receive buffer on one
node, and moves data both ways (remote store and remote fetch) with zero
OS involvement on the data path — then prints the translation statistics
that prove it.

Run:  python examples/quickstart.py
"""

from repro import params
from repro.vmmc import Cluster, remote_fetch, remote_store

SEND_BUFFER = 0x10000000
RECV_BUFFER = 0x40000000
FETCH_BUFFER = 0x20000000


def main():
    # A 2-node cluster: each node is a host (OS + memory) plus a NIC
    # (SRAM, DMA engine, Shared UTLB-Cache, MCP firmware) on a shared
    # crossbar fabric.
    cluster = Cluster(num_nodes=2)
    alice = cluster.node(0).create_process()
    bob = cluster.node(1).create_process()

    # Bob exports a receive buffer.  Export pins its pages and installs
    # their translations in Bob's Hierarchical-UTLB table, so incoming
    # data never needs the OS.
    export_id = bob.export(RECV_BUFFER, 4 * params.PAGE_SIZE)
    handle = alice.import_buffer(1, export_id)
    print("bob exported %d pages as export #%d"
          % (4, export_id))

    # Remote store: Alice -> Bob.
    message = b"The quick brown fox jumps over the lazy dog. " * 200
    alice.write_memory(SEND_BUFFER, message)
    steps = remote_store(cluster, alice, SEND_BUFFER, len(message), handle)
    received = bob.read_memory(RECV_BUFFER, len(message))
    assert received == message
    print("remote store: %d bytes delivered intact in %d fabric steps"
          % (len(message), steps))

    # Remote fetch: Alice pulls Bob's buffer back into a third buffer.
    steps = remote_fetch(cluster, alice, FETCH_BUFFER, len(message), handle)
    assert alice.read_memory(FETCH_BUFFER, len(message)) == message
    print("remote fetch: %d bytes pulled back in %d fabric steps"
          % (len(message), steps))

    # Re-send the same buffer: the UTLB fast path.  Every page is
    # already pinned and cached, so this costs no syscalls at all.
    syscalls_before = alice.process.syscalls
    remote_store(cluster, alice, SEND_BUFFER, len(message), handle)
    print("second store of the same buffer: %d additional syscalls"
          % (alice.process.syscalls - syscalls_before))
    assert alice.process.syscalls == syscalls_before

    # The UTLB promise: syscalls only on first-touch pinning, and zero
    # device interrupts, ever.
    stats = alice.stats
    print()
    print("alice translation stats:")
    print("  lookups:        %5d" % stats.lookups)
    print("  check misses:   %5d (first touch of each page)"
          % stats.check_misses)
    print("  NI cache misses:%5d" % stats.ni_misses)
    print("  pin ioctls:     %5d" % stats.pin_calls)
    print("  interrupts:     %5d" % stats.interrupts)
    print("  avg lookup cost: %.2f us (paper's fast path: 0.9 us)"
          % stats.avg_lookup_cost_us)
    for node_index in (0, 1):
        assert cluster.node(node_index).interrupts.raised == 0
    print()
    print("no device interrupts were raised on either node.")


if __name__ == "__main__":
    main()
