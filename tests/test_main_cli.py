"""The python -m repro entry point (direct invocation for speed)."""


import pytest

from repro.__main__ import SECTIONS, main


class TestSections:
    def test_every_table_and_figure_has_a_section(self):
        assert set(SECTIONS) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "figure7", "figure8"}

    @pytest.mark.parametrize("section", ["table1", "table2"])
    def test_cost_model_sections_run_instantly(self, section, capsys):
        assert main(["--only", section]) == 0
        out = capsys.readouterr().out
        assert section.replace("table", "Table ") in out

    def test_scaled_simulation_section(self, capsys):
        assert main(["--only", "table3", "--scale", "0.04",
                     "--nodes", "1"]) == 0
        assert "fft" in capsys.readouterr().out

    def test_compare_mode(self, capsys):
        assert main(["--compare", "--scale", "0.04", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "FAIL" not in out

    def test_bad_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "table99"])


class TestMechanismComparison:
    def test_positional_compare_mode(self, capsys):
        assert main(["compare", "--scale", "0.04", "--nodes", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "FAIL" not in out

    def test_mechanisms_subset(self, capsys):
        assert main(["compare", "--mechanisms", "utlb,victima",
                     "--scale", "0.02", "--nodes", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Mechanism comparison" in out
        assert "victima" in out
        assert "FAIL" not in out

    def test_mechanisms_all_covers_the_registry(self, capsys):
        from repro.sim.runner import MECHANISMS
        assert main(["compare", "--mechanisms", "all", "--scale", "0.02",
                     "--nodes", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        for name in MECHANISMS:
            assert name in out
        assert "FAIL" not in out

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--mechanisms", "bogus", "--no-cache"])

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["tables"])
