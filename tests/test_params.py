"""Global constants and helpers."""

import pytest

from repro import params
from repro.errors import (
    AddressError,
    CapacityError,
    ConfigError,
    NetworkError,
    NicError,
    PinningError,
    ProtectionError,
    ReproError,
    TraceError,
    TranslationError,
)


class TestGeometry:
    def test_page_size_is_4k(self):
        assert params.PAGE_SIZE == 4096
        assert 1 << params.PAGE_SHIFT == params.PAGE_SIZE

    def test_two_level_split_covers_va_space(self):
        assert (params.DIRECTORY_BITS + params.TABLE_BITS
                + params.PAGE_SHIFT == params.VA_BITS)
        assert (params.DIRECTORY_ENTRIES * params.TABLE_ENTRIES
                == params.NUM_VPAGES)

    def test_paper_cache_geometry(self):
        # 8 K entries at 4 B each = the paper's 32 KB Shared UTLB-Cache.
        assert (params.DEFAULT_UTLB_CACHE_ENTRIES
                * params.UTLB_CACHE_ENTRY_BYTES == 32 * 1024)

    def test_process_tag_space(self):
        assert params.MAX_PROCESSES_PER_NIC == 16


class TestPagesForBytes:
    def test_exact_page(self):
        assert params.pages_for_bytes(params.PAGE_SIZE) == 1

    def test_one_byte_over(self):
        assert params.pages_for_bytes(params.PAGE_SIZE + 1) == 2

    def test_zero(self):
        assert params.pages_for_bytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            params.pages_for_bytes(-1)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        AddressError, CapacityError, ConfigError, NetworkError, NicError,
        PinningError, ProtectionError, TraceError, TranslationError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_double_as_value_error(self):
        """Config and address errors also satisfy ValueError, so generic
        callers can catch them idiomatically."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(AddressError, ValueError)

    def test_catching_the_family(self):
        try:
            raise PinningError("x")
        except ReproError:
            pass
