"""CountingFrameDriver bookkeeping, including the per-pid pin counters."""

import pytest

from repro.core.utlb import CountingFrameDriver
from repro.errors import PinningError


class TestPinUnpin:
    def test_fresh_frames_are_distinct(self):
        driver = CountingFrameDriver()
        frames = driver.pin_pages(1, [10, 11, 12])
        assert sorted(frames) == [10, 11, 12]
        assert len(set(frames.values())) == 3

    def test_single_page_pin_matches_batch_semantics(self):
        driver = CountingFrameDriver()
        one = driver.pin_pages(1, [10])
        assert list(one) == [10]
        with pytest.raises(PinningError):
            driver.pin_pages(1, [10])

    def test_double_pin_rejected(self):
        driver = CountingFrameDriver()
        driver.pin_pages(1, [10, 11])
        with pytest.raises(PinningError):
            driver.pin_pages(1, [11, 12])

    def test_unpin_unknown_rejected(self):
        driver = CountingFrameDriver()
        with pytest.raises(PinningError):
            driver.unpin_pages(1, [10])


class TestPinnedCount:
    def test_counts_per_pid(self):
        driver = CountingFrameDriver()
        driver.pin_pages(1, [10, 11, 12])
        driver.pin_pages(2, [10])
        assert driver.pinned_count(1) == 3
        assert driver.pinned_count(2) == 1
        assert driver.pinned_count(3) == 0

    def test_unpin_decrements(self):
        driver = CountingFrameDriver()
        driver.pin_pages(1, [10, 11])
        driver.unpin_pages(1, [10])
        assert driver.pinned_count(1) == 1
        driver.unpin_pages(1, [11])
        assert driver.pinned_count(1) == 0

    def test_same_page_different_pids_counted_separately(self):
        driver = CountingFrameDriver()
        driver.pin_pages(1, [10])
        driver.pin_pages(2, [10])
        driver.unpin_pages(1, [10])
        assert driver.pinned_count(1) == 0
        assert driver.pinned_count(2) == 1

    def test_partial_unpin_failure_counts_successful_pages(self):
        driver = CountingFrameDriver()
        driver.pin_pages(1, [10, 11])
        with pytest.raises(PinningError):
            driver.unpin_pages(1, [10, 99, 11])
        # 10 was unpinned before the failure; 11 never was.
        assert driver.pinned_count(1) == 1
