"""The pinned-status bit vector (Hierarchical-UTLB user-level structure)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bitvector import BitVector
from repro.errors import AddressError


class TestBasics:
    def test_new_vector_is_empty(self):
        bv = BitVector(100)
        assert bv.count == 0
        assert not bv.test(0)
        assert not bv.test(99)

    def test_set_and_test(self):
        bv = BitVector()
        assert bv.set(5)
        assert bv.test(5)
        assert not bv.test(4)
        assert not bv.test(6)

    def test_set_is_idempotent_but_reports_change(self):
        bv = BitVector()
        assert bv.set(7) is True
        assert bv.set(7) is False
        assert bv.count == 1

    def test_clear(self):
        bv = BitVector()
        bv.set(3)
        assert bv.clear(3) is True
        assert not bv.test(3)
        assert bv.count == 0

    def test_clear_unset_bit_reports_no_change(self):
        bv = BitVector()
        assert bv.clear(3) is False

    def test_contains(self):
        bv = BitVector()
        bv.set(42)
        assert 42 in bv
        assert 41 not in bv

    def test_negative_index_rejected(self):
        bv = BitVector()
        with pytest.raises(AddressError):
            bv.test(-1)
        with pytest.raises(AddressError):
            bv.set(-1)

    def test_bool_index_rejected(self):
        with pytest.raises(AddressError):
            BitVector().set(True)

    def test_large_sparse_indices(self):
        bv = BitVector()
        bv.set(10**6)
        assert bv.test(10**6)
        assert bv.count == 1


class TestRangeOperations:
    def test_all_set_on_full_range(self):
        bv = BitVector()
        for i in range(10, 14):
            bv.set(i)
        assert bv.all_set(10, 4)

    def test_all_set_with_hole(self):
        bv = BitVector()
        bv.set(10)
        bv.set(12)
        assert not bv.all_set(10, 3)

    def test_all_set_empty_range_is_true(self):
        assert BitVector().all_set(5, 0)

    def test_clear_indices_finds_holes(self):
        bv = BitVector()
        bv.set(10)
        bv.set(12)
        assert bv.clear_indices(10, 4) == [11, 13]

    def test_clear_indices_none_missing(self):
        bv = BitVector()
        for i in range(8):
            bv.set(i)
        assert bv.clear_indices(0, 8) == []

    def test_set_indices_sorted(self):
        bv = BitVector()
        for i in (9, 2, 5):
            bv.set(i)
        assert bv.set_indices() == [2, 5, 9]

    def test_negative_count_rejected(self):
        with pytest.raises(AddressError):
            BitVector().all_set(0, -1)


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=4096)))
    def test_count_matches_distinct_sets(self, indices):
        bv = BitVector()
        for index in indices:
            bv.set(index)
        assert bv.count == len(indices)
        assert bv.set_indices() == sorted(indices)

    @given(st.sets(st.integers(min_value=0, max_value=512)),
           st.integers(min_value=0, max_value=512),
           st.integers(min_value=0, max_value=64))
    def test_all_set_agrees_with_membership(self, indices, start, count):
        bv = BitVector()
        for index in indices:
            bv.set(index)
        expected = all(i in indices for i in range(start, start + count))
        assert bv.all_set(start, count) == expected

    @given(st.sets(st.integers(min_value=0, max_value=512)),
           st.integers(min_value=0, max_value=512),
           st.integers(min_value=0, max_value=64))
    def test_clear_indices_complement(self, indices, start, count):
        bv = BitVector()
        for index in indices:
            bv.set(index)
        missing = bv.clear_indices(start, count)
        assert missing == [i for i in range(start, start + count)
                           if i not in indices]

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=256))))
    def test_set_clear_sequence_tracks_reference_set(self, ops):
        bv = BitVector()
        reference = set()
        for is_set, index in ops:
            if is_set:
                bv.set(index)
                reference.add(index)
            else:
                bv.clear(index)
                reference.discard(index)
        assert bv.count == len(reference)
        assert set(bv.set_indices()) == reference
