"""The original-VMMC baseline: per-process NIC table, interrupt-managed."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interrupt_per_process import (
    InterruptPerProcessUtlb,
    simulate_node_intr_pp,
)
from repro.errors import ConfigError


class TestBasics:
    def test_miss_interrupts_and_pins(self):
        utlb = InterruptPerProcessUtlb(1, num_slots=4)
        utlb.access_page(10)
        assert utlb.stats.interrupts == 1
        assert utlb.stats.pages_pinned == 1

    def test_hit_is_quiet(self):
        utlb = InterruptPerProcessUtlb(1, num_slots=4)
        utlb.access_page(10)
        utlb.access_page(10)
        assert utlb.stats.interrupts == 1
        assert utlb.stats.ni_hits == 1

    def test_frame_stable_while_resident(self):
        utlb = InterruptPerProcessUtlb(1, num_slots=4)
        assert utlb.access_page(10) == utlb.access_page(10)

    def test_full_table_evicts_lru_and_unpins(self):
        utlb = InterruptPerProcessUtlb(1, num_slots=2)
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(0)        # refresh 0; 1 becomes LRU
        utlb.access_page(2)        # evicts 1
        assert utlb.resident_pages() == [0, 2]
        assert utlb.stats.pages_unpinned == 1
        utlb.check_invariants()

    def test_memory_limit_tightens_capacity(self):
        utlb = InterruptPerProcessUtlb(1, num_slots=8,
                                       memory_limit_pages=3)
        for page in range(6):
            utlb.access_page(page)
        assert len(utlb) <= 3
        utlb.check_invariants()

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            InterruptPerProcessUtlb(1, num_slots=0)
        with pytest.raises(ConfigError):
            InterruptPerProcessUtlb(1, memory_limit_pages=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=16))
    def test_pinned_always_equals_table(self, accesses, slots):
        utlb = InterruptPerProcessUtlb(1, num_slots=slots)
        for page in accesses:
            utlb.access_page(page)
        assert utlb.check_invariants()


class TestDesignSpaceMatrix:
    """The four-quadrant comparison the paper's Section 2/3 implies."""

    @pytest.fixture(scope="class")
    def trace(self):
        from repro.traces.synth import make_app
        return make_app("barnes").generate_node(0, seed=1, scale=0.1)

    def test_all_four_mechanisms_agree_on_lookups(self, trace):
        from repro.sim.config import SimConfig
        from repro.sim.intr_simulator import simulate_node_intr
        from repro.sim.pp_simulator import simulate_node_pp
        from repro.sim.simulator import simulate_node
        from repro.traces.record import count_lookups

        config = SimConfig(cache_entries=512)
        results = [
            simulate_node(trace, config),
            simulate_node_intr(trace, config),
            simulate_node_pp(trace, config, sram_entries=512),
            simulate_node_intr_pp(trace, config),
        ]
        expected = count_lookups(trace)
        assert all(r.stats.lookups == expected for r in results)

    def test_user_managed_quadrants_never_interrupt(self, trace):
        from repro.sim.config import SimConfig
        from repro.sim.pp_simulator import simulate_node_pp
        from repro.sim.simulator import simulate_node

        config = SimConfig(cache_entries=512)
        assert simulate_node(trace, config).stats.interrupts == 0
        assert simulate_node_pp(trace, config,
                                sram_entries=512).stats.interrupts == 0

    def test_interrupt_managed_quadrants_interrupt_per_miss(self, trace):
        from repro.sim.config import SimConfig
        from repro.sim.intr_simulator import simulate_node_intr

        config = SimConfig(cache_entries=512)
        intr = simulate_node_intr(trace, config).stats
        intr_pp = simulate_node_intr_pp(trace, config).stats
        assert intr.interrupts == intr.ni_misses > 0
        assert intr_pp.interrupts == intr_pp.ni_misses > 0

    def test_utlb_cheapest_under_translation_pressure(self, trace):
        """The paper's thesis, across the whole quadrant: when the NIC's
        translation state is scarce relative to the footprint (the regime
        the paper targets), user-managed + shared cache has the lowest
        average lookup cost.  (With caches big enough to swallow the app,
        interrupt-based variants can win — the Table 6 Barnes crossover —
        so the pressure case is the discriminating one.)"""
        from repro.sim.config import SimConfig
        from repro.sim.intr_simulator import simulate_node_intr
        from repro.sim.pp_simulator import simulate_node_pp
        from repro.sim.simulator import simulate_node

        config = SimConfig(cache_entries=64)
        utlb = simulate_node(trace, config).stats.avg_lookup_cost_us
        others = [
            simulate_node_intr(trace, config).stats.avg_lookup_cost_us,
            simulate_node_pp(trace, config,
                             sram_entries=64).stats.avg_lookup_cost_us,
            simulate_node_intr_pp(
                trace, config).stats.avg_lookup_cost_us,
        ]
        assert utlb < min(others)
