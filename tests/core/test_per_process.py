"""Per-process UTLB (Section 3.1): NIC-SRAM table, slots, capacity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.per_process import PerProcessUtlb
from repro.errors import ConfigError


def make(num_slots=8, **kwargs):
    return PerProcessUtlb(1, num_slots=num_slots, **kwargs)


class TestBasics:
    def test_first_access_pins_and_installs(self):
        utlb = make()
        frame = utlb.access_page(10)
        assert frame is not None
        assert utlb.stats.check_misses == 1
        assert utlb.stats.pages_pinned == 1
        assert utlb.tree.lookup(10) is not None

    def test_second_access_is_cheap(self):
        utlb = make()
        utlb.access_page(10)
        utlb.access_page(10)
        assert utlb.stats.check_misses == 1
        assert utlb.stats.pin_calls == 1

    def test_nic_never_misses(self):
        """The whole table is in SRAM: NIC lookups always hit."""
        utlb = make(num_slots=4)
        for page in range(20):       # far exceeds the table
            utlb.access_page(page % 10)
        assert utlb.stats.ni_misses == 0
        assert utlb.stats.ni_hits == utlb.stats.lookups

    def test_frame_stable_while_installed(self):
        utlb = make()
        assert utlb.access_page(5) == utlb.access_page(5)


class TestCapacity:
    def test_table_full_forces_eviction(self):
        utlb = make(num_slots=2, pin_policy="lru")
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(2)
        assert utlb.capacity_evictions == 1
        assert utlb.stats.pages_unpinned == 1
        assert 0 not in utlb.tree
        utlb.check_invariants()

    def test_eviction_frees_slot_for_reuse(self):
        utlb = make(num_slots=2)
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(2)
        assert utlb.table.used_slots == 2

    def test_explicit_memory_limit_tightens(self):
        utlb = make(num_slots=8, memory_limit_pages=2)
        for page in range(5):
            utlb.access_page(page)
        assert len(utlb.pool) <= 2
        utlb.check_invariants()

    def test_evicted_page_reaccess_is_check_miss(self):
        utlb = make(num_slots=2)
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(2)
        utlb.access_page(0)
        assert utlb.stats.check_misses == 4


class TestPrepin:
    def test_prepin_uses_one_call(self):
        utlb = make(num_slots=8, prepin=4)
        utlb.access_page(0)
        assert utlb.stats.pin_calls == 1
        assert utlb.stats.pages_pinned == 4
        assert utlb.table.used_slots == 4

    def test_bad_prepin_rejected(self):
        with pytest.raises(ConfigError):
            make(prepin=0)


class TestFragmentation:
    def test_scattered_evictions_fragment_table(self):
        """Complex access patterns scatter free slots — the fragmentation
        problem Hierarchical-UTLB eliminates (Section 3.3)."""
        utlb = make(num_slots=16, pin_policy="random", seed=3)
        for page in range(16):
            utlb.access_page(page)
        for page in range(16, 24):      # random evictions make holes
            utlb.access_page(page)
        # Re-fill different pages; slots are reused out of order.
        assert utlb.table.used_slots == 16
        utlb.check_invariants()


class TestHolds:
    def test_held_page_not_evicted(self):
        utlb = make(num_slots=2, pin_policy="lru")
        utlb.access_page(0)
        utlb.hold(0)
        utlb.access_page(1)
        utlb.access_page(2)
        assert 0 in utlb.tree
        assert 1 not in utlb.tree
        utlb.release(0)


class TestInvariantsUnderRandomWorkload:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=200),
           st.sampled_from(["lru", "mru", "lfu", "mfu", "random"]),
           st.integers(min_value=1, max_value=4))
    def test_invariants_hold(self, accesses, policy, prepin):
        utlb = make(num_slots=8, pin_policy=policy, prepin=prepin)
        for page in accesses:
            utlb.access_page(page)
        assert utlb.check_invariants()
        assert utlb.table.used_slots <= 8
