"""The calibrated cost model: Table 1, Table 2, and Section 6.2 equations.

These tests pin the model to the paper's published numbers — if a
constant drifts, the reproduction of Tables 1, 2, and 6 silently breaks,
so this is where it gets caught.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.costs import (
    CostModel,
    DEFAULT_COST_MODEL,
    MEASURED_SIZES,
)
from repro.errors import ConfigError


class TestTable1Values:
    """Host-side measured values (Table 1)."""

    @pytest.mark.parametrize("n,expected", zip(MEASURED_SIZES,
                                               (27, 30, 36, 47, 70, 115)))
    def test_pin_cost_at_measured_points(self, n, expected):
        assert DEFAULT_COST_MODEL.pin_cost(n) == pytest.approx(expected)

    @pytest.mark.parametrize("n,expected", zip(MEASURED_SIZES,
                                               (25, 30, 36, 50, 80, 139)))
    def test_unpin_cost_at_measured_points(self, n, expected):
        assert DEFAULT_COST_MODEL.unpin_cost(n) == pytest.approx(expected)

    def test_check_min_flat(self):
        for n in MEASURED_SIZES:
            assert DEFAULT_COST_MODEL.check_cost(n) == pytest.approx(0.2)

    def test_check_max_range(self):
        assert DEFAULT_COST_MODEL.check_cost(1, worst_case=True) == \
            pytest.approx(0.4)
        assert DEFAULT_COST_MODEL.check_cost(32, worst_case=True) == \
            pytest.approx(0.7)


class TestTable2Values:
    """NIC-side measured values (Table 2)."""

    @pytest.mark.parametrize("n,expected", zip(MEASURED_SIZES,
                                               (1.5, 1.6, 1.6, 1.9, 2.1, 2.5)))
    def test_dma_cost(self, n, expected):
        assert DEFAULT_COST_MODEL.dma_cost(n) == pytest.approx(expected)

    @pytest.mark.parametrize("n,expected", zip(MEASURED_SIZES,
                                               (1.8, 1.9, 1.9, 2.3, 2.8, 3.2)))
    def test_miss_cost(self, n, expected):
        assert DEFAULT_COST_MODEL.miss_cost(n) == pytest.approx(expected)

    def test_hit_cost_constant(self):
        assert DEFAULT_COST_MODEL.ni_check_hit == pytest.approx(0.8)


class TestInterpolation:
    def test_between_points_interpolates(self):
        # pin(3) should be between pin(2)=30 and pin(4)=36.
        assert DEFAULT_COST_MODEL.pin_cost(3) == pytest.approx(33.0)

    def test_extrapolates_beyond_last_point(self):
        # Beyond 32 pages, the final slope ((115-70)/16) continues.
        assert DEFAULT_COST_MODEL.pin_cost(48) == pytest.approx(
            115 + 45 / 16 * 16)

    def test_zero_batch_rejected(self):
        with pytest.raises(ConfigError):
            DEFAULT_COST_MODEL.pin_cost(0)

    @given(st.integers(min_value=1, max_value=200))
    def test_pin_cost_monotone_nondecreasing(self, n):
        cm = DEFAULT_COST_MODEL
        assert cm.pin_cost(n + 1) >= cm.pin_cost(n)

    @given(st.integers(min_value=2, max_value=64))
    def test_batched_pin_cheaper_per_page(self, n):
        """Pinning a batch is always cheaper per page than pinning one at
        a time — the premise of sequential pre-pinning (Section 6.5)."""
        cm = DEFAULT_COST_MODEL
        assert cm.pin_cost(n) / n < cm.pin_cost(1)


class TestKernelRates:
    def test_kernel_pin_excludes_context_switch(self):
        cm = DEFAULT_COST_MODEL
        assert cm.kernel_pin_cost(1) == pytest.approx(17.0)
        assert cm.kernel_unpin_cost(1) == pytest.approx(15.0)

    def test_kernel_rates_never_negative(self):
        cm = CostModel(context_switch_cost=1000.0)
        assert cm.kernel_pin_cost(1) == 0.0


class TestLookupEquations:
    """Section 6.2 equations must regenerate Table 6 from Table 4 rates."""

    def test_fft_1k_utlb(self):
        # Table 4 FFT@1K: check 0.25, NI 0.50, unpins 0 -> Table 6: 9.0 us.
        cost = DEFAULT_COST_MODEL.utlb_lookup_cost(0.25, 0.50, 0.0)
        assert cost == pytest.approx(9.0, abs=0.1)

    def test_fft_1k_intr(self):
        # Table 4 FFT@1K Intr: NI 0.50, unpins 0.49 -> Table 6: 21.7 us.
        cost = DEFAULT_COST_MODEL.intr_lookup_cost(0.50, 0.49)
        assert cost == pytest.approx(21.7, abs=0.4)

    def test_barnes_1k_utlb(self):
        cost = DEFAULT_COST_MODEL.utlb_lookup_cost(0.04, 0.10, 0.0)
        assert cost == pytest.approx(2.6, abs=0.1)

    def test_barnes_1k_intr(self):
        cost = DEFAULT_COST_MODEL.intr_lookup_cost(0.10, 0.09)
        assert cost == pytest.approx(4.9, abs=0.1)

    def test_barnes_16k_crossover(self):
        """At 16K entries Barnes' Intr cost (1.9) undercuts UTLB (2.5):
        the paper's Table 6 crossover."""
        cm = DEFAULT_COST_MODEL
        utlb = cm.utlb_lookup_cost(0.04, 0.04, 0.0)
        intr = cm.intr_lookup_cost(0.04, 0.00)
        assert intr < utlb
        assert intr == pytest.approx(1.9, abs=0.1)
        assert utlb == pytest.approx(2.5, abs=0.1)

    def test_prefetch_reduces_miss_term_slowly(self):
        """Fetching 32 entries costs less than 2x fetching one — the
        economics behind Figure 8."""
        cm = DEFAULT_COST_MODEL
        assert cm.miss_cost(32) < 2 * cm.miss_cost(1)


class TestConstruction:
    def test_bad_table_length_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(pin_table=(1.0, 2.0))

    def test_custom_model_overrides(self):
        cm = CostModel(user_check_hit=1.0, interrupt_cost=50.0)
        assert cm.utlb_lookup_cost(0, 0, 0) == pytest.approx(1.8)
        assert cm.intr_lookup_cost(1.0, 0) == pytest.approx(0.8 + 50 + 17)


class TestAccumulatedCost:
    """The batched accumulator must equal the per-event loop to the bit."""

    def naive(self, unit, count, start=0.0):
        total = start
        for _ in range(count):
            total += unit
        return total

    @given(unit=st.sampled_from([0.5, 0.8, 0.2, 0.4, 0.7, 1e-3, 3.1]),
           count=st.integers(min_value=0, max_value=4000),
           start=st.sampled_from([0.0, 0.5, 123.456, 1e6]))
    def test_matches_naive_loop(self, unit, count, start):
        from repro.core.costs import accumulated_cost
        assert accumulated_cost(unit, count, start) == \
            self.naive(unit, count, start)

    @given(unit=st.floats(min_value=1e-6, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
           count=st.integers(min_value=0, max_value=600))
    def test_matches_naive_loop_arbitrary_units(self, unit, count):
        from repro.core.costs import accumulated_cost
        assert accumulated_cost(unit, count) == self.naive(unit, count)

    def test_negative_count_rejected(self):
        from repro.core.costs import accumulated_cost
        with pytest.raises(ConfigError):
            accumulated_cost(0.5, -1)
