"""The pinned-page pool: limits, eviction, outstanding-send holds."""

import pytest

from repro.core.pinner import PinnedPagePool
from repro.errors import CapacityError, PinningError


class TestUnlimited:
    def test_no_limit_always_has_room(self):
        pool = PinnedPagePool(None)
        assert pool.room_for(10**6)
        assert pool.victims_for(10**6) == []


class TestLimit:
    def test_room_under_limit(self):
        pool = PinnedPagePool(4)
        for page in range(3):
            pool.note_pin(page)
        assert pool.room_for(1)
        assert not pool.room_for(2)

    def test_victims_cover_overflow(self):
        pool = PinnedPagePool(4, policy="lru")
        for page in range(4):
            pool.note_pin(page)
        assert pool.victims_for(2) == [0, 1]

    def test_victims_respect_access_order(self):
        pool = PinnedPagePool(3, policy="lru")
        for page in range(3):
            pool.note_pin(page)
        pool.note_access(0)
        assert pool.victims_for(1) == [1]

    def test_request_larger_than_limit_rejected(self):
        pool = PinnedPagePool(4)
        with pytest.raises(CapacityError):
            pool.victims_for(5)

    def test_zero_limit_rejected(self):
        with pytest.raises(CapacityError):
            PinnedPagePool(0)


class TestHolds:
    def test_held_pages_never_evicted(self):
        pool = PinnedPagePool(3, policy="lru")
        for page in range(3):
            pool.note_pin(page)
        pool.hold(0)                 # oldest, but protected
        assert pool.victims_for(1) == [1]

    def test_unpin_held_page_rejected(self):
        pool = PinnedPagePool(None)
        pool.note_pin(1)
        pool.hold(1)
        with pytest.raises(PinningError):
            pool.note_unpin(1)

    def test_release_reenables_eviction(self):
        pool = PinnedPagePool(None)
        pool.note_pin(1)
        pool.hold(1)
        pool.release(1)
        pool.note_unpin(1)
        assert 1 not in pool

    def test_nested_holds(self):
        pool = PinnedPagePool(None)
        pool.note_pin(1)
        pool.hold(1)
        pool.hold(1)
        pool.release(1)
        with pytest.raises(PinningError):
            pool.note_unpin(1)       # still one hold left
        pool.release(1)
        pool.note_unpin(1)

    def test_hold_unpinned_page_rejected(self):
        with pytest.raises(PinningError):
            PinnedPagePool(None).hold(1)

    def test_release_without_hold_rejected(self):
        pool = PinnedPagePool(None)
        pool.note_pin(1)
        with pytest.raises(PinningError):
            pool.release(1)

    def test_all_held_cannot_evict(self):
        pool = PinnedPagePool(2)
        pool.note_pin(1)
        pool.note_pin(2)
        pool.hold(1)
        pool.hold(2)
        with pytest.raises(CapacityError):
            pool.victims_for(1)


class TestPolicySelection:
    def test_policy_by_name(self):
        assert PinnedPagePool(None, policy="mru").policy.name == "mru"

    def test_policy_by_instance(self):
        from repro.core.policies import MfuPolicy
        policy = MfuPolicy()
        assert PinnedPagePool(None, policy=policy).policy is policy
