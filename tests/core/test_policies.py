"""The five user-level pinned-page replacement policies (Section 3.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import (
    PIN_POLICIES,
    LfuPolicy,
    LruPolicy,
    MfuPolicy,
    MruPolicy,
    RandomPolicy,
    make_pin_policy,
)
from repro.errors import CapacityError, ConfigError


class TestRegistry:
    def test_all_five_policies_exist(self):
        assert set(PIN_POLICIES) == {"lru", "mru", "lfu", "mfu", "random"}

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_make_by_name(self, name):
        policy = make_pin_policy(name)
        assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_pin_policy("clock")


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        for page in (1, 2, 3):
            policy.on_pin(page)
        policy.on_access(1)             # 2 is now the oldest
        assert policy.select_victims(1) == [2]

    def test_exclude_skips_protected(self):
        policy = LruPolicy()
        for page in (1, 2, 3):
            policy.on_pin(page)
        assert policy.select_victims(1, exclude={1}) == [2]

    def test_multiple_victims_in_order(self):
        policy = LruPolicy()
        for page in (1, 2, 3, 4):
            policy.on_pin(page)
        policy.on_access(2)
        assert policy.select_victims(2) == [1, 3]


class TestMru:
    def test_evicts_most_recent(self):
        policy = MruPolicy()
        for page in (1, 2, 3):
            policy.on_pin(page)
        assert policy.select_victims(1) == [3]

    def test_access_changes_victim(self):
        policy = MruPolicy()
        for page in (1, 2, 3):
            policy.on_pin(page)
        policy.on_access(1)
        assert policy.select_victims(1) == [1]

    def test_mru_beats_lru_on_cyclic_scan(self):
        """A cyclic scan over pool_size+1 pages: LRU always evicts the
        page needed next (0% reuse); MRU keeps most of the pool."""
        def run(policy_name):
            policy = make_pin_policy(policy_name)
            limit = 8
            pages = list(range(limit + 1))
            evictions = 0
            pinned = set()
            for _ in range(5):                  # 5 scan passes
                for page in pages:
                    if page in pinned:
                        policy.on_access(page)
                        continue
                    if len(pinned) >= limit:
                        victim = policy.select_victims(1)[0]
                        policy.on_unpin(victim)
                        pinned.remove(victim)
                        evictions += 1
                    policy.on_pin(page)
                    pinned.add(page)
            return evictions

        assert run("mru") < run("lru")


class TestFrequencyPolicies:
    def test_lfu_evicts_cold_page(self):
        policy = LfuPolicy()
        for page in (1, 2, 3):
            policy.on_pin(page)
        for _ in range(5):
            policy.on_access(1)
            policy.on_access(3)
        assert policy.select_victims(1) == [2]

    def test_mfu_evicts_hot_page(self):
        policy = MfuPolicy()
        for page in (1, 2, 3):
            policy.on_pin(page)
        for _ in range(5):
            policy.on_access(2)
        assert policy.select_victims(1) == [2]

    def test_lfu_tie_break_deterministic(self):
        policy = LfuPolicy()
        for page in (10, 20, 30):
            policy.on_pin(page)
        # All counts equal: the earliest-pinned page goes first.
        assert policy.select_victims(1) == [10]

    def test_counts_reset_on_repin(self):
        policy = LfuPolicy()
        policy.on_pin(1)
        for _ in range(10):
            policy.on_access(1)
        policy.on_unpin(1)
        policy.on_pin(1)
        policy.on_pin(2)
        policy.on_access(2)
        # Page 1's old hotness is gone; both have low counts, 1 is older.
        assert policy.select_victims(1) == [1]


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        for page in range(20):
            a.on_pin(page)
            b.on_pin(page)
        assert a.select_victims(5) == b.select_victims(5)

    def test_victims_are_members(self):
        policy = RandomPolicy(seed=1)
        for page in range(10):
            policy.on_pin(page)
        victims = policy.select_victims(4, exclude={0, 1})
        assert len(victims) == 4
        assert all(0 <= v < 10 and v not in (0, 1) for v in victims)


class TestProtocolErrors:
    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_double_pin_rejected(self, name):
        policy = make_pin_policy(name)
        policy.on_pin(1)
        with pytest.raises(CapacityError):
            policy.on_pin(1)

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_unpin_unknown_rejected(self, name):
        with pytest.raises(CapacityError):
            make_pin_policy(name).on_unpin(1)

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_too_many_victims_rejected(self, name):
        policy = make_pin_policy(name)
        policy.on_pin(1)
        policy.on_pin(2)
        with pytest.raises(CapacityError):
            policy.select_victims(2, exclude={1})

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_zero_victims_is_empty(self, name):
        policy = make_pin_policy(name)
        policy.on_pin(1)
        assert policy.select_victims(0) == []


class TestPolicyProperties:
    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    @given(ops=st.lists(st.tuples(st.sampled_from(["pin", "access", "unpin"]),
                                  st.integers(min_value=0, max_value=30)),
                        max_size=150))
    def test_membership_tracks_reference(self, name, ops):
        policy = make_pin_policy(name)
        reference = set()
        for op, page in ops:
            if op == "pin" and page not in reference:
                policy.on_pin(page)
                reference.add(page)
            elif op == "access":
                policy.on_access(page)
            elif op == "unpin" and page in reference:
                policy.on_unpin(page)
                reference.remove(page)
        assert len(policy) == len(reference)
        assert all(page in policy for page in reference)

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    @given(pages=st.sets(st.integers(min_value=0, max_value=100),
                         min_size=5, max_size=30),
           n=st.integers(min_value=1, max_value=5))
    def test_victims_distinct_members_respecting_exclude(self, name,
                                                         pages, n):
        policy = make_pin_policy(name)
        for page in sorted(pages):
            policy.on_pin(page)
        exclude = set(sorted(pages)[:2])
        n = min(n, len(pages) - len(exclude))
        victims = policy.select_victims(n, exclude=exclude)
        assert len(victims) == n
        assert len(set(victims)) == n
        assert all(v in pages and v not in exclude for v in victims)


class TestSelectVictimsEmptyExclude:
    """The empty-exclude fast path must behave exactly like the set path."""

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    @pytest.mark.parametrize("exclude", [(), set(), frozenset(), [], {}])
    def test_empty_exclude_forms_equivalent(self, name, exclude):
        policy = make_pin_policy(name)
        for page in (1, 2, 3, 4):
            policy.on_pin(page)
        assert sorted(policy.select_victims(4, exclude=exclude)) == \
            [1, 2, 3, 4]

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_insufficient_eligible_raises(self, name):
        policy = make_pin_policy(name)
        for page in (1, 2):
            policy.on_pin(page)
        with pytest.raises(CapacityError):
            policy.select_victims(3)
        with pytest.raises(CapacityError):
            policy.select_victims(2, exclude={1})

    @pytest.mark.parametrize("name", sorted(PIN_POLICIES))
    def test_exclude_entries_outside_pool_do_not_count(self, name):
        policy = make_pin_policy(name)
        for page in (1, 2, 3):
            policy.on_pin(page)
        victims = policy.select_victims(3, exclude={99})
        assert sorted(victims) == [1, 2, 3]

    def test_pages_property_exposes_live_pool(self):
        policy = make_pin_policy("lru")
        pool = policy.pages
        policy.on_pin(5)
        assert pool == {5}
        policy.on_unpin(5)
        assert pool == set()
