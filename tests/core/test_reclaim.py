"""Dynamic pinning limits and OS reclaim (Section 3.4's open issue)."""

import pytest

from repro.core.reclaim import ReclaimCoordinator
from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb
from repro.errors import CapacityError, ConfigError


def build_host(num_processes=2, pinned_each=20):
    cache = SharedUtlbCache(num_entries=256)
    driver = CountingFrameDriver()
    coordinator = ReclaimCoordinator()
    utlbs = []
    for pid in range(num_processes):
        utlb = HierarchicalUtlb(pid, cache, driver=driver)
        coordinator.register(utlb)
        for page in range(pinned_each):
            utlb.access_page(page)
        utlbs.append(utlb)
    return coordinator, utlbs


class TestRegistration:
    def test_double_register_rejected(self):
        coordinator, utlbs = build_host(1)
        with pytest.raises(ConfigError):
            coordinator.register(utlbs[0])

    def test_pinned_accounting(self):
        coordinator, _ = build_host(2, pinned_each=15)
        assert coordinator.pinned_pages(0) == 15
        assert coordinator.pinned_pages() == 30


class TestDynamicLimit:
    def test_shrinking_limit_evicts_overflow(self):
        coordinator, utlbs = build_host(1, pinned_each=20)
        evicted = coordinator.set_limit(0, 12)
        assert evicted == 8
        assert len(utlbs[0].pool) == 12
        utlbs[0].check_invariants()

    def test_growing_limit_evicts_nothing(self):
        coordinator, utlbs = build_host(1, pinned_each=20)
        assert coordinator.set_limit(0, 100) == 0
        assert len(utlbs[0].pool) == 20

    def test_new_limit_enforced_on_future_pins(self):
        coordinator, utlbs = build_host(1, pinned_each=20)
        coordinator.set_limit(0, 10)
        utlbs[0].access_page(999)
        assert len(utlbs[0].pool) <= 10
        utlbs[0].check_invariants()

    def test_limit_none_removes_bound(self):
        coordinator, utlbs = build_host(1, pinned_each=20)
        coordinator.set_limit(0, 10)
        coordinator.set_limit(0, None)
        for page in range(100, 150):
            utlbs[0].access_page(page)
        assert len(utlbs[0].pool) == 60

    def test_bad_limit_rejected(self):
        coordinator, _ = build_host(1)
        with pytest.raises(ConfigError):
            coordinator.set_limit(0, 0)

    def test_unknown_pid_rejected(self):
        coordinator, _ = build_host(1)
        with pytest.raises(ConfigError):
            coordinator.set_limit(99, 10)


class TestReclaim:
    def test_reclaim_frees_requested_pages(self):
        coordinator, utlbs = build_host(2, pinned_each=20)
        assert coordinator.reclaim(10) == 10
        assert coordinator.pinned_pages() == 30
        for utlb in utlbs:
            utlb.check_invariants()

    def test_reclaim_prefers_biggest_pinner(self):
        coordinator, utlbs = build_host(2, pinned_each=10)
        for page in range(10, 40):
            utlbs[1].access_page(page)       # pid 1 now pins 40
        coordinator.reclaim(10)
        assert len(utlbs[1].pool) < 40
        assert len(utlbs[0].pool) == 10      # small pinner untouched

    def test_reclaimed_pages_fully_invalidated(self):
        coordinator, utlbs = build_host(1, pinned_each=10)
        coordinator.reclaim(5)
        utlb = utlbs[0]
        remaining = set(utlb.pool.policy._pool)
        for page in range(10):
            in_pool = page in remaining
            assert utlb.bitvector.test(page) == in_pool
            assert (utlb.table.lookup(page) is not None) == in_pool

    def test_held_pages_never_reclaimed(self):
        coordinator, utlbs = build_host(1, pinned_each=10)
        for page in range(8):
            utlbs[0].hold(page)
        coordinator.reclaim(2)
        for page in range(8):
            assert utlbs[0].bitvector.test(page)

    def test_reclaim_beyond_evictable_raises(self):
        coordinator, utlbs = build_host(1, pinned_each=5)
        for page in range(5):
            utlbs[0].hold(page)
        with pytest.raises(CapacityError):
            coordinator.reclaim(1)

    def test_zero_request_is_noop(self):
        coordinator, _ = build_host(1)
        assert coordinator.reclaim(0) == 0

    def test_reaccess_after_reclaim_repins(self):
        coordinator, utlbs = build_host(1, pinned_each=10)
        coordinator.reclaim(10)
        utlb = utlbs[0]
        before = utlb.stats.pages_pinned
        utlb.access_page(3)
        assert utlb.stats.pages_pinned == before + 1
        utlb.check_invariants()


class TestStats:
    def test_counters(self):
        coordinator, _ = build_host(2, pinned_each=20)
        coordinator.set_limit(0, 10)
        coordinator.reclaim(5)
        assert coordinator.stats.limit_changes == 1
        assert coordinator.stats.reclaim_calls == 1
        assert coordinator.stats.pages_reclaimed == 15
