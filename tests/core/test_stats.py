"""TranslationStats: rates, time accounting, merging."""

import pytest

from repro.core.stats import TranslationStats


class TestRates:
    def test_empty_rates_are_zero(self):
        stats = TranslationStats()
        assert stats.check_miss_rate == 0.0
        assert stats.ni_miss_rate == 0.0
        assert stats.unpin_rate == 0.0
        assert stats.avg_lookup_cost_us == 0.0

    def test_rates_divide_by_lookups(self):
        stats = TranslationStats()
        stats.lookups = 100
        stats.check_misses = 25
        stats.ni_misses = 50
        stats.pages_unpinned = 10
        assert stats.check_miss_rate == pytest.approx(0.25)
        assert stats.ni_miss_rate == pytest.approx(0.50)
        assert stats.unpin_rate == pytest.approx(0.10)

    def test_total_time_sums_components(self):
        stats = TranslationStats()
        stats.check_time_us = 1.0
        stats.pin_time_us = 2.0
        stats.unpin_time_us = 3.0
        stats.ni_hit_time_us = 4.0
        stats.ni_miss_time_us = 5.0
        stats.interrupt_time_us = 6.0
        assert stats.total_time_us == pytest.approx(21.0)

    def test_amortized_costs(self):
        stats = TranslationStats()
        stats.lookups = 10
        stats.pin_time_us = 50.0
        stats.unpin_time_us = 20.0
        assert stats.amortized_pin_cost_us == pytest.approx(5.0)
        assert stats.amortized_unpin_cost_us == pytest.approx(2.0)


class TestMerge:
    def test_merge_adds_counters(self):
        a = TranslationStats()
        b = TranslationStats()
        a.lookups, b.lookups = 10, 30
        a.ni_misses, b.ni_misses = 5, 5
        a.merge(b)
        assert a.lookups == 40
        assert a.ni_miss_rate == pytest.approx(0.25)

    def test_merged_classmethod(self):
        parts = []
        for count in (1, 2, 3):
            s = TranslationStats()
            s.lookups = count
            s.pin_time_us = float(count)
            parts.append(s)
        total = TranslationStats.merged(parts)
        assert total.lookups == 6
        assert total.pin_time_us == pytest.approx(6.0)

    def test_merge_returns_self(self):
        a = TranslationStats()
        assert a.merge(TranslationStats()) is a

    def test_merged_rate_is_lookup_weighted(self):
        """Merging must weight rates by lookups, not average them."""
        a = TranslationStats()
        a.lookups, a.ni_misses = 100, 100       # rate 1.0
        b = TranslationStats()
        b.lookups, b.ni_misses = 900, 0         # rate 0.0
        total = TranslationStats.merged([a, b])
        assert total.ni_miss_rate == pytest.approx(0.1)


class TestSnapshot:
    def test_snapshot_contains_counters_and_rates(self):
        stats = TranslationStats()
        stats.lookups = 4
        stats.check_misses = 1
        snap = stats.snapshot()
        assert snap["lookups"] == 4
        assert snap["check_miss_rate"] == pytest.approx(0.25)
        assert "avg_lookup_cost_us" in snap
