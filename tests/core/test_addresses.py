"""Address arithmetic: page splitting, two-level indices, validation."""

import pytest
from hypothesis import given, strategies as st

from repro import params
from repro.core import addresses
from repro.errors import AddressError

VA_MAX = (1 << params.VA_BITS) - 1


class TestValidation:
    def test_valid_address_returned(self):
        assert addresses.validate_vaddr(0x1234) == 0x1234

    def test_zero_is_valid(self):
        assert addresses.validate_vaddr(0) == 0

    def test_max_address_is_valid(self):
        assert addresses.validate_vaddr(VA_MAX) == VA_MAX

    def test_negative_rejected(self):
        with pytest.raises(AddressError):
            addresses.validate_vaddr(-1)

    def test_too_large_rejected(self):
        with pytest.raises(AddressError):
            addresses.validate_vaddr(1 << params.VA_BITS)

    def test_non_int_rejected(self):
        with pytest.raises(AddressError):
            addresses.validate_vaddr("0x1000")

    def test_bool_rejected(self):
        with pytest.raises(AddressError):
            addresses.validate_vaddr(True)


class TestPageArithmetic:
    def test_vpage_of_page_zero(self):
        assert addresses.vpage_of(0) == 0
        assert addresses.vpage_of(params.PAGE_SIZE - 1) == 0

    def test_vpage_of_boundary(self):
        assert addresses.vpage_of(params.PAGE_SIZE) == 1

    def test_page_offset(self):
        assert addresses.page_offset(params.PAGE_SIZE + 17) == 17

    def test_vaddr_of_page_roundtrip(self):
        va = addresses.vaddr_of_page(5, 100)
        assert addresses.vpage_of(va) == 5
        assert addresses.page_offset(va) == 100

    def test_vaddr_of_page_rejects_bad_offset(self):
        with pytest.raises(AddressError):
            addresses.vaddr_of_page(0, params.PAGE_SIZE)

    def test_vaddr_of_page_rejects_bad_page(self):
        with pytest.raises(AddressError):
            addresses.vaddr_of_page(params.NUM_VPAGES, 0)

    @given(st.integers(min_value=0, max_value=VA_MAX))
    def test_vpage_offset_recompose(self, va):
        vpage = addresses.vpage_of(va)
        offset = addresses.page_offset(va)
        assert addresses.vaddr_of_page(vpage, offset) == va


class TestPageRange:
    def test_empty_buffer_touches_nothing(self):
        assert list(addresses.page_range(0x1000, 0)) == []

    def test_single_byte(self):
        assert list(addresses.page_range(0x1000, 1)) == [1]

    def test_straddles_boundary(self):
        assert list(addresses.page_range(0x0FFF, 2)) == [0, 1]

    def test_exact_page(self):
        assert list(addresses.page_range(0x1000, params.PAGE_SIZE)) == [1]

    def test_negative_length_rejected(self):
        with pytest.raises(AddressError):
            addresses.page_range(0, -1)

    def test_overflow_end_rejected(self):
        with pytest.raises(AddressError):
            addresses.page_range(VA_MAX, 2)

    @given(st.integers(min_value=0, max_value=VA_MAX - 65536),
           st.integers(min_value=1, max_value=65536))
    def test_range_covers_first_and_last_byte(self, va, nbytes):
        pages = list(addresses.page_range(va, nbytes))
        assert pages[0] == addresses.vpage_of(va)
        assert pages[-1] == addresses.vpage_of(va + nbytes - 1)
        # Pages are consecutive.
        assert pages == list(range(pages[0], pages[-1] + 1))


class TestSplitAtPageBoundaries:
    def test_within_one_page(self):
        assert list(addresses.split_at_page_boundaries(0x100, 16)) == [
            (0x100, 16)]

    def test_crossing_split(self):
        chunks = list(addresses.split_at_page_boundaries(0x0FF0, 0x30))
        assert chunks == [(0x0FF0, 0x10), (0x1000, 0x20)]

    def test_zero_length_yields_nothing(self):
        assert list(addresses.split_at_page_boundaries(0, 0)) == []

    @given(st.integers(min_value=0, max_value=VA_MAX - 65536),
           st.integers(min_value=1, max_value=65536))
    def test_chunks_partition_the_buffer(self, va, nbytes):
        chunks = list(addresses.split_at_page_boundaries(va, nbytes))
        assert sum(length for _, length in chunks) == nbytes
        cursor = va
        for chunk_va, length in chunks:
            assert chunk_va == cursor
            # No chunk crosses a page boundary.
            assert (addresses.vpage_of(chunk_va)
                    == addresses.vpage_of(chunk_va + length - 1))
            cursor += length


class TestTwoLevelIndices:
    def test_directory_index_of_low_page(self):
        assert addresses.directory_index(0) == 0

    def test_table_index_wraps(self):
        assert addresses.table_index(params.TABLE_ENTRIES) == 0
        assert addresses.directory_index(params.TABLE_ENTRIES) == 1

    def test_recompose(self):
        vpage = 0x12345
        assert addresses.vpage_from_indices(
            addresses.directory_index(vpage),
            addresses.table_index(vpage)) == vpage

    @given(st.integers(min_value=0, max_value=params.NUM_VPAGES - 1))
    def test_indices_roundtrip(self, vpage):
        d = addresses.directory_index(vpage)
        t = addresses.table_index(vpage)
        assert 0 <= d < params.DIRECTORY_ENTRIES
        assert 0 <= t < params.TABLE_ENTRIES
        assert addresses.vpage_from_indices(d, t) == vpage

    def test_bad_indices_rejected(self):
        with pytest.raises(AddressError):
            addresses.vpage_from_indices(params.DIRECTORY_ENTRIES, 0)
        with pytest.raises(AddressError):
            addresses.vpage_from_indices(0, params.TABLE_ENTRIES)
