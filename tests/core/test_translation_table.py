"""Hierarchical and per-process translation tables."""

import pytest
from hypothesis import given, strategies as st

from repro import params
from repro.core.translation_table import (
    HierarchicalTranslationTable,
    PerProcessTranslationTable,
    TableSwappedError,
)
from repro.errors import CapacityError, TranslationError


class TestHierarchicalBasics:
    def test_lookup_missing_is_none(self):
        table = HierarchicalTranslationTable(1)
        assert table.lookup(42) is None

    def test_install_lookup(self):
        table = HierarchicalTranslationTable(1)
        table.install(42, 1000)
        assert table.lookup(42) == 1000
        assert 42 in table

    def test_invalidate_returns_frame(self):
        table = HierarchicalTranslationTable(1)
        table.install(42, 1000)
        assert table.invalidate(42) == 1000
        assert table.lookup(42) is None

    def test_invalidate_missing_raises(self):
        with pytest.raises(TranslationError):
            HierarchicalTranslationTable(1).invalidate(42)

    def test_install_bad_frame_rejected(self):
        table = HierarchicalTranslationTable(1)
        with pytest.raises(TranslationError):
            table.install(42, None)
        with pytest.raises(TranslationError):
            table.install(42, -5)

    def test_entries_counted_once_per_page(self):
        table = HierarchicalTranslationTable(1)
        table.install(42, 1)
        table.install(42, 2)        # re-install same page
        assert len(table) == 1
        assert table.lookup(42) == 2

    def test_mapped_pages_sorted(self):
        table = HierarchicalTranslationTable(1)
        for page in (9000, 5, 2048):
            table.install(page, page + 1)
        assert [p for p, _ in table.mapped_pages()] == [5, 2048, 9000]

    def test_second_level_table_reclaimed(self):
        table = HierarchicalTranslationTable(1)
        table.install(5, 1)
        assert table.second_level_tables == 1
        table.invalidate(5)
        assert table.second_level_tables == 0
        assert table.memory_bytes == 0


class TestGarbagePage:
    def test_lookup_or_garbage_falls_back(self):
        table = HierarchicalTranslationTable(1, garbage_frame=777)
        assert table.lookup_or_garbage(42) == 777

    def test_lookup_or_garbage_prefers_real_entry(self):
        table = HierarchicalTranslationTable(1, garbage_frame=777)
        table.install(42, 5)
        assert table.lookup_or_garbage(42) == 5

    def test_no_garbage_frame_raises(self):
        table = HierarchicalTranslationTable(1)
        with pytest.raises(TranslationError):
            table.lookup_or_garbage(42)


class TestReadBlock:
    def test_block_includes_invalid_entries_as_none(self):
        table = HierarchicalTranslationTable(1)
        table.install(10, 100)
        table.install(12, 120)
        block = table.read_block(10, 4)
        assert block == [(10, 100), (11, None), (12, 120), (13, None)]

    def test_block_truncated_at_table_boundary(self):
        table = HierarchicalTranslationTable(1)
        last = params.TABLE_ENTRIES - 2
        table.install(last, 1)
        block = table.read_block(last, 8)
        assert len(block) == 2          # only 2 entries left in this table
        assert block[0] == (last, 1)

    def test_zero_block_rejected(self):
        with pytest.raises(TranslationError):
            HierarchicalTranslationTable(1).read_block(0, 0)


class TestTableSwapping:
    def test_swap_out_and_lookup_raises(self):
        table = HierarchicalTranslationTable(1)
        table.install(5, 1)
        block = table.swap_out_table(0)
        with pytest.raises(TableSwappedError) as exc:
            table.lookup(5)
        assert exc.value.disk_block == block
        assert not table.is_table_resident(0)

    def test_swap_in_restores_entries(self):
        table = HierarchicalTranslationTable(1)
        table.install(5, 99)
        table.swap_out_table(0)
        table.swap_in_table(0)
        assert table.lookup(5) == 99

    def test_install_into_swapped_table_raises(self):
        table = HierarchicalTranslationTable(1)
        table.install(5, 1)
        table.swap_out_table(0)
        with pytest.raises(TableSwappedError):
            table.install(6, 2)

    def test_double_swap_out_raises(self):
        table = HierarchicalTranslationTable(1)
        table.swap_out_table(3)
        with pytest.raises(TranslationError):
            table.swap_out_table(3)

    def test_swap_in_unswapped_raises(self):
        with pytest.raises(TranslationError):
            HierarchicalTranslationTable(1).swap_in_table(3)

    def test_contains_sees_swapped_entries(self):
        table = HierarchicalTranslationTable(1)
        table.install(5, 1)
        table.swap_out_table(0)
        assert 5 in table


class TestPerProcessTable:
    def test_install_read(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        table.install(3, 42, 1000)
        assert table.read_slot(3) == 1000
        assert table.used_slots == 1

    def test_free_slot_reads_garbage(self):
        table = PerProcessTranslationTable(1, num_slots=16, garbage_frame=9)
        assert table.read_slot(5) == 9

    def test_free_slot_without_garbage_raises(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        with pytest.raises(TranslationError):
            table.read_slot(5)

    def test_out_of_range_slot_rejected(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        with pytest.raises(TranslationError):
            table.read_slot(16)
        with pytest.raises(TranslationError):
            table.install(-1, 0, 0)

    def test_double_install_rejected(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        table.install(3, 42, 1000)
        with pytest.raises(TranslationError):
            table.install(3, 43, 1001)

    def test_free_returns_entry(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        table.install(3, 42, 1000)
        assert table.free(3) == (42, 1000)
        assert table.free_slots == 16

    def test_free_empty_slot_raises(self):
        with pytest.raises(TranslationError):
            PerProcessTranslationTable(1, num_slots=16).free(3)

    def test_find_free_slots(self):
        table = PerProcessTranslationTable(1, num_slots=8)
        table.install(0, 1, 1)
        table.install(2, 2, 2)
        assert table.find_free_slots(3) == [1, 3, 4]

    def test_find_free_slots_exhausted(self):
        table = PerProcessTranslationTable(1, num_slots=2)
        table.install(0, 1, 1)
        table.install(1, 2, 2)
        with pytest.raises(CapacityError):
            table.find_free_slots(1)


class TestFragmentation:
    def test_empty_table_unfragmented(self):
        assert PerProcessTranslationTable(1, num_slots=16).fragmentation() == 0.0

    def test_contiguous_use_unfragmented(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        for slot in range(4):
            table.install(slot, slot, slot)
        assert table.fragmentation() == 0.0

    def test_scattered_use_fragments(self):
        table = PerProcessTranslationTable(1, num_slots=16)
        for slot in (0, 4, 8, 12):
            table.install(slot, slot, slot)
        assert table.fragmentation() > 0.0


class TestHierarchicalProperties:
    @given(st.dictionaries(
        st.integers(min_value=0, max_value=params.NUM_VPAGES - 1),
        st.integers(min_value=1, max_value=1 << 20),
        max_size=100))
    def test_table_matches_reference_dict(self, mapping):
        table = HierarchicalTranslationTable(1)
        for vpage, frame in mapping.items():
            table.install(vpage, frame)
        assert dict(table.mapped_pages()) == mapping
        assert len(table) == len(mapping)
        for vpage, frame in mapping.items():
            assert table.lookup(vpage) == frame
