"""Hierarchical-UTLB: the mechanism the paper evaluates (Section 3.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError

from tests.conftest import make_utlb


class TestFastPath:
    def test_first_access_is_check_and_ni_miss(self, utlb):
        utlb.access_page(10)
        assert utlb.stats.check_misses == 1
        assert utlb.stats.ni_misses == 1
        assert utlb.stats.pages_pinned == 1

    def test_second_access_hits_everywhere(self, utlb):
        frame1 = utlb.access_page(10)
        frame2 = utlb.access_page(10)
        assert frame1 == frame2
        assert utlb.stats.check_misses == 1
        assert utlb.stats.ni_misses == 1
        assert utlb.stats.ni_hits == 1

    def test_no_syscall_no_interrupt_on_hit_path(self, utlb):
        """The headline claim: the common path has no OS involvement."""
        utlb.access_page(10)
        pins_before = utlb.stats.pin_calls
        for _ in range(100):
            utlb.access_page(10)
        assert utlb.stats.pin_calls == pins_before
        assert utlb.stats.unpin_calls == 0
        assert utlb.stats.interrupts == 0

    def test_translation_survives_cache_eviction(self):
        """Unlike the interrupt-based baseline, UTLB keeps translations
        alive in host memory after NIC-cache eviction: re-access is an NI
        miss but NOT a check miss, and causes no pin/unpin."""
        utlb = make_utlb(cache_entries=2)
        for page in (0, 1, 2):      # page 0 evicted from the 2-entry cache
            utlb.access_page(page)
        pins = utlb.stats.pages_pinned
        utlb.access_page(0)
        assert utlb.stats.check_misses == 3
        assert utlb.stats.ni_misses == 4
        assert utlb.stats.pages_pinned == pins
        assert utlb.stats.pages_unpinned == 0


class TestCostAccounting:
    def test_measured_time_matches_cost_equation(self):
        """The simulator's accumulated time equals the Section 6.2
        equation applied to its own rates — the Table 6 cross-check."""
        utlb = make_utlb(cache_entries=8)
        rng = random.Random(0)
        for _ in range(500):
            utlb.access_page(rng.randrange(30))
        s = utlb.stats
        expected = s.lookups * utlb.cost_model.utlb_lookup_cost(
            s.check_miss_rate, s.ni_miss_rate, s.unpin_rate)
        assert s.total_time_us == pytest.approx(expected, rel=1e-9)


class TestMemoryLimit:
    def test_limit_enforced(self):
        utlb = make_utlb(memory_limit_pages=4)
        for page in range(10):
            utlb.access_page(page)
        assert len(utlb.pool) <= 4
        assert utlb.stats.pages_unpinned == 6
        utlb.check_invariants()

    def test_lru_evicts_oldest(self):
        utlb = make_utlb(memory_limit_pages=2, pin_policy="lru")
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(2)          # evicts 0
        assert not utlb.bitvector.test(0)
        assert utlb.bitvector.test(1)
        assert utlb.bitvector.test(2)

    def test_unpinned_page_invalidated_everywhere(self):
        utlb = make_utlb(memory_limit_pages=1)
        utlb.access_page(0)
        utlb.access_page(1)
        assert utlb.table.lookup(0) is None
        assert (utlb.pid, 0) not in utlb.cache
        assert 0 not in utlb.pool

    def test_reaccess_after_unpin_is_check_miss(self):
        utlb = make_utlb(memory_limit_pages=1)
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(0)
        assert utlb.stats.check_misses == 3

    def test_held_pages_survive_pressure(self):
        utlb = make_utlb(memory_limit_pages=2)
        utlb.access_page(0)
        utlb.hold(0)
        utlb.access_page(1)
        utlb.access_page(2)          # must evict 1, not held 0
        assert utlb.bitvector.test(0)
        assert not utlb.bitvector.test(1)
        utlb.release(0)


class TestPrepinning:
    def test_prepin_pins_contiguous_pages(self):
        utlb = make_utlb(prepin=4)
        utlb.access_page(10)
        assert utlb.stats.pages_pinned == 4
        assert utlb.stats.pin_calls == 1
        for page in (10, 11, 12, 13):
            assert utlb.bitvector.test(page)

    def test_prepin_skips_already_pinned(self):
        utlb = make_utlb(prepin=4)
        utlb.access_page(11)                 # pins 11..14
        utlb.access_page(10)                 # pins only 10
        assert utlb.stats.pages_pinned == 5

    def test_prepinned_pages_are_check_hits(self):
        utlb = make_utlb(prepin=4)
        utlb.access_page(10)
        utlb.access_page(11)
        assert utlb.stats.check_misses == 1

    def test_prepin_capped_by_limit(self):
        utlb = make_utlb(prepin=8, memory_limit_pages=4)
        utlb.access_page(10)
        assert utlb.stats.pages_pinned == 4
        utlb.check_invariants()

    def test_prepin_cheaper_per_page(self, cost_model):
        """The amortization argument of Section 6.5 on a sequential scan."""
        def pin_time(prepin):
            utlb = make_utlb(prepin=prepin)
            for page in range(64):
                utlb.access_page(page)
            return utlb.stats.pin_time_us

        assert pin_time(16) < pin_time(1)


class TestPrefetch:
    def test_prefetch_fills_neighbours(self):
        utlb = make_utlb(prefetch=4, prepin=4)
        utlb.access_page(10)
        for page in (11, 12, 13):
            assert (utlb.pid, page) in utlb.cache
        # Accessing the prefetched pages causes no further NI misses.
        for page in (11, 12, 13):
            utlb.access_page(page)
        assert utlb.stats.ni_misses == 1

    def test_prefetch_reduces_misses_on_sequential_scan(self):
        def misses(prefetch):
            utlb = make_utlb(cache_entries=256, prefetch=prefetch,
                             prepin=prefetch)
            for page in range(128):
                utlb.access_page(page)
            return utlb.stats.ni_misses

        assert misses(8) < misses(1)

    def test_prefetch_only_valid_entries(self):
        """Prefetch must not install translations for unpinned pages."""
        utlb = make_utlb(prefetch=8, prepin=1)
        utlb.access_page(10)         # only page 10 pinned
        assert (utlb.pid, 11) not in utlb.cache

    def test_entries_fetched_counted(self):
        utlb = make_utlb(prefetch=8, prepin=1)
        utlb.access_page(10)
        assert utlb.stats.entries_fetched == 8


class TestBufferTranslation:
    def test_translate_buffer_yields_chunks(self, utlb):
        chunks = list(utlb.translate_buffer(0x0FF0, 0x30))
        assert len(chunks) == 2
        assert chunks[0][1:] == (0x0FF0, 0x10)
        assert chunks[1][1:] == (0x0, 0x20)
        assert utlb.stats.lookups == 2

    def test_ensure_pinned_no_lookup_stats(self, utlb):
        newly = utlb.ensure_pinned(0x10000, 3 * 4096)
        assert len(newly) == 3
        assert utlb.stats.lookups == 0
        assert utlb.stats.check_misses == 0
        assert utlb.stats.pages_pinned == 3

    def test_ensure_pinned_idempotent(self, utlb):
        utlb.ensure_pinned(0x10000, 4096)
        assert utlb.ensure_pinned(0x10000, 4096) == []
        assert utlb.stats.pin_calls == 1


class TestConfigValidation:
    def test_bad_prepin_rejected(self):
        with pytest.raises(ConfigError):
            make_utlb(prepin=0)

    def test_bad_prefetch_rejected(self):
        with pytest.raises(ConfigError):
            make_utlb(prefetch=0)


class TestTeardown:
    def test_unpin_all_releases_everything(self):
        utlb = make_utlb()
        for page in range(10):
            utlb.access_page(page)
        utlb.unpin_all()
        assert utlb.bitvector.count == 0
        assert len(utlb.table) == 0
        assert len(utlb.pool) == 0
        utlb.check_invariants()


class TestInvariantsUnderRandomWorkload:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=60),
                    min_size=1, max_size=300),
           st.sampled_from(["lru", "mru", "lfu", "mfu", "random"]),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=8))
    def test_invariants_hold(self, accesses, policy, prepin, prefetch):
        utlb = make_utlb(cache_entries=16, memory_limit_pages=16,
                         pin_policy=policy, prepin=prepin, prefetch=prefetch)
        for page in accesses:
            utlb.access_page(page)
        assert utlb.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=200))
    def test_frames_stable_across_cache_evictions(self, accesses):
        """A page's frame never changes while it stays pinned, no matter
        what the NIC cache does."""
        utlb = make_utlb(cache_entries=4)
        frames = {}
        for page in accesses:
            frame = utlb.access_page(page)
            if page in frames:
                assert frames[page] == frame
            frames[page] = frame
