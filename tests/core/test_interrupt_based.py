"""The interrupt-based baseline: pinned set == cached set, interrupts on
every miss, unpin on every eviction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interrupt_based import InterruptBasedNode
from repro.core.shared_cache import SharedUtlbCache
from repro.errors import ConfigError


def make_node(num_entries=8, **cache_kwargs):
    cache = SharedUtlbCache(num_entries=num_entries, **cache_kwargs)
    return InterruptBasedNode(cache)


class TestBasics:
    def test_miss_interrupts_and_pins(self):
        node = make_node()
        node.register_process(1)
        node.access_page(1, 10)
        stats = node.stats_for(1)
        assert stats.ni_misses == 1
        assert stats.interrupts == 1
        assert stats.pages_pinned == 1

    def test_hit_does_not_interrupt(self):
        node = make_node()
        node.register_process(1)
        node.access_page(1, 10)
        node.access_page(1, 10)
        stats = node.stats_for(1)
        assert stats.ni_hits == 1
        assert stats.interrupts == 1

    def test_every_miss_interrupts(self):
        """Unlike UTLB, there is no user-level filter: each NIC miss costs
        an interrupt."""
        node = make_node(num_entries=2)
        node.register_process(1)
        for page in (0, 1, 2, 0):     # page 0 evicted, then re-missed
            node.access_page(1, page)
        stats = node.stats_for(1)
        assert stats.interrupts == stats.ni_misses == 4

    def test_unregistered_pid_rejected(self):
        node = make_node()
        with pytest.raises(ConfigError):
            node.access_page(9, 0)

    def test_double_register_rejected(self):
        node = make_node()
        node.register_process(1)
        with pytest.raises(ConfigError):
            node.register_process(1)


class TestEvictionUnpins:
    def test_cache_eviction_unpins_page(self):
        node = make_node(num_entries=2, max_processes=1)
        node.register_process(1)
        node.access_page(1, 0)
        node.access_page(1, 1)
        node.access_page(1, 2)      # evicts one entry -> unpin
        stats = node.stats_for(1)
        assert stats.pages_unpinned == 1
        node.check_invariants()

    def test_cross_process_eviction_charges_owner(self):
        """A fill by process A may evict (and unpin) process B's page."""
        cache = SharedUtlbCache(num_entries=2, offsetting=False,
                                max_processes=4)
        node = InterruptBasedNode(cache)
        node.register_process(1)
        node.register_process(2)
        node.access_page(1, 0)
        node.access_page(1, 1)
        node.access_page(2, 0)      # same set as pid 1's page 0 (nohash)
        assert (node.stats_for(1).pages_unpinned
                + node.stats_for(2).pages_unpinned) == 1
        node.check_invariants()

    def test_kernel_rates_charged(self):
        """Pin/unpin in the interrupt handler run at kernel rates."""
        node = make_node(num_entries=1, max_processes=1)
        node.register_process(1)
        node.access_page(1, 0)
        node.access_page(1, 1)      # miss: pin 1, evict+unpin 0
        stats = node.stats_for(1)
        cm = node.cost_model
        assert stats.pin_time_us == pytest.approx(2 * cm.kernel_pin_cost(1))
        assert stats.unpin_time_us == pytest.approx(cm.kernel_unpin_cost(1))
        assert stats.interrupt_time_us == pytest.approx(
            2 * cm.interrupt_cost)


class TestMemoryLimit:
    def test_limit_enforced(self):
        node = make_node(num_entries=64)
        node.register_process(1, memory_limit_pages=4)
        for page in range(10):
            node.access_page(1, page)
        node.check_invariants()
        assert len(node._processes[1].pinned) <= 4

    def test_limit_forces_cache_invalidation(self):
        node = make_node(num_entries=64)
        node.register_process(1, memory_limit_pages=2)
        for page in range(4):
            node.access_page(1, page)
        # Pages evicted for the limit must leave the cache too.
        cached = {v for v, _ in node.cache.entries_for(1)}
        assert cached == set(node._processes[1].pinned)

    def test_bad_limit_rejected(self):
        node = make_node()
        with pytest.raises(ConfigError):
            node.register_process(1, memory_limit_pages=0)


class TestCostEquation:
    def test_measured_time_matches_intr_equation(self):
        node = make_node(num_entries=16, max_processes=1)
        node.register_process(1)
        rng = random.Random(0)
        for _ in range(500):
            node.access_page(1, rng.randrange(40))
        s = node.stats_for(1)
        expected = s.lookups * node.cost_model.intr_lookup_cost(
            s.ni_miss_rate, s.unpin_rate)
        assert s.total_time_us == pytest.approx(expected, rel=1e-9)


class TestInvariantUnderRandomWorkload:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                              st.integers(min_value=0, max_value=50)),
                    min_size=1, max_size=300),
           st.integers(min_value=4, max_value=32))
    def test_pinned_equals_cached(self, accesses, entries):
        cache = SharedUtlbCache(num_entries=entries, max_processes=4)
        node = InterruptBasedNode(cache)
        for pid in (1, 2, 3):
            node.register_process(pid, memory_limit_pages=16)
        for pid, page in accesses:
            node.access_page(pid, page)
        assert node.check_invariants()
