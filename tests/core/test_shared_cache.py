"""The Shared UTLB-Cache: tags, offsetting, prefetch fills, invalidation."""

import pytest

from repro.core.shared_cache import SharedUtlbCache
from repro.errors import CapacityError


def make_cache(**kwargs):
    kwargs.setdefault("num_entries", 64)
    cache = SharedUtlbCache(**kwargs)
    cache.register_process(1)
    return cache


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        hit, _ = cache.lookup(1, 5)
        assert not hit
        cache.fill(1, 5, 500)
        hit, frame = cache.lookup(1, 5)
        assert hit and frame == 500

    def test_processes_do_not_alias(self):
        cache = make_cache()
        cache.register_process(2)
        cache.fill(1, 5, 500)
        hit, _ = cache.lookup(2, 5)
        assert not hit

    def test_unregistered_process_rejected(self):
        cache = make_cache()
        with pytest.raises(CapacityError):
            cache.lookup(99, 5)

    def test_register_idempotent(self):
        cache = make_cache()
        assert cache.register_process(1) == cache.register_process(1)

    def test_process_tag_space_limited(self):
        cache = make_cache(max_processes=2)
        cache.register_process(2)
        with pytest.raises(CapacityError):
            cache.register_process(3)

    def test_stats_counted(self):
        cache = make_cache()
        cache.lookup(1, 5)
        cache.fill(1, 5, 500)
        cache.lookup(1, 5)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


class TestOffsetting:
    def test_offsets_spread_processes(self):
        cache = make_cache(num_entries=64, offsetting=True, max_processes=4)
        cache.register_process(2)
        # Same vpage from different processes lands in different sets.
        set1 = cache._cache.set_index((1, 10))
        set2 = cache._cache.set_index((2, 10))
        assert set1 != set2

    def test_nohash_collides_across_processes(self):
        cache = make_cache(num_entries=64, offsetting=False)
        cache.register_process(2)
        assert (cache._cache.set_index((1, 10))
                == cache._cache.set_index((2, 10)))

    def test_nohash_direct_mapped_thrashes(self):
        """Two processes ping-ponging the same vpage: offsetting keeps
        both resident; nohash evicts on every access — the Table 8
        'direct-nohash' effect in miniature."""
        def misses(offsetting):
            cache = SharedUtlbCache(num_entries=64, offsetting=offsetting,
                                    max_processes=4)
            cache.register_process(1)
            cache.register_process(2)
            for _ in range(50):
                for pid in (1, 2):
                    hit, _ = cache.lookup(pid, 10)
                    if not hit:
                        cache.fill(pid, 10, 1)
            return cache.stats.misses

        assert misses(True) == 2            # compulsory only
        assert misses(False) == 100         # every access misses


class TestPrefetchFill:
    def test_fill_block_skips_invalid(self):
        cache = make_cache()
        cache.fill_block(1, [(10, 100), (11, None), (12, 120)])
        assert (1, 10) in cache
        assert (1, 11) not in cache
        assert (1, 12) in cache

    def test_fill_block_returns_evicted(self):
        cache = make_cache(num_entries=2, max_processes=1)
        cache.fill(1, 0, 1)
        cache.fill(1, 1, 2)
        evicted = cache.fill_block(1, [(2, 3), (3, 4)])
        assert len(evicted) == 2

    def test_prefetched_entries_hit_later(self):
        cache = make_cache()
        cache.fill_block(1, [(10, 100), (11, 110), (12, 120), (13, 130)])
        for vpage in (11, 12, 13):
            hit, frame = cache.lookup(1, vpage)
            assert hit and frame == vpage * 10


class TestInvalidation:
    def test_invalidate_single(self):
        cache = make_cache()
        cache.fill(1, 5, 500)
        assert cache.invalidate(1, 5)
        hit, _ = cache.lookup(1, 5)
        assert not hit

    def test_invalidate_absent_returns_false(self):
        assert not make_cache().invalidate(1, 5)

    def test_invalidate_process_drops_only_theirs(self):
        cache = make_cache()
        cache.register_process(2)
        cache.fill(1, 5, 500)
        cache.fill(1, 6, 600)
        cache.fill(2, 5, 700)
        assert cache.invalidate_process(1) == 2
        assert (2, 5) in cache
        assert len(cache) == 1


class TestClassifierIntegration:
    def test_classifier_attached_when_requested(self):
        cache = make_cache(classify=True)
        cache.lookup(1, 5)
        cache.fill(1, 5, 500)
        cache.lookup(1, 5)
        assert cache.classifier.breakdown.compulsory == 1
        assert cache.classifier.breakdown.accesses == 2

    def test_invalidated_reaccess_is_not_compulsory(self):
        cache = make_cache(classify=True, num_entries=64)
        cache.lookup(1, 5)
        cache.fill(1, 5, 500)
        cache.invalidate(1, 5)
        cache.lookup(1, 5)
        b = cache.classifier.breakdown
        assert b.compulsory == 1
        assert b.total_misses == 2


class TestGeometry:
    def test_entries_for_process(self):
        cache = make_cache()
        cache.fill(1, 5, 500)
        cache.fill(1, 9, 900)
        assert sorted(cache.entries_for(1)) == [(5, 500), (9, 900)]

    def test_sram_accounting(self):
        cache = make_cache(num_entries=8192)
        assert cache.sram_bytes() == 32 * 1024     # the paper's 32 KB

    def test_associativity_exposed(self):
        cache = make_cache(num_entries=64, associativity=4)
        assert cache.associativity == 4
        assert cache.num_sets == 16
