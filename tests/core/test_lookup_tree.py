"""The two-level user-level lookup tree (per-process UTLB, Section 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro import params
from repro.core.lookup_tree import TwoLevelLookupTree
from repro.errors import TranslationError


class TestBasics:
    def test_missing_page_returns_none(self):
        tree = TwoLevelLookupTree()
        assert tree.lookup(42) is None

    def test_install_and_lookup(self):
        tree = TwoLevelLookupTree()
        tree.install(42, 7)
        assert tree.lookup(42) == 7

    def test_install_overwrites(self):
        tree = TwoLevelLookupTree()
        tree.install(42, 7)
        tree.install(42, 9)
        assert tree.lookup(42) == 9
        assert len(tree) == 1

    def test_remove_returns_index(self):
        tree = TwoLevelLookupTree()
        tree.install(42, 7)
        assert tree.remove(42) == 7
        assert tree.lookup(42) is None
        assert len(tree) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(TranslationError):
            TwoLevelLookupTree().remove(42)

    def test_invalid_index_rejected(self):
        tree = TwoLevelLookupTree()
        with pytest.raises(TranslationError):
            tree.install(42, None)
        with pytest.raises(TranslationError):
            tree.install(42, -1)

    def test_contains(self):
        tree = TwoLevelLookupTree()
        tree.install(5, 1)
        assert 5 in tree
        assert 6 not in tree


class TestTwoLevelStructure:
    def test_lookup_costs_two_references(self):
        tree = TwoLevelLookupTree()
        tree.install(1, 1)
        before = tree.memory_references
        tree.lookup(1)
        tree.lookup(999999)     # miss also costs two references
        assert tree.memory_references == before + 4

    def test_pages_in_same_table_share_a_second_level(self):
        tree = TwoLevelLookupTree()
        tree.install(0, 1)
        tree.install(params.TABLE_ENTRIES - 1, 2)
        assert tree.second_level_tables == 1
        tree.install(params.TABLE_ENTRIES, 3)
        assert tree.second_level_tables == 2

    def test_second_level_freed_when_empty(self):
        tree = TwoLevelLookupTree()
        tree.install(0, 1)
        tree.remove(0)
        assert tree.second_level_tables == 0

    def test_memory_footprint_grows_with_tables(self):
        tree = TwoLevelLookupTree()
        base = tree.memory_bytes
        tree.install(0, 1)
        assert tree.memory_bytes > base

    def test_items_sorted_by_vpage(self):
        tree = TwoLevelLookupTree()
        pages = [5000, 3, 1024, 70000]
        for index, page in enumerate(pages):
            tree.install(page, index)
        assert [page for page, _ in tree.items()] == sorted(pages)


class TestProperties:
    @given(st.dictionaries(
        st.integers(min_value=0, max_value=params.NUM_VPAGES - 1),
        st.integers(min_value=0, max_value=8191),
        max_size=200))
    def test_tree_matches_reference_dict(self, mapping):
        tree = TwoLevelLookupTree()
        for vpage, index in mapping.items():
            tree.install(vpage, index)
        assert len(tree) == len(mapping)
        for vpage, index in mapping.items():
            assert tree.lookup(vpage) == index
        assert dict(tree.items()) == mapping

    @given(st.lists(st.integers(min_value=0, max_value=5000),
                    unique=True, max_size=100))
    def test_install_remove_all_leaves_empty(self, pages):
        tree = TwoLevelLookupTree()
        for page in pages:
            tree.install(page, page % 100)
        for page in pages:
            tree.remove(page)
        assert len(tree) == 0
        assert tree.second_level_tables == 0
