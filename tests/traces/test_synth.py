"""Synthetic SPLASH-2-like generators: Table 3 fidelity and structure."""

import pytest

from repro import params
from repro.errors import ConfigError
from repro.traces.record import count_lookups, footprint_pages
from repro.traces.merge import split_by_pid
from repro.traces.synth import APPS, TABLE_ORDER, all_apps, make_app


class TestRegistry:
    def test_seven_applications(self):
        assert len(APPS) == 7
        assert set(TABLE_ORDER) == set(APPS)

    def test_make_app_by_name(self):
        assert make_app("fft").name == "fft"

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            make_app("cholesky")

    def test_categories_match_paper(self):
        """Section 6.5: FFT and LU are regular, the rest irregular."""
        for app in all_apps():
            expected = "regular" if app.name in ("fft", "lu") else "irregular"
            assert app.category == expected


@pytest.mark.parametrize("name", sorted(APPS))
class TestTable3Fidelity:
    def test_footprint_within_two_percent(self, name):
        app = make_app(name)
        trace = app.generate_node(0, seed=1)
        achieved = footprint_pages(trace)
        assert abs(achieved - app.footprint_pages) <= \
            0.02 * app.footprint_pages

    def test_lookups_within_one_percent(self, name):
        app = make_app(name)
        trace = app.generate_node(0, seed=1)
        achieved = count_lookups(trace)
        assert abs(achieved - app.lookups) <= 0.01 * app.lookups


@pytest.mark.parametrize("name", sorted(APPS))
class TestStructure:
    def test_deterministic_under_seed(self, name):
        app = make_app(name)
        a = app.generate_node(0, seed=5, scale=0.1)
        b = app.generate_node(0, seed=5, scale=0.1)
        assert a == b

    def test_seed_changes_trace(self, name):
        app = make_app(name)
        a = app.generate_node(0, seed=5, scale=0.1)
        b = app.generate_node(0, seed=6, scale=0.1)
        assert a != b

    def test_timestamps_sorted(self, name):
        trace = make_app(name).generate_node(0, seed=1, scale=0.1)
        assert all(trace[i].timestamp <= trace[i + 1].timestamp
                   for i in range(len(trace) - 1))

    def test_five_processes_per_node(self, name):
        trace = make_app(name).generate_node(0, seed=1, scale=0.1)
        assert len(split_by_pid(trace)) == params.TRACE_PROCESSES_PER_NODE

    def test_page_sized_sends(self, name):
        """SVM moves one 4 KB page per request."""
        trace = make_app(name).generate_node(0, seed=1, scale=0.1)
        assert all(r.nbytes == params.PAGE_SIZE for r in trace)
        assert all(r.op == "send" for r in trace)

    def test_cluster_generation_distinct_nodes(self, name):
        traces = make_app(name).generate_cluster(nodes=2, seed=1, scale=0.1)
        assert set(traces) == {0, 1}
        pids0 = set(split_by_pid(traces[0]))
        pids1 = set(split_by_pid(traces[1]))
        assert not pids0 & pids1        # cluster-unique pids

    def test_scale_shrinks_trace(self, name):
        app = make_app(name)
        small = count_lookups(app.generate_node(0, seed=1, scale=0.1))
        full = app.lookups
        assert small < full * 0.2

    def test_nonpositive_scale_rejected(self, name):
        with pytest.raises(ConfigError):
            make_app(name).generate_node(0, seed=1, scale=0)

    def test_tiny_scale_clamped_to_minimum(self, name):
        trace = make_app(name).generate_node(0, seed=1, scale=1e-6)
        assert footprint_pages(trace) >= 32


@pytest.mark.parametrize("name", sorted(APPS))
class TestStreamingProtocol:
    """The streaming record protocol: lazy generation must be invisible."""

    def test_iter_node_matches_generate_node(self, name):
        app = make_app(name)
        assert list(app.iter_node(0, seed=2, scale=0.1)) == \
            app.generate_node(0, seed=2, scale=0.1)

    def test_streaming_node_is_reiterable(self, name):
        source = make_app(name).streaming_node(0, seed=2, scale=0.1)
        assert list(source) == list(source)

    def test_streaming_node_pickles(self, name):
        import pickle
        source = make_app(name).streaming_node(0, seed=2, scale=0.1)
        clone = pickle.loads(pickle.dumps(source))
        assert list(clone) == list(source)

    def test_streaming_cluster_matches_eager_cluster(self, name):
        app = make_app(name)
        eager = app.generate_cluster(nodes=2, seed=1, scale=0.1)
        streaming = app.streaming_cluster(nodes=2, seed=1, scale=0.1)
        assert set(streaming) == set(eager)
        for node in eager:
            assert list(streaming[node]) == eager[node]


class TestSharedLayout:
    def test_all_processes_use_common_base(self):
        """Every process maps its region at DATA_BASE — the SPMD layout
        that makes no-offset caches collide across processes."""
        from repro.traces.synth import DATA_BASE
        trace = make_app("barnes").generate_node(0, seed=1, scale=0.1)
        for pid, records in split_by_pid(trace).items():
            assert min(r.vaddr for r in records) >= DATA_BASE


class TestPatternShape:
    def test_fft_is_strided(self):
        """FFT's transpose phases access pages with a large stride: the
        pattern that defeats 16-page pre-pinning."""
        from repro.traces.synth.fft import FftApp
        import random
        pages = list(FftApp()._pattern(random.Random(0), 400, 1600))
        sweep = pages[:400]
        assert sweep == sorted(sweep)            # row-major first pass
        transpose = pages[400:460]
        deltas = [abs(b - a) for a, b in zip(transpose, transpose[1:])]
        assert max(deltas) >= 15                 # strided jumps

    def test_lu_pairs_touches(self):
        from repro.traces.synth.lu import LuApp
        import random
        pages = list(LuApp()._pattern(random.Random(0), 64, 128))
        # Every page appears exactly twice per pass (fetch + update).
        assert pages.count(pages[0]) == 2

    def test_barnes_has_hot_working_set(self):
        from repro.traces.synth.barnes import BarnesApp
        import random
        pages = list(BarnesApp()._pattern(random.Random(0), 400, 6400))
        steady = pages[400:]
        hot = [p for p in steady if p < 40]      # footprint // 10
        assert len(hot) > len(steady) * 0.8
