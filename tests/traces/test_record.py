"""Trace records: validation, page counting, footprint."""

import pytest

from repro import params
from repro.errors import TraceError
from repro.traces.record import (
    OP_SEND,
    TraceRecord,
    count_lookups,
    footprint_pages,
)


def rec(vaddr=0x1000, nbytes=params.PAGE_SIZE, pid=1, ts=0, op=OP_SEND):
    return TraceRecord(ts, 0, pid, op, vaddr, nbytes)


class TestValidation:
    def test_valid_record(self):
        record = rec()
        assert record.num_pages == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(TraceError):
            rec(op="recv")

    def test_nonpositive_length_rejected(self):
        with pytest.raises(TraceError):
            rec(nbytes=0)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(TraceError):
            rec(ts=-1)

    def test_buffer_overflowing_address_space_rejected(self):
        with pytest.raises(Exception):
            rec(vaddr=(1 << params.VA_BITS) - 10, nbytes=100)


class TestPages:
    def test_page_split(self):
        record = rec(vaddr=0x0FFF, nbytes=2)
        assert list(record.pages()) == [0, 1]

    def test_equality_and_hash(self):
        assert rec() == rec()
        assert hash(rec()) == hash(rec())
        assert rec() != rec(vaddr=0x2000)


class TestAggregates:
    def test_count_lookups_sums_pages(self):
        records = [rec(), rec(nbytes=2 * params.PAGE_SIZE)]
        assert count_lookups(records) == 3

    def test_footprint_distinct_per_pid(self):
        records = [rec(pid=1), rec(pid=1), rec(pid=2)]
        assert footprint_pages(records) == 2

    def test_footprint_counts_pages_not_records(self):
        records = [rec(vaddr=0, nbytes=3 * params.PAGE_SIZE)]
        assert footprint_pages(records) == 3
