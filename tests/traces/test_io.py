"""Trace serialization: text and binary round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import params
from repro.errors import TraceError
from repro.traces.io import read_binary, read_text, write_binary, write_text
from repro.traces.record import OP_FETCH, OP_SEND, TraceRecord

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=31),
        st.sampled_from([OP_SEND, OP_FETCH]),
        st.integers(min_value=0, max_value=(1 << 31)).map(
            lambda v: v & ~params.PAGE_OFFSET_MASK),
        st.integers(min_value=1, max_value=4 * params.PAGE_SIZE)),
    max_size=50)


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = [TraceRecord(10, 0, 1, OP_SEND, 0x1000, 4096),
                   TraceRecord(20, 1, 2, OP_FETCH, 0x2000, 100)]
        assert write_text(path, records) == 2
        assert list(read_text(path)) == records

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n\n10 0 1 send 0x1000 4096\n")
        assert len(list(read_text(path))) == 1

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("10 0 1 send\n")
        with pytest.raises(TraceError, match=":1"):
            list(read_text(path))

    def test_bad_field_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("10 0 1 send zzz 4096\n")
        with pytest.raises(TraceError):
            list(read_text(path))

    @settings(max_examples=20, deadline=None)
    @given(records=records_strategy)
    def test_roundtrip_property(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("t") / "trace.txt"
        write_text(path, records)
        assert list(read_text(path)) == records


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.bin"
        records = [TraceRecord(10, 0, 1, OP_SEND, 0x1000, 4096),
                   TraceRecord(20, 1, 2, OP_FETCH, 0x2000, 100)]
        assert write_binary(path, records) == 2
        assert list(read_binary(path)) == records

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(b"XXXX" + bytes(12))
        with pytest.raises(TraceError, match="magic"):
            list(read_binary(path))

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_binary(path, [TraceRecord(10, 0, 1, OP_SEND, 0x1000, 4096)])
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(TraceError, match="truncated"):
            list(read_binary(path))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_binary(path, [])
        assert list(read_binary(path)) == []

    @settings(max_examples=20, deadline=None)
    @given(records=records_strategy)
    def test_roundtrip_property(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("t") / "trace.bin"
        write_binary(path, records)
        assert list(read_binary(path)) == records
