"""Mixed multiprogramming workloads (the paper's limitation #1)."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate_node
from repro.traces.merge import split_by_pid
from repro.traces.record import count_lookups
from repro.traces.synth import MixedWorkload, make_app


class TestGeneration:
    def test_two_apps_ten_processes(self):
        mix = MixedWorkload(["barnes", "fft"], scale=0.05)
        trace = mix.generate_node(0, seed=1)
        assert len(split_by_pid(trace)) == 10

    def test_pids_unique_across_apps(self):
        mix = MixedWorkload(["barnes", "barnes"], scale=0.05)
        trace = mix.generate_node(0, seed=1)
        assert len(split_by_pid(trace)) == 10

    def test_lookups_sum_of_constituents(self):
        mix = MixedWorkload(["volrend", "water-spatial"], scale=0.05)
        trace = mix.generate_node(0, seed=1)
        separate = sum(
            count_lookups(make_app(name).generate_node(
                0, seed=1 * 131 + index, scale=0.05))
            for index, name in enumerate(["volrend", "water-spatial"]))
        assert count_lookups(trace) == separate

    def test_timestamp_sorted(self):
        mix = MixedWorkload(["radix", "volrend"], scale=0.05)
        trace = mix.generate_node(0, seed=1)
        assert all(trace[i].timestamp <= trace[i + 1].timestamp
                   for i in range(len(trace) - 1))

    def test_too_many_apps_rejected(self):
        with pytest.raises(ConfigError):
            MixedWorkload(["barnes", "fft", "lu", "radix"])

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            MixedWorkload([])

    def test_name_composed(self):
        assert MixedWorkload(["barnes", "fft"]).name == "barnes+fft"

    def test_deterministic(self):
        mix = MixedWorkload(["barnes", "fft"], scale=0.05)
        assert mix.generate_node(0, seed=5) == mix.generate_node(0, seed=5)

    def test_cluster_generation(self):
        mix = MixedWorkload(["volrend", "water-spatial"], scale=0.05)
        traces = mix.generate_cluster(nodes=2, seed=1)
        pids0 = set(split_by_pid(traces[0]))
        pids1 = set(split_by_pid(traces[1]))
        assert not pids0 & pids1


class TestStreaming:
    """The streaming form must be byte-identical to the eager one."""

    def test_streaming_equals_eager(self):
        mix = MixedWorkload(["barnes", "fft"], scale=0.05)
        streaming = mix.streaming_node(0, seed=3)
        assert list(streaming) == mix.generate_node(0, seed=3)
        # Re-iterable: a second pass regenerates the same records.
        assert list(streaming) == mix.generate_node(0, seed=3)

    def test_streaming_cluster_equals_eager(self):
        mix = MixedWorkload(["radix", "volrend"], scale=0.05)
        eager = mix.generate_cluster(nodes=2, seed=2)
        streaming = mix.streaming_cluster(nodes=2, seed=2)
        for node in range(2):
            assert list(streaming[node]) == eager[node]

    def test_scale_defaults_to_constructor(self):
        mix = MixedWorkload(["barnes", "fft"], scale=0.05)
        assert list(mix.streaming_node(0, seed=1)) == \
            mix.generate_node(0, seed=1, scale=0.05)


class TestHeterogeneousMultiprogramming:
    def test_mix_simulates_cleanly(self):
        mix = MixedWorkload(["barnes", "fft"], scale=0.05)
        trace = mix.generate_node(0, seed=1)
        result = simulate_node(trace, SimConfig(cache_entries=512),
                               check_invariants=True)
        assert result.stats.lookups == count_lookups(trace)
        assert len(result.per_pid) == 10

    def test_offsetting_still_rescues_the_mix(self):
        """Heterogeneous programs share page numbers too (same SPMD
        layout): offsetting must keep helping."""
        mix = MixedWorkload(["barnes", "water-spatial"], scale=0.05)
        trace = mix.generate_node(0, seed=1)
        offset = simulate_node(trace, SimConfig(cache_entries=512))
        nohash = simulate_node(trace, SimConfig(cache_entries=512,
                                                offsetting=False))
        assert offset.stats.ni_misses < nohash.stats.ni_misses

    def test_mix_misses_at_least_worst_constituent(self):
        """Sharing a cache with a stranger never helps: the mix's overall
        miss rate is at least the lookup-weighted combination of what the
        constituents achieve running alone."""
        size = 512
        mix = MixedWorkload(["barnes", "fft"], scale=0.05)
        mixed = simulate_node(mix.generate_node(0, seed=1),
                              SimConfig(cache_entries=size)).stats
        alone = [simulate_node(
            make_app(name).generate_node(0, seed=1 * 131 + index,
                                         scale=0.05),
            SimConfig(cache_entries=size)).stats
            for index, name in enumerate(["barnes", "fft"])]
        weighted = (sum(s.ni_misses for s in alone)
                    / sum(s.lookups for s in alone))
        assert mixed.ni_miss_rate >= weighted - 0.01
