"""Timestamp serialization of per-process traces."""

import pytest
from hypothesis import given, settings, strategies as st

from itertools import count, islice

from repro.errors import TraceError
from repro.traces.merge import (
    merge_record_streams,
    merge_sorted_iters,
    merge_streams,
    split_by_node,
    split_by_pid,
)
from repro.traces.record import OP_SEND, TraceRecord


def rec(ts, pid=1, node=0, vaddr=0x1000):
    return TraceRecord(ts, node, pid, OP_SEND, vaddr, 4096)


class TestMergeStreams:
    def test_interleaves_by_timestamp(self):
        a = [rec(1, pid=1), rec(5, pid=1)]
        b = [rec(3, pid=2), rec(4, pid=2)]
        merged = merge_streams([a, b])
        assert [r.timestamp for r in merged] == [1, 3, 4, 5]

    def test_ties_broken_by_pid(self):
        a = [rec(5, pid=2)]
        b = [rec(5, pid=1)]
        merged = merge_streams([a, b])
        assert [r.pid for r in merged] == [1, 2]

    def test_unsorted_stream_rejected(self):
        with pytest.raises(TraceError):
            merge_streams([[rec(5), rec(1)]])

    def test_empty_streams(self):
        assert merge_streams([[], []]) == []

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=1000),
                             max_size=30),
                    max_size=5))
    def test_merge_is_sorted_and_complete(self, timestamp_lists):
        streams = [[rec(ts, pid=index) for ts in sorted(ts_list)]
                   for index, ts_list in enumerate(timestamp_lists)]
        merged = merge_streams(streams)
        assert len(merged) == sum(len(s) for s in streams)
        assert all(merged[i].timestamp <= merged[i + 1].timestamp
                   for i in range(len(merged) - 1))


class TestLazyMerge:
    def test_matches_eager_merge(self):
        a = [rec(1, pid=1), rec(5, pid=1)]
        b = [rec(3, pid=2)]
        assert list(merge_sorted_iters([iter(a), iter(b)])) == \
            merge_streams([a, b])


class TestStreamingMerge:
    """``merge_record_streams``: the streaming pipeline's serializer."""

    def test_matches_eager_merge(self):
        a = [rec(1, pid=1), rec(5, pid=1)]
        b = [rec(3, pid=2), rec(4, pid=2)]
        assert list(merge_record_streams([iter(a), iter(b)])) == \
            merge_streams([a, b])

    def test_ties_broken_by_pid_then_stream(self):
        a = [rec(5, pid=2), rec(5, pid=2)]
        b = [rec(5, pid=1)]
        merged = list(merge_record_streams([iter(a), iter(b)]))
        assert merged == merge_streams([a, b])
        assert [r.pid for r in merged] == [1, 2, 2]

    def test_unsorted_stream_rejected(self):
        with pytest.raises(TraceError, match="stream 0"):
            list(merge_record_streams([iter([rec(5), rec(1)])]))

    def test_is_lazy(self):
        """One pending record per stream: merging unbounded streams and
        taking a prefix must terminate (the whole bounded-memory
        contract in one assertion)."""
        def endless(pid):
            return (rec(ts, pid=pid) for ts in count())

        prefix = list(islice(
            merge_record_streams([endless(1), endless(2)]), 10))
        assert len(prefix) == 10
        assert [r.timestamp for r in prefix] == \
            [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=20),
                             max_size=30),
                    max_size=5))
    def test_lazy_equals_eager_with_heavy_ties(self, timestamp_lists):
        """The differential property behind the streaming pipeline:
        over *per-process* streams (one pid each — the protocol's
        shape), ``merge_record_streams`` on generators reproduces
        ``merge_streams`` on lists exactly, including the (timestamp,
        pid, stream index, arrival order) tie-break that the tight
        timestamp range here collides constantly."""
        streams = [[rec(ts, pid=index, vaddr=0x1000 * (order + 1))
                    for order, ts in enumerate(sorted(ts_list))]
                   for index, ts_list in enumerate(timestamp_lists)]
        lazy = list(merge_record_streams(iter(s) for s in streams))
        assert lazy == merge_streams(streams)


class TestSplitters:
    def test_split_by_node(self):
        records = [rec(1, node=0), rec(2, node=1), rec(3, node=0)]
        by_node = split_by_node(records)
        assert len(by_node[0]) == 2
        assert len(by_node[1]) == 1

    def test_split_by_pid_preserves_order(self):
        records = [rec(1, pid=1), rec(2, pid=2), rec(3, pid=1)]
        by_pid = split_by_pid(records)
        assert [r.timestamp for r in by_pid[1]] == [1, 3]
