"""The live trace recorder."""

import pytest

from repro import params
from repro.traces.capture import TraceRecorder
from repro.vmmc import Cluster, barrier

RECV = 0x40000000
SEND = 0x10000000


@pytest.fixture
def wired():
    cluster = Cluster(num_nodes=2)
    recorder = TraceRecorder()
    a = recorder.attach(cluster.node(0).create_process())
    b = recorder.attach(cluster.node(1).create_process())
    handle = a.import_buffer(1, b.export(RECV, 2 * params.PAGE_SIZE))
    return cluster, recorder, a, b, handle


class TestRecording:
    def test_send_recorded(self, wired):
        cluster, recorder, a, _, handle = wired
        a.write_memory(SEND, b"x" * 100)
        a.send(SEND, 100, handle)
        barrier(cluster)
        records = recorder.records()
        assert len(records) == 1
        assert records[0].op == "send"
        assert records[0].vaddr == SEND
        assert records[0].nbytes == 100

    def test_fetch_recorded(self, wired):
        cluster, recorder, a, _, handle = wired
        a.fetch(SEND, 64, handle)
        barrier(cluster)
        assert recorder.records()[0].op == "fetch"

    def test_clock_monotone_across_libraries(self, wired):
        cluster, recorder, a, b, handle = wired
        export = a.export(0x50000000, params.PAGE_SIZE)
        handle_b = b.import_buffer(0, export)
        a.write_memory(SEND, b"x")
        b.write_memory(SEND, b"y")
        a.send(SEND, 1, handle)
        b.send(SEND, 1, handle_b)
        a.send(SEND, 1, handle)
        barrier(cluster)
        timestamps = [r.timestamp for r in recorder.records()]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)   # global clock

    def test_node_attribution(self, wired):
        cluster, recorder, a, b, handle = wired
        a.write_memory(SEND, b"x")
        a.send(SEND, 1, handle)
        barrier(cluster)
        assert recorder.records_for_node(0)
        assert not recorder.records_for_node(1)

    def test_clear(self, wired):
        cluster, recorder, a, _, handle = wired
        a.write_memory(SEND, b"x")
        a.send(SEND, 1, handle)
        barrier(cluster)
        recorder.clear()
        assert len(recorder) == 0

    def test_unattached_library_records_nothing(self):
        cluster = Cluster(num_nodes=2)
        recorder = TraceRecorder()
        a = cluster.node(0).create_process()
        b = recorder.attach(cluster.node(1).create_process())
        handle = a.import_buffer(1, b.export(RECV, params.PAGE_SIZE))
        a.write_memory(SEND, b"x")
        a.send(SEND, 1, handle)
        barrier(cluster)
        assert len(recorder) == 0

    def test_bad_clock_increment_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(time_per_request_us=0)

    def test_string_pids_normalized(self, wired):
        cluster, recorder, a, _, handle = wired
        a.write_memory(SEND, b"x")
        a.send(SEND, 1, handle)
        barrier(cluster)
        assert isinstance(recorder.records()[0].pid, int)
