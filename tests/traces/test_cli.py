"""The trace-file CLI: generate / info / simulate."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.traces"] + list(args),
        capture_output=True, text=True, timeout=timeout)


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "barnes.bin"
    result = run_cli("generate", "--app", "barnes", "--out", str(path),
                     "--scale", "0.05")
    assert result.returncode == 0, result.stderr
    return path


class TestGenerate:
    def test_writes_trace(self, trace_file):
        assert trace_file.exists()
        assert trace_file.read_bytes()[:4] == b"UTLB"

    def test_unknown_app_rejected(self, tmp_path):
        result = run_cli("generate", "--app", "doom",
                         "--out", str(tmp_path / "x.bin"))
        assert result.returncode != 0


class TestInfo:
    def test_summarizes(self, trace_file):
        result = run_cli("info", str(trace_file))
        assert result.returncode == 0, result.stderr
        assert "lookups" in result.stdout
        assert "footprint" in result.stdout


class TestSimulate:
    @pytest.mark.parametrize("mechanism", ["utlb", "intr", "pp"])
    def test_each_mechanism(self, trace_file, mechanism):
        result = run_cli("simulate", str(trace_file),
                         "--mechanism", mechanism,
                         "--cache-entries", "256")
        assert result.returncode == 0, result.stderr
        assert "avg lookup cost" in result.stdout

    def test_interrupt_free_claim_visible(self, trace_file):
        utlb = run_cli("simulate", str(trace_file),
                       "--cache-entries", "128").stdout
        intr = run_cli("simulate", str(trace_file), "--mechanism", "intr",
                       "--cache-entries", "128").stdout
        assert "interrupts:       0" in utlb
        assert "interrupts:       0" not in intr

    def test_options_parsed(self, trace_file):
        result = run_cli("simulate", str(trace_file),
                         "--cache-entries", "256", "--prefetch", "4",
                         "--prepin", "4", "--memory-limit-mb", "1",
                         "--pin-policy", "mru", "--no-offsetting")
        assert result.returncode == 0, result.stderr
        assert "policy=mru" in result.stdout
        assert "nohash" in result.stdout
