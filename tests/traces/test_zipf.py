"""The multi-tenant zipfian KV/RPC workload (datacenter regime)."""

import pickle

import pytest

from repro import params
from repro.errors import ConfigError
from repro.traces.merge import split_by_pid
from repro.traces.record import count_lookups
from repro.traces.synth import APPS, WORKLOADS, make_workload
from repro.traces.synth.base import DATA_BASE, StreamingNodeTrace
from repro.traces.synth.zipf import ZipfKVWorkload

#: Small instance most tests share: a few thousand records, generated in
#: milliseconds, still plural in tenants/variants/processes.
SMALL = dict(tenants=40, server_processes=4, pages_per_tenant=16,
             lookups_per_process=500, skew_variants=8)


def small(**overrides):
    knobs = dict(SMALL)
    knobs.update(overrides)
    return ZipfKVWorkload(**knobs)


class TestRegistry:
    def test_workloads_extend_apps(self):
        assert set(APPS) < set(WORKLOADS)
        assert "zipf-kv" in WORKLOADS

    def test_make_workload_by_name(self):
        workload = make_workload("zipf-kv")
        assert isinstance(workload, ZipfKVWorkload)
        assert workload.name == "zipf-kv"

    def test_make_workload_covers_splash_apps(self):
        assert make_workload("fft").name == "fft"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            make_workload("memcached")


class TestValidation:
    @pytest.mark.parametrize("knobs", [
        dict(tenants=0),
        dict(server_processes=0),
        dict(server_processes=params.MAX_PROCESSES_PER_NIC + 1),
        dict(pages_per_tenant=0),
        dict(lookups_per_process=0),
        dict(tenant_exponent=0.0),
        dict(page_exponent=-1.0),
        dict(skew_spread=-0.1),
        dict(skew_spread=2.0),
        dict(skew_variants=0),
        dict(shared_pages=-1),
        dict(shared_fraction=1.0),
    ])
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ConfigError):
            small(**knobs)

    def test_footprint_must_fit_virtual_address_space(self):
        with pytest.raises(ConfigError):
            ZipfKVWorkload(tenants=20_000_000, pages_per_tenant=64)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ConfigError):
            small().generate_node(0, seed=1, scale=0)


class TestSizing:
    def test_scaled_sizes_scale_tenants_and_lookups(self):
        workload = small()
        assert workload.scaled_sizes(1.0) == (40, 500)
        assert workload.scaled_sizes(0.5) == (20, 250)

    def test_node_lookups_is_processes_times_requests(self):
        workload = small()
        assert workload.node_lookups(1.0) == 4 * 500
        trace = workload.generate_node(0, seed=1)
        assert count_lookups(trace) == workload.node_lookups(1.0)

    def test_footprint_pages_counts_shared_ring(self):
        workload = small(shared_pages=10)
        assert workload.footprint_pages(1.0) == 10 + 40 * 16


class TestStructure:
    def test_deterministic_under_seed(self):
        workload = small()
        assert workload.generate_node(0, seed=5) == \
            workload.generate_node(0, seed=5)

    def test_seed_changes_trace(self):
        workload = small()
        assert workload.generate_node(0, seed=5) != \
            workload.generate_node(0, seed=6)

    def test_streaming_matches_eager(self):
        workload = small()
        assert list(workload.iter_node(0, seed=3)) == \
            workload.generate_node(0, seed=3)

    def test_timestamps_sorted(self):
        trace = small().generate_node(0, seed=1)
        assert all(trace[i].timestamp <= trace[i + 1].timestamp
                   for i in range(len(trace) - 1))

    def test_page_sized_sends(self):
        trace = small().generate_node(0, seed=1)
        assert all(r.nbytes == params.PAGE_SIZE for r in trace)
        assert all(r.op == "send" for r in trace)

    def test_pids_use_the_nic_tag_space(self):
        workload = small()
        pids0 = set(split_by_pid(workload.generate_node(0, seed=1)))
        pids1 = set(split_by_pid(workload.generate_node(1, seed=1)))
        assert pids0 == set(range(4))
        assert pids1 == {params.MAX_PROCESSES_PER_NIC + i
                         for i in range(4)}
        assert not pids0 & pids1

    def test_cluster_generation_distinct_nodes(self):
        traces = small().generate_cluster(nodes=2, seed=1)
        assert set(traces) == {0, 1}

    def test_addresses_stay_inside_the_footprint(self):
        workload = small()
        top = DATA_BASE + workload.footprint_pages() * params.PAGE_SIZE
        trace = workload.generate_node(0, seed=1)
        assert all(DATA_BASE <= r.vaddr < top for r in trace)


class TestSkewKnobs:
    def test_variants_spread_the_page_exponent(self):
        workload = small(skew_variants=8, skew_spread=0.5)
        exponents = {workload.tenant_page_exponent(t) for t in range(40)}
        assert len(exponents) == 8
        lo, hi = min(exponents), max(exponents)
        assert lo == pytest.approx(workload.page_exponent * 0.75)
        assert hi == pytest.approx(workload.page_exponent * 1.25)

    def test_zero_spread_means_uniform_exponent(self):
        workload = small(skew_spread=0.0)
        assert {workload.tenant_page_exponent(t) for t in range(40)} == \
            {workload.page_exponent}

    def test_traffic_is_tenant_skewed(self):
        """Zipf tenant popularity: the busiest tenant sees many times a
        uniform share of requests."""
        workload = small(shared_fraction=0.0, tenant_exponent=1.1)
        trace = workload.generate_node(0, seed=1)
        per_tenant = {}
        ppt = workload.pages_per_tenant
        for record in trace:
            page = (record.vaddr - DATA_BASE) // params.PAGE_SIZE
            tenant = (page - workload.shared_pages) // ppt
            per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
        uniform = len(trace) / workload.tenants
        assert max(per_tenant.values()) > 4 * uniform

    def test_hot_pages_rotate_across_tenants(self):
        offsets = {small()._tenant_offset(t) for t in range(40)}
        assert len(offsets) > 1

    def test_shared_ring_takes_its_fraction(self):
        workload = small(shared_pages=8, shared_fraction=0.5)
        trace = workload.generate_node(0, seed=1)
        boundary = DATA_BASE + 8 * params.PAGE_SIZE
        shared = sum(1 for r in trace if r.vaddr < boundary)
        assert 0.4 < shared / len(trace) < 0.6


class TestStreamingCarrier:
    def test_streaming_node_is_reiterable(self):
        source = small().streaming_node(0, seed=2)
        assert isinstance(source, StreamingNodeTrace)
        assert list(source) == list(source)

    def test_streaming_node_pickles(self):
        source = small().streaming_node(0, seed=2, scale=0.5)
        clone = pickle.loads(pickle.dumps(source))
        assert list(clone) == list(source)

    def test_streaming_cluster_matches_eager_cluster(self):
        workload = small()
        eager = workload.generate_cluster(nodes=2, seed=1)
        streaming = workload.streaming_cluster(nodes=2, seed=1)
        assert set(streaming) == set(eager)
        for node in eager:
            assert list(streaming[node]) == eager[node]
