"""The trace-compilation pass feeding the fast replay engine."""

import json
import sys
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro import params
from repro.errors import TraceError
from repro.traces.compile import (
    BUFFER_FORMAT,
    CompiledStreams,
    StreamCompiler,
    compile_in_chunks,
    compile_streams,
)
from repro.traces.record import OP_SEND, TraceRecord
from repro.traces.synth import WORKLOADS, make_workload


def rec(ts, pid, page, npages=1):
    return TraceRecord(timestamp=ts, node=0, pid=pid, op=OP_SEND,
                       vaddr=page * params.PAGE_SIZE,
                       nbytes=npages * params.PAGE_SIZE)


class TestCompileStreams:
    def test_empty_trace(self):
        compiled = compile_streams([])
        assert compiled.pids == []
        assert compiled.streams == {}
        assert compiled.segments == []
        assert compiled.pid_order == []
        assert compiled.total_pages == 0

    def test_pids_sorted_regardless_of_appearance(self):
        compiled = compile_streams([rec(0, 7, 1), rec(1, 2, 2), rec(2, 5, 3)])
        assert compiled.pids == [2, 5, 7]
        assert compiled.pid_order == [7, 2, 5]      # first-appearance order

    def test_streams_hold_pages_in_trace_order(self):
        records = [rec(0, 1, 10), rec(1, 2, 20), rec(2, 1, 11, npages=2)]
        compiled = compile_streams(records)
        assert compiled.streams[1] == array("Q", [10, 11, 12])
        assert compiled.streams[2] == array("Q", [20])
        assert compiled.total_pages == 4

    def test_adjacent_same_pid_records_merge_into_one_segment(self):
        records = [rec(0, 1, 10), rec(1, 1, 11), rec(2, 2, 20), rec(3, 1, 12)]
        compiled = compile_streams(records)
        assert compiled.segments == [(1, 0, 2), (2, 0, 1), (1, 2, 3)]

    def test_segments_replay_in_record_order(self):
        records = [rec(i, i % 3, 100 + i, npages=1 + i % 2)
                   for i in range(20)]
        compiled = compile_streams(records)
        replayed = []
        for pid, start, stop in compiled.segments:
            for vpage in compiled.streams[pid][start:stop]:
                replayed.append((pid, vpage))
        expected = [(r.pid, vpage) for r in records for vpage in r.pages()]
        assert replayed == expected

    def test_interleaved_arrays_match_record_order(self):
        records = [rec(i, (i * 7) % 4, 50 + i, npages=1 + i % 3)
                   for i in range(30)]
        compiled = compile_streams(records)
        assert len(compiled.index_stream) == len(compiled.page_stream)
        assert len(compiled.page_stream) == compiled.total_pages
        replayed = [(compiled.pid_order[i], vpage)
                    for i, vpage in zip(compiled.index_stream,
                                        compiled.page_stream)]
        expected = [(r.pid, vpage) for r in records for vpage in r.pages()]
        assert replayed == expected

    def test_interleaved_arrays_agree_with_segments(self):
        records = [rec(i, i % 2, 9 + i) for i in range(12)]
        compiled = compile_streams(records)
        via_segments = []
        for pid, start, stop in compiled.segments:
            via_segments.extend(
                (pid, v) for v in compiled.streams[pid][start:stop])
        via_arrays = [(compiled.pid_order[i], v)
                      for i, v in zip(compiled.index_stream,
                                      compiled.page_stream)]
        assert via_segments == via_arrays

    def test_accepts_any_iterable(self):
        compiled = compile_streams(iter([rec(0, 3, 8)]))
        assert isinstance(compiled, CompiledStreams)
        assert compiled.pids == [3]
        assert list(compiled.streams[3]) == [8]

    def test_repr_mentions_shape(self):
        compiled = compile_streams([rec(0, 1, 2), rec(1, 1, 3)])
        text = repr(compiled)
        assert "pids=[1]" in text and "pages=2" in text


class TestBufferRoundTrip:
    """``to_buffers``/``from_buffers``: the shared-memory wire format."""

    def compiled(self):
        records = [rec(i, (i * 7) % 4, 50 + i, npages=1 + i % 3)
                   for i in range(30)]
        return compile_streams(records)

    def test_round_trip_is_byte_identical(self):
        original = self.compiled()
        meta, buffers = original.to_buffers()
        rebuilt = CompiledStreams.from_buffers(
            meta, [bytes(view) for view in buffers])
        assert list(rebuilt.pids) == original.pids
        assert list(rebuilt.pid_order) == original.pid_order
        assert [tuple(s) for s in rebuilt.segments] == original.segments
        assert rebuilt.total_pages == original.total_pages
        assert bytes(rebuilt.index_stream) == \
            original.index_stream.tobytes()
        assert bytes(rebuilt.page_stream) == original.page_stream.tobytes()
        for pid in original.streams:
            assert bytes(rebuilt.streams[pid]) == \
                original.streams[pid].tobytes()

    def test_rebuilt_streams_replay_identically(self):
        original = self.compiled()
        meta, buffers = original.to_buffers()
        rebuilt = CompiledStreams.from_buffers(meta, buffers)
        replayed = [(rebuilt.pid_order[i], v)
                    for i, v in zip(rebuilt.index_stream,
                                    rebuilt.page_stream)]
        expected = [(original.pid_order[i], v)
                    for i, v in zip(original.index_stream,
                                    original.page_stream)]
        assert replayed == expected

    def test_to_buffers_does_not_copy(self):
        original = self.compiled()
        _meta, buffers = original.to_buffers()
        # The views alias the arrays: same memory, flat byte shape.
        assert buffers[1].obj is original.page_stream
        assert buffers[1].nbytes == original.page_stream.itemsize * \
            len(original.page_stream)

    def test_meta_survives_json(self):
        meta, buffers = self.compiled().to_buffers()
        rebuilt = CompiledStreams.from_buffers(
            json.loads(json.dumps(meta)), buffers)
        assert rebuilt.total_pages == meta["total_pages"]

    def test_buffer_order_is_index_page_then_pid_order(self):
        original = self.compiled()
        meta, buffers = original.to_buffers()
        codes = [code for code, _nbytes in meta["buffers"]]
        assert codes == ["H", "Q"] + ["Q"] * len(original.pid_order)
        assert len(buffers) == 2 + len(original.pid_order)

    def test_empty_trace_round_trips(self):
        meta, buffers = compile_streams([]).to_buffers()
        rebuilt = CompiledStreams.from_buffers(meta, buffers)
        assert rebuilt.total_pages == 0
        assert list(rebuilt.pids) == []
        assert len(rebuilt.page_stream) == 0

    def test_rejects_unknown_format(self):
        meta, buffers = self.compiled().to_buffers()
        meta["format"] = BUFFER_FORMAT + 1
        with pytest.raises(TraceError, match="buffer format"):
            CompiledStreams.from_buffers(meta, buffers)

    def test_rejects_foreign_byteorder(self):
        meta, buffers = self.compiled().to_buffers()
        meta["byteorder"] = "big" if sys.byteorder == "little" else "little"
        with pytest.raises(TraceError, match="endian"):
            CompiledStreams.from_buffers(meta, buffers)

    def test_rejects_buffer_count_mismatch(self):
        meta, buffers = self.compiled().to_buffers()
        with pytest.raises(TraceError, match="stream buffers"):
            CompiledStreams.from_buffers(meta, buffers[:-1])

    def test_rejects_buffer_size_mismatch(self):
        meta, buffers = self.compiled().to_buffers()
        truncated = [bytes(view) for view in buffers]
        truncated[1] = truncated[1][:-8]
        with pytest.raises(TraceError, match="bytes"):
            CompiledStreams.from_buffers(meta, truncated)


def assert_byte_identical(got, want):
    """Every observable surface of two compiled traces, byte for byte."""
    assert got.pids == want.pids
    assert got.pid_order == want.pid_order
    assert got.total_pages == want.total_pages
    assert got.index_stream.tobytes() == want.index_stream.tobytes()
    assert got.page_stream.tobytes() == want.page_stream.tobytes()
    assert set(got.streams) == set(want.streams)
    for pid in want.streams:
        assert got.streams[pid].tobytes() == want.streams[pid].tobytes()
    assert got.segments == want.segments


class TestStreamCompiler:
    """Incremental compilation must be invisible in the output."""

    def records(self, n=57):
        return [rec(i, (i * 7) % 4, 50 + i, npages=1 + i % 3)
                 for i in range(n)]

    @pytest.mark.parametrize("chunk", [1, 2, 7, 57, 200])
    def test_chunked_add_equals_one_shot(self, chunk):
        records = self.records()
        compiler = StreamCompiler()
        for start in range(0, len(records), chunk):
            compiler.add(records[start:start + chunk])
        assert_byte_identical(compiler.finish(), compile_streams(records))

    def test_empty_adds_are_noops(self):
        records = self.records()
        compiler = StreamCompiler()
        compiler.add([])
        compiler.add(records)
        compiler.add([])
        assert_byte_identical(compiler.finish(), compile_streams(records))

    def test_add_accepts_lazy_generators(self):
        records = self.records()
        compiler = StreamCompiler()
        compiler.add(iter(records))
        assert_byte_identical(compiler.finish(), compile_streams(records))

    def test_add_after_finish_rejected(self):
        compiler = StreamCompiler()
        compiler.finish()
        with pytest.raises(TraceError, match="finished"):
            compiler.add([rec(0, 1, 2)])

    def test_double_finish_rejected(self):
        compiler = StreamCompiler()
        compiler.finish()
        with pytest.raises(TraceError, match="finished"):
            compiler.finish()

    @pytest.mark.parametrize("chunk", [1, 7, 57, 1000])
    def test_compile_in_chunks_equals_one_shot(self, chunk):
        records = self.records()
        assert_byte_identical(compile_in_chunks(iter(records), chunk),
                              compile_streams(records))

    def test_compile_in_chunks_empty_trace(self):
        compiled = compile_in_chunks(iter([]), 8)
        assert compiled.total_pages == 0
        assert compiled.pids == []

    @pytest.mark.parametrize("chunk", [0, -3])
    def test_nonpositive_chunk_rejected(self, chunk):
        with pytest.raises(TraceError, match="chunk_records"):
            compile_in_chunks([], chunk)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestChunkedCompileDifferential:
    """Chunked == one-shot over every synthetic workload's real traces
    (the bounded-memory pipeline's byte-identity guarantee)."""

    def trace(self, name):
        return make_workload(name).generate_node(0, seed=1, scale=0.02)

    @pytest.mark.parametrize("chunk", [1, 13])
    def test_small_chunks(self, name, chunk):
        records = self.trace(name)
        assert_byte_identical(compile_in_chunks(iter(records), chunk),
                              compile_streams(records))

    def test_chunk_larger_than_trace(self, name):
        records = self.trace(name)
        assert_byte_identical(
            compile_in_chunks(iter(records), len(records) + 100),
            compile_streams(records))

    def test_streaming_source_compiles_identically(self, name):
        workload = make_workload(name)
        source = workload.streaming_node(0, seed=1, scale=0.02)
        eager = compile_streams(workload.generate_node(0, seed=1,
                                                       scale=0.02))
        assert_byte_identical(compile_in_chunks(source, 64), eager)


class TestCompileKernel:
    """The numpy batch-ingestion kernel vs the per-record loop."""

    def records(self, n=120):
        return [rec(i, (i * 5) % 6, 40 + (i * 11) % 90, npages=1 + i % 4)
                for i in range(n)]

    @pytest.mark.parametrize("chunk", [1, 7, 64, 10**6])
    def test_kernel_equals_loop_at_every_chunking(self, chunk):
        pytest.importorskip("numpy")
        records = self.records()
        assert_byte_identical(
            compile_in_chunks(iter(records), chunk, kernel=True),
            compile_in_chunks(iter(records), chunk, kernel=False))

    def test_kernel_knob_defaults_to_auto(self):
        records = self.records()
        assert_byte_identical(compile_streams(records),
                              compile_streams(records, kernel=False))

    def test_kernel_requires_numpy(self, monkeypatch):
        import repro.traces.compile as compile_mod
        monkeypatch.setattr(compile_mod, "_numpy", lambda: None)
        with pytest.raises(TraceError, match="numpy"):
            StreamCompiler(kernel=True)
        # auto (None) quietly degrades to the loop.
        assert_byte_identical(
            compile_mod.compile_streams(self.records()),
            compile_streams(self.records(), kernel=False))

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_kernel_on_workload_traces(self, name):
        pytest.importorskip("numpy")
        records = make_workload(name).generate_node(0, seed=1, scale=0.02)
        assert_byte_identical(compile_streams(records, kernel=True),
                              compile_streams(records, kernel=False))


class TestCompileKernelProperty:
    """Chunked numpy compile parity under adversarial record shapes."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.lists(
               st.tuples(st.integers(min_value=0, max_value=50),   # ts gap
                         st.integers(min_value=0, max_value=9),    # pid
                         st.integers(min_value=0, max_value=400),  # page
                         st.integers(min_value=1, max_value=5)),   # npages
               max_size=120),
           chunk=st.sampled_from([1, 3, 17, 1000]))
    def test_chunked_kernel_parity(self, data, chunk):
        pytest.importorskip("numpy")
        ts = 0
        records = []
        for gap, pid, page, npages in data:
            ts += gap
            records.append(rec(ts, pid, page, npages=npages))
        assert_byte_identical(
            compile_in_chunks(iter(records), chunk, kernel=True),
            compile_streams(records, kernel=False))
