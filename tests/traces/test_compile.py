"""The trace-compilation pass feeding the fast replay engine."""

from array import array

from repro import params
from repro.traces.compile import CompiledStreams, compile_streams
from repro.traces.record import OP_SEND, TraceRecord


def rec(ts, pid, page, npages=1):
    return TraceRecord(timestamp=ts, node=0, pid=pid, op=OP_SEND,
                       vaddr=page * params.PAGE_SIZE,
                       nbytes=npages * params.PAGE_SIZE)


class TestCompileStreams:
    def test_empty_trace(self):
        compiled = compile_streams([])
        assert compiled.pids == []
        assert compiled.streams == {}
        assert compiled.segments == []
        assert compiled.pid_order == []
        assert compiled.total_pages == 0

    def test_pids_sorted_regardless_of_appearance(self):
        compiled = compile_streams([rec(0, 7, 1), rec(1, 2, 2), rec(2, 5, 3)])
        assert compiled.pids == [2, 5, 7]
        assert compiled.pid_order == [7, 2, 5]      # first-appearance order

    def test_streams_hold_pages_in_trace_order(self):
        records = [rec(0, 1, 10), rec(1, 2, 20), rec(2, 1, 11, npages=2)]
        compiled = compile_streams(records)
        assert compiled.streams[1] == array("Q", [10, 11, 12])
        assert compiled.streams[2] == array("Q", [20])
        assert compiled.total_pages == 4

    def test_adjacent_same_pid_records_merge_into_one_segment(self):
        records = [rec(0, 1, 10), rec(1, 1, 11), rec(2, 2, 20), rec(3, 1, 12)]
        compiled = compile_streams(records)
        assert compiled.segments == [(1, 0, 2), (2, 0, 1), (1, 2, 3)]

    def test_segments_replay_in_record_order(self):
        records = [rec(i, i % 3, 100 + i, npages=1 + i % 2)
                   for i in range(20)]
        compiled = compile_streams(records)
        replayed = []
        for pid, start, stop in compiled.segments:
            for vpage in compiled.streams[pid][start:stop]:
                replayed.append((pid, vpage))
        expected = [(r.pid, vpage) for r in records for vpage in r.pages()]
        assert replayed == expected

    def test_interleaved_arrays_match_record_order(self):
        records = [rec(i, (i * 7) % 4, 50 + i, npages=1 + i % 3)
                   for i in range(30)]
        compiled = compile_streams(records)
        assert len(compiled.index_stream) == len(compiled.page_stream)
        assert len(compiled.page_stream) == compiled.total_pages
        replayed = [(compiled.pid_order[i], vpage)
                    for i, vpage in zip(compiled.index_stream,
                                        compiled.page_stream)]
        expected = [(r.pid, vpage) for r in records for vpage in r.pages()]
        assert replayed == expected

    def test_interleaved_arrays_agree_with_segments(self):
        records = [rec(i, i % 2, 9 + i) for i in range(12)]
        compiled = compile_streams(records)
        via_segments = []
        for pid, start, stop in compiled.segments:
            via_segments.extend(
                (pid, v) for v in compiled.streams[pid][start:stop])
        via_arrays = [(compiled.pid_order[i], v)
                      for i, v in zip(compiled.index_stream,
                                      compiled.page_stream)]
        assert via_segments == via_arrays

    def test_accepts_any_iterable(self):
        compiled = compile_streams(iter([rec(0, 3, 8)]))
        assert isinstance(compiled, CompiledStreams)
        assert compiled.pids == [3]
        assert list(compiled.streams[3]) == [8]

    def test_repr_mentions_shape(self):
        compiled = compile_streams([rec(0, 1, 2), rec(1, 1, 3)])
        text = repr(compiled)
        assert "pids=[1]" in text and "pages=2" in text
