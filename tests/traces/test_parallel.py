"""Parallel trace compilation must be byte-identical to the serial path.

``compile_node_parallel`` generates per-process streams (in a worker
pool or in-process) and reproduces the timestamp merge with a stable
vectorized sort; every field of the resulting ``CompiledStreams`` must
match ``compile_in_chunks`` over the workload's own lazy ``iter_node``
merge, byte for byte.  These tests also pin the page-stream protocol
itself: the pre-record ``(timestamp, page)`` form and the record form
must describe the same trace.
"""

import pytest

from repro.errors import TraceError
from repro.traces import parallel
from repro.traces.compile import compile_in_chunks
from repro.traces.parallel import (
    compile_node_parallel,
    generate_process_arrays,
)
from repro.traces.record import TraceRecord
from repro.traces.synth import make_workload
from repro.traces.synth.base import page_record_stream
from repro.traces.synth.mixed import MixedWorkload


def fields(compiled):
    return (compiled.pids,
            {pid: stream.tobytes()
             for pid, stream in compiled.streams.items()},
            compiled.pid_order,
            compiled.index_stream.tobytes(),
            compiled.page_stream.tobytes(),
            compiled.total_pages)


def serial(workload, node=0, seed=0, scale=0.05):
    return compile_in_chunks(
        workload.iter_node(node, seed=seed, scale=scale))


class RecordsOnly:
    """A workload shim exposing only the record-stream protocol."""

    def __init__(self, workload):
        self._workload = workload

    def iter_processes(self, node=0, seed=0, scale=1.0):
        return self._workload.iter_processes(node, seed=seed, scale=scale)

    def iter_node(self, node=0, seed=0, scale=1.0):
        return self._workload.iter_node(node, seed=seed, scale=scale)


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("name", ["barnes", "radix", "zipf-kv"])
    def test_workloads(self, name, workers):
        workload = make_workload(name)
        scale = 0.02 if name == "zipf-kv" else 0.05
        assert fields(compile_node_parallel(
            workload, node=1, seed=4, scale=scale, workers=workers)) \
            == fields(serial(workload, node=1, seed=4, scale=scale))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_mixed_workload(self, workers):
        workload = MixedWorkload(["barnes", "fft"], scale=0.05)
        assert fields(compile_node_parallel(
            workload, node=0, seed=2, scale=0.05, workers=workers)) \
            == fields(serial(workload, node=0, seed=2, scale=0.05))

    def test_record_stream_fallback(self):
        """Workloads without iter_page_streams take the record form."""
        workload = make_workload("fft")
        shim = RecordsOnly(workload)
        assert fields(compile_node_parallel(shim, seed=1, scale=0.05,
                                            workers=1)) \
            == fields(serial(workload, seed=1, scale=0.05))

    def test_no_numpy_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(parallel, "_numpy", lambda: None)
        workload = make_workload("barnes")
        assert fields(compile_node_parallel(workload, scale=0.05,
                                            workers=4)) \
            == fields(serial(workload, scale=0.05))

    def test_no_protocol_falls_back_to_serial(self):
        workload = make_workload("barnes")

        class NodeOnly:
            def iter_node(self, node=0, seed=0, scale=1.0):
                return workload.iter_node(node, seed=seed, scale=scale)

        assert fields(compile_node_parallel(NodeOnly(), scale=0.05,
                                            workers=4)) \
            == fields(serial(workload, scale=0.05))


class TestPageStreamProtocol:
    @pytest.mark.parametrize("name", ["barnes", "zipf-kv"])
    def test_page_form_equals_record_form(self, name):
        """Wrapping the (timestamp, page) streams into records must
        reproduce iter_processes exactly — same pids, same records."""
        workload = make_workload(name)
        scale = 0.02 if name == "zipf-kv" else 0.05
        wrapped = [list(page_record_stream(1, pid, pages))
                   for pid, pages in workload.iter_page_streams(
                       1, seed=4, scale=scale)]
        direct = [list(stream) for stream in workload.iter_processes(
            1, seed=4, scale=scale)]
        assert wrapped == direct

    def test_mixed_renumbering(self):
        workload = MixedWorkload(["barnes", "fft"], scale=0.05)
        wrapped = [list(page_record_stream(0, pid, pages))
                   for pid, pages in workload.iter_page_streams(
                       0, seed=2, scale=0.05)]
        direct = [list(stream)
                  for stream in workload.iter_processes(0, seed=2,
                                                        scale=0.05)]
        assert wrapped == direct


class TestWorkerArrays:
    def test_unsorted_stream_rejected(self):
        class Unsorted:
            def iter_page_streams(self, node=0, seed=0, scale=1.0):
                return [(0, iter([(5, 10), (3, 11)]))]

        with pytest.raises(TraceError):
            generate_process_arrays(Unsorted(), 0, 0, 1.0, 0)

    def test_duplicate_pid_rejected(self):
        class Duplicated:
            def iter_page_streams(self, node=0, seed=0, scale=1.0):
                return [(7, iter([(0, 1)])), (7, iter([(1, 2)]))]

            def iter_node(self, node=0, seed=0, scale=1.0):
                return iter(())

        with pytest.raises(TraceError):
            compile_node_parallel(Duplicated(), workers=1)

    def test_empty_streams_dropped(self):
        class OneEmpty:
            def iter_page_streams(self, node=0, seed=0, scale=1.0):
                return [(3, iter(())), (4, iter([(0, 9), (2, 9)]))]

        compiled = compile_node_parallel(OneEmpty(), workers=1)
        assert compiled.pids == [4]
        assert compiled.pid_order == [4]
        assert compiled.total_pages == 2

    def test_all_empty_gives_empty_compiled(self):
        class Empty:
            def iter_page_streams(self, node=0, seed=0, scale=1.0):
                return [(0, iter(())), (1, iter(()))]

        compiled = compile_node_parallel(Empty(), workers=1)
        assert compiled.pids == []
        assert compiled.total_pages == 0

    def test_multi_page_records_expand(self):
        """The record-form worker expands record.pages() like compile."""
        from repro import params
        records = [
            TraceRecord(timestamp=0, node=0, pid=2, op="send",
                        vaddr=0x10000000, nbytes=3 * params.PAGE_SIZE),
            TraceRecord(timestamp=1, node=0, pid=2, op="send",
                        vaddr=0x10001000, nbytes=1),
        ]

        class TwoRecords:
            def iter_processes(self, node=0, seed=0, scale=1.0):
                return [iter(records)]

        pid, ts_bytes, page_bytes = generate_process_arrays(
            TwoRecords(), 0, 0, 1.0, 0)
        assert pid == 2
        assert len(page_bytes) // 8 == 4
