"""The DMA engine: data movement and bus timing."""

import pytest

from repro import params
from repro.errors import NicError
from repro.memsim.physical import PhysicalMemory
from repro.nic.dma import DmaEngine
from repro.nic.sram import NicSram


@pytest.fixture
def engine():
    return DmaEngine(PhysicalMemory(16 * params.PAGE_SIZE),
                     NicSram(size=64 * 1024))


class TestDataMovement:
    def test_host_to_nic(self, engine):
        frame = engine.physical.allocate()
        engine.physical.write(frame, 10, b"payload")
        engine.host_to_nic(frame, 10, 0, 7)
        assert engine.sram.read(0, 7) == b"payload"

    def test_nic_to_host(self, engine):
        frame = engine.physical.allocate()
        engine.sram.write(100, b"incoming")
        engine.nic_to_host(100, frame, 50, 8)
        assert engine.physical.read(frame, 50, 8) == b"incoming"

    def test_roundtrip(self, engine):
        src = engine.physical.allocate()
        dst = engine.physical.allocate()
        engine.physical.write(src, 0, b"x" * 256)
        engine.host_to_nic(src, 0, 0, 256)
        engine.nic_to_host(0, dst, 0, 256)
        assert engine.physical.read(dst, 0, 256) == b"x" * 256


class TestFirmwareLimit:
    def test_transfer_capped_at_one_page(self, engine):
        frame = engine.physical.allocate()
        with pytest.raises(NicError):
            engine.host_to_nic(frame, 0, 0, params.PAGE_SIZE + 1)

    def test_full_page_allowed(self, engine):
        frame = engine.physical.allocate()
        engine.host_to_nic(frame, 0, 0, params.PAGE_SIZE)

    def test_zero_length_rejected(self, engine):
        frame = engine.physical.allocate()
        with pytest.raises(NicError):
            engine.host_to_nic(frame, 0, 0, 0)


class TestTiming:
    def test_time_has_setup_plus_bandwidth(self, engine):
        frame = engine.physical.allocate()
        engine.host_to_nic(frame, 0, 0, 1280)
        assert engine.stats.time_us == pytest.approx(1.5 + 1280 / 128.0)

    def test_bytes_accounted_by_direction(self, engine):
        frame = engine.physical.allocate()
        engine.host_to_nic(frame, 0, 0, 100)
        engine.nic_to_host(0, frame, 0, 50)
        assert engine.stats.bytes_host_to_nic == 100
        assert engine.stats.bytes_nic_to_host == 50
        assert engine.stats.total_bytes == 150
        assert engine.stats.transfers == 2


class TestTranslationFetch:
    def test_entry_fetch_counts_bytes_and_time(self, engine):
        nbytes = engine.fetch_translation_entries(8)
        assert nbytes == 8 * params.UTLB_CACHE_ENTRY_BYTES
        assert engine.stats.bytes_host_to_nic == nbytes
        assert engine.stats.time_us > 0

    def test_zero_entries_rejected(self, engine):
        with pytest.raises(NicError):
            engine.fetch_translation_entries(0)
