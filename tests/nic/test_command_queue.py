"""Command post buffers: FIFO order, bounds, protection."""

import pytest

from repro.errors import CapacityError, NicError
from repro.nic.command_queue import CommandQueue, FetchCommand, SendCommand
from repro.nic.sram import NicSram


def make_queue(depth=4):
    return CommandQueue(1, NicSram(size=64 * 1024), depth=depth)


def send_cmd(pid=1, vaddr=0x1000):
    return SendCommand(pid, vaddr, 100, None, 0)


class TestPosting:
    def test_fifo_order(self):
        queue = make_queue()
        first = send_cmd(vaddr=0x1000)
        second = send_cmd(vaddr=0x2000)
        queue.post(first)
        queue.post(second)
        assert queue.poll() is first
        assert queue.poll() is second

    def test_sequence_numbers_monotone(self):
        queue = make_queue()
        seqs = [queue.post(send_cmd()) for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_full_queue_rejects(self):
        queue = make_queue(depth=2)
        queue.post(send_cmd())
        queue.post(send_cmd())
        with pytest.raises(CapacityError):
            queue.post(send_cmd())

    def test_poll_empty_returns_none(self):
        assert make_queue().poll() is None

    def test_wrong_pid_rejected(self):
        queue = make_queue()
        with pytest.raises(NicError):
            queue.post(send_cmd(pid=2))

    def test_counters(self):
        queue = make_queue()
        queue.post(send_cmd())
        queue.poll()
        assert queue.posted == 1
        assert queue.processed == 1
        assert queue.pending == 0


class TestSramFootprint:
    def test_queue_consumes_sram(self):
        sram = NicSram(size=64 * 1024)
        before = sram.free
        CommandQueue(1, sram, depth=64)
        assert sram.free < before


class TestCommandKinds:
    def test_send_command_fields(self):
        cmd = SendCommand(1, 0x1000, 256, "handle", 64)
        assert cmd.kind == "send"
        assert cmd.remote_offset == 64

    def test_fetch_command_fields(self):
        cmd = FetchCommand(1, 0x1000, 256, "handle", 0)
        assert cmd.kind == "fetch"
