"""The NIC -> host interrupt line."""

import pytest

from repro.errors import NicError
from repro.memsim.os_kernel import SimulatedOS
from repro.nic.interrupts import InterruptLine


class TestInterruptLine:
    def test_dispatches_to_os_handler(self):
        os_sim = SimulatedOS()
        seen = []
        os_sim.register_interrupt("vec", lambda **kw: seen.append(kw))
        line = InterruptLine(os_sim)
        line.raise_interrupt("vec", page=5)
        assert seen == [{"page": 5}]

    def test_counts_by_vector(self):
        os_sim = SimulatedOS()
        os_sim.register_interrupt("a", lambda **kw: None)
        os_sim.register_interrupt("b", lambda **kw: None)
        line = InterruptLine(os_sim)
        line.raise_interrupt("a")
        line.raise_interrupt("a")
        line.raise_interrupt("b")
        assert line.raised == 3
        assert line.by_vector == {"a": 2, "b": 1}

    def test_empty_vector_rejected(self):
        line = InterruptLine(SimulatedOS())
        with pytest.raises(NicError):
            line.raise_interrupt("")

    def test_returns_handler_result(self):
        os_sim = SimulatedOS()
        os_sim.register_interrupt("vec", lambda **kw: "handled")
        assert InterruptLine(os_sim).raise_interrupt("vec") == "handled"
