"""NIC SRAM: region allocation and byte access."""

import pytest

from repro.errors import CapacityError, NicError
from repro.nic.sram import NicSram


class TestAllocation:
    def test_regions_do_not_overlap(self):
        sram = NicSram(size=1024)
        a = sram.allocate("a", 100)
        b = sram.allocate("b", 200)
        assert a.base + a.size <= b.base

    def test_exhaustion(self):
        sram = NicSram(size=256)
        sram.allocate("a", 200)
        with pytest.raises(CapacityError):
            sram.allocate("b", 100)

    def test_duplicate_name_rejected(self):
        sram = NicSram(size=256)
        sram.allocate("a", 10)
        with pytest.raises(NicError):
            sram.allocate("a", 10)

    def test_lookup_by_name(self):
        sram = NicSram(size=256)
        region = sram.allocate("a", 10)
        assert sram.region("a") is region
        with pytest.raises(NicError):
            sram.region("missing")

    def test_accounting(self):
        sram = NicSram(size=256)
        sram.allocate("a", 100)
        assert sram.used == 100
        assert sram.free == 156

    def test_zero_size_region_rejected(self):
        with pytest.raises(NicError):
            NicSram(size=256).allocate("a", 0)

    def test_regions_sorted_by_base(self):
        sram = NicSram(size=256)
        sram.allocate("a", 10)
        sram.allocate("b", 10)
        assert [r.name for r in sram.regions()] == ["a", "b"]


class TestByteAccess:
    def test_roundtrip(self):
        sram = NicSram(size=256)
        sram.write(10, b"abc")
        assert sram.read(10, 3) == b"abc"

    def test_initially_zero(self):
        assert NicSram(size=256).read(0, 4) == bytes(4)

    def test_out_of_range_rejected(self):
        sram = NicSram(size=256)
        with pytest.raises(NicError):
            sram.read(250, 10)
        with pytest.raises(NicError):
            sram.write(-1, b"x")

    def test_default_size_is_one_megabyte(self):
        assert NicSram().size == 1 << 20
