"""The LANai processor cycle model and its MCP integration."""

import pytest

from repro import params
from repro.errors import NicError
from repro.nic.lanai import CYCLES, LanaiProcessor
from repro.vmmc import Cluster, remote_store

RECV = 0x40000000
SEND = 0x10000000


class TestCycleAccounting:
    def test_charge_accumulates(self):
        lanai = LanaiProcessor()
        lanai.charge("cache_probe", 3)
        assert lanai.cycles == 3 * CYCLES["cache_probe"]

    def test_busy_time_conversion(self):
        lanai = LanaiProcessor(clock_mhz=33.0)
        lanai.charge("cache_probe")    # 26 cycles ~ 0.79 us
        assert lanai.busy_us == pytest.approx(26 / 33.0)

    def test_probe_cost_matches_measured_hit_cost(self):
        """The cycle estimate for a cache probe must land on the paper's
        measured 0.8 us hit time (within the clock's resolution)."""
        lanai = LanaiProcessor()
        lanai.charge("cache_probe")
        assert lanai.busy_us == pytest.approx(0.8, abs=0.05)

    def test_unknown_operation_rejected(self):
        with pytest.raises(NicError):
            LanaiProcessor().charge("warp_drive")

    def test_negative_count_rejected(self):
        with pytest.raises(NicError):
            LanaiProcessor().charge("cache_probe", -1)

    def test_breakdown_sorted_descending(self):
        lanai = LanaiProcessor()
        lanai.charge("poll_empty", 1)
        lanai.charge("dma_setup", 10)
        breakdown = list(lanai.breakdown_us())
        assert breakdown[0] == "dma_setup"

    def test_occupancy(self):
        lanai = LanaiProcessor()
        lanai.charge("dma_setup", 33)    # 48*33 cycles = 48 us
        assert lanai.occupancy(96.0) == pytest.approx(0.5)
        assert lanai.occupancy(0.0) == 0.0
        assert lanai.occupancy(1.0) == 1.0     # clamped


class TestMcpIntegration:
    def test_transfer_charges_firmware_work(self):
        cluster = Cluster(num_nodes=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, 2 * params.PAGE_SIZE))
        a.write_memory(SEND, b"x" * 6000)
        remote_store(cluster, a, SEND, 6000, handle)

        sender = cluster.node(0).lanai
        receiver = cluster.node(1).lanai
        assert sender.by_operation["command_dispatch"] > 0
        assert sender.by_operation["cache_probe"] > 0
        assert sender.by_operation["packet_build"] > 0
        assert receiver.by_operation["packet_receive"] > 0
        assert receiver.by_operation["dma_setup"] > 0

    def test_miss_path_charges_table_walk(self):
        cluster = Cluster(num_nodes=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, params.PAGE_SIZE))
        a.write_memory(SEND, b"y")
        remote_store(cluster, a, SEND, 1, handle)
        # The first translation of the send buffer missed in the cache.
        assert cluster.node(0).lanai.by_operation.get("table_walk", 0) > 0

    def test_hit_path_charges_only_probe(self):
        cluster = Cluster(num_nodes=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, params.PAGE_SIZE))
        a.write_memory(SEND, b"z")
        remote_store(cluster, a, SEND, 1, handle)
        walks_before = cluster.node(0).lanai.by_operation["table_walk"]
        remote_store(cluster, a, SEND, 1, handle)   # all hits now
        assert cluster.node(0).lanai.by_operation["table_walk"] == \
            walks_before
