"""MCP firmware behaviour not covered by the end-to-end cluster tests:
command scheduling, protection checks, and the swapped-table interrupt."""

import pytest

from repro import params
from repro.errors import NicError, ProtectionError
from repro.vmmc import Cluster

RECV = 0x40000000
SEND = 0x10000000


@pytest.fixture
def pair():
    cluster = Cluster(num_nodes=2)
    a = cluster.node(0).create_process()
    b = cluster.node(1).create_process()
    export_id = b.export(RECV, 4 * params.PAGE_SIZE)
    handle = a.import_buffer(1, export_id)
    return cluster, a, b, export_id, handle


class TestCommandProcessing:
    def test_poll_budget_limits_commands(self, pair):
        cluster, a, _, _, handle = pair
        mcp = cluster.node(0).mcp
        a.write_memory(SEND, b"x" * 10)
        for offset in range(3):
            a.send(SEND, 10, handle, remote_offset=offset * 16)
        assert mcp.poll(budget=2) == 2
        assert a.queue.pending == 1
        assert mcp.poll() == 1

    def test_commands_processed_in_post_order(self, pair):
        cluster, a, b, _, handle = pair
        a.write_memory(SEND, b"A")
        a.send(SEND, 1, handle, remote_offset=0)
        a.write_memory(SEND, b"B")
        a.send(SEND, 1, handle, remote_offset=0)     # overwrites
        cluster.run_until_quiet()
        assert b.read_memory(RECV, 1) == b"B"

    def test_stats_track_bytes(self, pair):
        cluster, a, _, _, handle = pair
        a.write_memory(SEND, b"x" * 5000)
        a.send(SEND, 5000, handle)
        cluster.run_until_quiet()
        assert cluster.node(0).mcp.stats.bytes_sent == 5000
        # 5000 bytes from a page-aligned address: 4096 + 904.
        assert cluster.node(0).mcp.stats.chunks_sent == 2

    def test_unknown_pid_rejected(self, pair):
        cluster, _, _, _, _ = pair
        with pytest.raises(ProtectionError):
            cluster.node(0).mcp.utlb_for("ghost")

    def test_double_register_rejected(self, pair):
        cluster, a, _, _, _ = pair
        mcp = cluster.node(0).mcp
        with pytest.raises(NicError):
            mcp.register_process(a.pid, a.queue, a.utlb)


class TestReceiveProtection:
    def test_overrun_data_packet_rejected(self, pair):
        """A data packet that would overflow the export must be refused
        even if a (buggy/malicious) sender emits it."""
        cluster, a, b, export_id, _ = pair
        from repro.network.packet import KIND_DATA, Packet
        evil = Packet(0, 1, KIND_DATA, payload={
            "mode": "export", "export_id": export_id,
            "offset": 4 * params.PAGE_SIZE - 2, "data": b"overflow",
        }, data_bytes=8)
        with pytest.raises(ProtectionError):
            cluster.node(1).mcp.handle_delivered(evil)

    def test_fetch_overrun_rejected(self, pair):
        cluster, _, b, export_id, _ = pair
        from repro.network.packet import KIND_FETCH_REQ, Packet
        evil = Packet(0, 1, KIND_FETCH_REQ, payload={
            "export_id": export_id, "offset": 0,
            "nbytes": 5 * params.PAGE_SIZE,
            "reply_pid": 1, "reply_vaddr": SEND,
        })
        with pytest.raises(ProtectionError):
            cluster.node(1).mcp.handle_delivered(evil)

    def test_unknown_export_rejected(self, pair):
        cluster, _, _, _, _ = pair
        from repro.network.packet import KIND_DATA, Packet
        evil = Packet(0, 1, KIND_DATA, payload={
            "mode": "export", "export_id": 999999, "offset": 0,
            "data": b"x"}, data_bytes=1)
        with pytest.raises(ProtectionError):
            cluster.node(1).mcp.handle_delivered(evil)


class TestSwappedTableInterrupt:
    def test_nic_interrupts_host_to_swap_in(self, pair):
        """Section 3.3's extension: a second-level translation table on
        disk makes the NIC interrupt the host, which pages it back in;
        the transfer then completes normally."""
        cluster, a, b, _, handle = pair
        a.write_memory(SEND, b"swapped!")
        # Pin happens at user level (send posts the command) ...
        seq = a.send(SEND, 8, handle)
        # ... then the covering second-level table is swapped out before
        # the MCP translates.
        from repro.core import addresses
        dir_index = addresses.directory_index(SEND >> params.PAGE_SHIFT)
        a.utlb.table.swap_out_table(dir_index)
        cluster.run_until_quiet()
        a.complete(seq)
        assert b.read_memory(RECV, 8) == b"swapped!"
        assert cluster.node(0).interrupts.raised == 1
        assert cluster.node(0).interrupts.by_vector["table-swapped"] == 1
