"""Counter-event equality: the stream is the ground truth of the counters.

Every :class:`TranslationStats` field — counts *and* simulated-time
accumulators — must be derivable from the event stream alone.  For a grid
of configurations (engine x pin policy x memory limit x prefetch degree)
and both mechanisms, this: replays untraced, replays traced, asserts the
two results byte-identical (attaching a tracer never changes results),
and asserts the per-pid stats equal the stats independently rebuilt from
the collected events.
"""

import random

import pytest

from repro.core.stats import TranslationStats
from repro.obs import events as ev
from repro.obs.invariants import InvariantChecker
from repro.obs.tracer import CollectingTracer
from repro.params import PAGE_SIZE
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.simulator import simulate_node
from repro.traces.record import OP_SEND, TraceRecord

SIMULATORS = {"utlb": simulate_node, "intr": simulate_node_intr}


def random_trace(seed=7, num_pids=3, num_pages=96, length=400):
    """A small multi-process trace with enough reuse to hit everywhere."""
    rng = random.Random(seed)
    records = []
    for index in range(length):
        vpage = rng.randrange(num_pages)
        records.append(TraceRecord(
            timestamp=index,
            node=0,
            pid=rng.randrange(num_pids),
            op=OP_SEND,
            vaddr=vpage * PAGE_SIZE + rng.randrange(PAGE_SIZE),
            nbytes=rng.choice([64, 512, PAGE_SIZE])))
    return records


def derive_stats(events, pid, mechanism, cost_model):
    """Rebuild one process's TranslationStats from its event sub-stream.

    Applies the same per-event cost charges the simulators apply, in
    stream order, so the float accumulation sequence — and therefore
    every time field — matches bit for bit.
    """
    cm = cost_model
    stats = TranslationStats()
    for event in events:
        if event.pid != pid:
            continue
        kind = event.kind
        if kind == ev.LOOKUP:
            stats.lookups += 1
            if mechanism == "utlb":
                stats.check_time_us += cm.user_check_hit
            else:
                # The baseline has no user-level check: a lookup goes
                # straight to the NIC cache.
                stats.ni_accesses += 1
                stats.ni_hit_time_us += cm.ni_check_hit
        elif kind == ev.CHECK_MISS:
            stats.check_misses += 1
        elif kind == ev.PIN:
            stats.pages_pinned += 1
            if event.n is not None:
                stats.pin_calls += 1
                if mechanism == "utlb":
                    stats.pin_time_us += cm.pin_cost(event.n)
                else:
                    stats.pin_time_us += cm.kernel_pin_cost(event.n)
        elif kind == ev.UNPIN:
            stats.unpin_calls += 1
            stats.pages_unpinned += 1
            if mechanism == "utlb":
                stats.unpin_time_us += cm.unpin_cost(1)
            else:
                stats.unpin_time_us += cm.kernel_unpin_cost(1)
        elif kind == ev.NI_HIT:
            stats.ni_hits += 1
            if mechanism == "utlb":
                stats.ni_accesses += 1
                stats.ni_hit_time_us += cm.ni_check_hit
        elif kind == ev.ENTRY_FETCH:
            stats.ni_misses += 1
            stats.entries_fetched += event.n
            stats.ni_accesses += 1
            # The probe cost is charged on every NIC access, hit or miss.
            stats.ni_hit_time_us += cm.ni_check_hit
            stats.ni_miss_time_us += cm.miss_cost(event.n)
        elif kind == ev.INTERRUPT:
            stats.ni_misses += 1
            stats.interrupts += 1
            stats.interrupt_time_us += cm.interrupt_cost
    return stats


GRID = [
    pytest.param(engine, policy, limit_pages, prefetch,
                 id="%s-%s-mem%s-pf%d" % (engine, policy, limit_pages,
                                          prefetch))
    for engine in ("fast", "reference")
    for policy in ("lru", "random")
    for limit_pages in (None, 12)
    for prefetch in (1, 4)
]


@pytest.mark.parametrize("mechanism", sorted(SIMULATORS))
@pytest.mark.parametrize("engine,policy,limit_pages,prefetch", GRID)
def test_counters_equal_event_tallies(mechanism, engine, policy,
                                      limit_pages, prefetch):
    records = random_trace()
    config = SimConfig(
        cache_entries=64,
        prefetch=prefetch,
        prepin=prefetch,            # exercises batched PIN events too
        memory_limit_bytes=(None if limit_pages is None
                            else limit_pages * PAGE_SIZE),
        pin_policy=policy,
        engine=engine,
        seed=3)
    simulate = SIMULATORS[mechanism]

    base = simulate(records, config)
    tracer = CollectingTracer()
    traced = simulate(records, config.replace(tracer=tracer))

    # Observation is free: attaching a tracer changes nothing.
    assert traced.to_dict() == base.to_dict()
    assert tracer.events, "traced run emitted no events"

    # The stream passes the full invariant battery and tallies to the
    # exact aggregate counters.
    checker = InvariantChecker(
        memory_limit_pages=config.memory_limit_pages, mechanism=mechanism)
    for event in tracer.events:
        checker.emit(event)
    checker.close()
    checker.verify_node(traced)

    # Independent reconstruction: counters and time fields, bit for bit.
    for pid, stats in traced.per_pid.items():
        rebuilt = derive_stats(tracer.events, pid, mechanism,
                               config.cost_model)
        assert rebuilt.to_dict() == stats.to_dict()


@pytest.mark.parametrize("mechanism", sorted(SIMULATORS))
def test_stream_is_deterministic(mechanism):
    """Identical runs emit identical streams (golden-trace precondition)."""
    records = random_trace()
    config = SimConfig(cache_entries=64, memory_limit_bytes=12 * PAGE_SIZE)
    streams = []
    for _ in range(2):
        tracer = CollectingTracer()
        SIMULATORS[mechanism](records, config.replace(tracer=tracer))
        streams.append(tracer.events)
    assert streams[0] == streams[1]
