"""Golden-trace regression: the event stream's exact bytes are contract.

The checked-in JSONL files pin down the emitters' event ordering and
payload conventions.  A failure here means the observable stream changed:
if intentional, regenerate with ``python tests/obs/update_golden.py``
and review the diff; if not, the emitters regressed.
"""

import os

import pytest

from repro.obs import events as ev
from repro.obs.tracer import dumps_event

from tests.obs.golden_trace import (
    MECHANISMS,
    golden_events,
    golden_path,
)


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_stream_matches_golden_file(mechanism):
    path = golden_path(mechanism)
    assert os.path.exists(path), (
        "golden file missing; generate it with "
        "PYTHONPATH=src python tests/obs/update_golden.py")
    with open(path, "r", encoding="ascii") as handle:
        golden = [line.rstrip("\n") for line in handle if line.strip()]
    fresh = [dumps_event(event) for event in golden_events(mechanism)]
    assert fresh == golden, (
        "event stream diverged from tests/obs/data/%s — regenerate with "
        "update_golden.py if the change is intentional"
        % os.path.basename(path))


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_golden_scenario_is_rich(mechanism):
    """The scenario must keep exercising every relevant event kind."""
    kinds = {event.kind for event in golden_events(mechanism)}
    expected = {ev.LOOKUP, ev.PIN, ev.UNPIN, ev.NI_FILL, ev.NI_HIT,
                ev.NI_EVICT}
    if mechanism == "utlb":
        expected |= {ev.CHECK_MISS, ev.ENTRY_FETCH, ev.NI_INVALIDATE}
    else:
        expected |= {ev.INTERRUPT}
    missing = expected - kinds
    assert not missing, "golden scenario never emits %s" % sorted(missing)
