"""Tracer sinks: collection, JSONL streaming, teeing, null behaviour."""

import io

import pytest

from repro.obs import events as ev
from repro.obs.events import Event
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    TeeTracer,
    as_tracer,
    dumps_event,
    loads_event,
)

STREAM = [
    Event(ev.LOOKUP, 1, 0x10),
    Event(ev.CHECK_MISS, 1, 0x10),
    Event(ev.PIN, 1, 0x10, 7, 1),
    Event(ev.NI_FILL, 1, 0x10, 7, 1),
    Event(ev.LOOKUP, 2, 0x20),
]


def test_null_tracer_is_disabled_and_silent():
    tracer = NullTracer()
    assert tracer.enabled is False
    tracer.emit(STREAM[0])          # no-op, no error
    tracer.close()
    assert NULL_TRACER.enabled is False


def test_as_tracer_normalizes_none():
    assert as_tracer(None) is NULL_TRACER
    tracer = CollectingTracer()
    assert as_tracer(tracer) is tracer


def test_collecting_tracer_collects_in_order():
    tracer = CollectingTracer()
    for event in STREAM:
        tracer.emit(event)
    assert tracer.events == STREAM
    assert tracer.tally(ev.LOOKUP) == 2
    assert tracer.tally(ev.LOOKUP, pid=1) == 1
    assert tracer.events_for(2) == [STREAM[-1]]
    tracer.clear()
    assert tracer.events == []


def test_jsonl_roundtrip_via_handle():
    handle = io.StringIO()
    tracer = JsonlTracer(handle)
    for event in STREAM:
        tracer.emit(event)
    tracer.close()                  # borrowed handle: flushed, not closed
    assert tracer.events_written == len(STREAM)
    lines = handle.getvalue().splitlines()
    assert [loads_event(line) for line in lines] == STREAM


def test_jsonl_owns_path(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with JsonlTracer(path) as tracer:
        for event in STREAM:
            tracer.emit(event)
    assert tracer.path == path
    with open(path, "r", encoding="ascii") as handle:
        assert [loads_event(line) for line in handle] == STREAM


def test_jsonl_lines_are_canonical():
    line = dumps_event(Event(ev.PIN, 1, 2, 3, 4))
    assert line == '{"frame":3,"kind":"pin","n":4,"page":2,"pid":1}'


def test_tee_fans_out_and_skips_disabled():
    a, b = CollectingTracer(), CollectingTracer()
    tee = TeeTracer(a, NullTracer(), None, b)
    for event in STREAM:
        tee.emit(event)
    assert a.events == STREAM
    assert b.events == STREAM


def test_tee_owns_only_on_request(tmp_path):
    handle = io.StringIO()
    owned = JsonlTracer(handle)
    TeeTracer(owned).close()
    owned.emit(STREAM[0])           # still open
    TeeTracer(owned, own=True).close()
    with pytest.raises(AttributeError):
        owned.emit(STREAM[0])       # handle released


def test_tee_rejects_unknown_kwargs():
    with pytest.raises(TypeError):
        TeeTracer(CollectingTracer(), frobnicate=True)
