#!/usr/bin/env python
"""Regenerate the golden event-trace files after an intentional change.

Usage (from the repository root)::

    PYTHONPATH=src python tests/obs/update_golden.py

Re-simulates the golden scenario for each mechanism and rewrites
``tests/obs/data/golden_trace.<mechanism>.jsonl``.  Review the diff
before committing: every changed line is a deliberate change to the
event emitters' ordering or payloads.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from golden_trace import (  # noqa: E402 (path set up just above)
    DATA_DIR,
    MECHANISMS,
    golden_events,
    golden_path,
)

from repro.obs.export import write_events_jsonl  # noqa: E402


def main():
    os.makedirs(DATA_DIR, exist_ok=True)
    for mechanism in MECHANISMS:
        events = golden_events(mechanism)
        path = golden_path(mechanism)
        write_events_jsonl(events, path)
        print("%s: %d events" % (os.path.relpath(path), len(events)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
