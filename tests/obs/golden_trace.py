"""The deterministic scenario behind the golden-trace regression test.

One small, fixed synthetic trace replayed under one fixed configuration,
per mechanism.  The resulting event streams are checked in as JSONL
(``tests/obs/data/golden_trace.<mechanism>.jsonl``); any change to the
emitters' ordering or payloads shows up as a line diff against those
files.  To bless an intentional change::

    PYTHONPATH=src python tests/obs/update_golden.py
"""

import os
import random

from repro.obs.tracer import CollectingTracer
from repro.params import PAGE_SIZE
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.simulator import simulate_node
from repro.traces.record import OP_FETCH, OP_SEND, TraceRecord

MECHANISMS = ("utlb", "intr")

DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")


def golden_path(mechanism):
    return os.path.join(DATA_DIR, "golden_trace.%s.jsonl" % mechanism)


def golden_records():
    """A fixed 2-process trace with reuse, evictions, and page crossings."""
    rng = random.Random(20260806)
    records = []
    for index in range(120):
        vpage = rng.randrange(24)
        records.append(TraceRecord(
            timestamp=index,
            node=0,
            pid=rng.randrange(2),
            op=OP_FETCH if index % 5 == 0 else OP_SEND,
            vaddr=vpage * PAGE_SIZE + rng.randrange(PAGE_SIZE),
            nbytes=rng.choice([128, 2048, PAGE_SIZE])))
    return records


def golden_config():
    """Small cache + tight pin limit: every event kind occurs."""
    return SimConfig(cache_entries=16, prefetch=2, prepin=2,
                     memory_limit_bytes=8 * PAGE_SIZE, seed=11)


def golden_events(mechanism):
    """The event stream of the golden scenario, freshly simulated."""
    simulate = {"utlb": simulate_node,
                "intr": simulate_node_intr}[mechanism]
    tracer = CollectingTracer()
    simulate(golden_records(), golden_config().replace(tracer=tracer))
    return tracer.events
