"""Sweep-runner and CLI integration of the observability layer.

``trace_dir`` turns a sweep into a tracing run: one JSONL dump per
traceable cell, identical numeric results, no cache interference, phase
timings in the metrics report.
"""

import json
import os

import pytest

from repro.obs.export import load_events_jsonl
from repro.obs.invariants import InvariantChecker
from repro.params import PAGE_SIZE
from repro.sim.config import SimConfig
from repro.sim.runner import PHASES, SweepCell, SweepRunner
from repro.__main__ import main

from tests.obs.test_event_counts import random_trace


def one_node_traces():
    return {0: random_trace(length=120)}


def make_cells(config):
    return [SweepCell("cell-a", one_node_traces(), config, "utlb"),
            SweepCell("cell-a", one_node_traces(), config, "intr"),
            SweepCell("cell-b", one_node_traces(), config, "pp")]


def test_trace_dir_dumps_identical_runs(tmp_path):
    config = SimConfig(cache_entries=64,
                       memory_limit_bytes=12 * PAGE_SIZE)
    trace_dir = str(tmp_path / "traces")
    with SweepRunner(trace_dir=trace_dir) as traced_runner:
        traced = traced_runner.run_cells(make_cells(config))
    with SweepRunner() as plain_runner:
        plain = plain_runner.run_cells(make_cells(config))

    # Observation is free: identical results, cell for cell.
    for traced_result, plain_result in zip(traced, plain):
        assert traced_result.to_dict() == plain_result.to_dict()

    # One dump per traceable cell; repeated labels get distinct files,
    # and the pp mechanism is never traced.
    names = sorted(os.listdir(trace_dir))
    assert names == ["cell-a.intr.jsonl", "cell-a.utlb.jsonl"]

    # Each dump is a live, invariant-clean stream.
    for name, mechanism in (("cell-a.utlb.jsonl", "utlb"),
                            ("cell-a.intr.jsonl", "intr")):
        events = load_events_jsonl(os.path.join(trace_dir, name))
        assert events
        checker = InvariantChecker(
            memory_limit_pages=config.memory_limit_pages,
            mechanism=mechanism)
        for event in events:
            checker.emit(event)
        checker.close()

    # Metrics carry the dump paths and the phase breakdown.
    cells = traced_runner.metrics.to_dict()["cells"]
    assert [c["trace_path"] is not None for c in cells] == [
        True, True, False]
    for cell in cells:
        assert set(cell["phases"]) == set(PHASES)
        assert cell["phases"]["replay_s"] > 0.0


def test_label_collisions_get_suffixes(tmp_path):
    config = SimConfig(cache_entries=64)
    trace_dir = str(tmp_path / "traces")
    with SweepRunner(trace_dir=trace_dir) as runner:
        runner.run_cells([
            SweepCell("same", one_node_traces(), config, "utlb"),
            SweepCell("same", one_node_traces(), config, "utlb"),
        ])
    assert sorted(os.listdir(trace_dir)) == [
        "same.utlb.2.jsonl", "same.utlb.jsonl"]


def test_traced_cells_bypass_the_result_cache(tmp_path):
    config = SimConfig(cache_entries=64)
    cache_dir = str(tmp_path / "cache")
    trace_dir = str(tmp_path / "traces")
    cell = ("warm", one_node_traces(), config, "utlb")
    with SweepRunner(cache_dir=cache_dir) as warmup:
        warmup.run_cells([cell])
    with SweepRunner(cache_dir=cache_dir, trace_dir=trace_dir) as runner:
        runner.run_cells([cell])
    # A warm cache must not swallow the replay: the events exist and the
    # cell reports a miss.
    assert os.listdir(trace_dir) == ["warm.utlb.jsonl"]
    assert runner.metrics.cells[0].cache_hit is False
    assert load_events_jsonl(os.path.join(trace_dir, "warm.utlb.jsonl"))


def test_parallel_traced_sweep_matches_serial(tmp_path):
    config = SimConfig(cache_entries=64)
    serial_dir = str(tmp_path / "serial")
    parallel_dir = str(tmp_path / "parallel")
    with SweepRunner(trace_dir=serial_dir) as runner:
        serial = runner.run_cells(make_cells(config))
    with SweepRunner(workers=2, trace_dir=parallel_dir) as runner:
        parallel = runner.run_cells(make_cells(config))
    for left, right in zip(serial, parallel):
        assert left.to_dict() == right.to_dict()
    for name in os.listdir(serial_dir):
        assert (load_events_jsonl(os.path.join(serial_dir, name))
                == load_events_jsonl(os.path.join(parallel_dir, name)))


def test_cli_trace_dir_and_chrome_export(tmp_path, capsys):
    trace_dir = str(tmp_path / "dumps")
    metrics_path = str(tmp_path / "metrics.json")
    assert main(["--only", "table4", "--scale", "0.04", "--nodes", "1",
                 "--no-cache", "--trace-dir", trace_dir,
                 "--chrome-trace", "fft-8192-utlb.utlb",
                 "--metrics-json", metrics_path]) == 0
    capsys.readouterr()
    names = os.listdir(trace_dir)
    assert "fft-8192-utlb.utlb.jsonl" in names
    assert "fft-8192-utlb.utlb.chrome.json" in names
    with open(os.path.join(trace_dir, "fft-8192-utlb.utlb.chrome.json"),
              "r", encoding="ascii") as handle:
        doc = json.load(handle)
    assert doc["traceEvents"]
    with open(metrics_path, "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    assert set(metrics["totals"]["phases"]) == set(PHASES)
    traced_cells = [c for c in metrics["cells"] if c["trace_path"]]
    assert traced_cells


def test_cli_chrome_trace_requires_trace_dir(capsys):
    with pytest.raises(SystemExit):
        main(["--only", "table1", "--chrome-trace", "x"])
