"""The streaming invariant checker against hand-crafted event streams."""

import pytest

from repro.core.stats import TranslationStats
from repro.obs import events as ev
from repro.obs.events import Event
from repro.obs.invariants import InvariantChecker, InvariantViolation


def feed(checker, *events):
    for event in events:
        checker.emit(event)
    return checker


def pin(pid, page, frame, n=1):
    return Event(ev.PIN, pid, page, frame, n)


# -- streaming rules ----------------------------------------------------------


def test_legal_utlb_lifecycle_passes():
    checker = InvariantChecker()
    feed(checker,
         Event(ev.LOOKUP, 1, 0x10),
         Event(ev.CHECK_MISS, 1, 0x10),
         pin(1, 0x10, 7),
         Event(ev.ENTRY_FETCH, 1, 0x10, None, 1),
         Event(ev.NI_FILL, 1, 0x10, 7, 1),
         Event(ev.LOOKUP, 1, 0x10),
         Event(ev.NI_HIT, 1, 0x10, 7),
         Event(ev.NI_INVALIDATE, 1, 0x10, 7),
         Event(ev.UNPIN, 1, 0x10))
    checker.close()
    assert checker.events_seen == 9


def test_rejects_unknown_mechanism():
    with pytest.raises(InvariantViolation):
        InvariantChecker(mechanism="smoke-signals")


def test_double_pin_violates():
    checker = feed(InvariantChecker(), pin(1, 0x10, 7))
    with pytest.raises(InvariantViolation, match="pinned twice"):
        checker.emit(pin(1, 0x10, 7))


def test_memory_limit_violation():
    checker = InvariantChecker(memory_limit_pages=1)
    checker.emit(pin(1, 0x10, 7))
    with pytest.raises(InvariantViolation, match="memory limit"):
        checker.emit(pin(1, 0x11, 8))


def test_limits_are_per_process():
    checker = InvariantChecker(memory_limit_pages=1)
    feed(checker, pin(1, 0x10, 7), pin(2, 0x10, 8))    # one page each: fine
    checker.close()


def test_unpin_without_pin_violates():
    with pytest.raises(InvariantViolation, match="matching prior PIN"):
        InvariantChecker().emit(Event(ev.UNPIN, 1, 0x10))


def test_unpin_while_cached_violates():
    checker = feed(InvariantChecker(),
                   pin(1, 0x10, 7),
                   Event(ev.NI_FILL, 1, 0x10, 7, 1))
    with pytest.raises(InvariantViolation, match="still live"):
        checker.emit(Event(ev.UNPIN, 1, 0x10))


def test_check_miss_on_pinned_page_violates():
    checker = feed(InvariantChecker(), pin(1, 0x10, 7))
    with pytest.raises(InvariantViolation, match="pinned"):
        checker.emit(Event(ev.CHECK_MISS, 1, 0x10))


def test_fill_of_unpinned_page_violates():
    with pytest.raises(InvariantViolation, match="unpinned"):
        InvariantChecker().emit(Event(ev.NI_FILL, 1, 0x10, 7, 1))


def test_fill_frame_mismatch_violates():
    checker = feed(InvariantChecker(), pin(1, 0x10, 7))
    with pytest.raises(InvariantViolation, match="disagrees"):
        checker.emit(Event(ev.NI_FILL, 1, 0x10, 8, 1))


def test_hit_without_live_entry_violates():
    checker = feed(InvariantChecker(), pin(1, 0x10, 7))
    with pytest.raises(InvariantViolation, match="not live"):
        checker.emit(Event(ev.NI_HIT, 1, 0x10, 7))


def test_hit_after_invalidate_without_refill_violates():
    checker = feed(InvariantChecker(),
                   pin(1, 0x10, 7),
                   Event(ev.NI_FILL, 1, 0x10, 7, 1),
                   Event(ev.NI_INVALIDATE, 1, 0x10))
    with pytest.raises(InvariantViolation, match="not live"):
        checker.emit(Event(ev.NI_HIT, 1, 0x10, 7))


def test_entries_are_per_process():
    checker = feed(InvariantChecker(),
                   pin(1, 0x10, 7),
                   Event(ev.NI_FILL, 1, 0x10, 7, 1))
    with pytest.raises(InvariantViolation, match="not live"):
        checker.emit(Event(ev.NI_HIT, 2, 0x10, 7))


def test_evict_of_dead_entry_violates():
    with pytest.raises(InvariantViolation, match="not live"):
        InvariantChecker().emit(Event(ev.NI_EVICT, 1, 0x10))


def test_entry_fetch_requires_pin_and_positive_block():
    with pytest.raises(InvariantViolation, match="non-positive"):
        InvariantChecker().emit(Event(ev.ENTRY_FETCH, 1, 0x10, None, 0))
    with pytest.raises(InvariantViolation, match="unpinned"):
        InvariantChecker().emit(Event(ev.ENTRY_FETCH, 1, 0x10, None, 1))


def test_interrupt_for_cached_page_violates():
    checker = feed(InvariantChecker(mechanism="intr"),
                   Event(ev.INTERRUPT, 1, 0x10),
                   pin(1, 0x10, 7),
                   Event(ev.NI_FILL, 1, 0x10, 7, 1))
    with pytest.raises(InvariantViolation, match="cached"):
        checker.emit(Event(ev.INTERRUPT, 1, 0x10))


# -- the baseline's unpin-exactly-on-evict rule --------------------------------


def intr_miss(checker, pid, page, frame):
    feed(checker,
         Event(ev.LOOKUP, pid, page),
         Event(ev.INTERRUPT, pid, page),
         pin(pid, page, frame),
         Event(ev.NI_FILL, pid, page, frame, 1))


def test_intr_unpin_on_evict_passes():
    checker = InvariantChecker(mechanism="intr")
    intr_miss(checker, 1, 0x10, 7)
    feed(checker,
         Event(ev.NI_EVICT, 1, 0x10),
         Event(ev.UNPIN, 1, 0x10))
    checker.close()


def test_intr_unpin_without_evict_violates():
    checker = InvariantChecker(mechanism="intr")
    # Pinned but never filled: not cached (so the shared still-live rule
    # stays quiet) and not just evicted — only the baseline rule trips.
    feed(checker,
         Event(ev.LOOKUP, 1, 0x11),
         Event(ev.INTERRUPT, 1, 0x11),
         pin(1, 0x11, 8))
    with pytest.raises(InvariantViolation, match="not just evicted"):
        checker.emit(Event(ev.UNPIN, 1, 0x11))


def test_intr_evict_without_unpin_fails_at_close():
    checker = InvariantChecker(mechanism="intr")
    intr_miss(checker, 1, 0x10, 7)
    checker.emit(Event(ev.NI_EVICT, 1, 0x10))
    with pytest.raises(InvariantViolation, match="evicted-but-still-pinned"):
        checker.close()


def test_utlb_translations_outlive_evictions():
    # Under UTLB an eviction requires no unpin: close() must not object.
    checker = InvariantChecker()
    feed(checker,
         pin(1, 0x10, 7),
         Event(ev.NI_FILL, 1, 0x10, 7, 1),
         Event(ev.NI_EVICT, 1, 0x10))
    checker.close()


# -- end-of-run counter verification -------------------------------------------


def run_small_stream():
    checker = InvariantChecker()
    feed(checker,
         Event(ev.LOOKUP, 1, 0x10),
         Event(ev.CHECK_MISS, 1, 0x10),
         pin(1, 0x10, 7, n=2),
         pin(1, 0x11, 8, n=None),       # second page of the same call
         Event(ev.ENTRY_FETCH, 1, 0x10, None, 2),
         Event(ev.NI_FILL, 1, 0x10, 7, 1),
         Event(ev.LOOKUP, 1, 0x11),
         Event(ev.ENTRY_FETCH, 1, 0x11, None, 1),
         Event(ev.NI_FILL, 1, 0x11, 8, 1),
         Event(ev.LOOKUP, 1, 0x10),
         Event(ev.NI_HIT, 1, 0x10, 7))
    return checker


def matching_stats():
    stats = TranslationStats()
    stats.lookups = 3
    stats.check_misses = 1
    stats.ni_accesses = 3
    stats.ni_hits = 1
    stats.ni_misses = 2
    stats.pin_calls = 1
    stats.pages_pinned = 2
    stats.entries_fetched = 3
    return stats


def test_verify_stats_accepts_matching_counters():
    run_small_stream().verify_stats({1: matching_stats()})


@pytest.mark.parametrize("field,delta", [
    ("lookups", 1),
    ("check_misses", -1),
    ("ni_hits", 1),
    ("ni_misses", -1),
    ("ni_evictions", 1),
    ("pin_calls", 1),
    ("pages_pinned", -1),
    ("unpin_calls", 1),
    ("entries_fetched", 2),
])
def test_verify_stats_catches_each_field(field, delta):
    stats = matching_stats()
    setattr(stats, field, getattr(stats, field) + delta)
    with pytest.raises(InvariantViolation, match=field):
        run_small_stream().verify_stats({1: stats})


def test_verify_stats_rejects_unknown_pids():
    checker = run_small_stream()
    with pytest.raises(InvariantViolation, match="no stats"):
        checker.verify_stats({2: TranslationStats()})


def test_verify_cache_accepts_and_catches():
    checker = run_small_stream()
    snapshot = {"accesses": 3, "hits": 1, "misses": 2, "fills": 2,
                "evictions": 0, "invalidations": 0}
    checker.verify_cache(snapshot)
    snapshot["fills"] = 3
    with pytest.raises(InvariantViolation, match="fills"):
        checker.verify_cache(snapshot)
