"""JSONL round-trips and Chrome trace-event conversion."""

import json

from repro.obs import events as ev
from repro.obs.events import Event
from repro.obs.export import (
    KIND_TIDS,
    chrome_trace,
    load_events_jsonl,
    main,
    write_chrome_trace,
    write_events_jsonl,
)

STREAM = [
    Event(ev.LOOKUP, 1, 0x10),
    Event(ev.PIN, 1, 0x10, 7, 1),
    Event(ev.NI_FILL, 1, 0x10, 7, 1),
    Event(ev.NI_INVALIDATE, 1, 0x10),
    Event(ev.UNPIN, 1, 0x10),
    Event(ev.PIN, 2, 0x20, 9, 1),
]


def test_jsonl_file_roundtrip(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    write_events_jsonl(STREAM, path)
    assert load_events_jsonl(path) == STREAM


def test_jsonl_skips_blank_lines(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    write_events_jsonl(STREAM, path)
    with open(path, "a", encoding="ascii") as handle:
        handle.write("\n\n")
    assert load_events_jsonl(path) == STREAM


def test_chrome_instants_track_the_stream():
    doc = chrome_trace(STREAM)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == [e.kind for e in STREAM]
    assert [e["ts"] for e in instants] == list(range(len(STREAM)))
    assert all(e["tid"] == KIND_TIDS[e["name"]] for e in instants)
    # Payloads surface in args; pages render as hex strings.
    fill = instants[2]
    assert fill["args"] == {"page": "0x10", "frame": 7, "n": 1}


def test_chrome_pin_spans_pair_up():
    doc = chrome_trace(STREAM)
    spans = [e for e in doc["traceEvents"] if e["cat"] == "pin"]
    begins = [e for e in spans if e["ph"] == "b"]
    ends = [e for e in spans if e["ph"] == "e"]
    assert len(begins) == len(ends) == 2
    closed = {e["id"]: e for e in ends}
    for begin in begins:
        assert begin["id"] in closed
        assert closed[begin["id"]]["ts"] >= begin["ts"]
    # pid 2's page is never unpinned: its span closes at end-of-stream.
    trailing = [e for e in ends if e["pid"] == 2]
    assert trailing and trailing[0]["ts"] == len(STREAM)


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = str(tmp_path / "cell.chrome.json")
    write_chrome_trace(STREAM, path)
    with open(path, "r", encoding="ascii") as handle:
        doc = json.load(handle)
    assert doc == chrome_trace(STREAM)


def test_cli_converts(tmp_path, capsys):
    source = str(tmp_path / "cell.jsonl")
    target = str(tmp_path / "out.json")
    write_events_jsonl(STREAM, source)
    assert main([source, "-o", target]) == 0
    with open(target, "r", encoding="ascii") as handle:
        assert json.load(handle) == chrome_trace(STREAM)
    assert "%d events" % len(STREAM) in capsys.readouterr().out
