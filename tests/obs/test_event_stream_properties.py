"""Property-based well-formedness of the event stream.

For random traces under random configurations, the emitted stream must
satisfy the ordering contract of :mod:`repro.obs.events` — checked here
by a direct, self-contained walk over the stream (deliberately not via
:class:`InvariantChecker`, so the checker itself has an independent
witness):

* a page's ``PIN`` precedes any ``NI_FILL`` of that page;
* ``UNPIN`` happens only on currently pinned pages, and never while the
  page's translation is live in the NIC cache;
* after ``NI_INVALIDATE``/``NI_EVICT``, no ``NI_HIT`` for that entry
  until a fresh ``NI_FILL``.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.obs import events as ev
from repro.obs.tracer import CollectingTracer
from repro.params import PAGE_SIZE
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.simulator import simulate_node
from repro.traces.record import OP_SEND, TraceRecord

SIMULATORS = {"utlb": simulate_node, "intr": simulate_node_intr}


def build_trace(seed, num_pids, num_pages, length):
    rng = random.Random(seed)
    return [TraceRecord(
        timestamp=index,
        node=0,
        pid=rng.randrange(num_pids),
        op=OP_SEND,
        vaddr=rng.randrange(num_pages) * PAGE_SIZE + rng.randrange(PAGE_SIZE),
        nbytes=rng.choice([64, 1024, PAGE_SIZE]))
        for index in range(length)]


def assert_well_formed(events):
    pinned = set()                  # (pid, page)
    live = set()                    # (pid, page) with a live NIC entry
    for position, event in enumerate(events):
        key = (event.pid, event.page)
        where = "event %d: %r" % (position, event)
        if event.kind == ev.PIN:
            assert key not in pinned, "re-pin without unpin at %s" % where
            pinned.add(key)
        elif event.kind == ev.UNPIN:
            assert key in pinned, "unpin of unpinned page at %s" % where
            assert key not in live, (
                "unpin while NIC entry live at %s" % where)
            pinned.discard(key)
        elif event.kind == ev.NI_FILL:
            assert key in pinned, "fill before pin at %s" % where
            live.add(key)
        elif event.kind == ev.NI_HIT:
            assert key in live, (
                "hit after invalidate/evict without refill at %s" % where)
        elif event.kind in (ev.NI_EVICT, ev.NI_INVALIDATE):
            assert key in live, "drop of dead entry at %s" % where
            live.discard(key)


@settings(deadline=None)
@given(
    seed=st.integers(0, 2**20),
    num_pids=st.integers(1, 3),
    num_pages=st.integers(8, 64),
    length=st.integers(5, 120),
    cache_entries=st.sampled_from([16, 64]),
    prefetch=st.integers(1, 4),
    prepin=st.integers(1, 4),
    limit_pages=st.one_of(st.none(), st.integers(4, 16)),
    policy=st.sampled_from(["lru", "mru", "random"]),
    mechanism=st.sampled_from(sorted(SIMULATORS)),
)
def test_streams_are_well_formed(seed, num_pids, num_pages, length,
                                 cache_entries, prefetch, prepin,
                                 limit_pages, policy, mechanism):
    records = build_trace(seed, num_pids, num_pages, length)
    config = SimConfig(
        cache_entries=cache_entries,
        prefetch=prefetch,
        prepin=prepin,
        memory_limit_bytes=(None if limit_pages is None
                            else limit_pages * PAGE_SIZE),
        pin_policy=policy,
        seed=seed)
    tracer = CollectingTracer()
    SIMULATORS[mechanism](records, config.replace(tracer=tracer))
    assert tracer.events
    assert_well_formed(tracer.events)
