"""Event record construction and serialization."""

import pytest

from repro.obs import events as ev
from repro.obs.events import EVENT_KINDS, Event


def test_kinds_are_unique_and_complete():
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS) == 10
    for kind in (ev.LOOKUP, ev.CHECK_MISS, ev.PIN, ev.UNPIN, ev.NI_FILL,
                 ev.NI_HIT, ev.NI_EVICT, ev.NI_INVALIDATE, ev.ENTRY_FETCH,
                 ev.INTERRUPT):
        assert kind in EVENT_KINDS


def test_payload_defaults():
    event = Event(ev.LOOKUP, 1, 0x42)
    assert event.kind == ev.LOOKUP
    assert event.pid == 1
    assert event.page == 0x42
    assert event.frame is None
    assert event.n is None


def test_events_are_tuples():
    event = Event(ev.PIN, 1, 0x42, 7, 2)
    assert event == (ev.PIN, 1, 0x42, 7, 2)
    assert hash(event) == hash((ev.PIN, 1, 0x42, 7, 2))


def test_to_dict_omits_none_payloads():
    assert Event(ev.LOOKUP, 1, 2).to_dict() == {
        "kind": ev.LOOKUP, "pid": 1, "page": 2}
    assert Event(ev.PIN, 1, 2, 3, 4).to_dict() == {
        "kind": ev.PIN, "pid": 1, "page": 2, "frame": 3, "n": 4}


@pytest.mark.parametrize("kind", EVENT_KINDS)
def test_dict_roundtrip(kind):
    for event in (Event(kind, 0, 0), Event(kind, 3, 0x99, 12, 2)):
        assert Event.from_dict(event.to_dict()) == event


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Event.from_dict({"kind": "warp_core_breach", "pid": 1, "page": 2})


def test_repr_is_compact():
    text = repr(Event(ev.NI_FILL, 2, 0x1000, 5, 1))
    assert "ni_fill" in text
    assert "0x1000" in text
    assert "frame=5" in text
    assert "n=1" in text
