"""Physical memory: frames, pinning, contents."""

import pytest

from repro import params
from repro.errors import AddressError, CapacityError
from repro.memsim.physical import PhysicalMemory


def small_memory(frames=4):
    return PhysicalMemory(total_bytes=frames * params.PAGE_SIZE)


class TestAllocation:
    def test_allocate_returns_distinct_frames(self):
        mem = small_memory()
        frames = {mem.allocate() for _ in range(4)}
        assert len(frames) == 4

    def test_exhaustion_raises(self):
        mem = small_memory(2)
        mem.allocate()
        mem.allocate()
        with pytest.raises(CapacityError):
            mem.allocate()

    def test_free_recycles(self):
        mem = small_memory(1)
        frame = mem.allocate()
        mem.free(frame)
        assert mem.allocate() == frame

    def test_free_unallocated_raises(self):
        with pytest.raises(AddressError):
            small_memory().free(0)

    def test_counters(self):
        mem = small_memory()
        frame = mem.allocate()
        mem.free(frame)
        assert mem.allocations == 1
        assert mem.frees == 1
        assert mem.free_frames == 4
        assert mem.allocated_frames == 0

    def test_owner_recorded(self):
        mem = small_memory()
        frame = mem.allocate(owner_pid=7)
        assert mem.frame(frame).owner_pid == 7

    def test_too_small_memory_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(total_bytes=100)


class TestPinning:
    def test_pin_blocks_free(self):
        mem = small_memory()
        frame = mem.allocate()
        mem.pin_frame(frame)
        with pytest.raises(AddressError):
            mem.free(frame)

    def test_unpin_allows_free(self):
        mem = small_memory()
        frame = mem.allocate()
        mem.pin_frame(frame)
        mem.unpin_frame(frame)
        mem.free(frame)

    def test_pin_counts_nest(self):
        mem = small_memory()
        frame = mem.allocate()
        mem.pin_frame(frame)
        mem.pin_frame(frame)
        mem.unpin_frame(frame)
        with pytest.raises(AddressError):
            mem.free(frame)

    def test_unpin_unpinned_raises(self):
        mem = small_memory()
        frame = mem.allocate()
        with pytest.raises(AddressError):
            mem.unpin_frame(frame)

    def test_pinned_frames_listing(self):
        mem = small_memory()
        a = mem.allocate()
        b = mem.allocate()
        mem.pin_frame(b)
        assert mem.pinned_frames() == [b]
        assert a not in mem.pinned_frames()


class TestContents:
    def test_untouched_frame_reads_zero(self):
        mem = small_memory()
        frame = mem.allocate()
        assert mem.read(frame, 0, 8) == bytes(8)

    def test_write_read_roundtrip(self):
        mem = small_memory()
        frame = mem.allocate()
        mem.write(frame, 100, b"hello")
        assert mem.read(frame, 100, 5) == b"hello"
        assert mem.read(frame, 99, 1) == b"\x00"

    def test_cross_frame_access_rejected(self):
        mem = small_memory()
        frame = mem.allocate()
        with pytest.raises(AddressError):
            mem.read(frame, params.PAGE_SIZE - 2, 4)
        with pytest.raises(AddressError):
            mem.write(frame, params.PAGE_SIZE - 2, b"abcd")

    def test_freed_frame_contents_cleared(self):
        mem = small_memory(1)
        frame = mem.allocate()
        mem.write(frame, 0, b"secret")
        mem.free(frame)
        frame2 = mem.allocate()
        assert mem.read(frame2, 0, 6) == bytes(6)

    def test_access_to_unallocated_frame_rejected(self):
        with pytest.raises(AddressError):
            small_memory().read(0, 0, 4)
