"""The OS pin/unpin facility: batching, atomicity, cost accounting."""

import pytest

from repro import params
from repro.core.costs import CostModel
from repro.errors import PinningError
from repro.memsim.address_space import AddressSpace
from repro.memsim.physical import PhysicalMemory
from repro.memsim.pinning import PinFacility


@pytest.fixture
def space():
    return AddressSpace(1, PhysicalMemory(64 * params.PAGE_SIZE))


class TestBatching:
    def test_pin_pages_returns_frames(self, space):
        facility = PinFacility()
        frames = facility.pin_pages(space, [1, 2, 3])
        assert set(frames) == {1, 2, 3}
        assert all(space.is_pinned(v) for v in (1, 2, 3))

    def test_one_call_counted_per_batch(self, space):
        facility = PinFacility()
        facility.pin_pages(space, [1, 2, 3])
        facility.unpin_pages(space, [1, 2])
        assert facility.stats.pin_calls == 1
        assert facility.stats.pages_pinned == 3
        assert facility.stats.unpin_calls == 1
        assert facility.stats.pages_unpinned == 2

    def test_pin_atomic_on_conflict(self, space):
        facility = PinFacility()
        facility.pin_pages(space, [2])
        with pytest.raises(PinningError):
            facility.pin_pages(space, [1, 2, 3])
        # Nothing from the failed batch is pinned.
        assert not space.is_pinned(1)
        assert not space.is_pinned(3)

    def test_unpin_atomic_on_missing(self, space):
        facility = PinFacility()
        facility.pin_pages(space, [1])
        with pytest.raises(PinningError):
            facility.unpin_pages(space, [1, 2])
        assert space.is_pinned(1)


class TestCostAccounting:
    def test_user_rates_charged(self, space):
        facility = PinFacility(cost_model=CostModel())
        facility.pin_pages(space, [1])
        assert facility.stats.time_us == pytest.approx(27.0)
        facility.unpin_pages(space, [1])
        assert facility.stats.time_us == pytest.approx(27.0 + 25.0)

    def test_kernel_rates_exclude_context_switch(self, space):
        facility = PinFacility(cost_model=CostModel(), in_kernel=True)
        facility.pin_pages(space, [1])
        assert facility.stats.time_us == pytest.approx(17.0)

    def test_batch_cost_sublinear(self, space):
        facility = PinFacility(cost_model=CostModel())
        facility.pin_pages(space, list(range(16)))
        assert facility.stats.time_us == pytest.approx(70.0)   # not 16*27

    def test_no_cost_model_no_time(self, space):
        facility = PinFacility()
        facility.pin_pages(space, [1])
        assert facility.stats.time_us == 0.0
