"""The simulated OS: processes, syscalls, ioctl dispatch, interrupts."""

import pytest

from repro.errors import ConfigError, ProtectionError
from repro.memsim.os_kernel import SimulatedOS


@pytest.fixture
def os_sim():
    return SimulatedOS()


class TestProcesses:
    def test_auto_pid_assignment(self, os_sim):
        a = os_sim.create_process()
        b = os_sim.create_process()
        assert a.pid != b.pid

    def test_explicit_pid(self, os_sim):
        p = os_sim.create_process(pid=42)
        assert os_sim.process(42) is p

    def test_duplicate_pid_rejected(self, os_sim):
        os_sim.create_process(pid=42)
        with pytest.raises(ConfigError):
            os_sim.create_process(pid=42)

    def test_unknown_pid_raises(self, os_sim):
        with pytest.raises(ProtectionError):
            os_sim.process(99)

    def test_destroy_releases_memory(self, os_sim):
        p = os_sim.create_process()
        p.space.pin(1)
        os_sim.destroy_process(p.pid)
        assert os_sim.physical.allocated_frames == 0
        with pytest.raises(ProtectionError):
            os_sim.process(p.pid)

    def test_explicit_then_auto_pid_no_collision(self, os_sim):
        os_sim.create_process(pid=5)
        p = os_sim.create_process()
        assert p.pid != 5


class TestSyscalls:
    def test_sys_pin_counts_syscall(self, os_sim):
        p = os_sim.create_process()
        frames = os_sim.sys_pin(p.pid, [1, 2])
        assert len(frames) == 2
        assert p.syscalls == 1
        assert os_sim.syscalls == 1

    def test_sys_unpin(self, os_sim):
        p = os_sim.create_process()
        os_sim.sys_pin(p.pid, [1])
        assert os_sim.sys_unpin(p.pid, [1]) == 1
        assert not p.space.is_pinned(1)


class TestIoctl:
    def test_dispatch_to_registered_driver(self, os_sim):
        calls = []
        os_sim.register_ioctl("dev", lambda pid, req, **kw:
                              calls.append((pid, req, kw)) or "ok")
        p = os_sim.create_process()
        assert os_sim.ioctl(p.pid, "dev", "ping", x=1) == "ok"
        assert calls == [(p.pid, "ping", {"x": 1})]
        assert p.syscalls == 1

    def test_unknown_device_raises(self, os_sim):
        p = os_sim.create_process()
        with pytest.raises(ConfigError):
            os_sim.ioctl(p.pid, "nodev", "ping")

    def test_duplicate_driver_rejected(self, os_sim):
        os_sim.register_ioctl("dev", lambda *a, **k: None)
        with pytest.raises(ConfigError):
            os_sim.register_ioctl("dev", lambda *a, **k: None)

    def test_ioctl_requires_valid_process(self, os_sim):
        os_sim.register_ioctl("dev", lambda *a, **k: None)
        with pytest.raises(ProtectionError):
            os_sim.ioctl(99, "dev", "ping")


class TestInterrupts:
    def test_dispatch(self, os_sim):
        seen = []
        os_sim.register_interrupt("vec", lambda **kw: seen.append(kw))
        os_sim.raise_interrupt("vec", data=5)
        assert seen == [{"data": 5}]
        assert os_sim.interrupts_delivered == 1

    def test_unhandled_vector_raises(self, os_sim):
        with pytest.raises(ConfigError):
            os_sim.raise_interrupt("vec")
