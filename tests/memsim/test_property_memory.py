"""Property-based testing of the memory substrate.

Random interleavings of touch/pin/unpin/swap/write against a plain dict
model: the address space must preserve contents across every transition
and never violate the pinning guarantee.
"""

from hypothesis import given, settings, strategies as st

from repro import params
from repro.errors import PinningError
from repro.memsim.address_space import AddressSpace
from repro.memsim.physical import PhysicalMemory

PAGES = 8

ops = st.lists(
    st.tuples(
        st.sampled_from(["touch", "pin", "unpin", "swap_out", "write",
                         "read"]),
        st.integers(min_value=0, max_value=PAGES - 1),
        st.integers(min_value=0, max_value=255)),
    max_size=80)


class TestAddressSpaceModel:
    @settings(max_examples=40, deadline=None)
    @given(ops=ops)
    def test_contents_and_pins_track_model(self, ops):
        space = AddressSpace(1, PhysicalMemory(32 * params.PAGE_SIZE))
        contents = {}           # page -> last written fill byte
        pinned = set()

        for op, page, fill in ops:
            vaddr = page * params.PAGE_SIZE
            if op == "touch":
                space.touch(page)
            elif op == "pin":
                if page in pinned:
                    try:
                        space.pin(page)
                        assert False, "double pin must raise"
                    except PinningError:
                        pass
                else:
                    space.pin(page)
                    pinned.add(page)
            elif op == "unpin":
                if page in pinned:
                    space.unpin(page)
                    pinned.remove(page)
                else:
                    try:
                        space.unpin(page)
                        assert False, "unpin of unpinned must raise"
                    except PinningError:
                        pass
            elif op == "swap_out":
                if page in pinned:
                    try:
                        space.swap_out(page)
                        assert False, "swap of pinned must raise"
                    except PinningError:
                        pass
                elif space.is_resident(page):
                    space.swap_out(page)
            elif op == "write":
                space.write(vaddr, bytes([fill]) * 64)
                contents[page] = fill
            elif op == "read":
                expected = bytes([contents.get(page, 0)]) * 64
                if page not in contents:
                    expected = bytes(64)
                assert space.read(vaddr, 64) == expected

        # Final audit: every written page still holds its data (resident
        # or swapped), and the pinned set matches.
        for page, fill in contents.items():
            assert space.read(page * params.PAGE_SIZE, 64) == \
                bytes([fill]) * 64
        assert set(space.pinned_pages()) == pinned
        for page in pinned:
            assert space.is_resident(page)

    @settings(max_examples=30, deadline=None)
    @given(pages=st.lists(st.integers(min_value=0, max_value=PAGES - 1),
                          min_size=1, max_size=30))
    def test_swap_roundtrip_preserves_every_byte(self, pages):
        space = AddressSpace(1, PhysicalMemory(32 * params.PAGE_SIZE))
        for index, page in enumerate(pages):
            space.write(page * params.PAGE_SIZE, bytes([index % 251]) * 128)
        expected = {}
        for index, page in enumerate(pages):
            expected[page] = bytes([index % 251]) * 128   # last write wins
        for page in set(pages):
            space.swap_out(page)
            assert not space.is_resident(page)
        for page, data in expected.items():
            assert space.read(page * params.PAGE_SIZE, 128) == data
