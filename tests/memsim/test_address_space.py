"""Per-process address spaces: demand paging, pinning, swapping, data."""

import pytest

from repro import params
from repro.errors import AddressError, PinningError
from repro.memsim.address_space import AddressSpace
from repro.memsim.physical import PhysicalMemory


@pytest.fixture
def space():
    return AddressSpace(1, PhysicalMemory(64 * params.PAGE_SIZE))


class TestDemandPaging:
    def test_touch_allocates_once(self, space):
        frame = space.touch(5)
        assert space.touch(5) == frame
        assert space.page_faults == 1

    def test_not_resident_initially(self, space):
        assert not space.is_resident(5)

    def test_frame_of_nonresident_raises(self, space):
        with pytest.raises(AddressError):
            space.frame_of(5)

    def test_translate(self, space):
        space.touch(2)
        frame, offset = space.translate(2 * params.PAGE_SIZE + 17)
        assert frame == space.frame_of(2)
        assert offset == 17


class TestPinning:
    def test_pin_makes_resident(self, space):
        space.pin(5)
        assert space.is_resident(5)
        assert space.is_pinned(5)
        assert space.pinned_count == 1

    def test_double_pin_raises(self, space):
        space.pin(5)
        with pytest.raises(PinningError):
            space.pin(5)

    def test_unpin(self, space):
        space.pin(5)
        space.unpin(5)
        assert not space.is_pinned(5)
        assert space.is_resident(5)     # still resident, just unpinned

    def test_unpin_unpinned_raises(self, space):
        with pytest.raises(PinningError):
            space.unpin(5)

    def test_pinned_pages_sorted(self, space):
        for page in (9, 2, 5):
            space.pin(page)
        assert space.pinned_pages() == [2, 5, 9]


class TestSwapping:
    def test_swap_out_frees_frame(self, space):
        space.touch(5)
        before = space.physical.allocated_frames
        space.swap_out(5)
        assert space.physical.allocated_frames == before - 1
        assert not space.is_resident(5)

    def test_swap_preserves_contents(self, space):
        space.write(5 * params.PAGE_SIZE, b"persistent")
        space.swap_out(5)
        assert space.read(5 * params.PAGE_SIZE, 10) == b"persistent"
        assert space.swap_ins == 1

    def test_pinned_page_cannot_swap(self, space):
        space.pin(5)
        with pytest.raises(PinningError):
            space.swap_out(5)

    def test_pinning_guarantee_under_memory_pressure(self):
        """The whole point of pinning: pinned pages keep their frames even
        when everything else must be evicted."""
        mem = PhysicalMemory(4 * params.PAGE_SIZE)
        space = AddressSpace(1, mem)
        pinned_frame = space.pin(0)
        for page in (1, 2, 3):
            space.touch(page)
        # Memory full: swap the unpinned pages out, pinned stays put.
        for page in (1, 2, 3):
            space.swap_out(page)
        assert space.frame_of(0) == pinned_frame


class TestDataAccess:
    def test_write_read_roundtrip_across_pages(self, space):
        data = bytes(range(256)) * 40       # 10240 bytes: 3 pages
        space.write(0x1F00, data)
        assert space.read(0x1F00, len(data)) == data

    def test_read_faults_pages_in(self, space):
        space.read(0, 10)
        assert space.page_faults == 1


class TestDestroy:
    def test_destroy_releases_everything(self, space):
        space.pin(1)
        space.touch(2)
        space.destroy()
        assert space.physical.allocated_frames == 0
        assert space.pinned_count == 0
