"""The SVM protocol: states, fetches, diff propagation, invalidation."""

import pytest

from repro import params
from repro.svm import CLEAN, DIRTY, INVALID, SvmCluster


@pytest.fixture
def svm():
    return SvmCluster(num_ranks=2, region_pages=8, nodes=2)


PAGE = params.PAGE_SIZE


class TestStates:
    def test_home_pages_always_valid(self, svm):
        memory = svm.memory(0)
        assert memory.state_of(0) == CLEAN       # rank 0 homes pages 0-3
        assert memory.state_of(4) == INVALID     # rank 1's home

    def test_read_fetches_remote_page(self, svm):
        svm.scatter(4 * PAGE, b"remote-data")
        memory = svm.memory(0)
        assert memory.read(4 * PAGE, 11) == b"remote-data"
        assert memory.state_of(4) == CLEAN
        assert memory.fetches == 1

    def test_second_read_no_fetch(self, svm):
        memory = svm.memory(0)
        memory.read(4 * PAGE, 4)
        memory.read(4 * PAGE + 100, 4)
        assert memory.fetches == 1

    def test_write_creates_twin_and_dirty_state(self, svm):
        memory = svm.memory(0)
        memory.write(4 * PAGE, b"dirty")
        assert memory.state_of(4) == DIRTY
        assert memory.twin_of(4) is not None
        memory.check_invariants()

    def test_home_write_needs_no_twin(self, svm):
        memory = svm.memory(0)
        memory.write(0, b"home-write")
        assert memory.dirty_pages() == []
        assert memory.twin_of(0) is None


class TestBarrierPropagation:
    def test_write_visible_to_other_rank_after_barrier(self, svm):
        svm.memory(0).write(4 * PAGE, b"from-rank0")    # rank 1's home
        svm.barrier()
        assert svm.memory(1).read(4 * PAGE, 10) == b"from-rank0"

    def test_write_not_visible_before_barrier(self, svm):
        svm.scatter(4 * PAGE, bytes(16))
        svm.memory(1).read(4 * PAGE, 16)     # rank 1 reads its own home
        svm.memory(0).write(4 * PAGE, b"pending")
        # Rank 1's (home) copy is authoritative until the release.
        assert svm.memory(1).read(4 * PAGE, 7) == bytes(7)

    def test_disjoint_writers_both_survive(self, svm):
        svm.memory(0).write(4 * PAGE + 0, b"AAAA")
        svm.memory(1).write(4 * PAGE + 64, b"BBBB")   # rank 1 is home
        svm.barrier()
        assert svm.gather(4 * PAGE, 4) == b"AAAA"
        assert svm.gather(4 * PAGE + 64, 4) == b"BBBB"

    def test_invalidation_forces_refetch(self, svm):
        reader = svm.memory(0)
        reader.read(4 * PAGE, 4)
        fetches = reader.fetches
        svm.memory(1).write(4 * PAGE, b"new")    # home writes
        svm.barrier()
        reader.read(4 * PAGE, 4)
        assert reader.fetches == fetches + 1

    def test_untouched_pages_stay_cached(self, svm):
        reader = svm.memory(0)
        reader.read(5 * PAGE, 4)
        fetches = reader.fetches
        svm.memory(1).write(4 * PAGE, b"elsewhere")
        svm.barrier()
        reader.read(5 * PAGE, 4)
        assert reader.fetches == fetches      # page 5 was never written

    def test_diff_traffic_counted(self, svm):
        svm.memory(0).write(4 * PAGE, b"x" * 10)
        svm.barrier()
        assert svm.diff_stores >= 1
        assert svm.diff_bytes >= 10

    def test_clean_copy_after_own_write_refetches(self, svm):
        writer = svm.memory(0)
        writer.write(4 * PAGE, b"mine")
        svm.barrier()
        # The writer's own copy was released; re-reading refetches the
        # merged authoritative page.
        assert writer.state_of(4) == INVALID
        assert writer.read(4 * PAGE, 4) == b"mine"


class TestScatterGather:
    def test_roundtrip(self, svm):
        payload = bytes(range(256)) * 48      # 3 pages
        svm.scatter(PAGE, payload)
        assert svm.gather(PAGE, len(payload)) == payload

    def test_gather_crosses_home_boundary(self, svm):
        svm.scatter(3 * PAGE, b"A" * PAGE + b"B" * PAGE)  # pages 3 and 4
        raw = svm.gather(3 * PAGE, 2 * PAGE)
        assert raw == b"A" * PAGE + b"B" * PAGE


class TestUtlbIntegration:
    def test_svm_traffic_flows_through_utlb(self, svm):
        svm.memory(0).read(4 * PAGE, 4)
        svm.memory(0).write(4 * PAGE, b"w")
        svm.barrier()
        stats = svm.translation_stats()
        assert stats.lookups > 0
        assert stats.interrupts == 0          # the UTLB promise holds
        svm.check_invariants()

    def test_exported_home_pages_are_pinned(self, svm):
        library = svm.library(0)
        first_home_page = svm.region.vaddr(0) >> params.PAGE_SHIFT
        assert library.utlb.bitvector.test(first_home_page)


class TestMultiRankScaling:
    def test_four_ranks_two_nodes(self):
        svm = SvmCluster(num_ranks=4, region_pages=16, nodes=2)
        for rank in range(4):
            svm.memory(rank).write(rank * 4 * PAGE + 128, b"r%d" % rank)
        svm.barrier()
        for rank in range(4):
            assert svm.gather(rank * 4 * PAGE + 128, 2) == b"r%d" % rank
        svm.check_invariants()

    def test_intra_node_ranks_communicate(self):
        """Two ranks on the same node: data moves through the NIC's
        local loop-back path, not the fabric."""
        svm = SvmCluster(num_ranks=2, region_pages=4, nodes=1)
        svm.memory(0).write(2 * PAGE, b"same-node")
        svm.barrier()
        assert svm.memory(1).read(2 * PAGE, 9) == b"same-node"
