"""Diff computation and application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.svm.diffs import apply_diffs, compute_diffs, diff_bytes


class TestComputeDiffs:
    def test_identical_pages_no_diffs(self):
        page = bytes(range(256))
        assert compute_diffs(page, page) == []

    def test_single_changed_byte(self):
        twin = bytes(256)
        current = bytearray(256)
        current[100] = 7
        diffs = compute_diffs(twin, bytes(current))
        assert diffs == [(100, b"\x07")]

    def test_distant_runs_stay_separate(self):
        twin = bytes(256)
        current = bytearray(256)
        current[0] = 1
        current[200] = 2
        diffs = compute_diffs(twin, bytes(current))
        assert len(diffs) == 2

    def test_nearby_runs_stay_exact(self):
        """Runs carry changed bytes only — a nearby pair must not be
        coalesced into one run that would ship unchanged gap bytes."""
        twin = bytes(256)
        current = bytearray(256)
        current[0] = 1
        current[10] = 2
        diffs = compute_diffs(twin, bytes(current))
        assert diffs == [(0, b"\x01"), (10, b"\x02")]

    def test_contiguous_changes_form_one_run(self):
        twin = bytes(256)
        current = bytearray(256)
        current[5:9] = b"wxyz"
        diffs = compute_diffs(twin, bytes(current))
        assert diffs == [(5, b"wxyz")]

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=64, max_size=64),
           st.binary(min_size=64, max_size=64))
    def test_runs_contain_only_changed_bytes(self, twin, current):
        for offset, data in compute_diffs(twin, current):
            assert all(twin[offset + i] != data[i]
                       for i in range(len(data)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_diffs(bytes(4), bytes(5))

    def test_diff_bytes_total(self):
        assert diff_bytes([(0, b"abc"), (9, b"de")]) == 5


class TestApplyDiffs:
    def test_roundtrip(self):
        twin = bytes(range(256))
        current = bytearray(twin)
        current[3:6] = b"xyz"
        current[200] = 0
        diffs = compute_diffs(twin, bytes(current))
        assert apply_diffs(twin, diffs) == bytes(current)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            apply_diffs(bytes(4), [(3, b"ab")])

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=64, max_size=64),
           st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                              st.integers(min_value=0, max_value=255)),
                    max_size=20))
    def test_apply_compute_is_identity(self, twin, writes):
        current = bytearray(twin)
        for index, value in writes:
            current[index] = value
        diffs = compute_diffs(twin, bytes(current))
        assert apply_diffs(twin, diffs) == bytes(current)

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=64, max_size=64),
           st.binary(min_size=64, max_size=64))
    def test_diffs_cover_every_change(self, twin, current):
        diffs = compute_diffs(twin, current)
        assert apply_diffs(twin, diffs) == current


class TestMergeSemantics:
    def test_disjoint_writers_merge_at_home(self):
        """Two ranks changing different bytes of the same page: applying
        both diff sets to the home copy preserves both writes (HLRC's
        multiple-writer protocol)."""
        home = bytes(128)
        writer_a = bytearray(home)
        writer_a[0:4] = b"AAAA"
        writer_b = bytearray(home)
        writer_b[64:68] = b"BBBB"
        merged = apply_diffs(home, compute_diffs(home, bytes(writer_a)))
        merged = apply_diffs(merged, compute_diffs(home, bytes(writer_b)))
        assert merged[0:4] == b"AAAA"
        assert merged[64:68] == b"BBBB"

    def test_nearby_disjoint_writers_do_not_clobber(self):
        """Regression: writers touching bytes a few positions apart.  A
        gap-coalesced diff from writer A would carry twin-valued bytes
        over the gap and erase writer B's update when applied second."""
        home = bytes(128)
        writer_a = bytearray(home)
        writer_a[0] = 0xA1
        writer_a[8] = 0xA2                # 7 unchanged bytes between
        writer_b = bytearray(home)
        writer_b[4] = 0xB1                # inside writer A's gap
        merged = apply_diffs(home, compute_diffs(home, bytes(writer_b)))
        merged = apply_diffs(merged, compute_diffs(home, bytes(writer_a)))
        assert merged[0] == 0xA1
        assert merged[4] == 0xB1
        assert merged[8] == 0xA2

    def test_overlapping_writers_later_wins_bytewise(self):
        """When two writers change overlapping byte ranges, the diff
        applied later wins exactly on the bytes it changed — no more."""
        home = bytes(64)
        writer_a = bytearray(home)
        writer_a[10:14] = b"AAAA"
        writer_b = bytearray(home)
        writer_b[12:18] = b"BBBBBB"
        merged = apply_diffs(home, compute_diffs(home, bytes(writer_a)))
        merged = apply_diffs(merged, compute_diffs(home, bytes(writer_b)))
        assert merged[10:18] == b"AABBBBBB"
