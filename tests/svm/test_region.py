"""Shared-region geometry and home assignment."""

import pytest

from repro import params
from repro.errors import ConfigError
from repro.svm.region import SVM_BASE, SharedRegion


class TestHomes:
    def test_block_distribution_covers_all_pages(self):
        region = SharedRegion(10, 3)
        owned = [page for rank in range(3)
                 for page in region.home_block(rank)]
        assert owned == list(range(10))

    def test_home_of_matches_blocks(self):
        region = SharedRegion(10, 3)
        for rank in range(3):
            for page in region.home_block(rank):
                assert region.home_of(page) == rank

    def test_single_rank_owns_everything(self):
        region = SharedRegion(5, 1)
        assert list(region.home_block(0)) == list(range(5))

    def test_more_ranks_than_pages(self):
        region = SharedRegion(2, 4)
        assert len(region.home_block(0)) + len(region.home_block(1)) \
            + len(region.home_block(2)) + len(region.home_block(3)) == 2

    def test_out_of_range_page_rejected(self):
        with pytest.raises(ConfigError):
            SharedRegion(4, 2).home_of(4)

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ConfigError):
            SharedRegion(4, 2).home_block(2)


class TestAddressing:
    def test_vaddr_of_offset(self):
        region = SharedRegion(4, 2)
        assert region.vaddr(0) == SVM_BASE
        assert region.vaddr(params.PAGE_SIZE + 8) == \
            SVM_BASE + params.PAGE_SIZE + 8

    def test_pages_of_span(self):
        region = SharedRegion(4, 2)
        assert list(region.pages_of_span(params.PAGE_SIZE - 1, 2)) == [0, 1]

    def test_empty_span(self):
        assert list(SharedRegion(4, 2).pages_of_span(0, 0)) == []

    def test_span_outside_region_rejected(self):
        with pytest.raises(ConfigError):
            SharedRegion(2, 1).pages_of_span(0, 3 * params.PAGE_SIZE)

    def test_page_offset_in_home_block(self):
        region = SharedRegion(10, 2)     # rank 0: 0-4, rank 1: 5-9
        assert region.page_offset_in_home_block(0) == 0
        assert region.page_offset_in_home_block(6) == params.PAGE_SIZE

    def test_unaligned_base_rejected(self):
        with pytest.raises(ConfigError):
            SharedRegion(4, 2, base_vaddr=SVM_BASE + 1)
