"""SVM kernels verified against serial references, plus trace capture."""

import random


from repro.svm import SvmCluster
from repro.svm.apps import (
    parallel_histogram,
    parallel_matmul,
    parallel_stencil,
    parallel_transpose,
    serial_histogram,
    serial_matmul,
    serial_stencil,
    serial_transpose,
)
from repro.traces.capture import TraceRecorder


def make_svm(ranks=4, pages=64, nodes=2, recorder=None):
    return SvmCluster(num_ranks=ranks, region_pages=pages, nodes=nodes,
                      recorder=recorder)


class TestStencil:
    def test_matches_serial(self):
        rng = random.Random(1)
        n = 24
        grid = [[rng.randrange(-1000, 1000) for _ in range(n)]
                for _ in range(n)]
        svm = make_svm()
        assert parallel_stencil(svm, grid, 3) == serial_stencil(grid, 3)

    def test_multi_page_grid_communicates(self):
        rng = random.Random(2)
        n = 48                         # 48*48*4 B = 9 KB per grid
        grid = [[rng.randrange(100) for _ in range(n)] for _ in range(n)]
        svm = make_svm(pages=16)
        assert parallel_stencil(svm, grid, 2) == serial_stencil(grid, 2)
        assert svm.total_fetches() > 0
        assert svm.diff_stores > 0
        svm.check_invariants()

    def test_zero_iterations_identity(self):
        grid = [[1, 2], [3, 4]]
        svm = make_svm(ranks=2, pages=4)
        assert parallel_stencil(svm, grid, 0) == grid


class TestTranspose:
    def test_matches_serial(self):
        rng = random.Random(3)
        n = 20
        matrix = [[rng.randrange(10**6) for _ in range(n)]
                  for _ in range(n)]
        svm = make_svm()
        assert parallel_transpose(svm, matrix) == serial_transpose(matrix)

    def test_transpose_twice_is_identity(self):
        rng = random.Random(4)
        n = 12
        matrix = [[rng.randrange(100) for _ in range(n)] for _ in range(n)]
        svm = make_svm(ranks=3, nodes=3, pages=32)
        once = parallel_transpose(svm, matrix)
        svm2 = make_svm(ranks=3, nodes=3, pages=32)
        assert parallel_transpose(svm2, once) == matrix


class TestHistogram:
    def test_matches_serial(self):
        rng = random.Random(5)
        keys = [rng.randrange(1 << 16) for _ in range(800)]
        svm = make_svm(pages=32)
        assert parallel_histogram(svm, keys, 32) == \
            serial_histogram(keys, 32)

    def test_counts_sum_to_key_count(self):
        rng = random.Random(6)
        keys = [rng.randrange(997) for _ in range(500)]
        svm = make_svm(ranks=2, pages=16)
        assert sum(parallel_histogram(svm, keys, 16)) == len(keys)


class TestMatmul:
    def test_matches_serial(self):
        rng = random.Random(11)
        n = 14
        a = [[rng.randrange(-50, 50) for _ in range(n)] for _ in range(n)]
        b = [[rng.randrange(-50, 50) for _ in range(n)] for _ in range(n)]
        svm = make_svm(pages=32)
        assert parallel_matmul(svm, a, b) == serial_matmul(a, b)

    def test_identity_matrix(self):
        n = 8
        identity = [[1 if i == j else 0 for j in range(n)]
                    for i in range(n)]
        a = [[i * n + j for j in range(n)] for i in range(n)]
        svm = make_svm(ranks=2, pages=16)
        assert parallel_matmul(svm, a, identity) == a

    def test_rectangular(self):
        rng = random.Random(12)
        a = [[rng.randrange(10) for _ in range(6)] for _ in range(4)]
        b = [[rng.randrange(10) for _ in range(8)] for _ in range(6)]
        svm = make_svm(ranks=2, pages=16)
        assert parallel_matmul(svm, a, b) == serial_matmul(a, b)


class TestTraceCapture:
    def test_kernel_produces_a_valid_trace(self):
        """The paper's methodology end to end: run a program on SVM over
        VMMC, capture its communication trace, and the trace is a valid,
        timestamp-ordered record stream."""
        rng = random.Random(7)
        recorder = TraceRecorder()
        svm = make_svm(pages=16, recorder=recorder)
        n = 48
        grid = [[rng.randrange(50) for _ in range(n)] for _ in range(n)]
        parallel_stencil(svm, grid, 2)

        records = recorder.records()
        assert records
        assert all(records[i].timestamp <= records[i + 1].timestamp
                   for i in range(len(records) - 1))
        ops = {r.op for r in records}
        assert ops == {"send", "fetch"}     # diffs out, pages in

    def test_captured_trace_replays_in_the_simulator(self):
        """Captured live traces drive the trace-driven simulator, just
        like the paper's captured traces drove theirs."""
        from repro.sim.config import SimConfig
        from repro.sim.simulator import simulate_node
        from repro.traces.merge import split_by_node

        rng = random.Random(8)
        recorder = TraceRecorder()
        svm = make_svm(pages=16, recorder=recorder)
        n = 48
        grid = [[rng.randrange(50) for _ in range(n)] for _ in range(n)]
        parallel_stencil(svm, grid, 2)

        by_node = split_by_node(recorder.records())
        assert len(by_node) == 2
        for node, records in by_node.items():
            result = simulate_node(records, SimConfig(cache_entries=256))
            assert result.stats.lookups > 0
            assert result.stats.interrupts == 0

    def test_trace_roundtrips_through_binary_format(self, tmp_path):
        from repro.traces.io import read_binary, write_binary

        rng = random.Random(9)
        recorder = TraceRecorder()
        svm = make_svm(ranks=2, pages=8, recorder=recorder)
        svm.memory(0).write(5 * 4096, b"traced")
        svm.barrier()
        records = recorder.records()
        path = tmp_path / "captured.bin"
        write_binary(path, records)
        assert list(read_binary(path)) == records
