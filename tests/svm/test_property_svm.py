"""Property-based testing of the SVM protocol.

Hypothesis generates random programs — interleaved reads, writes, and
barriers across ranks — and checks the SVM cluster against the simplest
possible reference: one flat bytearray with writes applied in program
order.  The BSP data-race-free discipline is enforced by construction
(within a barrier interval, each byte has at most one writer).
"""

from hypothesis import given, settings, strategies as st

from repro import params
from repro.svm import SvmCluster

REGION_PAGES = 6
REGION_BYTES = REGION_PAGES * params.PAGE_SIZE
NUM_RANKS = 3

# A step is (rank, kind, offset, length, fill).  Offsets are partitioned
# per rank (rank r writes only [r * stripe, (r+1) * stripe)) so the
# program is data-race-free within every barrier interval by design;
# reads may target anything.
stripe = REGION_BYTES // NUM_RANKS

steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_RANKS - 1),
        st.sampled_from(["read", "write", "write", "barrier"]),
        st.integers(min_value=0, max_value=stripe - 1),
        st.integers(min_value=1, max_value=600),
        st.integers(min_value=0, max_value=255)),
    min_size=1, max_size=40)


class TestRandomPrograms:
    @settings(max_examples=20, deadline=None)
    @given(ops=steps)
    def test_svm_matches_flat_memory(self, ops):
        svm = SvmCluster(num_ranks=NUM_RANKS, region_pages=REGION_PAGES,
                         nodes=2)
        reference = bytearray(REGION_BYTES)
        # Values visible to reads: the reference as of the last barrier
        # (plus each rank's own writes — checked implicitly via homes).
        committed = bytes(REGION_BYTES)

        def do_barrier():
            nonlocal committed
            svm.barrier()
            committed = bytes(reference)

        for rank, kind, offset, length, fill in ops:
            base = rank * stripe + offset
            length = min(length, stripe - offset)
            if kind == "write":
                data = bytes([fill]) * length
                svm.memory(rank).write(base, data)
                reference[base:base + length] = data
            elif kind == "read":
                got = svm.memory(rank).read(base, length)
                own_home = svm.region.home_of(
                    svm.region.page_of_offset(base)) == rank
                if own_home:
                    # Reads of a rank's own home see every merged write
                    # from past barriers plus the rank's own home writes.
                    pass    # value checked at the end via gather
                assert len(got) == length
            else:
                do_barrier()

        do_barrier()
        assert svm.gather(0, REGION_BYTES) == bytes(reference)
        svm.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=NUM_RANKS - 1),
                  st.integers(min_value=0, max_value=stripe - 64),
                  st.binary(min_size=1, max_size=64)),
        min_size=1, max_size=20))
    def test_reader_sees_writes_after_barrier(self, writes):
        """Every write is visible to every rank after one barrier.

        The oracle is a flat reference bytearray with writes applied in
        program order, so later writes win byte-wise — exactly the
        visibility the protocol must provide, including partial
        overlaps in either direction."""
        svm = SvmCluster(num_ranks=NUM_RANKS, region_pages=REGION_PAGES,
                         nodes=2)
        reference = bytearray(REGION_BYTES)
        touched = []
        for rank, offset, data in writes:
            base = rank * stripe + offset
            svm.memory(rank).write(base, data)
            reference[base:base + len(data)] = data
            touched.append((base, len(data)))
        svm.barrier()
        reader = svm.memory((writes[0][0] + 1) % NUM_RANKS)
        for base, length in touched:
            got = reader.read(base, length)
            assert got == bytes(reference[base:base + length]), \
                (base, length, got)
