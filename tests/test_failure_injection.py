"""Failure injection: exhausted resources and broken invariants must
fail loudly and atomically, never corrupt state silently."""

import pytest

from repro import params
from repro.core import HierarchicalUtlb, SharedUtlbCache
from repro.errors import CapacityError, PinningError
from repro.memsim.os_kernel import SimulatedOS
from repro.memsim.physical import PhysicalMemory
from repro.vmmc import Cluster, remote_store
from repro.vmmc.driver import VmmcDriver

RECV = 0x40000000
SEND = 0x10000000


class TestPhysicalMemoryExhaustion:
    def build_tiny_host(self, frames):
        os_sim = SimulatedOS(PhysicalMemory(frames * params.PAGE_SIZE))
        driver = VmmcDriver(os_sim)
        process = os_sim.create_process()
        cache = SharedUtlbCache(64)
        utlb = HierarchicalUtlb(process.pid, cache, driver=driver,
                                garbage_frame=driver.garbage_frame)
        return os_sim, process, utlb

    def test_pin_fails_when_memory_exhausted(self):
        # 4 frames: 1 is the driver's garbage page, 3 are pinnable.
        os_sim, process, utlb = self.build_tiny_host(frames=4)
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.access_page(2)
        with pytest.raises(CapacityError):
            utlb.access_page(3)

    def test_failed_pin_leaves_structures_consistent(self):
        os_sim, process, utlb = self.build_tiny_host(frames=4)
        for page in range(3):
            utlb.access_page(page)
        with pytest.raises(CapacityError):
            utlb.access_page(3)
        # The failed page must not be half-installed anywhere.
        assert not utlb.bitvector.test(3)
        assert utlb.table.lookup(3) is None
        assert 3 not in utlb.pool
        utlb.check_invariants()
        # Unpinning alone keeps the page resident; once the OS swaps the
        # frame out, the same access succeeds.
        utlb._unpin_page(0)
        process.space.swap_out(0)
        utlb.access_page(3)
        utlb.check_invariants()


class TestQueueExhaustion:
    def test_command_queue_overflow_raises_cleanly(self):
        cluster = Cluster(num_nodes=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, params.PAGE_SIZE))
        a.write_memory(SEND, b"x")
        with pytest.raises(CapacityError):
            for _ in range(1000):
                a.send(SEND, 1, handle)
        # Draining recovers; subsequent sends work.
        cluster.run_until_quiet()
        a.complete()
        remote_store(cluster, a, SEND, 1, handle)
        assert b.read_memory(RECV, 1) == b"x"


class TestEvictionDeadlocks:
    def test_all_pages_held_fails_not_corrupts(self):
        from tests.conftest import make_utlb
        utlb = make_utlb(memory_limit_pages=2)
        utlb.access_page(0)
        utlb.access_page(1)
        utlb.hold(0)
        utlb.hold(1)
        with pytest.raises(CapacityError):
            utlb.access_page(2)
        assert not utlb.bitvector.test(2)
        utlb.check_invariants()
        utlb.release(0)
        utlb.access_page(2)     # now possible
        utlb.check_invariants()

    def test_unpin_held_page_directly_rejected(self):
        from tests.conftest import make_utlb
        utlb = make_utlb()
        utlb.access_page(0)
        utlb.hold(0)
        with pytest.raises(PinningError):
            utlb._unpin_page(0)
        assert utlb.bitvector.test(0)


class TestSramExhaustion:
    def test_too_many_processes_for_sram(self):
        """Creating processes until NIC SRAM runs out fails with a
        capacity error, not corruption."""
        cluster = Cluster(num_nodes=1, cache_entries=8192)
        created = 0
        with pytest.raises(CapacityError):
            # The 4-bit process tag (16) limits registration before SRAM
            # does with default sizes.
            for _ in range(64):
                cluster.node(0).create_process()
                created += 1
        assert created >= 8


class TestLossyWorstCase:
    def test_everything_lost_eventually_raises(self):
        cluster = Cluster(num_nodes=2, timeout_steps=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, params.PAGE_SIZE))
        cluster.node(0).endpoint.max_retries = 5
        cluster.fabric.uplink(0).take_down()
        a.write_memory(SEND, b"x")
        a.send(SEND, 1, handle)
        from repro.errors import NetworkError
        with pytest.raises(NetworkError):
            cluster.run_until_quiet(max_steps=500)
