"""Cross-module integration tests.

These verify that the independently tested layers agree with each other:
the trace simulator against the live mechanisms, the cost equations
against accumulated time, and the functional VMMC stack against the
counters the paper's analysis relies on.
"""

import pytest

from repro import params
from repro.core import (
    CountingFrameDriver,
    HierarchicalUtlb,
    InterruptBasedNode,
    SharedUtlbCache,
)
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.simulator import simulate_node
from repro.traces.synth import make_app
from repro.vmmc import Cluster, remote_store

SEND = 0x10000000
RECV = 0x40000000


class TestSimulatorEquivalence:
    """The trace simulator must behave exactly like hand-driving the
    mechanism objects over the same reference stream."""

    def test_utlb_simulator_matches_manual_replay(self):
        trace = make_app("volrend").generate_node(0, seed=3, scale=0.05)
        config = SimConfig(cache_entries=256, prefetch=4,
                           memory_limit_bytes=64 * params.PAGE_SIZE)
        sim = simulate_node(trace, config)

        cache = SharedUtlbCache(256)
        driver = CountingFrameDriver()
        # Register processes in the same (sorted) order the simulator
        # does — registration order assigns the cache index offsets.
        utlbs = {pid: HierarchicalUtlb(pid, cache, driver=driver,
                                       memory_limit_pages=64, prefetch=4)
                 for pid in sorted({r.pid for r in trace})}
        for record in trace:
            for vpage in record.pages():
                utlbs[record.pid].access_page(vpage)
        manual = {}
        for pid, utlb in utlbs.items():
            manual[pid] = utlb.stats.snapshot()
        assert {pid: s.snapshot() for pid, s in sim.per_pid.items()} == manual

    def test_intr_simulator_matches_manual_replay(self):
        trace = make_app("water-spatial").generate_node(0, seed=3,
                                                        scale=0.05)
        config = SimConfig(cache_entries=256)
        sim = simulate_node_intr(trace, config)

        cache = SharedUtlbCache(256)
        node = InterruptBasedNode(cache, driver=CountingFrameDriver())
        pids = sorted({r.pid for r in trace})
        for pid in pids:
            node.register_process(pid)
        for record in trace:
            for vpage in record.pages():
                node.access_page(record.pid, vpage)
        assert {pid: node.stats_for(pid).snapshot() for pid in pids} == \
            {pid: s.snapshot() for pid, s in sim.per_pid.items()}


class TestCostModelConsistency:
    """Accumulated simulated time == the Section 6.2 equations applied to
    the measured rates, for both mechanisms, on every application."""

    @pytest.mark.parametrize("name", ["barnes", "fft", "radix"])
    def test_utlb_equation(self, name):
        trace = make_app(name).generate_node(0, seed=1, scale=0.05)
        result = simulate_node(trace, SimConfig(cache_entries=512))
        s = result.stats
        cm = SimConfig().cost_model
        expected = s.lookups * cm.utlb_lookup_cost(
            s.check_miss_rate, s.ni_miss_rate, s.unpin_rate)
        assert s.total_time_us == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("name", ["barnes", "fft", "radix"])
    def test_intr_equation(self, name):
        trace = make_app(name).generate_node(0, seed=1, scale=0.05)
        result = simulate_node_intr(trace, SimConfig(cache_entries=512))
        s = result.stats
        cm = SimConfig().cost_model
        expected = s.lookups * cm.intr_lookup_cost(
            s.ni_miss_rate, s.unpin_rate)
        assert s.total_time_us == pytest.approx(expected, rel=1e-9)


class TestFunctionalStackCounters:
    """The live VMMC stack must exhibit the same translation economics
    the trace analysis claims."""

    def test_resend_costs_nothing_extra(self):
        cluster = Cluster(num_nodes=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, 2 * params.PAGE_SIZE))
        a.write_memory(SEND, b"#" * 8000)
        remote_store(cluster, a, SEND, 8000, handle)
        pins = a.stats.pin_calls
        ni_misses = a.stats.ni_misses
        for _ in range(10):
            remote_store(cluster, a, SEND, 8000, handle)
        assert a.stats.pin_calls == pins
        assert a.stats.ni_misses == ni_misses       # cache holds both pages

    def test_frames_used_by_nic_match_os_view(self):
        """The frame the MCP DMAs from is exactly the frame the OS pinned
        for that page — no stale translations."""
        cluster = Cluster(num_nodes=2)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        handle = a.import_buffer(1, b.export(RECV, params.PAGE_SIZE))
        a.write_memory(SEND, b"truth")
        remote_store(cluster, a, SEND, 5, handle)
        vpage = SEND >> params.PAGE_SHIFT
        os_frame = a.process.space.frame_of(vpage)
        assert a.utlb.table.lookup(vpage) == os_frame
        hit, cached = a.utlb.cache.lookup(a.pid, vpage)
        assert hit and cached == os_frame

    def test_garbage_page_protects_other_processes(self):
        """A lookup through an unmapped table entry resolves to the
        driver's garbage frame, never to another process's memory."""
        cluster = Cluster(num_nodes=1)
        node = cluster.node(0)
        victim = node.create_process()
        victim.write_memory(0x30000000, b"secret")
        attacker = node.create_process()
        frame = attacker.utlb.table.lookup_or_garbage(0x30000000 >> 12)
        assert frame == node.driver.garbage_frame
        data = node.os.physical.read(frame, 0, 6)
        assert data != b"secret"


class TestTraceRoundTripThroughSimulator:
    def test_serialized_trace_simulates_identically(self, tmp_path):
        """Write a trace to disk, read it back, and get bit-identical
        simulation results."""
        from repro.traces.io import read_binary, write_binary
        trace = make_app("barnes").generate_node(0, seed=2, scale=0.05)
        path = tmp_path / "barnes.bin"
        write_binary(path, trace)
        reloaded = list(read_binary(path))
        config = SimConfig(cache_entries=256)
        assert simulate_node(trace, config).stats.snapshot() == \
            simulate_node(reloaded, config).stats.snapshot()


class TestHeadlineNumbers:
    """The paper's abstract in one test each."""

    def test_fast_path_is_0_9_us(self):
        """'The total overhead for this path is only 0.9 us (0.4 us on
        the host and 0.5 us on the network interface)' — our calibration
        charges 0.5 + 0.8 = 1.3 us (the Table-1/2 figures); the fast path
        must cost exactly check-hit + NI-hit and nothing else."""
        cache = SharedUtlbCache(64)
        utlb = HierarchicalUtlb(1, cache)
        utlb.access_page(0)
        before = utlb.stats.total_time_us
        utlb.access_page(0)
        delta = utlb.stats.total_time_us - before
        cm = utlb.cost_model
        assert delta == pytest.approx(cm.user_check_hit + cm.ni_check_hit)

    def test_utlb_robust_with_small_caches(self):
        """'Even with 1,024 entries, the UTLB approach works quite well':
        shrinking the cache 16x from 16K to 1K increases UTLB's average
        lookup cost by far less than the baseline's."""
        # At reduced trace scale the cache sizes shrink proportionally so
        # the cache:footprint ratio matches the paper's 1K vs 16K sweep.
        trace = make_app("barnes").generate_node(0, seed=1, scale=0.15)
        small, large = 128, 2048
        utlb_small = simulate_node(trace, SimConfig(cache_entries=small))
        utlb_large = simulate_node(trace, SimConfig(cache_entries=large))
        intr_small = simulate_node_intr(trace, SimConfig(cache_entries=small))
        intr_large = simulate_node_intr(trace, SimConfig(cache_entries=large))
        utlb_penalty = (utlb_small.stats.avg_lookup_cost_us
                        - utlb_large.stats.avg_lookup_cost_us)
        intr_penalty = (intr_small.stats.avg_lookup_cost_us
                        - intr_large.stats.avg_lookup_cost_us)
        assert utlb_penalty < intr_penalty
