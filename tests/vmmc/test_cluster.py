"""End-to-end VMMC integration: the full stack from library to fabric."""

import pytest

from repro import params
from repro.errors import ProtectionError
from repro.vmmc import (
    Cluster,
    barrier,
    clear_redirect,
    redirect,
    remote_fetch,
    remote_store,
)

RECV = 0x40000000
SEND = 0x10000000
ALT = 0x50000000


@pytest.fixture
def pair():
    """A 2-node cluster with one process per node and an imported buffer."""
    cluster = Cluster(num_nodes=2)
    a = cluster.node(0).create_process()
    b = cluster.node(1).create_process()
    export_id = b.export(RECV, 4 * params.PAGE_SIZE)
    handle = a.import_buffer(1, export_id)
    return cluster, a, b, export_id, handle


class TestRemoteStore:
    def test_data_arrives_intact(self, pair):
        cluster, a, b, _, handle = pair
        message = bytes(range(256)) * 32        # 8 KB, two pages
        a.write_memory(SEND, message)
        remote_store(cluster, a, SEND, len(message), handle)
        assert b.read_memory(RECV, len(message)) == message

    def test_offset_delivery(self, pair):
        cluster, a, b, _, handle = pair
        a.write_memory(SEND, b"off")
        remote_store(cluster, a, SEND, 3, handle, remote_offset=100)
        assert b.read_memory(RECV + 100, 3) == b"off"

    def test_unaligned_cross_page(self, pair):
        cluster, a, b, _, handle = pair
        message = b"z" * 6000
        a.write_memory(SEND + 3000, message)
        remote_store(cluster, a, SEND + 3000, len(message), handle,
                     remote_offset=2000)
        assert b.read_memory(RECV + 2000, len(message)) == message

    def test_no_interrupts_on_common_path(self, pair):
        cluster, a, b, _, handle = pair
        a.write_memory(SEND, b"quiet")
        remote_store(cluster, a, SEND, 5, handle)
        assert cluster.node(0).interrupts.raised == 0
        assert cluster.node(1).interrupts.raised == 0

    def test_one_syscall_per_new_buffer_then_none(self, pair):
        cluster, a, _, _, handle = pair
        a.write_memory(SEND, b"x" * 100)
        remote_store(cluster, a, SEND, 100, handle)
        syscalls_after_first = a.process.syscalls
        for _ in range(5):
            remote_store(cluster, a, SEND, 100, handle)
        assert a.process.syscalls == syscalls_after_first

    def test_overrun_rejected_at_post_time(self, pair):
        cluster, a, _, _, handle = pair
        with pytest.raises(ProtectionError):
            a.send(SEND, 5 * params.PAGE_SIZE, handle)

    def test_send_without_import_rejected(self, pair):
        cluster, a, b, _, _ = pair
        other_export = b.export(ALT, params.PAGE_SIZE)
        from repro.vmmc.buffers import ImportHandle
        forged = ImportHandle(1, other_export, params.PAGE_SIZE)
        with pytest.raises(ProtectionError):
            a.send(SEND, 16, forged)


class TestRemoteFetch:
    def test_fetch_pulls_remote_data(self, pair):
        cluster, a, b, _, handle = pair
        b.write_memory(RECV, b"remote-contents")
        remote_fetch(cluster, a, SEND, 15, handle)
        assert a.read_memory(SEND, 15) == b"remote-contents"

    def test_fetch_with_offsets(self, pair):
        cluster, a, b, _, handle = pair
        b.write_memory(RECV + 500, b"window")
        remote_fetch(cluster, a, SEND + 100, 6, handle, remote_offset=500)
        assert a.read_memory(SEND + 100, 6) == b"window"

    def test_fetch_multi_page(self, pair):
        cluster, a, b, _, handle = pair
        blob = bytes([i % 251 for i in range(3 * params.PAGE_SIZE)])
        b.write_memory(RECV, blob)
        remote_fetch(cluster, a, SEND, len(blob), handle)
        assert a.read_memory(SEND, len(blob)) == blob


class TestRedirection:
    def test_redirected_delivery(self, pair):
        cluster, a, b, export_id, handle = pair
        redirect(b, export_id, ALT)
        a.write_memory(SEND, b"elsewhere")
        remote_store(cluster, a, SEND, 9, handle)
        assert b.read_memory(ALT, 9) == b"elsewhere"
        assert b.read_memory(RECV, 9) == bytes(9)

    def test_clear_redirect_restores_default(self, pair):
        cluster, a, b, export_id, handle = pair
        redirect(b, export_id, ALT)
        clear_redirect(b, export_id)
        a.write_memory(SEND, b"home")
        remote_store(cluster, a, SEND, 4, handle)
        assert b.read_memory(RECV, 4) == b"home"

    def test_only_owner_may_redirect(self, pair):
        cluster, a, b, export_id, _ = pair
        other = cluster.node(1).create_process()
        with pytest.raises(ProtectionError):
            redirect(other, export_id, ALT)

    def test_redirect_pins_target(self, pair):
        cluster, a, b, export_id, handle = pair
        pinned_before = b.utlb.bitvector.count
        redirect(b, export_id, ALT)
        assert b.utlb.bitvector.count == pinned_before + 4


class TestLossyFabric:
    def test_store_survives_packet_loss(self):
        cluster = Cluster(num_nodes=2, loss_rate=0.3, seed=7)
        a = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        export_id = b.export(RECV, 4 * params.PAGE_SIZE)
        handle = a.import_buffer(1, export_id)
        blob = bytes(range(256)) * 48
        a.write_memory(SEND, blob)
        remote_store(cluster, a, SEND, len(blob), handle)
        assert b.read_memory(RECV, len(blob)) == blob
        assert cluster.node(0).endpoint.stats.retransmitted > 0


class TestMultiNode:
    def test_all_to_one_gather(self):
        cluster = Cluster(num_nodes=4)
        root = cluster.node(0).create_process()
        export_id = root.export(RECV, 4 * params.PAGE_SIZE)
        senders = []
        for node in (1, 2, 3):
            lib = cluster.node(node).create_process()
            handle = lib.import_buffer(0, export_id)
            lib.write_memory(SEND, bytes([node]) * 100)
            lib.send(SEND, 100, handle, remote_offset=node * 100)
            senders.append(lib)
        barrier(cluster)
        for node in (1, 2, 3):
            assert root.read_memory(RECV + node * 100, 100) == \
                bytes([node]) * 100

    def test_multiple_processes_per_node(self):
        cluster = Cluster(num_nodes=2)
        a1 = cluster.node(0).create_process()
        a2 = cluster.node(0).create_process()
        b = cluster.node(1).create_process()
        export_id = b.export(RECV, 4 * params.PAGE_SIZE)
        h1 = a1.import_buffer(1, export_id)
        h2 = a2.import_buffer(1, export_id)
        a1.write_memory(SEND, b"one")
        a2.write_memory(SEND, b"two")
        a1.send(SEND, 3, h1, remote_offset=0)
        a2.send(SEND, 3, h2, remote_offset=10)
        barrier(cluster)
        assert b.read_memory(RECV, 3) == b"one"
        assert b.read_memory(RECV + 10, 3) == b"two"


class TestExportLifecycle:
    def test_unexport_releases_holds(self, pair):
        cluster, a, b, export_id, _ = pair
        b.unexport(export_id)
        assert len(cluster.node(1).exports) == 0

    def test_import_of_unknown_export_rejected(self, pair):
        cluster, a, _, _, _ = pair
        with pytest.raises(ProtectionError):
            a.import_buffer(1, 424242)

    def test_exported_pages_survive_memory_pressure(self):
        """Exported receive buffers are held: the pool may never evict
        them, whatever else the process touches."""
        cluster = Cluster(num_nodes=2)
        b = cluster.node(1).create_process(memory_limit_pages=8)
        export_id = b.export(RECV, 4 * params.PAGE_SIZE)
        for page in range(40):      # heavy unrelated pinning traffic
            b.utlb.access_page(0x70000 + page)
        for page_index in range(4):
            assert b.utlb.bitvector.test((RECV // params.PAGE_SIZE)
                                         + page_index)
        b.utlb.check_invariants()


class TestTranslationConsistency:
    def test_invariants_after_traffic(self, pair):
        cluster, a, b, _, handle = pair
        for round_index in range(6):
            a.write_memory(SEND + round_index * 4096, b"r%d" % round_index)
            remote_store(cluster, a, SEND + round_index * 4096, 2, handle,
                         remote_offset=round_index * 16)
        a.utlb.check_invariants()
        b.utlb.check_invariants()

    def test_dma_traffic_accounted(self, pair):
        cluster, a, b, _, handle = pair
        a.write_memory(SEND, b"x" * 5000)
        remote_store(cluster, a, SEND, 5000, handle)
        assert cluster.node(0).dma.stats.bytes_host_to_nic >= 5000
        assert cluster.node(1).dma.stats.bytes_nic_to_host >= 5000
