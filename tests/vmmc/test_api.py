"""High-level VMMC operations: remote_store/remote_fetch/barrier."""

import pytest

from repro import params
from repro.errors import NetworkError
from repro.vmmc import Cluster, barrier, remote_fetch, remote_store

RECV = 0x40000000
SEND = 0x10000000


@pytest.fixture
def pair():
    cluster = Cluster(num_nodes=2)
    a = cluster.node(0).create_process()
    b = cluster.node(1).create_process()
    handle = a.import_buffer(1, b.export(RECV, 2 * params.PAGE_SIZE))
    return cluster, a, b, handle


class TestRemoteStore:
    def test_returns_steps(self, pair):
        cluster, a, b, handle = pair
        a.write_memory(SEND, b"x")
        steps = remote_store(cluster, a, SEND, 1, handle)
        assert steps > 0

    def test_releases_holds(self, pair):
        cluster, a, b, handle = pair
        a.write_memory(SEND, b"x")
        remote_store(cluster, a, SEND, 1, handle)
        assert a.utlb.pool.held_pages() == set()


class TestRemoteFetch:
    def test_releases_holds(self, pair):
        cluster, a, b, handle = pair
        b.write_memory(RECV, b"y")
        remote_fetch(cluster, a, SEND, 1, handle)
        assert a.utlb.pool.held_pages() == set()


class TestBarrier:
    def test_barrier_drains_everything(self, pair):
        cluster, a, b, handle = pair
        a.write_memory(SEND, b"z" * 1000)
        for offset in range(4):
            a.send(SEND, 1000, handle, remote_offset=offset * 1024)
        steps = barrier(cluster)
        assert cluster.quiescent()
        assert steps > 0
        assert a.utlb.pool.held_pages() == set()

    def test_barrier_on_idle_cluster(self, pair):
        cluster, _, _, _ = pair
        assert barrier(cluster) == 0

    def test_run_until_quiet_times_out_on_livelock(self, pair):
        cluster, a, b, handle = pair
        # Kill the destination's down-link permanently: the sender's
        # retransmissions can never be delivered or acked.
        a.write_memory(SEND, b"x")
        a.send(SEND, 1, handle)
        cluster.fabric.downlink(1).take_down()
        cluster.node(0).endpoint.max_retries = 10**9
        with pytest.raises(NetworkError):
            cluster.run_until_quiet(max_steps=200)


class TestClusterConfig:
    def test_zero_nodes_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            Cluster(num_nodes=0)

    def test_unknown_node_rejected(self, pair):
        cluster, _, _, _ = pair
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            cluster.node(99)

    def test_library_lookup(self, pair):
        cluster, a, _, _ = pair
        assert cluster.node(0).library(a.pid) is a
        from repro.errors import ProtectionError
        with pytest.raises(ProtectionError):
            cluster.node(0).library("ghost")

    def test_single_node_cluster_works_locally(self):
        cluster = Cluster(num_nodes=1)
        a = cluster.node(0).create_process()
        b = cluster.node(0).create_process()
        handle = a.import_buffer(0, b.export(RECV, params.PAGE_SIZE))
        a.write_memory(SEND, b"local")
        remote_store(cluster, a, SEND, 5, handle)
        assert b.read_memory(RECV, 5) == b"local"
