"""The VMMC device driver: ioctl plumbing and the garbage page."""

import pytest

from repro.errors import ProtectionError
from repro.memsim.os_kernel import SimulatedOS
from repro.vmmc.driver import DEVICE_NAME, VmmcDriver


@pytest.fixture
def setup():
    os_sim = SimulatedOS()
    driver = VmmcDriver(os_sim)
    process = os_sim.create_process()
    return os_sim, driver, process


class TestGarbagePage:
    def test_garbage_page_allocated_and_pinned(self, setup):
        os_sim, driver, _ = setup
        frame = os_sim.physical.frame(driver.garbage_frame)
        assert frame.pin_count >= 1

    def test_garbage_page_owned_by_driver(self, setup):
        os_sim, driver, _ = setup
        frame = os_sim.physical.frame(driver.garbage_frame)
        assert frame.owner_pid == "<vmmc-driver>"


class TestIoctlPath:
    def test_pin_through_ioctl(self, setup):
        os_sim, driver, process = setup
        frames = driver.pin_pages(process.pid, [10, 11])
        assert set(frames) == {10, 11}
        assert process.space.is_pinned(10)
        assert process.syscalls == 1        # one ioctl per batch
        assert driver.ioctl_count == 1

    def test_unpin_through_ioctl(self, setup):
        _, driver, process = setup
        driver.pin_pages(process.pid, [10])
        driver.unpin_pages(process.pid, [10])
        assert not process.space.is_pinned(10)
        assert driver.ioctl_count == 2

    def test_unknown_request_rejected(self, setup):
        os_sim, _, process = setup
        with pytest.raises(ProtectionError):
            os_sim.ioctl(process.pid, DEVICE_NAME, "format-disk")

    def test_driver_works_with_utlb(self, setup):
        """The driver satisfies the HierarchicalUtlb driver protocol."""
        os_sim, driver, process = setup
        from repro.core import HierarchicalUtlb, SharedUtlbCache
        cache = SharedUtlbCache(num_entries=16)
        utlb = HierarchicalUtlb(process.pid, cache, driver=driver,
                                garbage_frame=driver.garbage_frame)
        frame = utlb.access_page(5)
        assert process.space.is_pinned(5)
        assert frame == process.space.frame_of(5)
        utlb.check_invariants()
