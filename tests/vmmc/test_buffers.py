"""Export registry and import handles."""

import pytest

from repro import params
from repro.errors import ProtectionError
from repro.vmmc.buffers import ExportRegistry, ExportedBuffer, ImportHandle


class TestExportedBuffer:
    def test_page_count(self):
        export = ExportedBuffer(1, 0x1000, params.PAGE_SIZE + 1, 0)
        assert export.num_pages == 2

    def test_delivery_vaddr_defaults_to_home(self):
        export = ExportedBuffer(1, 0x1000, 100, 0)
        assert export.delivery_vaddr() == 0x1000

    def test_delivery_vaddr_follows_redirect(self):
        export = ExportedBuffer(1, 0x1000, 100, 0)
        export.redirect_vaddr = 0x9000
        assert export.delivery_vaddr() == 0x9000

    def test_empty_export_rejected(self):
        with pytest.raises(ProtectionError):
            ExportedBuffer(1, 0x1000, 0, 0)

    def test_unique_ids(self):
        a = ExportedBuffer(1, 0x1000, 100, 0)
        b = ExportedBuffer(1, 0x2000, 100, 0)
        assert a.export_id != b.export_id


class TestRegistry:
    def test_register_lookup(self):
        registry = ExportRegistry(0)
        export = ExportedBuffer(1, 0x1000, 100, 0)
        export_id = registry.register(export)
        assert registry.lookup(export_id) is export
        assert export_id in registry

    def test_lookup_missing_raises(self):
        with pytest.raises(ProtectionError):
            ExportRegistry(0).lookup(1234)

    def test_wrong_node_rejected(self):
        registry = ExportRegistry(0)
        export = ExportedBuffer(1, 0x1000, 100, node_id=5)
        with pytest.raises(ProtectionError):
            registry.register(export)

    def test_unregister(self):
        registry = ExportRegistry(0)
        export = ExportedBuffer(1, 0x1000, 100, 0)
        export_id = registry.register(export)
        assert registry.unregister(export_id) is export
        assert len(registry) == 0

    def test_exports_for_pid(self):
        registry = ExportRegistry(0)
        registry.register(ExportedBuffer(1, 0x1000, 100, 0))
        registry.register(ExportedBuffer(2, 0x2000, 100, 0))
        assert len(registry.exports_for(1)) == 1

    def test_sram_accounting(self):
        registry = ExportRegistry(0)
        registry.register(ExportedBuffer(1, 0x1000, 100, 0))
        assert registry.sram_bytes() == 16


class TestImportHandle:
    def test_fields(self):
        handle = ImportHandle(3, 7, 4096)
        assert handle.node_id == 3
        assert handle.export_id == 7
        assert handle.nbytes == 4096
