"""Receive notifications: poll mode (interrupt-free) and interrupt mode."""

import pytest

from repro import params
from repro.errors import ConfigError, ProtectionError
from repro.vmmc import Cluster, remote_store
from repro.vmmc.notifications import Notifier

RECV = 0x40000000
SEND = 0x10000000


@pytest.fixture
def pair():
    cluster = Cluster(num_nodes=2)
    a = cluster.node(0).create_process()
    b = cluster.node(1).create_process()
    export_id = b.export(RECV, 4 * params.PAGE_SIZE)
    handle = a.import_buffer(1, export_id)
    return cluster, a, b, export_id, handle


class TestPollMode:
    def test_arrival_queued(self, pair):
        cluster, a, b, export_id, handle = pair
        b.enable_notifications(export_id)
        a.write_memory(SEND, b"ding")
        remote_store(cluster, a, SEND, 4, handle, remote_offset=32)
        records = b.poll_notifications()
        assert len(records) == 1
        assert records[0].export_id == export_id
        assert records[0].offset == 32
        assert records[0].nbytes == 4
        assert records[0].from_node == 0

    def test_no_interrupts_in_poll_mode(self, pair):
        cluster, a, b, export_id, handle = pair
        b.enable_notifications(export_id, mode="poll")
        a.write_memory(SEND, b"quiet")
        remote_store(cluster, a, SEND, 5, handle)
        assert cluster.node(1).interrupts.raised == 0
        assert b.poll_notifications()

    def test_poll_drains(self, pair):
        cluster, a, b, export_id, handle = pair
        b.enable_notifications(export_id)
        a.write_memory(SEND, b"x")
        remote_store(cluster, a, SEND, 1, handle)
        assert len(b.poll_notifications()) == 1
        assert b.poll_notifications() == []

    def test_max_records(self, pair):
        cluster, a, b, export_id, handle = pair
        b.enable_notifications(export_id)
        a.write_memory(SEND, b"x")
        for offset in range(3):
            remote_store(cluster, a, SEND, 1, handle, remote_offset=offset)
        assert len(b.poll_notifications(max_records=2)) == 2
        assert len(b.poll_notifications()) == 1

    def test_multi_page_send_notifies_per_chunk(self, pair):
        cluster, a, b, export_id, handle = pair
        b.enable_notifications(export_id)
        a.write_memory(SEND, b"y" * 2 * params.PAGE_SIZE)
        remote_store(cluster, a, SEND, 2 * params.PAGE_SIZE, handle)
        assert len(b.poll_notifications()) == 2    # one per page chunk

    def test_disabled_exports_stay_silent(self, pair):
        cluster, a, b, export_id, handle = pair
        a.write_memory(SEND, b"x")
        remote_store(cluster, a, SEND, 1, handle)
        assert b.poll_notifications() == []


class TestInterruptMode:
    def test_arrival_raises_interrupt(self, pair):
        cluster, a, b, export_id, handle = pair
        b.enable_notifications(export_id, mode="interrupt")
        a.write_memory(SEND, b"wake")
        remote_store(cluster, a, SEND, 4, handle)
        assert cluster.node(1).arrival_interrupts == 1
        assert cluster.node(1).interrupts.by_vector["message-arrived"] == 1
        assert len(b.poll_notifications()) == 1


class TestProtection:
    def test_only_owner_enables(self, pair):
        cluster, a, b, export_id, _ = pair
        stranger = cluster.node(1).create_process()
        with pytest.raises(ProtectionError):
            stranger.enable_notifications(export_id)

    def test_unknown_mode_rejected(self, pair):
        cluster, a, b, export_id, _ = pair
        with pytest.raises(ConfigError):
            b.enable_notifications(export_id, mode="callback")


class TestQueueOverflow:
    def test_oldest_dropped_when_full(self):
        from repro.vmmc.buffers import ExportedBuffer
        notifier = Notifier(queue_depth=2)
        export = ExportedBuffer(1, 0x1000, 4096, 0)
        notifier.enable(export)
        for offset in range(3):
            notifier.notify(export, offset, 1, from_node=9)
        records = notifier.poll(1)
        assert [r.offset for r in records] == [1, 2]
        assert notifier.dropped == 1
