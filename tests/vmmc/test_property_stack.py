"""Property-based testing of the whole functional stack.

Hypothesis drives random sequences of remote stores and fetches (random
sizes, offsets, alignments, loss rates) through the full cluster and
checks that a plain Python model of the exported buffers agrees with the
simulated memory byte-for-byte, that UTLB invariants hold, and that the
interrupt-free guarantee survives everything.
"""

from hypothesis import given, settings, strategies as st

from repro import params
from repro.vmmc import Cluster, barrier

RECV = 0x40000000
SEND = 0x10000000
EXPORT_PAGES = 4
EXPORT_BYTES = EXPORT_PAGES * params.PAGE_SIZE

operations = st.lists(
    st.tuples(
        st.sampled_from(["store", "fetch"]),
        st.integers(min_value=0, max_value=EXPORT_BYTES - 1),   # offset
        st.integers(min_value=1, max_value=2 * params.PAGE_SIZE),  # nbytes
        st.integers(min_value=0, max_value=255),                # fill byte
    ),
    min_size=1, max_size=12)


class TestRandomTraffic:
    @settings(max_examples=25, deadline=None)
    @given(ops=operations, loss_permille=st.sampled_from([0, 0, 150]),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_stack_matches_reference_model(self, ops, loss_permille, seed):
        cluster = Cluster(num_nodes=2, loss_rate=loss_permille / 1000.0,
                          seed=seed)
        sender = cluster.node(0).create_process()
        receiver = cluster.node(1).create_process()
        export_id = receiver.export(RECV, EXPORT_BYTES)
        handle = sender.import_buffer(1, export_id)

        reference = bytearray(EXPORT_BYTES)      # model of the export
        fetch_checks = []

        for index, (op, offset, nbytes, fill) in enumerate(ops):
            nbytes = min(nbytes, EXPORT_BYTES - offset)
            if nbytes == 0:
                continue
            if op == "store":
                payload = bytes([fill]) * nbytes
                sender.write_memory(SEND, payload)
                sender.send(SEND, nbytes, handle, remote_offset=offset)
                barrier(cluster)
                reference[offset:offset + nbytes] = payload
            else:
                local = SEND + 0x100000 + index * 2 * params.PAGE_SIZE
                sender.fetch(local, nbytes, handle, remote_offset=offset)
                barrier(cluster)
                fetch_checks.append(
                    (local, bytes(reference[offset:offset + nbytes])))

        assert receiver.read_memory(RECV, EXPORT_BYTES) == bytes(reference)
        for local, expected in fetch_checks[-3:]:
            assert sender.read_memory(local, len(expected)) == expected

        sender.utlb.check_invariants()
        receiver.utlb.check_invariants()
        assert cluster.node(0).interrupts.raised == 0
        assert cluster.node(1).interrupts.raised == 0
        assert cluster.node(0).endpoint.all_acked()

    @settings(max_examples=10, deadline=None)
    @given(limit=st.integers(min_value=8, max_value=32),
           pages=st.lists(st.integers(min_value=0, max_value=64),
                          min_size=1, max_size=120))
    def test_memory_pressure_never_breaks_transfers(self, limit, pages):
        """A sender with a tight pinning budget churning many buffers:
        every transfer still lands correctly."""
        cluster = Cluster(num_nodes=2)
        sender = cluster.node(0).create_process(memory_limit_pages=limit)
        receiver = cluster.node(1).create_process()
        export_id = receiver.export(RECV, params.PAGE_SIZE)
        handle = sender.import_buffer(1, export_id)

        for page in pages:
            vaddr = SEND + page * params.PAGE_SIZE
            stamp = bytes([page & 0xFF]) * 16
            sender.write_memory(vaddr, stamp)
            sender.send(vaddr, 16, handle, remote_offset=0)
            barrier(cluster)
            assert receiver.read_memory(RECV, 16) == stamp
        sender.utlb.check_invariants()
        assert len(sender.utlb.pool) <= limit
