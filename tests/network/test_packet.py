"""Packet framing."""

import pytest

from repro.errors import NetworkError
from repro.network.packet import HEADER_BYTES, KIND_DATA, Packet


class TestPacket:
    def test_wire_bytes_include_header(self):
        packet = Packet(0, 1, KIND_DATA, data_bytes=100)
        assert packet.wire_bytes == HEADER_BYTES + 100

    def test_header_only_packet(self):
        packet = Packet(0, 1, "ack")
        assert packet.wire_bytes == HEADER_BYTES

    def test_loopback_rejected(self):
        with pytest.raises(NetworkError):
            Packet(3, 3, KIND_DATA)

    def test_ids_unique(self):
        a = Packet(0, 1, KIND_DATA)
        b = Packet(0, 1, KIND_DATA)
        assert a.packet_id != b.packet_id

    def test_payload_defaults_to_empty_dict(self):
        assert Packet(0, 1, KIND_DATA).payload == {}

    def test_seq_unset_until_reliability_layer(self):
        assert Packet(0, 1, KIND_DATA).seq is None
