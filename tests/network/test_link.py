"""Point-to-point links: latency, loss, failure."""

import pytest

from repro.errors import NetworkError
from repro.network.link import Link
from repro.network.packet import KIND_DATA, Packet


def packet(src=0, dst=1):
    return Packet(src, dst, KIND_DATA, data_bytes=64)


class TestDelivery:
    def test_delivers_after_latency(self):
        link = Link("l", latency_steps=2)
        p = packet()
        link.send(p, now=0)
        assert link.deliver(now=1) == []
        assert link.deliver(now=2) == [p]

    def test_order_preserved(self):
        link = Link("l", latency_steps=1)
        a, b = packet(), packet()
        link.send(a, now=0)
        link.send(b, now=0)
        assert link.deliver(now=1) == [a, b]

    def test_in_flight_counted(self):
        link = Link("l", latency_steps=5)
        link.send(packet(), now=0)
        assert link.in_flight == 1
        link.deliver(now=5)
        assert link.in_flight == 0

    def test_bytes_accounted(self):
        link = Link("l")
        p = packet()
        link.send(p, now=0)
        assert link.stats.bytes == p.wire_bytes


class TestLoss:
    def test_lossless_by_default(self):
        link = Link("l")
        for _ in range(50):
            link.send(packet(), now=0)
        assert link.stats.dropped == 0

    def test_lossy_link_drops_some(self):
        link = Link("l", loss_rate=0.5, seed=3)
        for _ in range(200):
            link.send(packet(), now=0)
        assert 50 < link.stats.dropped < 150

    def test_loss_deterministic_by_seed(self):
        def run(seed):
            link = Link("l", loss_rate=0.3, seed=seed)
            return [link.send(packet(), now=0) for _ in range(50)]
        assert run(9) == run(9)

    def test_invalid_loss_rate(self):
        with pytest.raises(NetworkError):
            Link("l", loss_rate=1.0)


class TestFailure:
    def test_down_link_drops_everything(self):
        link = Link("l", latency_steps=3)
        link.send(packet(), now=0)
        link.take_down()
        assert link.in_flight == 0
        assert link.send(packet(), now=1) is False
        assert link.stats.dropped == 2

    def test_bring_up_restores(self):
        link = Link("l")
        link.take_down()
        link.bring_up()
        assert link.send(packet(), now=0) is True

    def test_zero_latency_rejected(self):
        with pytest.raises(NetworkError):
            Link("l", latency_steps=0)
