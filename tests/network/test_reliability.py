"""Data-link reliable delivery: retransmission, ordering, dedup."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.network.packet import KIND_DATA, Packet
from repro.network.reliability import ReliableEndpoint
from repro.network.switch import Fabric


def build_pair(loss_rate=0.0, seed=0, timeout_steps=4):
    fabric = Fabric(loss_rate=loss_rate, seed=seed)
    delivered = {0: [], 1: []}
    endpoints = {}
    for node in (0, 1):
        endpoints[node] = ReliableEndpoint(
            node, fabric, delivered[node].append,
            timeout_steps=timeout_steps)
        fabric.attach(node, endpoints[node].handle_packet)
    return fabric, endpoints, delivered


def run(fabric, endpoints, steps):
    for _ in range(steps):
        fabric.step()
        for endpoint in endpoints.values():
            endpoint.tick()


class TestLosslessPath:
    def test_delivery_and_ack(self):
        fabric, endpoints, delivered = build_pair()
        p = Packet(0, 1, KIND_DATA, payload={"n": 1})
        endpoints[0].send(p)
        run(fabric, endpoints, 6)
        assert [q.payload["n"] for q in delivered[1]] == [1]
        assert endpoints[0].all_acked()

    def test_order_preserved(self):
        fabric, endpoints, delivered = build_pair()
        for n in range(5):
            endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"n": n}))
        run(fabric, endpoints, 10)
        assert [q.payload["n"] for q in delivered[1]] == list(range(5))

    def test_no_retransmits_without_loss(self):
        fabric, endpoints, _ = build_pair()
        for n in range(5):
            endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"n": n}))
        run(fabric, endpoints, 20)
        assert endpoints[0].stats.retransmitted == 0


class TestLossRecovery:
    def test_recovers_from_heavy_loss(self):
        fabric, endpoints, delivered = build_pair(loss_rate=0.4, seed=11)
        for n in range(20):
            endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"n": n}))
        run(fabric, endpoints, 400)
        assert [q.payload["n"] for q in delivered[1]] == list(range(20))
        assert endpoints[0].all_acked()
        assert endpoints[0].stats.retransmitted > 0

    def test_duplicates_suppressed(self):
        fabric, endpoints, delivered = build_pair(loss_rate=0.4, seed=11)
        for n in range(20):
            endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"n": n}))
        run(fabric, endpoints, 400)
        # Exactly one delivery per packet despite retransmissions.
        assert len(delivered[1]) == 20

    def test_gives_up_after_max_retries(self):
        fabric, endpoints, _ = build_pair(timeout_steps=1)
        endpoints[0].max_retries = 3
        fabric.uplink(0).take_down()
        endpoints[0].send(Packet(0, 1, KIND_DATA))
        with pytest.raises(NetworkError):
            run(fabric, endpoints, 50)


class TestNodeRemappingRecovery:
    def test_traffic_survives_port_failure(self):
        """The VMMC-2 story: a port dies mid-burst; node remapping plus
        retransmission delivers everything exactly once."""
        fabric, endpoints, delivered = build_pair()
        for n in range(10):
            endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"n": n}))
        fabric.step()                      # some packets in flight
        fabric.remap_node(1)               # down-link dies, packets lost
        run(fabric, endpoints, 100)
        assert [q.payload["n"] for q in delivered[1]] == list(range(10))


class TestBidirectional:
    def test_two_way_traffic(self):
        fabric, endpoints, delivered = build_pair()
        endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"d": "fwd"}))
        endpoints[1].send(Packet(1, 0, KIND_DATA, payload={"d": "rev"}))
        run(fabric, endpoints, 10)
        assert delivered[1][0].payload["d"] == "fwd"
        assert delivered[0][0].payload["d"] == "rev"


class TestPropertyLoss:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10000),
           st.integers(min_value=1, max_value=15),
           st.floats(min_value=0.0, max_value=0.45))
    def test_exactly_once_in_order_under_any_loss(self, seed, count, loss):
        fabric, endpoints, delivered = build_pair(loss_rate=loss, seed=seed)
        for n in range(count):
            endpoints[0].send(Packet(0, 1, KIND_DATA, payload={"n": n}))
        run(fabric, endpoints, 1500)
        assert [q.payload["n"] for q in delivered[1]] == list(range(count))
        assert endpoints[0].all_acked()
