"""The crossbar fabric: routing, stepping, node remapping."""

import pytest

from repro.errors import NetworkError
from repro.network.packet import KIND_DATA, Packet
from repro.network.switch import Fabric


def build(n=3, **kwargs):
    fabric = Fabric(**kwargs)
    inboxes = {node: [] for node in range(n)}
    for node in range(n):
        fabric.attach(node, inboxes[node].append)
    return fabric, inboxes


class TestRouting:
    def test_packet_reaches_destination(self):
        fabric, inboxes = build()
        fabric.send(Packet(0, 2, KIND_DATA))
        fabric.step(2)          # one step up-link, one step down-link
        assert len(inboxes[2]) == 1
        assert inboxes[0] == [] and inboxes[1] == []

    def test_bidirectional(self):
        fabric, inboxes = build()
        fabric.send(Packet(0, 1, KIND_DATA))
        fabric.send(Packet(1, 0, KIND_DATA))
        fabric.step(2)
        assert len(inboxes[0]) == 1
        assert len(inboxes[1]) == 1

    def test_unattached_source_rejected(self):
        fabric, _ = build()
        with pytest.raises(NetworkError):
            fabric.send(Packet(9, 0, KIND_DATA))

    def test_unattached_destination_rejected(self):
        fabric, _ = build()
        with pytest.raises(NetworkError):
            fabric.send(Packet(0, 9, KIND_DATA))

    def test_duplicate_attach_rejected(self):
        fabric, _ = build()
        with pytest.raises(NetworkError):
            fabric.attach(0, lambda p: None)

    def test_loopback_packets_rejected(self):
        with pytest.raises(NetworkError):
            Packet(0, 0, KIND_DATA)

    def test_clock_advances(self):
        fabric, _ = build()
        assert fabric.step(5) == 5
        assert fabric.now == 5


class TestNodeRemapping:
    def test_remap_loses_in_flight_but_restores_routing(self):
        fabric, inboxes = build()
        fabric.send(Packet(0, 1, KIND_DATA))
        fabric.step(1)              # packet now on node 1's down-link
        fabric.remap_node(1)        # port failure: in-flight packet lost
        fabric.step(3)
        assert inboxes[1] == []
        # New traffic flows through the replacement port.
        fabric.send(Packet(0, 1, KIND_DATA))
        fabric.step(2)
        assert len(inboxes[1]) == 1

    def test_remap_unknown_node_rejected(self):
        fabric, _ = build()
        with pytest.raises(NetworkError):
            fabric.remap_node(9)

    def test_remap_returns_fresh_port(self):
        fabric, _ = build()
        port = fabric.remap_node(0)
        assert port >= 3            # the first three ports were taken
