"""The parallel sweep engine: determinism, caching, metrics, JSON.

Three properties carry the engine's whole value:

* a parallel run is byte-identical to the serial baseline,
* the cache answers identical inputs and never answers changed ones,
* the structured metrics faithfully record what each cell cost.
"""

import json

import pytest

from repro.cachesim.classify import MissBreakdown
from repro.core.stats import TranslationStats
from repro.errors import ConfigError
from repro.sim.config import SimConfig
from repro.sim.runner import (
    SweepCell,
    SweepRunner,
    cell_key,
    code_version,
    trace_fingerprint,
)
from repro.sim.simulator import ClusterResult, NodeResult, simulate_node
from repro.traces.synth import make_app

SCALE = 0.05
SEED = 1


@pytest.fixture(scope="module")
def traces():
    """Two-node FFT traces, small enough for many replays per test run."""
    return make_app("fft").generate_cluster(nodes=2, seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def config():
    return SimConfig(cache_entries=256)


def run_dicts(results):
    return [r.to_dict() for r in results]


class TestJsonRoundTrip:
    def test_node_result_round_trips(self, traces, config):
        result = simulate_node(traces[0], config)
        rebuilt = NodeResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.stats.snapshot() == result.stats.snapshot()
        assert sorted(rebuilt.per_pid) == sorted(result.per_pid)

    def test_cluster_result_round_trips(self, traces, config):
        runner = SweepRunner()
        result = runner.run(traces, config)
        rebuilt = ClusterResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_breakdown_round_trips(self, traces):
        result = simulate_node(traces[0],
                               SimConfig(cache_entries=256, classify=True))
        assert result.breakdown is not None
        rebuilt = MissBreakdown.from_dict(result.breakdown.to_dict())
        assert rebuilt.to_dict() == result.breakdown.to_dict()

    def test_stats_round_trips_through_json(self, traces, config):
        stats = simulate_node(traces[0], config).stats
        blob = json.dumps(stats.to_dict())
        rebuilt = TranslationStats.from_dict(json.loads(blob))
        assert rebuilt.snapshot() == stats.snapshot()


class TestDeterminism:
    def test_parallel_equals_serial(self, traces, config):
        cells = [SweepCell(size, traces, config.replace(cache_entries=size))
                 for size in (128, 256, 512)]
        serial = SweepRunner(workers=1).run_cells(cells)
        with SweepRunner(workers=2) as parallel_runner:
            parallel = parallel_runner.run_cells(cells)
        assert run_dicts(parallel) == run_dicts(serial)

    def test_mechanisms_parallel_equals_serial(self, traces, config):
        cells = [SweepCell(mech, traces, config, mech)
                 for mech in ("utlb", "intr", "pp")]
        serial = SweepRunner(workers=1).run_cells(cells)
        with SweepRunner(workers=2) as parallel_runner:
            parallel = parallel_runner.run_cells(cells)
        assert run_dicts(parallel) == run_dicts(serial)

    def test_results_returned_in_submission_order(self, traces, config):
        sizes = (512, 128, 256)
        cells = [SweepCell(size, traces, config.replace(cache_entries=size))
                 for size in sizes]
        results = SweepRunner().run_cells(cells)
        direct = {size: SweepRunner().run(
                      traces, config.replace(cache_entries=size))
                  for size in sizes}
        for size, result in zip(sizes, results):
            assert result.to_dict() == direct[size].to_dict()


class TestCache:
    def test_warm_run_hits_and_matches(self, traces, config, tmp_path):
        cold = SweepRunner(cache_dir=str(tmp_path))
        first = cold.run(traces, config)
        assert cold.cache.hits == 0 and cold.cache.misses == 1

        warm = SweepRunner(cache_dir=str(tmp_path))
        second = warm.run(traces, config)
        assert warm.cache.hits == 1 and warm.cache.misses == 0
        assert second.to_dict() == first.to_dict()

    def test_any_config_field_change_misses(self, traces, config, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(traces, config)
        for changed in (config.replace(cache_entries=512),
                        config.replace(associativity=2),
                        config.replace(offsetting=False),
                        config.replace(prefetch=4, prepin=4),
                        config.replace(pin_policy="mru"),
                        config.replace(memory_limit_bytes=1 << 20)):
            assert cell_key(traces, changed, "utlb") != \
                cell_key(traces, config, "utlb")
        runner2 = SweepRunner(cache_dir=str(tmp_path))
        runner2.run(traces, config.replace(cache_entries=512))
        assert runner2.cache.hits == 0 and runner2.cache.misses == 1

    def test_mechanism_and_trace_shape_key(self, traces, config):
        base = cell_key(traces, config, "utlb")
        assert cell_key(traces, config, "intr") != base
        other = make_app("fft").generate_cluster(nodes=2, seed=SEED + 1,
                                                 scale=SCALE)
        assert cell_key(other, config, "utlb") != base
        assert cell_key(traces, config, "utlb") == base   # stable

    def test_corrupt_entry_is_a_miss(self, traces, config, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(traces, config)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json")
        rerun = SweepRunner(cache_dir=str(tmp_path))
        result = rerun.run(traces, config)
        assert rerun.cache.misses == 1
        assert result.stats.lookups > 0

    def test_fingerprints_are_content_hashes(self, traces):
        assert trace_fingerprint(traces[0]) == trace_fingerprint(traces[0])
        assert trace_fingerprint(traces[0]) != trace_fingerprint(traces[1])
        assert len(code_version()) == 16


class TestMetrics:
    def test_cells_record_cost_and_outcome(self, traces, config, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(traces, config, label=("fft", 256))
        runner.run(traces, config, label=("fft", 256))   # warm
        report = runner.metrics.to_dict()
        assert report["workers"] == 1
        assert report["totals"]["cells"] == 2
        assert report["totals"]["cache_hits"] == 1
        assert report["totals"]["cache_misses"] == 1
        cold_cell, warm_cell = report["cells"]
        assert not cold_cell["cache_hit"] and warm_cell["cache_hit"]
        for cell in (cold_cell, warm_cell):
            assert cell["label"] == str(("fft", 256))
            assert cell["nodes"] == 2
            assert cell["wall_time_s"] > 0.0
            assert cell["lookups"] == cell["stats"]["lookups"] > 0
        json.dumps(report)                                # JSON-safe

    def test_metrics_survive_json(self, traces, config):
        runner = SweepRunner()
        runner.run(traces, config)
        report = json.loads(json.dumps(runner.metrics.to_dict()))
        assert report["totals"]["lookups"] == \
            runner.metrics.cells[0].lookups


class TestValidation:
    def test_unknown_mechanism_rejected(self, traces, config):
        with pytest.raises(ConfigError):
            SweepCell("x", traces, config, "magic")

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(workers=0)
