"""The parallel sweep engine: determinism, caching, metrics, JSON.

Three properties carry the engine's whole value:

* a parallel run is byte-identical to the serial baseline — under both
  ``fork`` and ``spawn``, with the shared-memory stream store active,
* the cache answers identical inputs and never answers changed ones,
* the structured metrics faithfully record what each cell cost.
"""

import json
import multiprocessing
from multiprocessing import shared_memory

import pytest

from repro.cachesim.classify import MissBreakdown
from repro.core.stats import TranslationStats
from repro.errors import ConfigError
from repro.sim.config import SimConfig
from repro.sim.runner import (
    SweepCell,
    SweepRunner,
    cell_key,
    code_version,
    trace_fingerprint,
    workers_from_env,
)
from repro.sim.simulator import ClusterResult, NodeResult, simulate_node
from repro.traces.record import TraceRecord
from repro.traces.synth import make_app, make_workload

SCALE = 0.05
SEED = 1

#: Start methods available on this platform ("fork" is absent on
#: Windows; both exist on the POSIX hosts CI runs).
MP_CONTEXTS = [method for method in ("fork", "spawn")
               if method in multiprocessing.get_all_start_methods()]


@pytest.fixture(scope="module")
def traces():
    """Two-node FFT traces, small enough for many replays per test run."""
    return make_app("fft").generate_cluster(nodes=2, seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def config():
    return SimConfig(cache_entries=256)


def run_dicts(results):
    return [r.to_dict() for r in results]


class TestJsonRoundTrip:
    def test_node_result_round_trips(self, traces, config):
        result = simulate_node(traces[0], config)
        rebuilt = NodeResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.stats.snapshot() == result.stats.snapshot()
        assert sorted(rebuilt.per_pid) == sorted(result.per_pid)

    def test_cluster_result_round_trips(self, traces, config):
        runner = SweepRunner()
        result = runner.run(traces, config)
        rebuilt = ClusterResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_breakdown_round_trips(self, traces):
        result = simulate_node(traces[0],
                               SimConfig(cache_entries=256, classify=True))
        assert result.breakdown is not None
        rebuilt = MissBreakdown.from_dict(result.breakdown.to_dict())
        assert rebuilt.to_dict() == result.breakdown.to_dict()

    def test_stats_round_trips_through_json(self, traces, config):
        stats = simulate_node(traces[0], config).stats
        blob = json.dumps(stats.to_dict())
        rebuilt = TranslationStats.from_dict(json.loads(blob))
        assert rebuilt.snapshot() == stats.snapshot()


class TestDeterminism:
    @pytest.mark.parametrize("mp_context", MP_CONTEXTS)
    def test_parallel_equals_serial(self, traces, config, mp_context):
        cells = [SweepCell(size, traces, config.replace(cache_entries=size))
                 for size in (128, 256, 512)]
        serial = SweepRunner(workers=1).run_cells(cells)
        with SweepRunner(workers=2,
                         mp_context=mp_context) as parallel_runner:
            parallel = parallel_runner.run_cells(cells)
            # The shared-memory path was actually exercised, not a
            # records-pickling fallback.
            assert parallel_runner.last_stream_manifest
        assert run_dicts(parallel) == run_dicts(serial)

    @pytest.mark.parametrize("mp_context", MP_CONTEXTS)
    def test_mechanisms_parallel_equals_serial(self, traces, config,
                                               mp_context):
        cells = [SweepCell(mech, traces, config, mech)
                 for mech in ("utlb", "intr", "pp")]
        serial = SweepRunner(workers=1).run_cells(cells)
        with SweepRunner(workers=2,
                         mp_context=mp_context) as parallel_runner:
            parallel = parallel_runner.run_cells(cells)
        assert run_dicts(parallel) == run_dicts(serial)

    def test_reference_engine_parallel_equals_serial(self, traces, config):
        # Reference-engine units ship their records (no compiled
        # streams); the mixed batch exercises both transports at once.
        cells = [SweepCell(engine, traces, config.replace(engine=engine))
                 for engine in ("fast", "reference")]
        serial = SweepRunner(workers=1).run_cells(cells)
        with SweepRunner(workers=2) as parallel_runner:
            parallel = parallel_runner.run_cells(cells)
        assert run_dicts(parallel) == run_dicts(serial)

    def test_results_returned_in_submission_order(self, traces, config):
        sizes = (512, 128, 256)
        cells = [SweepCell(size, traces, config.replace(cache_entries=size))
                 for size in sizes]
        results = SweepRunner().run_cells(cells)
        direct = {size: SweepRunner().run(
                      traces, config.replace(cache_entries=size))
                  for size in sizes}
        for size, result in zip(sizes, results):
            assert result.to_dict() == direct[size].to_dict()


class TestCache:
    def test_warm_run_hits_and_matches(self, traces, config, tmp_path):
        cold = SweepRunner(cache_dir=str(tmp_path))
        first = cold.run(traces, config)
        assert cold.cache.hits == 0 and cold.cache.misses == 1

        warm = SweepRunner(cache_dir=str(tmp_path))
        second = warm.run(traces, config)
        assert warm.cache.hits == 1 and warm.cache.misses == 0
        assert second.to_dict() == first.to_dict()

    def test_any_config_field_change_misses(self, traces, config, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(traces, config)
        for changed in (config.replace(cache_entries=512),
                        config.replace(associativity=2),
                        config.replace(offsetting=False),
                        config.replace(prefetch=4, prepin=4),
                        config.replace(pin_policy="mru"),
                        config.replace(memory_limit_bytes=1 << 20)):
            assert cell_key(traces, changed, "utlb") != \
                cell_key(traces, config, "utlb")
        runner2 = SweepRunner(cache_dir=str(tmp_path))
        runner2.run(traces, config.replace(cache_entries=512))
        assert runner2.cache.hits == 0 and runner2.cache.misses == 1

    def test_mechanism_and_trace_shape_key(self, traces, config):
        base = cell_key(traces, config, "utlb")
        assert cell_key(traces, config, "intr") != base
        other = make_app("fft").generate_cluster(nodes=2, seed=SEED + 1,
                                                 scale=SCALE)
        assert cell_key(other, config, "utlb") != base
        assert cell_key(traces, config, "utlb") == base   # stable

    def test_corrupt_entry_is_deleted_and_counted(self, traces, config,
                                                  tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        first = runner.run(traces, config)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json")
        rerun = SweepRunner(cache_dir=str(tmp_path))
        result = rerun.run(traces, config)
        # Corrupt is its own outcome — not a hit, not a plain miss — and
        # the broken file is removed so it cannot re-miss forever.
        assert rerun.cache.corrupt == 1
        assert rerun.cache.hits == 0 and rerun.cache.misses == 0
        assert rerun.metrics.cache_corrupt == 1
        assert rerun.metrics.to_dict()["totals"]["cache_corrupt"] == 1
        assert result.stats.lookups > 0
        assert result.to_dict() == first.to_dict()
        # The replay re-stored a good entry, so a third run hits clean.
        third = SweepRunner(cache_dir=str(tmp_path))
        assert third.run(traces, config).to_dict() == first.to_dict()
        assert third.cache.hits == 1 and third.cache.corrupt == 0

    def test_fingerprints_are_content_hashes(self, traces):
        assert trace_fingerprint(traces[0]) == trace_fingerprint(traces[0])
        assert trace_fingerprint(traces[0]) != trace_fingerprint(traces[1])
        assert len(code_version()) == 16

    def test_fingerprint_falls_back_on_unpackable_records(self):
        # A pid beyond the packed layout's 64-bit field routes the whole
        # trace through the repr fallback, which must stay a working,
        # content-sensitive hash (and never collide with packed form).
        records = [TraceRecord(0, 0, 1 << 70, "send", 0x10000000, 4096)]
        other = [TraceRecord(0, 0, (1 << 70) + 1, "send", 0x10000000, 4096)]
        assert trace_fingerprint(records) == trace_fingerprint(records)
        assert trace_fingerprint(records) != trace_fingerprint(other)
        packable = [TraceRecord(0, 0, 1, "send", 0x10000000, 4096)]
        assert trace_fingerprint(records) != trace_fingerprint(packable)


class TestMetrics:
    def test_cells_record_cost_and_outcome(self, traces, config, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(traces, config, label=("fft", 256))
        runner.run(traces, config, label=("fft", 256))   # warm
        report = runner.metrics.to_dict()
        assert report["workers"] == 1
        assert report["totals"]["cells"] == 2
        assert report["totals"]["cache_hits"] == 1
        assert report["totals"]["cache_misses"] == 1
        cold_cell, warm_cell = report["cells"]
        assert not cold_cell["cache_hit"] and warm_cell["cache_hit"]
        for cell in (cold_cell, warm_cell):
            assert cell["label"] == str(("fft", 256))
            assert cell["nodes"] == 2
            assert cell["wall_time_s"] > 0.0
            assert cell["lookups"] == cell["stats"]["lookups"] > 0
        json.dumps(report)                                # JSON-safe

    def test_metrics_survive_json(self, traces, config):
        runner = SweepRunner()
        runner.run(traces, config)
        report = json.loads(json.dumps(runner.metrics.to_dict()))
        assert report["totals"]["lookups"] == \
            runner.metrics.cells[0].lookups

    def test_elapsed_is_wall_clock_cpu_is_the_sum(self, traces, config):
        runner = SweepRunner()
        runner.run(traces, config)
        runner.run(traces, config)
        totals = runner.metrics.to_dict()["totals"]
        # elapsed_s accumulates per batch; cpu_time_s sums unit phases.
        assert totals["elapsed_s"] > 0.0
        assert totals["cpu_time_s"] == pytest.approx(
            sum(c.wall_time_s for c in runner.metrics.cells))
        # Serially, the batch wall clock contains every unit's phases.
        assert totals["elapsed_s"] >= totals["cpu_time_s"]
        assert totals["pages_per_sec"] == pytest.approx(
            totals["lookups"] / totals["elapsed_s"])

    def test_cell_reports_kernel_and_phase_split(self, traces, config):
        """Cells tag kernel planning and promote the compile/replay
        split to top-level metric fields."""
        runner = SweepRunner()
        runner.run(traces, SimConfig(engine="kernel"))
        runner.run(traces, SimConfig(engine="kernel",
                                     memory_limit_bytes=64 * 4096))
        runner.run(traces, config)                      # fast engine
        report = runner.metrics.to_dict()
        kernel_cell, limited_cell, fast_cell = report["cells"]
        assert kernel_cell["kernel"] is True
        assert limited_cell["kernel"] is False          # pinning limit
        assert fast_cell["kernel"] is False             # fast engine
        assert report["totals"]["kernel_cells"] == 1
        for cell in report["cells"]:
            assert cell["compile_s"] == cell["phases"]["compile_s"]
            assert cell["replay_s"] == cell["phases"]["replay_s"]
            assert cell["replay_s"] > 0.0

    def test_kernel_cells_replay_identically(self, traces, config):
        kernel = SweepRunner().run(
            traces, SimConfig(engine="kernel", cache_entries=256))
        fast = SweepRunner().run(traces, config)
        assert kernel.to_dict() == fast.to_dict()

    def test_cell_reports_compile_and_ipc_fields(self, traces, config):
        runner = SweepRunner()
        runner.run(traces, config)
        cell = runner.metrics.to_dict()["cells"][0]
        assert cell["compile_count"] == len(traces)
        assert cell["ipc_bytes"] == 0           # serial: no IPC at all
        with SweepRunner(workers=2) as parallel_runner:
            parallel_runner.run(traces, config)
            totals = parallel_runner.metrics.to_dict()["totals"]
        assert totals["ipc_bytes"] > 0
        assert totals["compile_count"] == len(traces)


class TestSharedStreamBatches:
    def test_batch_compiles_each_distinct_trace_once(self, traces, config):
        """N cells over the same traces: compile_count == distinct node
        traces, not cells x nodes — serial and parallel alike."""
        sizes = (128, 256, 512, 1024)
        cells = [SweepCell(size, traces,
                           config.replace(cache_entries=size))
                 for size in sizes]
        cells += [SweepCell("intr-%d" % size, traces,
                            config.replace(cache_entries=size), "intr")
                  for size in sizes]
        for workers in (1, 2):
            with SweepRunner(workers=workers) as runner:
                runner.run_cells(cells)
                assert runner.metrics.compile_count == len(traces)
                per_cell = [c.compile_count for c in runner.metrics.cells]
                assert sum(per_cell) == len(traces) != \
                    len(cells) * len(traces)

    def test_no_leaked_blocks_after_close(self, traces, config):
        cells = [SweepCell(size, traces, config.replace(cache_entries=size))
                 for size in (128, 256)]
        with SweepRunner(workers=2) as runner:
            runner.run_cells(cells)
            manifest = dict(runner.last_stream_manifest)
        assert manifest
        # Every published block is unlinked by the time the batch
        # returns (and certainly after close()): attaching by name fails.
        for name in manifest.values():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_blocks_unlinked_when_a_worker_fails(self, traces, config):
        # A config the workers will choke on: engine validation happens
        # in SimConfig, so break the unit by an unknown mechanism
        # injected after validation.
        cells = [SweepCell(128, traces, config.replace(cache_entries=128)),
                 SweepCell(256, traces, config.replace(cache_entries=256))]
        with SweepRunner(workers=2) as runner:
            broken = SweepCell(1, traces, config)
            broken.mechanism = "not-a-mechanism"     # bypasses __init__
            # Registry resolution fails at dispatch time, inside the
            # worker — after the good cells' streams were published.
            with pytest.raises(ConfigError):
                runner.run_cells(cells + [broken])
            manifest = dict(runner.last_stream_manifest)
        assert manifest
        for name in manifest.values():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestStreamingSources:
    """StreamingNodeTrace cells: the bounded-memory input path."""

    @pytest.fixture(scope="class")
    def zipf_traces(self):
        return make_workload("zipf-kv").streaming_cluster(nodes=2,
                                                          seed=SEED,
                                                          scale=0.02)

    def test_streaming_equals_eager_through_runner(self, config):
        workload = make_workload("zipf-kv")
        eager = workload.generate_cluster(nodes=2, seed=SEED, scale=0.02)
        streaming = workload.streaming_cluster(nodes=2, seed=SEED,
                                               scale=0.02)
        runner = SweepRunner()
        assert runner.run(streaming, config).to_dict() == \
            SweepRunner().run(eager, config).to_dict()

    @pytest.mark.parametrize("mp_context", MP_CONTEXTS)
    def test_parallel_equals_serial(self, zipf_traces, config, mp_context):
        cells = [SweepCell(size, zipf_traces,
                           config.replace(cache_entries=size))
                 for size in (128, 256)]
        serial = SweepRunner(workers=1).run_cells(cells)
        with SweepRunner(workers=2,
                         mp_context=mp_context) as parallel_runner:
            parallel = parallel_runner.run_cells(cells)
            assert parallel_runner.last_stream_manifest
        assert run_dicts(parallel) == run_dicts(serial)

    def test_cache_hits_on_streaming_sources(self, zipf_traces, config,
                                             tmp_path):
        cold = SweepRunner(cache_dir=str(tmp_path))
        first = cold.run(zipf_traces, config)
        assert cold.cache.misses == 1
        warm = SweepRunner(cache_dir=str(tmp_path))
        second = warm.run(zipf_traces, config)
        assert warm.cache.hits == 1 and warm.cache.misses == 0
        assert second.to_dict() == first.to_dict()

    def test_streaming_fingerprint_matches_eager(self, config):
        workload = make_workload("zipf-kv")
        streaming = workload.streaming_node(0, seed=SEED, scale=0.02)
        eager = workload.generate_node(0, seed=SEED, scale=0.02)
        assert trace_fingerprint(streaming) == trace_fingerprint(eager)


class TestAnalyticAttribution:
    """Axis-solved cells must report real costs, not zeros."""

    def axis_cells(self, traces, config):
        return [SweepCell(lim, traces,
                          config.replace(memory_limit_bytes=lim))
                for lim in (1 << 20, 2 << 20, 4 << 20, 8 << 20)]

    def test_axis_cells_share_the_solve_cost(self, traces, config):
        runner = SweepRunner()
        runner.run_cells(self.axis_cells(traces, config))
        cells = runner.metrics.cells
        assert all(c.analytic for c in cells)
        assert {c.axis_id for c in cells} == {0}
        for cell in runner.metrics.to_dict()["cells"]:
            assert cell["analytic"]
            assert cell["axis_id"] == 0
            assert cell["wall_time_s"] > 0.0
            assert cell["pages_per_sec"] > 0.0

    def test_axis_totals_match_the_sum_of_members(self, traces, config):
        runner = SweepRunner()
        runner.run_cells(self.axis_cells(traces, config))
        totals = runner.metrics.to_dict()["totals"]
        assert totals["analytic_axes"] == 1
        assert totals["analytic_cells"] == 4
        assert totals["cpu_time_s"] == pytest.approx(
            sum(c.wall_time_s for c in runner.metrics.cells))

    def test_axis_ids_are_run_unique_across_batches(self, traces, config):
        runner = SweepRunner()
        runner.run_cells(self.axis_cells(traces, config))
        runner.run_cells(self.axis_cells(
            traces, config.replace(cache_entries=512)))
        ids = [c.axis_id for c in runner.metrics.cells]
        assert ids == [0] * 4 + [1] * 4

    def test_replayed_cells_have_no_axis_id(self, traces, config):
        runner = SweepRunner()
        runner.run(traces, config)
        (cell,) = runner.metrics.cells
        assert not cell.analytic
        assert cell.axis_id is None


class TestValidation:
    def test_unknown_mechanism_rejected(self, traces, config):
        with pytest.raises(ConfigError):
            SweepCell("x", traces, config, "magic")

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(workers=0)

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env() == 1
        assert workers_from_env(default=4) == 4

    def test_workers_env_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert workers_from_env() == 3

    @pytest.mark.parametrize("value", ["zero", "2.5", "", "0", "-1"])
    def test_workers_env_invalid_raises_config_error(self, monkeypatch,
                                                     value):
        monkeypatch.setenv("REPRO_WORKERS", value)
        with pytest.raises(ConfigError) as excinfo:
            workers_from_env()
        assert repr(value) in str(excinfo.value)
