"""Paper-data transcription and the automated comparison machinery."""

import pytest

from repro import paperdata
from repro.sim.compare import compare_table3, compare_table4, compare_table8


class TestPaperData:
    def test_table3_has_all_seven_apps(self):
        assert len(paperdata.TABLE3) == 7

    def test_table4_internal_consistency(self):
        """In the paper's Table 4, UTLB and Intr share the NI miss rate
        (same cache structures) — verify our transcription kept that."""
        for app, per_size in paperdata.TABLE4.items():
            for size, cell in per_size.items():
                assert cell["utlb"][1] == cell["intr"][0], (app, size)

    def test_table4_utlb_never_unpins(self):
        for per_size in paperdata.TABLE4.values():
            for cell in per_size.values():
                assert cell["utlb"][2] == 0.0

    def test_table4_check_rate_size_independent(self):
        for app, per_size in paperdata.TABLE4.items():
            checks = {cell["utlb"][0] for cell in per_size.values()}
            assert len(checks) == 1, app

    def test_table6_fft_utlb_wins_everywhere(self):
        for utlb_us, intr_us in paperdata.TABLE6["fft"].values():
            assert utlb_us < intr_us

    def test_table6_barnes_crossover(self):
        assert paperdata.TABLE6["barnes"][1024][0] < \
            paperdata.TABLE6["barnes"][1024][1]
        assert paperdata.TABLE6["barnes"][16384][0] > \
            paperdata.TABLE6["barnes"][16384][1]

    def test_table7_fft_pathology(self):
        pin_1, pin_16 = paperdata.TABLE7["fft"]["pin"]
        unpin_1, unpin_16 = paperdata.TABLE7["fft"]["unpin"]
        assert pin_16 > pin_1
        assert unpin_16 > 100 * unpin_1

    def test_table8_nohash_always_worst_or_equal(self):
        for app, cells in paperdata.TABLE8.items():
            sizes = {size for size, _ in cells}
            for size in sizes:
                assert cells[(size, "direct-nohash")] >= \
                    cells[(size, "direct")], (app, size)

    def test_headline_fast_path_sums(self):
        h = paperdata.HEADLINE
        assert h["fast_path_host_us"] + h["fast_path_nic_us"] == \
            pytest.approx(h["fast_path_total_us"])


class TestComparison:
    TINY = dict(scale=0.05, nodes=1, seed=1)

    def test_table3_rows_for_every_app(self):
        rows, text = compare_table3(**self.TINY)
        assert len(rows) == 7
        assert "paper fp" in text

    def test_table4_shape_criteria_pass(self):
        findings, text = compare_table4(sizes=(128, 1024), **self.TINY)
        assert all(passed for _, passed in findings), text
        assert "[ok]" in text

    def test_table8_shape_criteria_pass(self):
        findings, text = compare_table8(sizes=(128, 1024), **self.TINY)
        assert all(passed for _, passed in findings), text
