"""Simulation configuration."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import SimConfig


class TestDefaults:
    def test_headline_configuration(self):
        config = SimConfig()
        assert config.cache_entries == 8192
        assert config.associativity == 1
        assert config.offsetting
        assert config.prefetch == 1
        assert config.prepin == 1
        assert config.memory_limit_pages is None
        assert config.pin_policy == "lru"


class TestValidation:
    def test_bad_cache_entries(self):
        with pytest.raises(ConfigError):
            SimConfig(cache_entries=0)

    def test_indivisible_associativity(self):
        with pytest.raises(ConfigError):
            SimConfig(cache_entries=10, associativity=4)

    def test_bad_prefetch(self):
        with pytest.raises(ConfigError):
            SimConfig(prefetch=0)

    def test_bad_memory_limit(self):
        with pytest.raises(ConfigError):
            SimConfig(memory_limit_bytes=-1)

    def test_unknown_pin_policy_fails_at_construction(self):
        # Eagerly, naming the bad value and the valid choices — not a
        # KeyError thousands of lookups into a replay when the first
        # limit eviction finally asks the policy factory.
        with pytest.raises(ConfigError) as excinfo:
            SimConfig(pin_policy="fifo")
        message = str(excinfo.value)
        assert "'fifo'" in message
        for name in ("lru", "mru", "lfu", "mfu", "random"):
            assert name in message

    def test_pin_policy_instances_pass_through(self):
        # examples/custom_replacement_policy.py injects policy
        # *instances*; only string names are validated.
        class Custom:
            pass

        instance = Custom()
        assert SimConfig(pin_policy=instance).pin_policy is instance


class TestDerived:
    def test_memory_limit_pages(self):
        config = SimConfig(memory_limit_bytes=4 * 1024 * 1024)
        assert config.memory_limit_pages == 1024

    def test_replace_overrides_one_field(self):
        base = SimConfig()
        changed = base.replace(cache_entries=1024)
        assert changed.cache_entries == 1024
        assert changed.prefetch == base.prefetch
        assert base.cache_entries == 8192       # original untouched

    def test_describe_mentions_key_fields(self):
        text = SimConfig(memory_limit_bytes=4 * 1024 * 1024).describe()
        assert "4MB" in text and "cache=8192" in text
