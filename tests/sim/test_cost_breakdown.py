"""The per-component cost-breakdown extension experiment."""

import pytest

from repro.sim import experiments as exp

TINY = dict(scale=0.05, nodes=1, seed=1)


@pytest.fixture(scope="module")
def data():
    return exp.cost_breakdown(cache_entries=256, **TINY)


class TestBreakdown:
    def test_all_apps_both_mechanisms(self, data):
        assert len(data) == 7
        for per_mech in data.values():
            assert set(per_mech) == {"utlb", "intr"}

    def test_components_sum_to_total(self, data):
        for per_mech in data.values():
            for cell in per_mech.values():
                total = sum(cell[c] for c in exp.BREAKDOWN_COMPONENTS)
                assert total == pytest.approx(cell["total_us"])

    def test_utlb_structure(self, data):
        """UTLB: pays user check + pinning, never interrupts."""
        for per_mech in data.values():
            utlb = per_mech["utlb"]
            assert utlb["check_us"] == pytest.approx(0.5)
            assert utlb["interrupt_us"] == 0.0
            assert utlb["pin_us"] > 0.0

    def test_intr_structure(self, data):
        """Baseline: no user-level work, pays interrupts per miss."""
        for per_mech in data.values():
            intr = per_mech["intr"]
            assert intr["check_us"] == 0.0
            assert intr["interrupt_us"] > 0.0
            assert intr["ni_miss_us"] == 0.0    # install, not DMA fetch

    def test_ni_hit_charged_every_lookup(self, data):
        for per_mech in data.values():
            for cell in per_mech.values():
                assert cell["ni_hit_us"] == pytest.approx(0.8)

    def test_render(self, data):
        text = exp.render_cost_breakdown(data)
        assert "interrupt" in text and "total" in text
