"""The analytic axis solver: planning, exactness, stack properties.

The solver's whole contract is *byte-identity*: an analytic-eligible
axis must produce, cell by cell, the same ``ClusterResult.to_dict()``
the fast replay engine produces — counters and accumulated float time
fields alike.  The differential tests here enforce that over the
paper's own axes (Table 5 memory limits, Table 8 sizes x associativity
x offsetting) on synthetic multi-process traces built to exercise the
hard cases: set conflicts, unpin-then-invalidate interleavings, tiny
limits, empty traces.

The Hypothesis properties pin the stack-algorithm math itself:
histogram totals account for every access, misses are monotone
non-increasing in capacity (the LRU inclusion property), and a
single-cell axis agrees with a direct ``simulate_node`` replay.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.core.costs import DEFAULT_COST_MODEL
from repro.sim.analytic import (
    AXIS_MIN_CELLS,
    cell_eligible,
    plan_axes,
    solve_axis_node,
    _memory_pass,
)
from repro.sim.config import SimConfig
from repro.sim.runner import SweepCell, SweepRunner, trace_fingerprint
from repro.sim.simulator import simulate_node
from repro.traces.compile import compile_streams
from repro.traces.record import TraceRecord


def synth_trace(seed, pids=4, accesses=2500, space=600, hot=48):
    """One node's records: interleaved pids, a hot region plus a tail.

    The hot/cold mix produces real reuse at several stack depths and —
    with a small cache — plenty of cross-pid set conflicts, the part of
    the memory-axis model (conflict flags, K' snapshots, invalidation
    accounting) that a uniform stream would never stress.
    """
    rng = random.Random(seed)
    records = []
    for t in range(accesses):
        page = rng.randrange(hot) if rng.random() < 0.55 \
            else rng.randrange(space)
        records.append(TraceRecord(t, 0, rng.randrange(pids), "send",
                                   page * params.PAGE_SIZE, 64))
    return {0: records}


def assert_cells_identical(cells_fn, analytic_cells=None):
    """Run the same cells with and without the solver; diff every dict."""
    with_solver = SweepRunner(analytic=True)
    solved = with_solver.run_cells(cells_fn())
    replayed = SweepRunner(analytic=False).run_cells(cells_fn())
    for index, (a, b) in enumerate(zip(solved, replayed)):
        assert a.to_dict() == b.to_dict(), "cell %d differs" % index
    if analytic_cells is not None:
        assert with_solver.metrics.analytic_cells == analytic_cells
    return with_solver


# ---------------------------------------------------------------------------
# Differential grids over the paper's axes
# ---------------------------------------------------------------------------

class TestMemoryAxisDifferential:
    PAGE = params.PAGE_SIZE
    LIMITS = [None, PAGE, 3 * PAGE, 10 * PAGE, 37 * PAGE, 200 * PAGE,
              4 * 1024 * 1024]

    def cells(self, traces, **overrides):
        base = SimConfig(cache_entries=64).replace(**overrides)
        return [SweepCell(limit, traces,
                          base.replace(memory_limit_bytes=limit), "utlb")
                for limit in self.LIMITS]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_offset_indexed(self, seed):
        traces = synth_trace(seed)
        runner = assert_cells_identical(
            lambda: self.cells(traces), analytic_cells=len(self.LIMITS))
        assert runner.metrics.analytic_axes == 1

    def test_nohash_indexed(self, seed=3):
        traces = synth_trace(seed)
        assert_cells_identical(
            lambda: self.cells(traces, offsetting=False),
            analytic_cells=len(self.LIMITS))

    def test_single_process(self):
        traces = synth_trace(5, pids=1)
        assert_cells_identical(lambda: self.cells(traces))

    def test_empty_trace(self):
        traces = {0: []}
        assert_cells_identical(lambda: self.cells(traces))


class TestCacheAxisDifferential:
    def cells(self, traces, sizes=(64, 128, 256)):
        """The Table 8 shape: sizes x (direct, 2-way, 4-way, nohash)."""
        base = SimConfig()
        out = []
        for size in sizes:
            for assoc in (1, 2, 4):
                out.append(SweepCell(
                    (size, assoc), traces,
                    base.replace(cache_entries=size, associativity=assoc),
                    "utlb"))
            out.append(SweepCell(
                (size, "nohash"), traces,
                base.replace(cache_entries=size, offsetting=False),
                "utlb"))
        return out

    @pytest.mark.parametrize("seed", [0, 1])
    def test_table8_grid(self, seed):
        traces = synth_trace(seed)
        runner = assert_cells_identical(
            lambda: self.cells(traces), analytic_cells=12)
        assert runner.metrics.analytic_axes == 1

    def test_python_fallback_matches(self, seed=4, monkeypatch=None):
        """The pure-Python direct-mapped pass (no numpy) is exact too."""
        import repro.traces.compile as compile_mod
        traces = synth_trace(seed)
        original = compile_mod.CompiledStreams.numpy_views
        compile_mod.CompiledStreams.numpy_views = lambda self: None
        try:
            assert_cells_identical(lambda: self.cells(traces))
        finally:
            compile_mod.CompiledStreams.numpy_views = original

    def test_multi_node(self):
        traces = synth_trace(6)
        traces[1] = synth_trace(7, pids=2)[0]
        assert_cells_identical(lambda: self.cells(traces))


class TestMixedBatch:
    def test_ineligible_cells_fall_through(self):
        traces = synth_trace(8)
        base = SimConfig()

        def cells():
            return [
                SweepCell("a", traces, base.replace(cache_entries=64),
                          "utlb"),
                SweepCell("b", traces, base.replace(cache_entries=128),
                          "utlb"),
                SweepCell("mru", traces,
                          base.replace(cache_entries=64, pin_policy="mru"),
                          "utlb"),
                SweepCell("intr", traces, base.replace(cache_entries=64),
                          "intr"),
                SweepCell("ref", traces,
                          base.replace(cache_entries=64,
                                       engine="reference"), "utlb"),
            ]

        runner = assert_cells_identical(cells, analytic_cells=2)
        flags = [c.analytic for c in runner.metrics.cells]
        assert flags == [True, True, False, False, False]

    def test_solved_cells_land_in_cache(self, tmp_path):
        traces = synth_trace(9)
        base = SimConfig(cache_entries=64)
        limits = [None, 16 * params.PAGE_SIZE, 64 * params.PAGE_SIZE]

        def cells():
            return [SweepCell(limit, traces,
                              base.replace(memory_limit_bytes=limit),
                              "utlb")
                    for limit in limits]

        cold = SweepRunner(analytic=True, cache_dir=str(tmp_path))
        first = cold.run_cells(cells())
        assert cold.metrics.analytic_cells == len(limits)
        # A replay-only runner answers the identical cells from cache —
        # same keys, so the stored analytic results must be the replay
        # results, bit for bit.
        warm = SweepRunner(analytic=False, cache_dir=str(tmp_path))
        second = warm.run_cells(cells())
        assert warm.metrics.cache_hits == len(limits)
        for a, b in zip(first, second):
            assert a.to_dict() == b.to_dict()

    def test_metrics_json_reports_analytic_counts(self):
        traces = synth_trace(10)
        base = SimConfig()
        runner = SweepRunner(analytic=True)
        runner.run_cells([
            SweepCell(size, traces, base.replace(cache_entries=size),
                      "utlb")
            for size in (64, 128, 256)])
        payload = runner.metrics.to_dict()
        assert payload["totals"]["analytic_axes"] == 1
        assert payload["totals"]["analytic_cells"] == 3
        assert [c["analytic"] for c in payload["cells"]] == [True] * 3


# ---------------------------------------------------------------------------
# Planner rules
# ---------------------------------------------------------------------------

class TestPlanner:
    def plan(self, cells):
        pending = list(range(len(cells)))
        configs = [cell.config for cell in cells]
        memo = {}

        def fingerprint(records):
            key = id(records)
            if key not in memo:
                memo[key] = trace_fingerprint(records)
            return memo[key]

        return plan_axes(cells, pending, configs, fingerprint)

    def test_eligibility_rules(self):
        config = SimConfig()
        assert cell_eligible(config, "utlb")
        assert not cell_eligible(config, "intr")
        assert not cell_eligible(config, "pp")
        assert not cell_eligible(config.replace(engine="reference"), "utlb")
        assert not cell_eligible(config.replace(classify=True), "utlb")
        assert not cell_eligible(
            config.replace(prefetch=4, prepin=4), "utlb")
        assert not cell_eligible(config.replace(pin_policy="mru"), "utlb")

    def test_policy_instances_are_ineligible(self):
        config = SimConfig()
        config.pin_policy = object()    # examples inject instances
        assert not cell_eligible(config, "utlb")

    def test_singleton_groups_replay(self):
        traces = synth_trace(11)
        cells = [SweepCell(0, traces, SimConfig(cache_entries=64), "utlb")]
        axes, leftover = self.plan(cells)
        assert axes == []
        assert leftover == [0]
        assert AXIS_MIN_CELLS == 2

    def test_different_traces_never_share_an_axis(self):
        config = SimConfig(cache_entries=64)
        cells = [
            SweepCell(0, synth_trace(12), config, "utlb"),
            SweepCell(1, synth_trace(13), config.replace(cache_entries=128),
                      "utlb"),
        ]
        axes, leftover = self.plan(cells)
        assert axes == []
        assert leftover == [0, 1]

    def test_memory_axis_claims_before_cache_axis(self):
        # Cells varying only the limit under a direct-mapped cache fit
        # both groupings; the memory solver (one pass for the whole
        # axis, any limit count) must win the claim.
        traces = synth_trace(14)
        base = SimConfig(cache_entries=64)
        cells = [SweepCell(i, traces,
                           base.replace(memory_limit_bytes=limit), "utlb")
                 for i, limit in enumerate(
                     [None, 8 * params.PAGE_SIZE, 32 * params.PAGE_SIZE])]
        axes, leftover = self.plan(cells)
        assert [axis.kind for axis in axes] == ["memory"]
        assert sorted(axes[0].indices) == [0, 1, 2]
        assert leftover == []

    def test_leftover_preserves_pending_order(self):
        traces = synth_trace(15)
        base = SimConfig()
        cells = [
            SweepCell("r0", traces, base.replace(cache_entries=64), "pp"),
            SweepCell("a0", traces, base.replace(cache_entries=64), "utlb"),
            SweepCell("r1", traces, base.replace(cache_entries=64), "intr"),
            SweepCell("a1", traces, base.replace(cache_entries=128),
                      "utlb"),
        ]
        axes, leftover = self.plan(cells)
        assert [axis.kind for axis in axes] == ["cache"]
        assert leftover == [0, 2]


# ---------------------------------------------------------------------------
# Stack-algorithm properties (Hypothesis)
# ---------------------------------------------------------------------------

def _records(accesses):
    return [TraceRecord(t, 0, pid, "send", page * params.PAGE_SIZE, 64)
            for t, (pid, page) in enumerate(accesses)]


ACCESSES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=40)),
    min_size=1, max_size=120)


class TestStackProperties:
    @given(accesses=ACCESSES)
    def test_histograms_account_for_every_access(self, accesses):
        compiled = compile_streams(_records(accesses))
        data = _memory_pass(compiled, num_sets=16, offsetting=True,
                            lcap=8)
        for i, pid in enumerate(compiled.pid_order):
            # suffix_d[i][0] counts every reuse; firsts are the rest.
            assert (data["firsts"][i] + data["suffix_d"][i][0]
                    == data["n"][i])
            assert data["n"][i] == len(compiled.streams[pid])
        assert sum(data["n"]) == len(accesses)

    @given(accesses=ACCESSES)
    def test_misses_monotone_in_memory_limit(self, accesses):
        compiled = compile_streams(_records(accesses))
        limits = list(range(1, 10)) + [None]
        spec = {"kind": "memory", "num_sets": 16, "offsetting": True,
                "limits": limits,
                "unit_costs": DEFAULT_COST_MODEL.unit_costs()}
        nodes = solve_axis_node(compiled, spec)
        check = [node["stats"]["check_misses"] for node in nodes]
        ni = [node["stats"]["ni_misses"] for node in nodes]
        # Growing the pinned pool never adds misses (LRU inclusion); the
        # unlimited cell is the floor of both curves.
        assert check == sorted(check, reverse=True)
        assert ni == sorted(ni, reverse=True)
        assert check[-1] == min(check)
        assert ni[-1] == min(ni)

    @given(accesses=ACCESSES)
    def test_misses_monotone_in_associativity(self, accesses):
        compiled = compile_streams(_records(accesses))
        spec = {"kind": "cache",
                "geometries": [[16 * assoc, assoc, True]
                               for assoc in (1, 2, 4, 8)],
                "unit_costs": DEFAULT_COST_MODEL.unit_costs()}
        nodes = solve_axis_node(compiled, spec)
        misses = [node["cache"]["misses"] for node in nodes]
        assert misses == sorted(misses, reverse=True)

    @settings(deadline=None)
    @given(accesses=ACCESSES,
           limit=st.one_of(st.none(), st.integers(min_value=1,
                                                  max_value=12)))
    def test_singleton_memory_cell_matches_fast_engine(self, accesses,
                                                       limit):
        records = _records(accesses)
        compiled = compile_streams(records)
        config = SimConfig(
            cache_entries=16,
            memory_limit_bytes=(None if limit is None
                                else limit * params.PAGE_SIZE))
        spec = {"kind": "memory", "num_sets": 16, "offsetting": True,
                "limits": [config.memory_limit_pages],
                "unit_costs": config.cost_model.unit_costs()}
        solved = solve_axis_node(compiled, spec)[0]
        replayed = simulate_node(records, config).to_dict()
        assert solved == replayed

    @settings(deadline=None)
    @given(accesses=ACCESSES,
           assoc=st.sampled_from([1, 2, 4]),
           offsetting=st.booleans())
    def test_singleton_cache_cell_matches_fast_engine(self, accesses,
                                                      assoc, offsetting):
        records = _records(accesses)
        compiled = compile_streams(records)
        config = SimConfig(cache_entries=16 * assoc, associativity=assoc,
                           offsetting=offsetting)
        spec = {"kind": "cache",
                "geometries": [[config.cache_entries, assoc, offsetting]],
                "unit_costs": config.cost_model.unit_costs()}
        solved = solve_axis_node(compiled, spec)[0]
        replayed = simulate_node(records, config).to_dict()
        assert solved == replayed
