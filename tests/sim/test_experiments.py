"""The per-table/figure experiment functions (tiny scale for speed)."""

import pytest

from repro.sim import experiments as exp

TINY = dict(scale=0.06, nodes=1, seed=1)


@pytest.fixture(scope="module")
def table4_data():
    return exp.table4(sizes=(128, 1024), **TINY)


class TestTable1:
    def test_paper_values(self):
        data = exp.table1()
        assert data["pin"][0] == pytest.approx(27.0)
        assert data["unpin"][-1] == pytest.approx(139.0)

    def test_render_contains_rows(self):
        text = exp.render_table1(exp.table1())
        assert "pin (us)" in text and "115.0" in text


class TestTable2:
    def test_paper_values(self):
        data = exp.table2()
        assert data["dma_cost"][0] == pytest.approx(1.5)
        assert data["miss_cost"][-1] == pytest.approx(3.2)
        assert data["hit_cost"] == pytest.approx(0.8)

    def test_render(self):
        assert "hit cost" in exp.render_table2(exp.table2())


class TestTable3:
    def test_all_apps_present(self):
        data = exp.table3(**TINY)
        assert len(data) == 7
        for row in data.values():
            assert row["footprint_pages"] > 0
            assert row["lookups"] >= row["footprint_pages"]

    def test_full_scale_targets_recorded(self):
        data = exp.table3(**TINY)
        assert data["fft"]["target_footprint"] == 10803
        assert data["fft"]["target_lookups"] == 43132

    def test_render(self):
        text = exp.render_table3(exp.table3(**TINY))
        assert "fft" in text and "4M elements" in text


class TestTable4:
    def test_structure(self, table4_data):
        assert set(table4_data) == {"barnes", "fft", "lu", "radix",
                                    "raytrace", "volrend", "water-spatial"}
        cell = table4_data["fft"][128]
        assert set(cell) == {"utlb", "intr"}
        assert "check_misses" in cell["utlb"]

    def test_paper_shape_utlb_no_unpins(self, table4_data):
        for app in table4_data:
            for size in table4_data[app]:
                assert table4_data[app][size]["utlb"]["unpins"] == 0.0

    def test_paper_shape_intr_unpins_fall_with_size(self, table4_data):
        for app in ("fft", "lu", "radix"):
            small = table4_data[app][128]["intr"]["unpins"]
            large = table4_data[app][1024]["intr"]["unpins"]
            assert small >= large

    def test_paper_shape_equal_ni_misses(self, table4_data):
        for app in table4_data:
            for size in table4_data[app]:
                cell = table4_data[app][size]
                assert cell["utlb"]["ni_misses"] == pytest.approx(
                    cell["intr"]["ni_misses"])

    def test_render(self, table4_data):
        text = exp.render_table4(table4_data)
        assert "check misses" in text and "unpins" in text


class TestTable5:
    def test_memory_limit_forces_utlb_unpins(self):
        data = exp.table5(sizes=(256,), memory_limit_bytes=4 * 1024 * 1024,
                          **TINY)
        assert any(data[app][256]["utlb"]["unpins"] > 0
                   for app in ("fft", "lu", "radix"))

    def test_render(self):
        data = exp.table5(sizes=(256,), **TINY)
        assert "4 MB" in exp.render_table5(data)


class TestTable6:
    def test_reuses_table4_rates(self, table4_data):
        data = exp.table6(table4_data=table4_data, sizes=(128, 1024))
        cell = data["fft"][128]
        assert cell["utlb_us"] > 0
        assert cell["intr_us"] > cell["utlb_us"]    # UTLB wins at small cache

    def test_equation_matches_measured_time(self, table4_data):
        """The Section 6.2 equations and the simulator's accumulated time
        must agree — Table 6's built-in cross-check."""
        data = exp.table6(table4_data=table4_data, sizes=(128, 1024))
        for app in data:
            for size in data[app]:
                cell = data[app][size]
                assert cell["utlb_us"] == pytest.approx(
                    cell["utlb_measured_us"], rel=1e-6)
                assert cell["intr_us"] == pytest.approx(
                    cell["intr_measured_us"], rel=1e-6)

    def test_render(self, table4_data):
        text = exp.render_table6(
            exp.table6(table4_data=table4_data, sizes=(128, 1024)))
        assert "us" in text


class TestTable7:
    @pytest.fixture(scope="class")
    def data(self):
        return exp.table7(cache_entries=512, **TINY)

    def test_structure(self, data):
        assert set(next(iter(data.values()))) == {1, 16}

    def test_fft_prepin_pathology(self, data):
        """FFT: 16-page pre-pinning explodes the unpin cost (paper: 0.1
        -> 93 us/lookup)."""
        fft = data["fft"]
        assert fft[16]["unpin_us"] > 3 * fft[1]["unpin_us"]

    def test_prepin_helps_an_irregular_app(self, data):
        helped = [app for app in ("barnes", "water-spatial", "lu", "radix",
                                  "raytrace")
                  if data[app][16]["pin_us"] < data[app][1]["pin_us"]]
        assert len(helped) >= 3

    def test_render(self, data):
        text = exp.render_table7(data)
        assert "pin" in text and "16" in text


class TestTable8:
    @pytest.fixture(scope="class")
    def data(self):
        return exp.table8(sizes=(128, 512), **TINY)

    def test_grid_complete(self, data):
        labels = {label for _, label in next(iter(data.values()))}
        assert labels == {"direct", "2-way", "4-way", "direct-nohash"}

    def test_nohash_worst_for_most_apps(self, data):
        worse = 0
        for app in data:
            for size in (128, 512):
                if data[app][(size, "direct-nohash")] > \
                        data[app][(size, "direct")]:
                    worse += 1
        assert worse >= 10          # out of 14 app x size cells

    def test_miss_rates_fall_with_size(self, data):
        for app in data:
            assert data[app][(512, "direct")] <= \
                data[app][(128, "direct")] + 0.02

    def test_render(self, data):
        text = exp.render_table8(data)
        assert "direct-nohash" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def data(self):
        return exp.figure7(sizes=(128, 1024), **TINY)

    def test_rates_present(self, data):
        for app in data:
            for size in data[app]:
                rates = data[app][size]
                assert set(rates) == {"compulsory", "capacity", "conflict"}

    def test_compulsory_dominates_at_large_size(self, data):
        dominant = sum(
            1 for app in data
            if data[app][1024]["compulsory"] >
            data[app][1024]["capacity"] + data[app][1024]["conflict"])
        assert dominant >= 5

    def test_capacity_conflict_shrink_with_size(self, data):
        for app in data:
            small = data[app][128]
            large = data[app][1024]
            assert (large["capacity"] + large["conflict"]
                    <= small["capacity"] + small["conflict"] + 0.02)

    def test_render(self, data):
        text = exp.render_figure7(data)
        assert "compulsory" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def data(self):
        return exp.figure8(sizes=(256,), degrees=(1, 4, 16), **TINY)

    def test_miss_rate_falls_with_prefetch(self, data):
        curve = data[256]
        assert curve[16]["miss_rate"] < curve[4]["miss_rate"] \
            < curve[1]["miss_rate"]

    def test_lookup_cost_falls_with_prefetch(self, data):
        curve = data[256]
        assert curve[16]["lookup_cost_us"] < curve[1]["lookup_cost_us"]

    def test_render(self, data):
        text = exp.render_figure8(data)
        assert "RADIX" in text and "prefetch" in text


class TestRunAll:
    def test_produces_every_section(self):
        report = exp.run_all(scale=0.04, nodes=1, seed=1)
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4",
                       "Table 5", "Table 6", "Table 7", "Table 8",
                       "Figure 7", "Figure 8"):
            assert marker in report
