"""The shared-memory stream store: round-trip fidelity and lifecycle.

Two properties carry the store's whole value: an attached view replays
byte-identically to in-process compilation (zero-copy is worthless if it
is not also lossless), and every block a store publishes is unlinked by
``close()`` — the sweep runner calls it per batch, success or failure.
"""

from array import array
from multiprocessing import shared_memory

import pytest

from repro.sim.stream_store import AttachedStreams, SharedStreamStore
from repro.traces.compile import compile_streams
from repro.traces.record import TraceRecord
from repro.traces.synth import make_app


def sample_records():
    return make_app("fft").generate_node(0, seed=3, scale=0.05)


def assert_streams_equal(left, right):
    """Byte-identical compiled streams (values and layout)."""
    assert list(left.pids) == list(right.pids)
    assert list(left.pid_order) == list(right.pid_order)
    assert [tuple(s) for s in left.segments] == \
        [tuple(s) for s in right.segments]
    assert left.total_pages == right.total_pages
    assert bytes(memoryview(left.index_stream)) == \
        bytes(memoryview(right.index_stream))
    assert bytes(memoryview(left.page_stream)) == \
        bytes(memoryview(right.page_stream))
    assert sorted(left.streams) == sorted(right.streams)
    for pid in left.streams:
        assert bytes(memoryview(left.streams[pid])) == \
            bytes(memoryview(right.streams[pid]))


class TestRoundTrip:
    def test_attach_is_byte_identical_to_compilation(self):
        compiled = compile_streams(sample_records())
        store = SharedStreamStore()
        try:
            store.publish("fft", compiled)
            attached = store.attach("fft")
            try:
                assert_streams_equal(attached.compiled, compiled)
            finally:
                attached.close()
        finally:
            store.close()

    def test_attached_views_are_zero_copy(self):
        compiled = compile_streams(sample_records())
        with SharedStreamStore() as store:
            store.publish("fft", compiled)
            attached = store.attach("fft")
            try:
                # The arrays are memoryview casts over the block, not
                # private copies: widths match the array typecodes.
                view = attached.compiled.page_stream
                assert isinstance(view, memoryview)
                assert view.itemsize == array("Q").itemsize
                assert attached.compiled.index_stream.itemsize == \
                    array("H").itemsize
                assert view.readonly is False  # slice of the mapping
            finally:
                attached.close()

    def test_empty_trace_round_trips(self):
        compiled = compile_streams([])
        with SharedStreamStore() as store:
            store.publish("empty", compiled)
            attached = store.attach("empty")
            try:
                assert_streams_equal(attached.compiled, compiled)
                assert attached.compiled.total_pages == 0
            finally:
                attached.close()

    def test_single_record_round_trips(self):
        compiled = compile_streams(
            [TraceRecord(0, 0, 7, "send", 0x10000000, 4096)])
        with SharedStreamStore() as store:
            store.publish("one", compiled)
            attached = store.attach("one")
            try:
                assert_streams_equal(attached.compiled, compiled)
                assert list(attached.compiled.page_stream) == \
                    list(compiled.page_stream)
            finally:
                attached.close()

    def test_foreign_attach_by_name(self):
        # What a worker does: only the manifest's name, no store object.
        compiled = compile_streams(sample_records())
        with SharedStreamStore() as store:
            store.publish("fft", compiled)
            name = store.manifest()["fft"]
            attached = AttachedStreams("fft", name)
            try:
                assert attached.key == "fft"
                assert_streams_equal(attached.compiled, compiled)
            finally:
                attached.close()


class TestLifecycle:
    def test_publish_same_key_is_idempotent(self):
        compiled = compile_streams(sample_records())
        with SharedStreamStore() as store:
            first = store.publish("k", compiled)
            assert first > 0
            assert store.publish("k", compiled) == 0
            assert len(store) == 1
            assert store.ipc_bytes == first

    def test_close_unlinks_every_block(self):
        compiled = compile_streams(sample_records())
        store = SharedStreamStore()
        store.publish("a", compiled)
        store.publish("b", compile_streams([]))
        manifest = store.manifest()
        assert sorted(manifest) == ["a", "b"]
        store.close()
        for name in manifest.values():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        store.close()                                # idempotent

    def test_attachment_survives_unlink(self):
        # POSIX semantics the runner relies on: the parent unlinks at
        # batch end while workers still hold their mappings.
        compiled = compile_streams(sample_records())
        store = SharedStreamStore()
        store.publish("k", compiled)
        attached = store.attach("k")
        try:
            store.close()
            assert_streams_equal(attached.compiled, compiled)
        finally:
            attached.close()

    def test_attached_close_is_idempotent(self):
        with SharedStreamStore() as store:
            store.publish("k", compile_streams(sample_records()))
            attached = store.attach("k")
            attached.close()
            attached.close()
            assert attached.compiled is None
