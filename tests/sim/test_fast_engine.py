"""The fast replay engine must be byte-identical to the reference engine.

The fast engine (compiled page streams + counter-only hot path) is an
optimization, not a model change: for every configuration the paper's
evaluation uses — policies, pinning limits, prefetch/prepin degrees,
associativity, offsetting, the 3C classifier — ``NodeResult.to_dict()``
must match the record-at-a-time reference engine exactly, float bits
included.  These tests enforce that, plus the coherence of the NIC-cache
shadow dicts the hot path probes.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import params
from repro.core.shared_cache import ShadowedUtlbCache
from repro.errors import ConfigError
from repro.sim.config import ENGINES, SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.simulator import simulate_node
from repro.traces.compile import compile_streams
from repro.traces.record import OP_SEND, TraceRecord
from repro.traces.synth import make_app


def random_trace(seed, num_pids, num_pages, length):
    rng = random.Random(seed)
    return [TraceRecord(timestamp=index, node=0,
                        pid=rng.randrange(num_pids), op=OP_SEND,
                        vaddr=0x10000000 + rng.randrange(num_pages)
                        * params.PAGE_SIZE,
                        nbytes=rng.choice((1, 2, 3)) * params.PAGE_SIZE)
            for index in range(length)]


def result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_engines_agree(records, **config_kwargs):
    fast = SimConfig(engine="fast", **config_kwargs)
    ref = SimConfig(engine="reference", **config_kwargs)
    assert result_json(simulate_node(records, fast, check_invariants=True)) \
        == result_json(simulate_node(records, ref, check_invariants=True))
    assert result_json(simulate_node_intr(records, fast,
                                          check_invariants=True)) \
        == result_json(simulate_node_intr(records, ref,
                                          check_invariants=True))


#: One configuration per evaluated dimension of Tables 4-8 / Figures 7-8.
TABLE_CONFIGS = {
    "table4-defaults": dict(cache_entries=256),
    "table5-memory-limit": dict(cache_entries=256,
                                memory_limit_bytes=64 * params.PAGE_SIZE),
    "table6-small-cache": dict(cache_entries=64),
    "table7-prepinning": dict(prepin=4, cache_entries=256,
                              memory_limit_bytes=64 * params.PAGE_SIZE),
    "table8-associativity": dict(cache_entries=256, associativity=4),
    "fig7-classify": dict(cache_entries=64, classify=True),
    "fig8-prefetch": dict(cache_entries=256, prefetch=8),
    "no-offsetting": dict(cache_entries=256, offsetting=False),
    "mru-policy": dict(cache_entries=128, pin_policy="mru",
                       memory_limit_bytes=32 * params.PAGE_SIZE),
    "random-policy": dict(cache_entries=128, pin_policy="random",
                          memory_limit_bytes=32 * params.PAGE_SIZE),
}


class TestDifferentialOnAppTraces:
    @pytest.mark.parametrize("label", sorted(TABLE_CONFIGS))
    @pytest.mark.parametrize("app", ["barnes", "radix"])
    def test_engines_agree(self, app, label):
        records = make_app(app).generate_node(0, seed=3, scale=0.05)
        assert_engines_agree(records, **TABLE_CONFIGS[label])


class TestDifferentialProperty:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_pids=st.integers(min_value=1, max_value=5),
           num_pages=st.integers(min_value=1, max_value=150),
           length=st.integers(min_value=0, max_value=250),
           entries=st.sampled_from([16, 64, 256]),
           associativity=st.sampled_from([1, 2, 4]),
           offsetting=st.booleans(),
           prefetch=st.sampled_from([1, 4]),
           prepin=st.sampled_from([1, 3]),
           pin_policy=st.sampled_from(["lru", "mru", "lfu", "mfu", "random"]),
           limit_pages=st.sampled_from([None, 24, 64]),
           classify=st.booleans())
    def test_fast_equals_reference(self, seed, num_pids, num_pages, length,
                                   entries, associativity, offsetting,
                                   prefetch, prepin, pin_policy, limit_pages,
                                   classify):
        records = random_trace(seed, num_pids, num_pages, length)
        limit = (None if limit_pages is None
                 else limit_pages * params.PAGE_SIZE)
        assert_engines_agree(
            records, cache_entries=entries, associativity=associativity,
            offsetting=offsetting, prefetch=prefetch, prepin=prepin,
            pin_policy=pin_policy, memory_limit_bytes=limit,
            classify=classify)


class TestPrecompiledStreams:
    def test_compiled_argument_matches_inline_compilation(self):
        records = make_app("fft").generate_node(0, seed=2, scale=0.05)
        config = SimConfig(cache_entries=256)
        compiled = compile_streams(records)
        assert result_json(simulate_node(records, config,
                                         compiled=compiled)) \
            == result_json(simulate_node(records, config))
        assert result_json(simulate_node_intr(records, config,
                                              compiled=compiled)) \
            == result_json(simulate_node_intr(records, config))


def shadow_is_coherent(cache):
    """The shadow of every pid is exactly its cached translations."""
    real = {pid: {} for pid in cache.shadow}
    for (pid, vpage), frame in cache._cache.items():
        real.setdefault(pid, {})[vpage] = frame
    return cache.shadow == real


class TestShadowCoherence:
    def make_cache(self, entries=4, pids=(1, 2)):
        cache = ShadowedUtlbCache(entries, associativity=1, offsetting=False)
        for pid in pids:
            cache.register_process(pid)
        return cache

    def test_fill_mirrors_into_shadow(self):
        cache = self.make_cache()
        cache.fill(1, 0x10, 7)
        assert cache.shadow[1] == {0x10: 7}
        assert shadow_is_coherent(cache)

    def test_eviction_removes_victim_from_shadow(self):
        cache = self.make_cache(entries=4)
        cache.fill(1, 0x10, 7)
        cache.fill(2, 0x14, 9)     # same set (index 0x14 % 4 == 0x10 % 4)
        assert 0x10 not in cache.shadow[1]
        assert cache.shadow[2] == {0x14: 9}
        assert shadow_is_coherent(cache)

    def test_payload_update_keeps_single_entry(self):
        cache = self.make_cache()
        cache.fill(1, 0x10, 7)
        cache.fill(1, 0x10, 8)
        assert cache.shadow[1] == {0x10: 8}
        assert shadow_is_coherent(cache)

    def test_invalidate_removes_from_shadow(self):
        cache = self.make_cache()
        cache.fill(1, 0x10, 7)
        assert cache.invalidate(1, 0x10)
        assert cache.shadow[1] == {}
        assert shadow_is_coherent(cache)

    def test_invalidate_absent_leaves_shadow_alone(self):
        cache = self.make_cache()
        cache.fill(1, 0x10, 7)
        assert not cache.invalidate(1, 0x11)
        assert cache.shadow[1] == {0x10: 7}
        assert shadow_is_coherent(cache)

    def test_invalidate_process_clears_only_that_pid(self):
        cache = self.make_cache()
        cache.fill(1, 0x10, 7)
        cache.fill(2, 0x11, 9)
        cache.invalidate_process(1)
        assert cache.shadow[1] == {}
        assert cache.shadow[2] == {0x11: 9}
        assert shadow_is_coherent(cache)

    def test_shadow_dict_object_is_stable(self):
        """Hot loops bind shadow[pid] once; mutations must happen in
        place, never by rebinding."""
        cache = self.make_cache()
        bound = cache.shadow[1]
        cache.fill(1, 0x10, 7)
        cache.invalidate_process(1)
        cache.fill(1, 0x11, 8)
        assert cache.shadow[1] is bound
        assert bound == {0x11: 8}

    def test_fill_block_mirrors_valid_entries(self):
        cache = self.make_cache()
        cache.fill_block(1, [(0x10, 7), (0x11, None), (0x12, 9)])
        assert cache.shadow[1] == {0x10: 7, 0x12: 9}
        assert shadow_is_coherent(cache)

    def test_credit_shadow_hits_matches_per_lookup_counters(self):
        cache = self.make_cache()
        cache.fill(1, 0x10, 7)
        cache.credit_shadow_hits(5)
        assert cache.stats.accesses == 5
        assert cache.stats.hits == 5
        assert cache.stats.misses == 0


class TestEngineKnob:
    def test_engines_constant(self):
        assert ENGINES == ("fast", "kernel", "reference")

    def test_default_is_fast(self):
        assert SimConfig().engine == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(engine="warp")

    def test_replace_switches_engine_only(self):
        config = SimConfig(cache_entries=64)
        other = config.replace(engine="reference")
        assert other.engine == "reference"
        assert other.cache_entries == 64

    def test_engine_in_dict_and_describe(self):
        config = SimConfig(engine="reference")
        assert config.to_dict()["engine"] == "reference"
        assert "engine=reference" in config.describe()
