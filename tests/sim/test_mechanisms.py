"""The mechanism registry and the three modern translation designs.

The registry (``repro.sim.mechanisms``) replaced the scattered
``"utlb"``/``"intr"`` string dispatch: everything — ``SimConfig``, the
sweep runner, the analytic solver, the CLI — resolves mechanism names
through one ordered table.  These tests pin the registry contract
(unknown names fail eagerly with the choices listed, instances pass
through, eligibility predicates gate the fast paths) and hold the three
new designs — Victima-style pressure, Utopia-style hybrid placement,
SPARTA-style range segments — to the same differential and parity gates
as the paper's mechanisms.
"""

import json

import pytest

from repro import params
from repro.core.costs import DEFAULT_COST_MODEL, CostModel
from repro.core.sparta import SpartaRangeCache
from repro.core.utopia import UtopiaCache
from repro.core.victima import VictimaCache
from repro.errors import ConfigError
from repro.sim import mechanisms
from repro.sim.config import SimConfig
from repro.sim.mechanisms import (
    Mechanism,
    lookup,
    mechanism_names,
    resolve,
)
from repro.sim.runner import MECHANISMS, SweepCell, SweepRunner
from repro.traces.synth import make_app

ALL_NAMES = ("utlb", "intr", "pp", "victima", "utopia", "sparta-range")
NEW_NAMES = ("victima", "utopia", "sparta-range")


def app_records(name="fft", seed=3, scale=0.05):
    return make_app(name).generate_node(0, seed=seed, scale=scale)


def result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# The registry contract
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_registration_order(self):
        assert mechanism_names() == ALL_NAMES
        assert MECHANISMS == ALL_NAMES

    def test_resolve_known_names(self):
        for name in ALL_NAMES:
            assert resolve(name).name == name

    def test_resolve_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError) as err:
            resolve("magic")
        assert "magic" in str(err.value)
        for name in ALL_NAMES:
            assert name in str(err.value)

    def test_resolve_passes_instances_through(self):
        mech = Mechanism("adhoc", simulate=lambda *a, **k: None)
        assert resolve(mech) is mech

    def test_lookup_is_total(self):
        assert lookup("nonsense") is None
        assert lookup("utlb") is resolve("utlb")
        mech = Mechanism("adhoc", simulate=lambda *a, **k: None)
        assert lookup(mech) is mech

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            mechanisms.register(
                Mechanism("utlb", simulate=lambda *a, **k: None))

    def test_every_mechanism_has_a_description(self):
        for name in ALL_NAMES:
            assert resolve(name).description

    def test_streams_eligibility_gated_on_engine(self):
        fast = SimConfig(engine="fast")
        ref = SimConfig(engine="reference")
        for name in ("utlb",) + NEW_NAMES:
            assert resolve(name).streams_eligible(fast)
            assert not resolve(name).streams_eligible(ref)

    def test_pp_has_no_fast_paths(self):
        config = SimConfig(mechanism="pp")
        assert not resolve("pp").streams_eligible(config)
        assert not resolve("pp").analytic_eligible(config)

    def test_analytic_is_utlb_only(self):
        config = SimConfig()
        assert resolve("utlb").analytic_eligible(config)
        for name in ("intr",) + NEW_NAMES:
            assert not resolve(name).analytic_eligible(
                config.replace(mechanism=name))


# ---------------------------------------------------------------------------
# SimConfig integration: eager validation, default cost models
# ---------------------------------------------------------------------------

class TestConfigIntegration:
    def test_default_mechanism_is_utlb(self):
        config = SimConfig()
        assert config.mechanism == "utlb"
        assert config.to_dict()["mechanism"] == "utlb"

    def test_unknown_mechanism_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            SimConfig(mechanism="magic")

    def test_describe_names_non_default_mechanisms(self):
        assert "mech=" not in SimConfig().describe()
        assert "mech=victima" in SimConfig(mechanism="victima").describe()

    def test_default_cost_models_per_mechanism(self):
        assert SimConfig().cost_model is DEFAULT_COST_MODEL
        assert SimConfig(mechanism="victima").cost_model.ni_check_hit \
            == mechanisms.VICTIMA_COST_MODEL.ni_check_hit
        assert SimConfig(mechanism="utopia").cost_model.ni_check_hit \
            == mechanisms.UTOPIA_COST_MODEL.ni_check_hit
        assert SimConfig(mechanism="sparta-range").cost_model.ni_check_hit \
            == mechanisms.SPARTA_COST_MODEL.ni_check_hit

    def test_replace_rederives_defaulted_cost_model(self):
        config = SimConfig()
        swapped = config.replace(mechanism="utopia")
        assert swapped.cost_model.ni_check_hit \
            == mechanisms.UTOPIA_COST_MODEL.ni_check_hit

    def test_replace_keeps_explicit_cost_model(self):
        explicit = CostModel(ni_check_hit=9.9)
        config = SimConfig(cost_model=explicit)
        swapped = config.replace(mechanism="utopia")
        assert swapped.cost_model.ni_check_hit == 9.9

    def test_intr_fast_rejects_associativity(self):
        with pytest.raises(ConfigError):
            SimConfig(mechanism="intr", associativity=4, cache_entries=256)
        # The reference engine honours it.
        config = SimConfig(mechanism="intr", associativity=4,
                           cache_entries=256, engine="reference")
        assert config.associativity == 4

    def test_sparta_rejects_associativity(self):
        with pytest.raises(ConfigError):
            SimConfig(mechanism="sparta-range", associativity=2,
                      cache_entries=256)

    def test_utopia_needs_a_splittable_budget(self):
        with pytest.raises(ConfigError):
            SimConfig(mechanism="utopia", cache_entries=1)
        with pytest.raises(ConfigError):
            # flexible half = 3 entries, not divisible by 2 ways
            SimConfig(mechanism="utopia", cache_entries=6, associativity=2)

    @pytest.mark.parametrize("name", NEW_NAMES)
    def test_new_mechanisms_reject_classify(self, name):
        with pytest.raises(ConfigError):
            SimConfig(mechanism=name, classify=True, engine="reference")

    def test_sweep_cell_syncs_config_mechanism(self):
        config = SimConfig(cache_entries=64)
        cell = SweepCell(("x",), [], config, "victima")
        assert cell.config.mechanism == "victima"
        assert cell.config.cost_model.ni_check_hit \
            == mechanisms.VICTIMA_COST_MODEL.ni_check_hit

    def test_sweep_cell_rejects_unknown_mechanism(self):
        with pytest.raises(ConfigError):
            SweepCell(("x",), [], SimConfig(), "magic")


# ---------------------------------------------------------------------------
# Differential gates: fast == reference for the three new designs
# ---------------------------------------------------------------------------

MECH_CONFIGS = {
    "defaults": dict(cache_entries=256),
    "small-cache": dict(cache_entries=32),
    "memory-limit": dict(cache_entries=256,
                         memory_limit_bytes=64 * params.PAGE_SIZE),
    "prefetch-prepin": dict(cache_entries=256, prefetch=4, prepin=4),
    "nohash": dict(cache_entries=256, offsetting=False),
}


class TestDifferential:
    @pytest.mark.parametrize("label", sorted(MECH_CONFIGS))
    @pytest.mark.parametrize("name", NEW_NAMES)
    def test_fast_equals_reference(self, name, label):
        records = app_records()
        simulate = resolve(name).simulate
        kwargs = dict(MECH_CONFIGS[label], mechanism=name)
        fast = simulate(records, SimConfig(engine="fast", **kwargs),
                        check_invariants=True)
        ref = simulate(records, SimConfig(engine="reference", **kwargs),
                       check_invariants=True)
        assert result_json(fast) == result_json(ref)

    @pytest.mark.parametrize("name", NEW_NAMES)
    def test_serial_equals_parallel(self, name):
        records = app_records(scale=0.03)
        traces = {0: records}
        config = SimConfig(cache_entries=64, mechanism=name)
        cells = [SweepCell((name,), traces, config)]
        serial = SweepRunner(workers=1).run_cells(cells)
        parallel = SweepRunner(workers=2).run_cells(cells)
        assert result_json(serial[0]) == result_json(parallel[0])


# ---------------------------------------------------------------------------
# Cache-model behaviour units
# ---------------------------------------------------------------------------

class TestVictimaCache:
    def make(self, entries=16, period=4):
        cache = VictimaCache(entries, pressure_period=period)
        cache.register_process(1)
        return cache

    def test_pressure_evicts_translations(self):
        cache = self.make()
        for vpage in range(16):
            cache.fill(1, vpage, vpage + 100)
        for _ in range(16):
            cache.lookup(1, 0)
        assert cache.pressure_evictions > 0
        assert len(cache) < 16

    def test_pressure_counted_as_evictions(self):
        cache = self.make()
        for vpage in range(16):
            cache.fill(1, vpage, vpage + 100)
        before = cache.stats.evictions
        for _ in range(16):
            cache.lookup(1, 0)
        assert cache.stats.evictions - before == cache.pressure_evictions

    def test_pressure_is_deterministic(self):
        def run():
            cache = self.make()
            for vpage in range(16):
                cache.fill(1, vpage, vpage + 100)
            for step in range(64):
                cache.lookup(1, step % 16)
            return (cache.pressure_evictions,
                    sorted(cache.entries_for(1)))
        assert run() == run()

    def test_empty_set_pressure_is_a_noop(self):
        cache = self.make()
        for _ in range(16):
            cache.lookup(1, 0)
        assert cache.pressure_evictions == 0


class TestUtopiaCache:
    def make(self, entries=16):
        cache = UtopiaCache(entries)
        cache.register_process(1)
        return cache

    def test_budget_split(self):
        cache = self.make(16)
        assert cache.restrictive_slots == 8
        assert cache.num_entries == 16

    def test_needs_two_entries(self):
        with pytest.raises(ValueError):
            UtopiaCache(1)

    def test_restrictive_fill_and_hit(self):
        cache = self.make()
        cache.fill(1, 0x10, 7)
        assert cache.restrictive_fills == 1
        hit, frame = cache.lookup(1, 0x10)
        assert hit and frame == 7
        assert cache.stats.hits == 1

    def test_conflicting_pages_spill_to_flexible(self):
        cache = self.make()
        slots = cache.restrictive_slots
        cache.fill(1, 0x10, 7)
        cache.fill(1, 0x10 + slots, 8)   # same restrictive slot
        assert cache.restrictive_fills == 1
        assert (1, 0x10 + slots) in cache
        hit, frame = cache.lookup(1, 0x10 + slots)
        assert hit and frame == 8

    def test_single_copy_invariant(self):
        cache = self.make()
        slots = cache.restrictive_slots
        cache.fill(1, 0x10, 7)
        cache.fill(1, 0x10 + slots, 8)   # spills
        cache.invalidate(1, 0x10)        # restrictive slot now free
        cache.fill(1, 0x10 + slots, 9)   # refill: must update, not copy
        assert len(cache) == 1
        hit, frame = cache.lookup(1, 0x10 + slots)
        assert hit and frame == 9

    def test_invalidate_finds_either_half(self):
        cache = self.make()
        slots = cache.restrictive_slots
        cache.fill(1, 0x10, 7)           # restrictive
        cache.fill(1, 0x10 + slots, 8)   # flexible
        assert cache.invalidate(1, 0x10)
        assert cache.invalidate(1, 0x10 + slots)
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_invalidate_process_clears_both_halves(self):
        cache = self.make()
        slots = cache.restrictive_slots
        cache.fill(1, 0x10, 7)
        cache.fill(1, 0x10 + slots, 8)
        assert cache.invalidate_process(1) == 2
        assert len(cache) == 0


class TestSpartaRangeCache:
    def make(self, entries=8):
        cache = SpartaRangeCache(entries)
        cache.register_process(1)
        return cache

    def test_rejects_associative_or_classified_geometry(self):
        with pytest.raises(ConfigError):
            SpartaRangeCache(8, associativity=2)
        with pytest.raises(ConfigError):
            SpartaRangeCache(8, classify=True)

    def test_segment_capacity_accounts_entry_cost(self):
        cache = self.make(8)
        assert cache.segment_capacity \
            == 8 // params.SPARTA_RANGE_ENTRY_COST

    def test_contiguous_fills_coalesce(self):
        cache = self.make()
        for vpage in range(6):
            cache.fill(1, vpage, 100 + vpage)
        assert cache.num_segments == 1
        assert len(cache) == 6
        for vpage in range(6):
            hit, frame = cache.lookup(1, vpage)
            assert hit and frame == 100 + vpage

    def test_physically_discontiguous_pages_do_not_coalesce(self):
        cache = self.make()
        cache.fill(1, 0, 100)
        cache.fill(1, 1, 205)            # virtually adjacent, wrong frame
        assert cache.num_segments == 2

    def test_interior_unpin_punches_a_hole(self):
        cache = self.make()
        for vpage in range(4):
            cache.fill(1, vpage, 100 + vpage)
        assert cache.invalidate(1, 2)
        assert (1, 2) not in cache
        assert cache.lookup(1, 1) == (True, 101)
        assert cache.lookup(1, 3) == (True, 103)

    def test_lru_eviction_drops_whole_segments(self):
        cache = self.make(4)             # capacity: 2 segments
        cache.fill(1, 0, 100)
        cache.fill(1, 10, 200)
        cache.fill(1, 20, 300)           # evicts the (1, 0) segment
        assert cache.num_segments == 2
        assert (1, 0) not in cache
        assert cache.stats.evictions == 1

    def test_fragmented_fills_degenerate_to_page_entries(self):
        cache = self.make()
        for vpage in (0, 10, 20, 30):
            cache.fill(1, vpage, vpage * 7)
        assert cache.num_segments == 4


# ---------------------------------------------------------------------------
# The N-way comparison sweep
# ---------------------------------------------------------------------------

class TestMechanismTable:
    def test_small_grid_covers_every_mechanism(self):
        from repro.sim import experiments as exp
        data = exp.mechanism_table(
            scale=0.02, nodes=1, sizes=(64,),
            mechanisms=("utlb", "intr", "victima"),
            runner=SweepRunner(workers=1))
        for app in data:
            cell = data[app][64]
            assert set(cell) == {"utlb", "intr", "victima"}
            for mech in cell:
                assert cell[mech]["ni_misses"] >= 0.0
        text = exp.render_mechanism_table(data)
        assert "victima" in text and "Mechanism comparison" in text

    def test_compare_mechanisms_findings_pass(self):
        from repro.sim.compare import compare_mechanisms
        findings, text = compare_mechanisms(
            scale=0.02, nodes=1, sizes=(64, 256),
            mechanisms=("utlb", "intr", "victima"),
            runner=SweepRunner(workers=1))
        assert findings
        assert all(passed for _, passed in findings)
        assert "mechanism criteria" in text and "FAIL" not in text
