"""Differential testing: the full simulator vs an independent oracle.

A deliberately tiny, dependency-free reimplementation of the UTLB
semantics (infinite memory, direct-mapped cache with offsetting, no
prefetch/prepin) recomputes check misses and NI misses for arbitrary
traces.  The layered simulator must agree *exactly* — any divergence in
cache indexing, registration order, invalidation, or counting shows up
here.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import params
from repro.core.shared_cache import SharedUtlbCache
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate_node
from repro.traces.record import OP_SEND, TraceRecord
from repro.traces.synth import make_app


def oracle(records, cache_entries):
    """Independent model: returns (check_misses, ni_misses)."""
    pids = sorted({r.pid for r in records})
    offsets = {pid: (index * SharedUtlbCache.OFFSET_MULTIPLIER)
               % cache_entries
               for index, pid in enumerate(pids)}
    pinned = set()                 # (pid, vpage), never unpinned
    sets = {}                      # cache index -> (pid, vpage)
    check_misses = 0
    ni_misses = 0
    for record in records:
        for vpage in record.pages():
            key = (record.pid, vpage)
            if key not in pinned:
                check_misses += 1
                pinned.add(key)
            index = (vpage + offsets[record.pid]) % cache_entries
            if sets.get(index) != key:
                ni_misses += 1
                sets[index] = key
    return check_misses, ni_misses


def run_both(records, cache_entries):
    result = simulate_node(records, SimConfig(cache_entries=cache_entries))
    expected = oracle(records, cache_entries)
    got = (result.stats.check_misses, result.stats.ni_misses)
    return expected, got


def random_trace(seed, num_pids, num_pages, length):
    rng = random.Random(seed)
    records = []
    for index in range(length):
        records.append(TraceRecord(
            timestamp=index,
            node=0,
            pid=rng.randrange(num_pids),
            op=OP_SEND,
            vaddr=0x10000000 + rng.randrange(num_pages) * params.PAGE_SIZE,
            nbytes=params.PAGE_SIZE))
    return records


def oracle_intr(records, cache_entries):
    """Independent model of the interrupt baseline: returns
    (ni_misses, interrupts, pages_pinned, pages_unpinned)."""
    pids = sorted({r.pid for r in records})
    offsets = {pid: (index * SharedUtlbCache.OFFSET_MULTIPLIER)
               % cache_entries
               for index, pid in enumerate(pids)}
    sets = {}                      # cache index -> (pid, vpage)
    ni_misses = 0
    pinned = 0
    unpinned = 0
    for record in records:
        for vpage in record.pages():
            key = (record.pid, vpage)
            index = (vpage + offsets[record.pid]) % cache_entries
            if sets.get(index) == key:
                continue
            ni_misses += 1
            if index in sets:
                unpinned += 1       # eviction unpins the old page
            sets[index] = key
            pinned += 1
    return ni_misses, ni_misses, pinned, unpinned


class TestIntrDifferential:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_pids=st.integers(min_value=1, max_value=6),
           num_pages=st.integers(min_value=1, max_value=200),
           length=st.integers(min_value=1, max_value=400),
           entries=st.sampled_from([16, 64, 256]))
    def test_intr_simulator_matches_oracle(self, seed, num_pids,
                                           num_pages, length, entries):
        from repro.sim.intr_simulator import simulate_node_intr
        records = random_trace(seed, num_pids, num_pages, length)
        result = simulate_node_intr(records,
                                    SimConfig(cache_entries=entries))
        stats = result.stats
        assert (stats.ni_misses, stats.interrupts, stats.pages_pinned,
                stats.pages_unpinned) == oracle_intr(records, entries)

    @pytest.mark.parametrize("name", ["barnes", "fft", "radix"])
    def test_intr_oracle_on_app_traces(self, name):
        from repro.sim.intr_simulator import simulate_node_intr
        records = make_app(name).generate_node(0, seed=3, scale=0.05)
        result = simulate_node_intr(records, SimConfig(cache_entries=256))
        stats = result.stats
        assert (stats.ni_misses, stats.interrupts, stats.pages_pinned,
                stats.pages_unpinned) == oracle_intr(records, 256)


class TestDifferential:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_pids=st.integers(min_value=1, max_value=6),
           num_pages=st.integers(min_value=1, max_value=200),
           length=st.integers(min_value=1, max_value=400),
           entries=st.sampled_from([16, 64, 256]))
    def test_simulator_matches_oracle_on_random_traces(
            self, seed, num_pids, num_pages, length, entries):
        records = random_trace(seed, num_pids, num_pages, length)
        expected, got = run_both(records, entries)
        assert got == expected

    @pytest.mark.parametrize("name", ["barnes", "fft", "radix", "volrend"])
    def test_simulator_matches_oracle_on_app_traces(self, name):
        records = make_app(name).generate_node(0, seed=3, scale=0.05)
        expected, got = run_both(records, 256)
        assert got == expected

    def test_multi_page_records(self):
        records = [TraceRecord(i, 0, 0, OP_SEND,
                               0x10000000 + i * params.PAGE_SIZE,
                               3 * params.PAGE_SIZE)
                   for i in range(40)]
        expected, got = run_both(records, 64)
        assert got == expected
