"""Per-process UTLB trace simulator (the Section 7 missing comparison)."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.pp_simulator import simulate_node_pp
from repro.sim.simulator import simulate_node
from repro.sim.sweep import run_on_traces
from repro.traces.record import count_lookups
from repro.traces.synth import make_app

SCALE = 0.1
SEED = 1


@pytest.fixture(scope="module")
def barnes_trace():
    return make_app("barnes").generate_node(0, seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def fft_trace():
    return make_app("fft").generate_node(0, seed=SEED, scale=SCALE)


class TestBasics:
    def test_lookups_match_trace(self, barnes_trace):
        result = simulate_node_pp(barnes_trace, SimConfig(),
                                  sram_entries=2048)
        assert result.stats.lookups == count_lookups(barnes_trace)

    def test_nic_never_misses(self, barnes_trace):
        result = simulate_node_pp(barnes_trace, SimConfig(),
                                  sram_entries=2048)
        assert result.stats.ni_misses == 0
        assert result.stats.ni_hits == result.stats.lookups

    def test_sram_divided_among_processes(self, barnes_trace):
        result = simulate_node_pp(barnes_trace, SimConfig(),
                                  sram_entries=1000)
        assert result.cache["slots_per_process"] == 200    # 5 processes

    def test_invariants(self, barnes_trace):
        simulate_node_pp(barnes_trace, SimConfig(), sram_entries=512,
                         check_invariants=True)


class TestSharedVsPerProcess:
    """The Section 3.2 argument, measured: with the same SRAM budget the
    per-process design suffers capacity evictions (forced unpins) on big
    footprints, while the shared-cache design keeps translations alive in
    host memory and never unpins."""

    def test_per_process_evicts_where_shared_does_not(self, fft_trace):
        budget = 1024          # entries of NIC SRAM
        config = SimConfig()
        pp = simulate_node_pp(fft_trace, config, sram_entries=budget)
        shared = simulate_node(fft_trace,
                               config.replace(cache_entries=budget))
        assert pp.stats.pages_unpinned > 0
        assert shared.stats.pages_unpinned == 0

    def test_per_process_pin_traffic_exceeds_shared(self, fft_trace):
        budget = 1024
        config = SimConfig()
        pp = simulate_node_pp(fft_trace, config, sram_entries=budget)
        shared = simulate_node(fft_trace,
                               config.replace(cache_entries=budget))
        assert pp.stats.pages_pinned > shared.stats.pages_pinned

    def test_small_footprint_apps_fit_either_way(self, barnes_trace):
        config = SimConfig()
        pp = simulate_node_pp(barnes_trace, config, sram_entries=8192)
        assert pp.stats.pages_unpinned == 0


class TestSweepIntegration:
    def test_pp_mechanism_via_run_on_traces(self):
        traces = make_app("volrend").generate_cluster(nodes=2, seed=SEED,
                                                      scale=SCALE)
        result = run_on_traces(traces, SimConfig(), mechanism="pp")
        assert result.stats.lookups == sum(
            count_lookups(t) for t in traces.values())
