"""The Section 6.3 cost argument: direct-mapped wins once serial
firmware probing is charged."""

import pytest

from repro.core.costs import DEFAULT_COST_MODEL
from repro.errors import ConfigError
from repro.sim import experiments as exp


class TestProbeCostModel:
    def test_direct_mapped_hit_is_one_probe(self):
        assert DEFAULT_COST_MODEL.ni_probe_cost(1, 0.0) == \
            pytest.approx(0.8)

    def test_four_way_hit_averages_2_5_probes(self):
        assert DEFAULT_COST_MODEL.ni_probe_cost(4, 0.0) == \
            pytest.approx(0.8 * 2.5)

    def test_miss_probes_every_way(self):
        assert DEFAULT_COST_MODEL.ni_probe_cost(4, 1.0) == \
            pytest.approx(0.8 * 4)

    def test_more_ways_always_cost_more_at_same_miss_rate(self):
        cm = DEFAULT_COST_MODEL
        for miss_rate in (0.0, 0.3, 1.0):
            assert cm.ni_probe_cost(1, miss_rate) \
                < cm.ni_probe_cost(2, miss_rate) \
                < cm.ni_probe_cost(4, miss_rate)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DEFAULT_COST_MODEL.ni_probe_cost(0, 0.5)
        with pytest.raises(ConfigError):
            DEFAULT_COST_MODEL.ni_probe_cost(1, 1.5)


class TestTable8Cost:
    @pytest.fixture(scope="class")
    def data(self):
        miss_rates = exp.table8(scale=0.05, nodes=1, seed=1,
                                sizes=(256, 1024))
        return miss_rates, exp.table8_cost(miss_rates)

    def test_direct_beats_set_associative_on_cost(self, data):
        """The paper's design decision, as a measured outcome: even where
        set-associativity wins a little on miss rate, it loses on
        effective lookup cost."""
        _, costs = data
        wins = 0
        cells = 0
        for app, per_key in costs.items():
            sizes = sorted({size for size, _ in per_key})
            for size in sizes:
                cells += 1
                if (per_key[(size, "direct")]
                        <= per_key[(size, "2-way")] + 1e-9
                        and per_key[(size, "direct")]
                        <= per_key[(size, "4-way")] + 1e-9):
                    wins += 1
        assert wins == cells        # direct wins every cell on cost

    def test_cost_consistent_with_miss_rates(self, data):
        miss_rates, costs = data
        cm = DEFAULT_COST_MODEL
        for app in costs:
            for key, cost in costs[app].items():
                size, org = key
                assoc = {"direct": 1, "2-way": 2, "4-way": 4,
                         "direct-nohash": 1}[org]
                rate = miss_rates[app][key]
                assert cost == pytest.approx(
                    cm.ni_probe_cost(assoc, rate) + cm.miss_cost(1) * rate)

    def test_render(self, data):
        _, costs = data
        text = exp.render_table8_cost(costs)
        assert "direct mapping" in text
