"""Report rendering: tables, stacked bars, line charts."""

from repro.sim.report import (
    format_table,
    render_breakdown_chart,
    render_line_chart,
    stacked_bar,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text and "0.25" in text

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=3)
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestStackedBar:
    def test_widths_proportional(self):
        bar = stacked_bar([("#", 0.5), (".", 0.5)], total_width=10)
        assert bar == "#####....."

    def test_scale_max(self):
        bar = stacked_bar([("#", 0.25)], total_width=8, scale_max=0.5)
        assert bar == "####"

    def test_zero_components(self):
        assert stacked_bar([("#", 0.0)], total_width=10) == ""


class TestBreakdownChart:
    def test_legend_and_bars(self):
        chart = render_breakdown_chart(
            [("app 1K", {"compulsory": 0.2, "capacity": 0.1,
                         "conflict": 0.05})])
        assert "compulsory" in chart
        assert "app 1K" in chart
        assert "#" in chart

    def test_empty_entries(self):
        assert "legend" in render_breakdown_chart([])


class TestLineChart:
    def test_plots_series(self):
        chart = render_line_chart(
            {"1K": [(1, 0.6), (16, 0.2)], "16K": [(1, 0.5), (16, 0.1)]},
            x_label="prefetch")
        assert "legend" in chart
        assert "1K" in chart and "16K" in chart
        assert "prefetch" in chart

    def test_no_data(self):
        assert render_line_chart({}) == "(no data)"

    def test_flat_series_no_crash(self):
        chart = render_line_chart({"s": [(1, 0.5), (2, 0.5)]})
        assert "legend" in chart
