"""The kernel replay tier must be byte-identical to fast and reference.

``engine="kernel"`` answers shadow-eligible utlb cells with vectorized
previous-occurrence analysis and falls back to the fast engine for
everything else; either way ``NodeResult.to_dict()`` must match the
record-at-a-time reference engine exactly, float bits included.  The
grid below sweeps every registered workload (the seven SPLASH-2 models
plus zipf-kv) across associativities and offsetting; the property test
drives the previous-occurrence hit kernel with adversarial random
traces.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import params
from repro.sim import kernels
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim import mechanisms
from repro.sim.simulator import simulate_node
from repro.traces.compile import compile_streams
from repro.traces.record import OP_SEND, TraceRecord
from repro.traces.synth import WORKLOADS, make_workload


def result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_kernel_agrees(records, **config_kwargs):
    """engine="kernel" == engine="fast" == engine="reference"."""
    outs = [result_json(simulate_node(records,
                                      SimConfig(engine=engine,
                                                **config_kwargs)))
            for engine in ("kernel", "fast", "reference")]
    assert outs[0] == outs[1] == outs[2]


def random_trace(seed, num_pids, num_pages, length):
    rng = random.Random(seed)
    return [TraceRecord(timestamp=index, node=0,
                        pid=rng.randrange(num_pids), op=OP_SEND,
                        vaddr=0x10000000 + rng.randrange(num_pages)
                        * params.PAGE_SIZE,
                        nbytes=rng.choice((1, 2, 3)) * params.PAGE_SIZE)
            for index in range(length)]


def workload_records(name):
    scale = 0.02 if name == "zipf-kv" else 0.05
    return make_workload(name).generate_node(0, seed=3, scale=scale)


class TestDifferentialGrid:
    """All registered workloads x associativity x offsetting."""

    @pytest.mark.parametrize("offsetting", [False, True])
    @pytest.mark.parametrize("associativity", [1, 2, 4])
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_kernel_fast_reference_identical(self, name, associativity,
                                             offsetting):
        assert_kernel_agrees(workload_records(name),
                             cache_entries=64,
                             associativity=associativity,
                             offsetting=offsetting)

    def test_empty_trace(self):
        assert_kernel_agrees([], cache_entries=64)

    def test_capacity_error_matches_fast(self):
        records = [TraceRecord(timestamp=i, node=0, pid=i, op=OP_SEND,
                               vaddr=0x10000000, nbytes=params.PAGE_SIZE)
                   for i in range(params.MAX_PROCESSES_PER_NIC + 1)]
        from repro.errors import CapacityError
        for engine in ("kernel", "fast"):
            with pytest.raises(CapacityError):
                simulate_node(records, SimConfig(engine=engine))


class TestEligibility:
    """Which cells the kernel answers, and that the rest fall back."""

    def test_default_config_is_eligible(self):
        assert kernels.utlb_kernel_eligible(SimConfig(engine="kernel"))

    @pytest.mark.parametrize("kwargs", [
        dict(memory_limit_bytes=64 * params.PAGE_SIZE),
        dict(classify=True),
        dict(prefetch=4),
        dict(prepin=2),
        dict(pin_policy="mru"),
    ])
    def test_ineligible_configs(self, kwargs):
        assert not kernels.utlb_kernel_eligible(
            SimConfig(engine="kernel", **kwargs))

    def test_mechanism_gates_engine_and_tracing(self):
        from repro.obs.tracer import CollectingTracer
        utlb = mechanisms.lookup("utlb")
        assert utlb.kernel_eligible(SimConfig(engine="kernel"))
        assert not utlb.kernel_eligible(SimConfig(engine="fast"))
        traced = SimConfig(engine="kernel").replace(
            tracer=CollectingTracer())
        assert not utlb.kernel_eligible(traced)

    def test_other_mechanisms_not_eligible(self):
        config = SimConfig(engine="kernel")
        for name in mechanisms.mechanism_names():
            if name != "utlb":
                mech = mechanisms.lookup(name)
                assert not mech.kernel_eligible(config), name

    def test_no_numpy_disables_kernel(self, monkeypatch):
        monkeypatch.setattr(kernels, "_NUMPY", None)
        monkeypatch.setattr(kernels, "_NUMPY_CHECKED", True)
        assert not kernels.kernel_available()
        assert not kernels.utlb_kernel_eligible(SimConfig(engine="kernel"))
        # The engine string stays valid: it just rides the fast path.
        records = workload_records("barnes")
        assert_kernel_agrees(records, cache_entries=64)

    @pytest.mark.parametrize("kwargs", [
        dict(memory_limit_bytes=48 * params.PAGE_SIZE),
        dict(classify=True),
        dict(prefetch=4),
        dict(prepin=2),
        dict(pin_policy="mru", memory_limit_bytes=48 * params.PAGE_SIZE),
    ])
    def test_fallback_cells_still_identical(self, kwargs):
        assert_kernel_agrees(workload_records("radix"),
                             cache_entries=64, **kwargs)

    def test_check_invariants_forces_fast_path(self):
        records = workload_records("fft")
        config = SimConfig(engine="kernel")
        checked = simulate_node(records, config, check_invariants=True)
        assert result_json(checked) == result_json(
            simulate_node(records, SimConfig(engine="reference")))

    def test_intr_simulator_agrees(self):
        records = workload_records("volrend")
        outs = [result_json(simulate_node_intr(records,
                                               SimConfig(engine=engine)))
                for engine in ("kernel", "fast", "reference")]
        assert outs[0] == outs[1] == outs[2]


class TestHitKernelProperty:
    """Previous-occurrence analysis vs the reference simulation."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_pids=st.integers(min_value=1, max_value=6),
           num_pages=st.integers(min_value=1, max_value=120),
           length=st.integers(min_value=0, max_value=300),
           entries=st.sampled_from([16, 64, 256]),
           associativity=st.sampled_from([1, 2, 4]),
           offsetting=st.booleans())
    def test_kernel_equals_reference(self, seed, num_pids, num_pages,
                                     length, entries, associativity,
                                     offsetting):
        assert_kernel_agrees(
            random_trace(seed, num_pids, num_pages, length),
            cache_entries=entries, associativity=associativity,
            offsetting=offsetting)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_pids=st.integers(min_value=1, max_value=6),
           num_pages=st.integers(min_value=1, max_value=120),
           length=st.integers(min_value=1, max_value=300),
           num_sets=st.sampled_from([16, 64, 256]),
           offsetting=st.booleans())
    def test_numpy_pass_equals_python_pass(self, seed, num_pids,
                                           num_pages, length, num_sets,
                                           offsetting):
        """The direct-mapped numpy pass against the pure-Python stack
        machinery, on the same compiled trace."""
        pytest.importorskip("numpy")
        compiled = compile_streams(
            random_trace(seed, num_pids, num_pages, length))
        fast = kernels.cache_pass(compiled, num_sets, offsetting, amax=1)
        slow = kernels._cache_pass_python(compiled, num_sets, offsetting,
                                          amax=1)
        assert fast == slow
