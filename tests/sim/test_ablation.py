"""The ablation library module."""

import pytest

from repro.sim.ablation import (
    POLICIES,
    QUADRANT,
    design_quadrant,
    mixed_workload_grid,
    policy_grid,
    render_design_quadrant,
    render_mixed_grid,
    render_policy_grid,
)


class TestDesignQuadrant:
    @pytest.fixture(scope="class")
    def data(self):
        return design_quadrant(app_names=("barnes", "fft"),
                               sram_entries=128, scale=0.05, seed=1)

    def test_all_cells_present(self, data):
        labels = {label for label, _ in QUADRANT}
        for cells in data.values():
            assert set(cells) == labels

    def test_lookup_counts_agree(self, data):
        for cells in data.values():
            lookups = {stats.lookups for stats in cells.values()}
            assert len(lookups) == 1

    def test_user_managed_never_interrupt(self, data):
        for cells in data.values():
            assert cells["UTLB (user+shared)"].interrupts == 0
            assert cells["per-proc (user)"].interrupts == 0
            assert cells["intr+shared (UNet-MM)"].interrupts > 0
            assert cells["intr+per-proc (VMMC'97)"].interrupts > 0

    def test_render(self, data):
        text = render_design_quadrant(data, sram_entries=128)
        assert "UNet-MM" in text and "us/lookup" in text

    def test_unknown_mechanism_rejected(self):
        from repro.sim.ablation import _simulate
        from repro.sim.config import SimConfig
        with pytest.raises(ValueError):
            _simulate([], SimConfig(), "magic", 64)


class TestPolicyGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return policy_grid(scale=0.05, cache_entries=512)

    def test_all_policies_all_apps(self, grid):
        assert len(grid) == 7
        for per_policy in grid.values():
            assert set(per_policy) == set(POLICIES)

    def test_rates_are_rates(self, grid):
        for per_policy in grid.values():
            for rate in per_policy.values():
                assert rate >= 0.0

    def test_render(self, grid):
        assert "lru" in render_policy_grid(grid)


class TestFragmentation:
    def test_fresh_sequential_fill_is_contiguous(self):
        from repro.core.per_process import PerProcessUtlb
        from repro.sim.ablation import buffer_scatter
        utlb = PerProcessUtlb(1, num_slots=64, prepin=8)
        for page in range(0, 64, 8):
            utlb.access_page(page)
        assert buffer_scatter(utlb) == 0.0

    def test_churn_scatters_buffers(self):
        from repro.sim.ablation import fragmentation_over_time
        points = fragmentation_over_time(num_slots=64, working_set=128,
                                         accesses=1000,
                                         pin_policy="random", seed=2)
        assert points[-1][1] > 0.5

    def test_empty_table_scatter_zero(self):
        from repro.core.per_process import PerProcessUtlb
        from repro.sim.ablation import buffer_scatter
        assert buffer_scatter(PerProcessUtlb(1, num_slots=8)) == 0.0

    def test_render(self):
        from repro.sim.ablation import render_fragmentation
        text = render_fragmentation([(100, 0.5)], slots=64)
        assert "scatter" in text and "slots=64" in text


class TestMixedGrid:
    @pytest.fixture(scope="class")
    def data(self):
        return mixed_workload_grid(mixes=(("barnes", "volrend"),),
                                   sizes=(256,), scale=0.05, seed=1)

    def test_structure(self, data):
        assert "barnes+volrend" in data
        cells = data["barnes+volrend"]
        assert set(cells) == {(256, "direct"), (256, "4-way"),
                              (256, "direct-nohash")}

    def test_offsetting_beats_nohash(self, data):
        cells = data["barnes+volrend"]
        assert cells[(256, "direct")] <= cells[(256, "direct-nohash")]

    def test_render(self, data):
        assert "nohash" in render_mixed_grid(data)
