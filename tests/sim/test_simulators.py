"""Trace-driven simulators: paper-shape assertions at reduced scale.

These are the headline scientific claims of the reproduction; each test
states the paper finding it checks.
"""

import pytest

from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.simulator import simulate_node
from repro.sim.sweep import run_on_traces
from repro.traces.record import count_lookups, footprint_pages
from repro.traces.synth import make_app

SCALE = 0.15
SEED = 1


@pytest.fixture(scope="module")
def barnes_trace():
    return make_app("barnes").generate_node(0, seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def fft_trace():
    return make_app("fft").generate_node(0, seed=SEED, scale=SCALE)


class TestBasicAccounting:
    def test_lookups_match_trace(self, barnes_trace):
        result = simulate_node(barnes_trace, SimConfig(cache_entries=256))
        assert result.stats.lookups == count_lookups(barnes_trace)

    def test_per_pid_stats_sum_to_total(self, barnes_trace):
        result = simulate_node(barnes_trace, SimConfig(cache_entries=256))
        assert sum(s.lookups for s in result.per_pid.values()) == \
            result.stats.lookups

    def test_invariants_hold_after_run(self, barnes_trace):
        simulate_node(barnes_trace,
                      SimConfig(cache_entries=128,
                                memory_limit_bytes=64 * 4096),
                      check_invariants=True)


class TestPaperClaimInfiniteMemory:
    """Table 4: with infinite memory UTLB never unpins; Intr always does."""

    def test_utlb_never_unpins(self, fft_trace):
        result = simulate_node(fft_trace, SimConfig(cache_entries=256))
        assert result.stats.pages_unpinned == 0

    def test_intr_unpins_on_eviction(self, fft_trace):
        result = simulate_node_intr(fft_trace, SimConfig(cache_entries=256))
        assert result.stats.pages_unpinned > 0

    def test_ni_miss_rates_equal_same_cache(self, fft_trace):
        """'We assume that the cache structures are the same for both
        cases': identical streams through identical caches miss alike."""
        config = SimConfig(cache_entries=256)
        utlb = simulate_node(fft_trace, config)
        intr = simulate_node_intr(fft_trace, config)
        assert utlb.stats.ni_misses == intr.stats.ni_misses

    def test_check_miss_rate_is_compulsory_floor(self, fft_trace):
        """With infinite memory, a page is pinned exactly once: the check
        miss rate equals footprint / lookups."""
        result = simulate_node(fft_trace, SimConfig(cache_entries=256))
        floor = footprint_pages(fft_trace) / count_lookups(fft_trace)
        assert result.stats.check_miss_rate == pytest.approx(floor)

    def test_check_miss_rate_independent_of_cache_size(self, fft_trace):
        small = simulate_node(fft_trace, SimConfig(cache_entries=64))
        large = simulate_node(fft_trace, SimConfig(cache_entries=4096))
        assert small.stats.check_misses == large.stats.check_misses

    def test_intr_interrupts_every_miss_utlb_never(self, fft_trace):
        config = SimConfig(cache_entries=256)
        utlb = simulate_node(fft_trace, config)
        intr = simulate_node_intr(fft_trace, config)
        assert utlb.stats.interrupts == 0
        assert intr.stats.interrupts == intr.stats.ni_misses


class TestPaperClaimLimitedMemory:
    """Table 5: under a memory limit both mechanisms unpin, but UTLB
    performs fewer pin+unpin operations."""

    def test_utlb_unpins_under_limit(self, fft_trace):
        config = SimConfig(cache_entries=256,
                           memory_limit_bytes=150 * 4096)
        result = simulate_node(fft_trace, config)
        assert result.stats.pages_unpinned > 0

    def test_utlb_fewer_pin_unpin_ops_than_intr(self, fft_trace):
        config = SimConfig(cache_entries=256,
                           memory_limit_bytes=150 * 4096)
        utlb = simulate_node(fft_trace, config)
        intr = simulate_node_intr(fft_trace, config)
        utlb_ops = utlb.stats.pages_pinned + utlb.stats.pages_unpinned
        intr_ops = intr.stats.pages_pinned + intr.stats.pages_unpinned
        assert utlb_ops < intr_ops


class TestPaperClaimCacheSize:
    """Conclusions: miss rates fall with cache size; UTLB is less
    sensitive to cache size than Intr (its costs don't track misses)."""

    def test_ni_misses_monotone_nonincreasing(self, barnes_trace):
        misses = [simulate_node(barnes_trace,
                                SimConfig(cache_entries=n)).stats.ni_misses
                  for n in (128, 512, 2048)]
        assert misses[0] >= misses[1] >= misses[2]

    def test_utlb_cost_less_size_sensitive_than_intr(self, barnes_trace):
        def costs(mechanism):
            out = []
            for entries in (128, 2048):
                config = SimConfig(cache_entries=entries)
                if mechanism == "utlb":
                    result = simulate_node(barnes_trace, config)
                else:
                    result = simulate_node_intr(barnes_trace, config)
                out.append(result.stats.avg_lookup_cost_us)
            return out

        utlb_small, utlb_big = costs("utlb")
        intr_small, intr_big = costs("intr")
        assert (utlb_small - utlb_big) < (intr_small - intr_big)


class TestPrefetchClaim:
    """Figure 8: prefetching reduces miss rate and average lookup cost
    for Radix (sequential structure)."""

    def test_prefetch_reduces_radix_misses(self):
        # Prefetch needs valid neighbouring translations, which
        # sequential pre-pinning supplies (Section 6.5): prepin couples
        # with prefetch, as in the Figure 8 sweep.
        trace = make_app("radix").generate_node(0, seed=SEED, scale=SCALE)
        base = SimConfig(cache_entries=512)
        no_prefetch = simulate_node(trace, base)
        prefetch = simulate_node(trace, base.replace(prefetch=8, prepin=8))
        assert prefetch.stats.ni_misses < 0.5 * no_prefetch.stats.ni_misses
        assert (prefetch.stats.avg_lookup_cost_us
                < no_prefetch.stats.avg_lookup_cost_us)

    def test_prefetch_useless_without_valid_neighbours(self):
        """Without pre-pinning, compulsory misses have nothing to
        prefetch: the paper's availability caveat, observable."""
        trace = make_app("radix").generate_node(0, seed=SEED, scale=SCALE)
        base = SimConfig(cache_entries=512)
        no_prefetch = simulate_node(trace, base)
        prefetch = simulate_node(trace, base.replace(prefetch=8))
        assert prefetch.stats.ni_misses > 0.8 * no_prefetch.stats.ni_misses


class TestPrepinClaim:
    """Table 7: 16-page pre-pinning cuts amortized pin cost for most
    apps; FFT's strided pattern makes it backfire (wasted pins)."""

    def test_prepin_helps_water(self):
        trace = make_app("water-spatial").generate_node(0, seed=SEED,
                                                        scale=SCALE)
        limit = 60 * 4096           # binding, as in Table 7
        one = simulate_node(trace, SimConfig(memory_limit_bytes=limit))
        sixteen = simulate_node(trace, SimConfig(memory_limit_bytes=limit,
                                                 prepin=16))
        assert (sixteen.stats.amortized_pin_cost_us
                < one.stats.amortized_pin_cost_us)

    def test_prepin_wastes_pins_for_fft(self):
        trace = make_app("fft").generate_node(0, seed=SEED, scale=SCALE)
        limit = 120 * 4096          # binding: limit < per-process footprint
        one = simulate_node(trace, SimConfig(memory_limit_bytes=limit))
        sixteen = simulate_node(trace, SimConfig(memory_limit_bytes=limit,
                                                 prepin=16))
        # Strided access skips most pre-pinned pages: far more pages get
        # pinned (and later unpinned) than with demand pinning.
        assert sixteen.stats.pages_pinned > 1.5 * one.stats.pages_pinned
        assert (sixteen.stats.amortized_unpin_cost_us
                > 3 * one.stats.amortized_unpin_cost_us)


class TestOffsettingClaim:
    """Table 8: index offsetting rescues the direct-mapped cache from
    multiprogramming conflicts."""

    def test_offsetting_beats_nohash(self):
        trace = make_app("barnes").generate_node(0, seed=SEED, scale=SCALE)
        offset = simulate_node(trace, SimConfig(cache_entries=256))
        nohash = simulate_node(trace, SimConfig(cache_entries=256,
                                                offsetting=False))
        assert offset.stats.ni_misses < nohash.stats.ni_misses


class TestClassification:
    """Figure 7: compulsory misses dominate at large cache sizes."""

    def test_compulsory_dominates_at_large_size(self, barnes_trace):
        config = SimConfig(cache_entries=4096, classify=True)
        result = simulate_node(barnes_trace, config)
        b = result.breakdown
        assert b.compulsory > b.capacity + b.conflict

    def test_breakdown_partitions_misses(self, barnes_trace):
        config = SimConfig(cache_entries=256, classify=True)
        result = simulate_node(barnes_trace, config)
        assert result.breakdown.total_misses == result.stats.ni_misses


class TestDeterminism:
    def test_same_seed_same_results(self, barnes_trace):
        config = SimConfig(cache_entries=256)
        a = simulate_node(barnes_trace, config)
        b = simulate_node(barnes_trace, config)
        assert a.stats.snapshot() == b.stats.snapshot()


class TestSweepHelpers:
    def test_run_on_traces_aggregates_nodes(self):
        traces = make_app("volrend").generate_cluster(nodes=2, seed=SEED,
                                                      scale=SCALE)
        result = run_on_traces(traces, SimConfig(cache_entries=256))
        assert result.stats.lookups == sum(
            count_lookups(t) for t in traces.values())
        assert len(result.per_node) == 2

    def test_unknown_mechanism_rejected(self):
        from repro.errors import ConfigError
        traces = {0: []}
        with pytest.raises(ConfigError):
            run_on_traces(traces, SimConfig(), mechanism="magic")
