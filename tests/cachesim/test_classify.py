"""3C miss classification (Hill): compulsory / capacity / conflict."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.classify import (
    CAPACITY,
    COMPULSORY,
    CONFLICT,
    ThreeCClassifier,
)


def run_classified(keys, entries, associativity=1):
    """Drive a real cache + classifier over a key stream."""
    cache = SetAssociativeCache(entries, associativity=associativity,
                                index_fn=lambda k: k)
    classifier = ThreeCClassifier(entries)
    for key in keys:
        hit, _ = cache.lookup(key)
        classifier.observe_access(key, hit)
        if not hit:
            cache.insert(key, key)
    return cache, classifier


class TestBasics:
    def test_first_reference_is_compulsory(self):
        _, c = run_classified([1, 2, 3], entries=8)
        assert c.breakdown.compulsory == 3
        assert c.breakdown.capacity == 0
        assert c.breakdown.conflict == 0

    def test_hit_classified_as_none(self):
        cache = SetAssociativeCache(8, index_fn=lambda k: k)
        classifier = ThreeCClassifier(8)
        cache.insert(1, 1)
        classifier.observe_fill(1)
        hit, _ = cache.lookup(1)
        assert classifier.observe_access(1, hit) is None

    def test_capacity_miss_when_working_set_too_big(self):
        # Cyclic scan of 5 keys through a 4-entry cache: re-misses are
        # capacity (the fully associative shadow misses too).
        keys = [0, 1, 2, 3, 4] * 3
        _, c = run_classified(keys, entries=4, associativity=4)
        assert c.breakdown.capacity > 0
        assert c.breakdown.conflict == 0

    def test_conflict_miss_in_direct_mapped(self):
        # Keys 0 and 8 collide in an 8-set direct-mapped cache but fit a
        # fully-associative one: the re-misses are conflict misses.
        keys = [0, 8, 0, 8, 0, 8]
        _, c = run_classified(keys, entries=8, associativity=1)
        assert c.breakdown.conflict == 4
        assert c.breakdown.capacity == 0
        assert c.breakdown.compulsory == 2

    def test_fully_associative_has_no_conflict_misses(self):
        keys = list(range(12)) * 4
        cache = SetAssociativeCache(8, associativity=8)
        classifier = ThreeCClassifier(8)
        for key in keys:
            hit, _ = cache.lookup(key)
            classifier.observe_access(key, hit)
            if not hit:
                cache.insert(key, key)
        assert classifier.breakdown.conflict == 0

    def test_invalidation_reaccess_not_compulsory(self):
        cache = SetAssociativeCache(8, index_fn=lambda k: k)
        classifier = ThreeCClassifier(8)
        hit, _ = cache.lookup(1)
        classifier.observe_access(1, hit)
        cache.insert(1, 1)
        cache.invalidate(1)
        classifier.observe_invalidate(1)
        hit, _ = cache.lookup(1)
        kind = classifier.observe_access(1, hit)
        assert kind in (CAPACITY, CONFLICT)

    def test_reset_counts_keeps_history(self):
        _, c = run_classified([1, 2], entries=8)
        c.reset_counts()
        assert c.breakdown.accesses == 0
        # 1 was seen before the reset: re-missing it is not compulsory.
        assert c.observe_access(1, False) != COMPULSORY

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ThreeCClassifier(0)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=300),
           st.sampled_from([(8, 1), (8, 2), (16, 1), (16, 4)]))
    def test_classes_partition_misses(self, keys, geometry):
        entries, assoc = geometry
        cache, c = run_classified(keys, entries, assoc)
        b = c.breakdown
        assert b.accesses == len(keys)
        assert b.total_misses == cache.stats.misses
        # Every distinct key misses exactly once compulsorily.
        assert b.compulsory == len(set(keys))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=300))
    def test_fully_associative_shadow_agrees_with_itself(self, keys):
        """Running the classifier against a fully-associative LRU cache of
        the same capacity must classify every non-compulsory miss as
        capacity (shadow == real cache)."""
        cache = SetAssociativeCache(8, associativity=8)
        classifier = ThreeCClassifier(8)
        for key in keys:
            hit, _ = cache.lookup(key)
            classifier.observe_access(key, hit)
            if not hit:
                cache.insert(key, key)
        assert classifier.breakdown.conflict == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    def test_rates_sum_to_miss_rate(self, keys):
        cache, c = run_classified(keys, 8)
        rates = c.breakdown.rates()
        assert sum(rates.values()) == pytest.approx(c.breakdown.miss_rate)
