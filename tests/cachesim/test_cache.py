"""The generic set-associative cache substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachesim.cache import SetAssociativeCache
from repro.errors import ConfigError


class TestConstruction:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(0)

    def test_rejects_indivisible_associativity(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(10, associativity=4)

    def test_geometry(self):
        cache = SetAssociativeCache(64, associativity=4)
        assert cache.num_sets == 16

    def test_fully_associative(self):
        cache = SetAssociativeCache(8, associativity=8)
        assert cache.num_sets == 1


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(4)
        hit, payload = cache.lookup("a")
        assert not hit and payload is None
        cache.insert("a", 1)
        hit, payload = cache.lookup("a")
        assert hit and payload == 1

    def test_insert_existing_updates_payload(self):
        cache = SetAssociativeCache(4)
        cache.insert("a", 1)
        assert cache.insert("a", 2) is None
        assert cache.peek("a") == (True, 2)

    def test_eviction_on_full_set(self):
        cache = SetAssociativeCache(2, associativity=2,
                                    index_fn=lambda k: 0)
        cache.insert("a", 1)
        cache.insert("b", 2)
        evicted = cache.insert("c", 3)
        assert evicted == ("a", 1)
        assert cache.stats.evictions == 1

    def test_peek_does_not_count(self):
        cache = SetAssociativeCache(4)
        cache.peek("a")
        assert cache.stats.accesses == 0


class TestLruWithinSet:
    def test_hit_refreshes_recency(self):
        cache = SetAssociativeCache(2, associativity=2,
                                    index_fn=lambda k: 0)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")               # a becomes most recent
        evicted = cache.insert("c", 3)
        assert evicted[0] == "b"

    def test_fifo_ignores_hits(self):
        cache = SetAssociativeCache(2, associativity=2,
                                    index_fn=lambda k: 0,
                                    replacement="fifo")
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")
        evicted = cache.insert("c", 3)
        assert evicted[0] == "a"

    def test_random_replacement_deterministic_by_seed(self):
        def run(seed):
            cache = SetAssociativeCache(4, associativity=4,
                                        index_fn=lambda k: 0,
                                        replacement="random", seed=seed)
            for key in range(10):
                cache.insert(key, key)
            return sorted(k for k, _ in cache.items())
        assert run(1) == run(1)


class TestInvalidate:
    def test_invalidate_present(self):
        cache = SetAssociativeCache(4)
        cache.insert("a", 1)
        assert cache.invalidate("a")
        assert cache.peek("a") == (False, None)

    def test_invalidate_absent(self):
        assert not SetAssociativeCache(4).invalidate("a")

    def test_invalidate_where(self):
        cache = SetAssociativeCache(8, associativity=8)
        for key in range(6):
            cache.insert(("p1" if key < 3 else "p2", key), key)
        dropped = cache.invalidate_where(lambda k, v: k[0] == "p1")
        assert dropped == 3
        assert len(cache) == 3

    def test_clear(self):
        cache = SetAssociativeCache(8)
        cache.insert("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestOccupancy:
    def test_occupancy_fraction(self):
        cache = SetAssociativeCache(4)
        cache.insert(0, 0)
        assert cache.occupancy() == 0.25


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=300),
           st.sampled_from([(8, 1), (8, 2), (8, 8), (16, 4)]))
    def test_size_never_exceeds_capacity(self, keys, geometry):
        entries, assoc = geometry
        cache = SetAssociativeCache(entries, associativity=assoc)
        for key in keys:
            hit, _ = cache.lookup(key)
            if not hit:
                cache.insert(key, key)
        assert len(cache) <= entries
        per_set = {}
        for key, _ in cache.items():
            per_set[cache.set_index(key)] = \
                per_set.get(cache.set_index(key), 0) + 1
        assert all(count <= assoc for count in per_set.values())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    def test_direct_mapped_equals_one_way(self, keys):
        """A direct-mapped cache IS a 1-way set-associative cache; both
        code paths must agree exactly."""
        a = SetAssociativeCache(16, associativity=1,
                                index_fn=lambda k: k)
        b = SetAssociativeCache(16, associativity=1,
                                index_fn=lambda k: k, replacement="fifo")
        for key in keys:
            ha, _ = a.lookup(key)
            hb, _ = b.lookup(key)
            assert ha == hb      # with 1-way sets, policy is irrelevant
            if not ha:
                a.insert(key, key)
                b.insert(key, key)
        assert a.stats.misses == b.stats.misses

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=200))
    def test_bigger_fully_associative_lru_never_worse(self, keys):
        """LRU inclusion property: a larger fully-associative LRU cache
        never misses more than a smaller one on the same stream."""
        small = SetAssociativeCache(4, associativity=4)
        big = SetAssociativeCache(16, associativity=16)
        for key in keys:
            for cache in (small, big):
                hit, _ = cache.lookup(key)
                if not hit:
                    cache.insert(key, key)
        assert big.stats.misses <= small.stats.misses

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=200))
    def test_stats_accounting_consistent(self, keys):
        cache = SetAssociativeCache(8, associativity=2)
        for key in keys:
            hit, _ = cache.lookup(key)
            if not hit:
                cache.insert(key, key)
        stats = cache.stats
        assert stats.accesses == len(keys)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.fills == stats.misses
        assert len(cache) == stats.fills - stats.evictions
