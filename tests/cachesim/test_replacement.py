"""Within-set replacement policies for the cache substrate."""

from collections import OrderedDict

import pytest

from repro.cachesim.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigError


def filled_set(keys):
    state = OrderedDict()
    for key in keys:
        state[key] = key
    return state


class TestLru:
    def test_victim_is_oldest(self):
        policy = LruPolicy()
        state = filled_set(["a", "b", "c"])
        assert policy.victim(state) == "a"

    def test_touch_moves_to_back(self):
        policy = LruPolicy()
        state = filled_set(["a", "b", "c"])
        policy.touch(state, "a")
        assert policy.victim(state) == "b"


class TestFifo:
    def test_touch_does_not_reorder(self):
        policy = FifoPolicy()
        state = filled_set(["a", "b", "c"])
        policy.touch(state, "a")
        assert policy.victim(state) == "a"


class TestRandom:
    def test_victim_is_member(self):
        policy = RandomPolicy(seed=5)
        state = filled_set(["a", "b", "c"])
        assert policy.victim(state) in state

    def test_seeded_determinism(self):
        state = filled_set(list(range(10)))
        assert (RandomPolicy(seed=5).victim(state)
                == RandomPolicy(seed=5).victim(state))


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "random"])
    def test_known_names(self, name):
        assert make_policy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("plru")
