"""Smoke tests: every example script runs clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

EXAMPLES = [
    ("quickstart.py", []),
    ("trace_analysis.py", ["0.05"]),
    ("custom_replacement_policy.py", []),
    ("prefetch_tuning.py", ["0.05"]),
    ("fault_tolerance.py", []),
    ("svm_application.py", []),
    ("dynamic_limits.py", []),
    ("message_channel.py", []),
]


def test_cli_compare():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--compare",
         "--scale", "0.04", "--nodes", "1"],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "[ok]" in result.stdout
    assert "FAIL" not in result.stdout


@pytest.mark.parametrize("script,args",
                         EXAMPLES, ids=[name for name, _ in EXAMPLES])
def test_example_runs_clean(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path] + args,
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()        # every example reports something


def test_cli_single_table():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--only", "table1"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "Table 1" in result.stdout


def test_cli_scaled_table4():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--only", "table4",
         "--scale", "0.04", "--nodes", "1"],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "check misses" in result.stdout
