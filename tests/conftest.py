"""Shared fixtures for the test suite."""

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.core.costs import CostModel
from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb

# Hypothesis profiles: "dev" is the library default; "ci" pins the
# example count and derandomizes so every CI run executes the identical
# test body (no flaky shrink phases, no cross-run example drift).
# Select with HYPOTHESIS_PROFILE=ci (set by .github/workflows/ci.yml).
settings.register_profile("dev", settings())
settings.register_profile("ci", settings(
    derandomize=True,
    max_examples=25,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def _checked_reference(original, mechanism):
    """Wrap a reference-engine entry point with a streaming checker.

    Every event of the replay flows through an
    :class:`~repro.obs.invariants.InvariantChecker`, and the finished
    node's counters are verified against the event tallies — so any test
    that replays through the reference engine is an invariant test for
    free.  A tracer the test attached itself keeps receiving the stream
    via a tee.
    """
    from repro.obs.invariants import InvariantChecker
    from repro.obs.tracer import TeeTracer

    def checked(records, config, check_invariants=False, **kwargs):
        # **kwargs forwards engine extensions (e.g. the mechanism
        # registry's cache_factory) untouched.
        checker = InvariantChecker(
            memory_limit_pages=config.memory_limit_pages,
            mechanism=mechanism)
        tracer = checker
        if config.traced:
            tracer = TeeTracer(config.tracer, checker)
        result = original(records, config.replace(tracer=tracer),
                          check_invariants, **kwargs)
        checker.close()
        checker.verify_node(result)
        return result

    return checked


@pytest.fixture(autouse=True)
def invariant_checked_reference(monkeypatch):
    """Invariant-check every reference-engine replay, suite-wide.

    Patches the module-global reference entry points (the dispatchers
    look them up at call time, so this covers every caller regardless of
    import style).  The fast engine is exercised against the checked
    reference output by the differential tests, so it is covered
    transitively.
    """
    import repro.sim.intr_simulator as intr_simulator
    import repro.sim.simulator as simulator

    monkeypatch.setattr(
        simulator, "_simulate_node_reference",
        _checked_reference(simulator._simulate_node_reference, "utlb"))
    monkeypatch.setattr(
        intr_simulator, "_simulate_node_intr_reference",
        _checked_reference(
            intr_simulator._simulate_node_intr_reference, "intr"))


@pytest.fixture
def cost_model():
    """The paper-calibrated cost model."""
    return CostModel()


@pytest.fixture
def small_cache():
    """A small direct-mapped Shared UTLB-Cache for fast tests."""
    return SharedUtlbCache(num_entries=64)


@pytest.fixture
def utlb(small_cache):
    """A Hierarchical-UTLB for pid 1 over the small cache, no limit."""
    return HierarchicalUtlb(1, small_cache, driver=CountingFrameDriver())


@pytest.fixture
def rng():
    return random.Random(1234)


def make_utlb(cache=None, **kwargs):
    """Helper used by many tests: a fresh UTLB over a fresh small cache."""
    if cache is None:
        cache = SharedUtlbCache(num_entries=kwargs.pop("cache_entries", 64))
    kwargs.setdefault("driver", CountingFrameDriver())
    pid = kwargs.pop("pid", 1)
    return HierarchicalUtlb(pid, cache, **kwargs)
