"""Shared fixtures for the test suite."""

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.core.costs import CostModel
from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb

# Hypothesis profiles: "dev" is the library default; "ci" pins the
# example count and derandomizes so every CI run executes the identical
# test body (no flaky shrink phases, no cross-run example drift).
# Select with HYPOTHESIS_PROFILE=ci (set by .github/workflows/ci.yml).
settings.register_profile("dev", settings())
settings.register_profile("ci", settings(
    derandomize=True,
    max_examples=25,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def cost_model():
    """The paper-calibrated cost model."""
    return CostModel()


@pytest.fixture
def small_cache():
    """A small direct-mapped Shared UTLB-Cache for fast tests."""
    return SharedUtlbCache(num_entries=64)


@pytest.fixture
def utlb(small_cache):
    """A Hierarchical-UTLB for pid 1 over the small cache, no limit."""
    return HierarchicalUtlb(1, small_cache, driver=CountingFrameDriver())


@pytest.fixture
def rng():
    return random.Random(1234)


def make_utlb(cache=None, **kwargs):
    """Helper used by many tests: a fresh UTLB over a fresh small cache."""
    if cache is None:
        cache = SharedUtlbCache(num_entries=kwargs.pop("cache_entries", 64))
    kwargs.setdefault("driver", CountingFrameDriver())
    pid = kwargs.pop("pid", 1)
    return HierarchicalUtlb(pid, cache, **kwargs)
