"""End-to-end determinism: identical inputs produce identical outputs.

The whole point of a reproduction is that someone else gets the same
numbers.  These tests re-run entire pipelines and compare rendered text
byte-for-byte.
"""

from repro.sim import experiments as exp
from repro.sim.compare import compare_table4

TINY = dict(scale=0.04, nodes=1, seed=7)


class TestExperimentDeterminism:
    def test_table4_renders_identically_twice(self):
        first = exp.render_table4(exp.table4(sizes=(128, 512), **TINY))
        second = exp.render_table4(exp.table4(sizes=(128, 512), **TINY))
        assert first == second

    def test_figure8_renders_identically_twice(self):
        first = exp.render_figure8(
            exp.figure8(sizes=(128,), degrees=(1, 8), **TINY))
        second = exp.render_figure8(
            exp.figure8(sizes=(128,), degrees=(1, 8), **TINY))
        assert first == second

    def test_different_seed_changes_nothing_structural(self):
        """A different seed changes traces but not table structure or
        the qualitative findings."""
        a = exp.table4(sizes=(128,), scale=0.04, nodes=1, seed=1)
        b = exp.table4(sizes=(128,), scale=0.04, nodes=1, seed=2)
        assert set(a) == set(b)
        for app in a:
            assert a[app][128]["utlb"]["unpins"] == 0.0
            assert b[app][128]["utlb"]["unpins"] == 0.0

    def test_comparison_deterministic(self):
        _, first = compare_table4(sizes=(128,), **TINY)
        _, second = compare_table4(sizes=(128,), **TINY)
        assert first == second


class TestFunctionalDeterminism:
    def test_lossy_transfer_reproduces_exactly(self):
        """Same seed, same loss pattern, same retransmission count."""
        from repro import params
        from repro.vmmc import Cluster, remote_store

        def run():
            cluster = Cluster(num_nodes=2, loss_rate=0.3, seed=99)
            a = cluster.node(0).create_process()
            b = cluster.node(1).create_process()
            handle = a.import_buffer(
                1, b.export(0x40000000, 2 * params.PAGE_SIZE))
            a.write_memory(0x10000000, b"deterministic" * 100)
            steps = remote_store(cluster, a, 0x10000000, 1300, handle)
            return steps, cluster.node(0).endpoint.stats.retransmitted

        assert run() == run()

    def test_svm_kernel_reproduces_exactly(self):
        import random

        from repro.svm import SvmCluster
        from repro.svm.apps import parallel_stencil
        from repro.traces.capture import TraceRecorder

        def run():
            rng = random.Random(5)
            grid = [[rng.randrange(50) for _ in range(16)]
                    for _ in range(16)]
            recorder = TraceRecorder()
            svm = SvmCluster(num_ranks=3, region_pages=8, nodes=2,
                             recorder=recorder)
            parallel_stencil(svm, grid, 2)
            return [r.as_tuple() for r in recorder.records()]

        assert run() == run()
