"""The replay-throughput regression gate against the committed anchor.

Each PR that touches the perf trajectory commits a ``BENCH_<n>.json``
snapshot of the CI sweep-grid run (``bench_replay_throughput
--metrics-json``).  This script turns those snapshots from decoration
into a gate: it finds the most recent committed anchor (highest ``n``),
shape-checks both it and the fresh run, and fails when the fresh run's
grid throughput (``totals.pages_per_sec``) degrades below
``--threshold`` (default 0.70) of the anchor's.

CI runners are noisy, so the floor is deliberately loose — it catches
real regressions (an accidental fast-path deoptimization is a 5-10x
cliff, not 30%) without tripping on scheduler jitter.  Usage::

    python -m benchmarks.check_bench_anchor replay-metrics.json
"""

import argparse
import glob
import json
import os
import re
import sys

#: totals keys every snapshot must carry (the trajectory's schema).
TOTALS_KEYS = (
    "elapsed_s",
    "pages_per_sec",
    "cache_hits",
    "cache_misses",
    "analytic_axes",
    "analytic_cells",
)

#: analytic_axis_speedup keys (solver-vs-replay timing, recorded per PR).
AXIS_KEYS = ("cells", "analytic_cells", "replay_s", "analytic_s", "speedup")


def find_anchor(root="."):
    """The committed ``BENCH_<n>.json`` with the highest ``n``."""
    candidates = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if match:
            candidates.append((int(match.group(1)), path))
    if not candidates:
        raise SystemExit("FAIL: no committed BENCH_<n>.json anchor found")
    return max(candidates)[1]


def check_shape(payload, name):
    """Every snapshot — anchor or fresh — must have the full schema."""
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        raise SystemExit("FAIL: %s has no totals dict" % name)
    for key in TOTALS_KEYS:
        if key not in totals:
            raise SystemExit("FAIL: %s missing totals[%r]" % (name, key))
    axis = payload.get("analytic_axis_speedup")
    if not isinstance(axis, dict):
        raise SystemExit("FAIL: %s has no analytic_axis_speedup" % name)
    for key in AXIS_KEYS:
        if key not in axis:
            msg = "FAIL: %s missing analytic_axis_speedup[%r]" % (name, key)
            raise SystemExit(msg)
    if axis["analytic_cells"] != axis["cells"]:
        raise SystemExit(
            "FAIL: %s solved only %d of %d axis cells analytically"
            % (name, axis["analytic_cells"], axis["cells"])
        )
    return totals


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate a fresh replay-throughput run against the most "
        "recent committed BENCH_<n>.json anchor.",
    )
    parser.add_argument("fresh", help="metrics JSON of the fresh CI run")
    parser.add_argument(
        "--anchor",
        default=None,
        help="anchor path (default: highest BENCH_<n>.json in --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory holding the committed anchors",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.70,
        help="minimum fresh/anchor pages-per-sec ratio "
        "(default 0.70: >30%% degradation fails)",
    )
    args = parser.parse_args(argv)

    anchor_path = args.anchor or find_anchor(args.root)
    with open(anchor_path) as handle:
        anchor = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)

    anchor_totals = check_shape(anchor, os.path.basename(anchor_path))
    fresh_totals = check_shape(fresh, args.fresh)

    # Throughput only compares like-for-like: the runs must replay the
    # same workload (pages/sec at small scale is dominated by fixed
    # pool/IPC overhead, not the hot loop).
    anchor_scale = anchor.get("bench", {}).get("scale")
    fresh_scale = fresh.get("bench", {}).get("scale")
    if anchor_scale != fresh_scale:
        raise SystemExit(
            "FAIL: scale mismatch — anchor recorded at scale=%r, fresh "
            "run at scale=%r; rerun with the anchor's scale"
            % (anchor_scale, fresh_scale)
        )

    anchor_rate = anchor_totals["pages_per_sec"]
    fresh_rate = fresh_totals["pages_per_sec"]
    if anchor_rate <= 0:
        raise SystemExit("FAIL: anchor records a non-positive throughput")
    ratio = fresh_rate / anchor_rate
    print(
        "anchor %s: %.0f pages/s   fresh: %.0f pages/s   ratio %.2fx"
        % (os.path.basename(anchor_path), anchor_rate, fresh_rate, ratio)
    )
    if ratio < args.threshold:
        raise SystemExit(
            "FAIL: fresh throughput is %.2fx of the %s anchor "
            "(threshold %.2f) — a perf regression, or the anchor needs "
            "re-recording alongside an intentional slowdown"
            % (ratio, os.path.basename(anchor_path), args.threshold)
        )
    print("replay-throughput gate OK (threshold %.2f)" % args.threshold)


if __name__ == "__main__":
    sys.exit(main())
