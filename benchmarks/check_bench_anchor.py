"""The benchmark regression gate against the committed anchors.

Each PR that touches the perf trajectory commits a ``BENCH_<n>.json``
snapshot of a CI benchmark run.  Snapshots now come in *kinds* —
``replay-grid`` (``bench_replay_throughput --metrics-json``, the
original sweep-grid run) and ``scale`` (``bench_scale --metrics-json``,
the bounded-memory streaming run) — and a fresh run must only ever be
compared against an anchor of the same kind *and* the same
``bench.scale`` (pages/sec at small scale is dominated by fixed
pool/IPC overhead, not the hot loop, so cross-scale ratios are
meaningless).  This script finds the most recent committed anchor
(highest ``n``) matching the fresh run's ``(kind, scale)`` key,
shape-checks both snapshots, and fails when the fresh run's throughput
(``totals.pages_per_sec``) degrades below ``--threshold`` (default
0.70) of that anchor's.

CI runners are noisy, so the floor is deliberately loose — it catches
real regressions (an accidental fast-path deoptimization is a 5-10x
cliff, not 30%) without tripping on scheduler jitter.  Usage::

    python -m benchmarks.check_bench_anchor replay-metrics.json
    python -m benchmarks.check_bench_anchor scale-metrics.json
"""

import argparse
import glob
import json
import os
import re
import sys

#: totals keys every snapshot must carry (the trajectory's schema).
TOTALS_KEYS = (
    "elapsed_s",
    "pages_per_sec",
    "cache_hits",
    "cache_misses",
    "analytic_axes",
    "analytic_cells",
)

#: analytic_axis_speedup keys (solver-vs-replay timing, recorded per PR).
AXIS_KEYS = ("cells", "analytic_cells", "replay_s", "analytic_s", "speedup")

#: memory keys a ``scale`` snapshot must carry (the RSS trajectory).
MEMORY_KEYS = ("peak_rss_kb", "ceiling_kb")

#: Snapshots from before ``bench.kind`` existed are sweep-grid runs.
DEFAULT_KIND = "replay-grid"


def bench_key(payload):
    """The anchor-matching key of one snapshot: ``(kind, scale)``."""
    bench = payload.get("bench") or {}
    return (bench.get("kind", DEFAULT_KIND), bench.get("scale"))


def find_anchor(key, root="."):
    """The highest-``n`` committed ``BENCH_<n>.json`` matching ``key``.

    Returns ``(path, payload)``, or ``(None, None)`` when no committed
    anchor has the fresh run's ``(kind, scale)`` — the caller decides
    whether that is fatal (``--allow-missing`` makes it a no-op for the
    first run of a brand-new kind, before its anchor lands).
    """
    candidates = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if match:
            candidates.append((int(match.group(1)), path))
    if not candidates:
        raise SystemExit("FAIL: no committed BENCH_<n>.json anchor found")
    for _, path in sorted(candidates, reverse=True):
        with open(path) as handle:
            payload = json.load(handle)
        if bench_key(payload) == key:
            return path, payload
    return None, None


def check_shape(payload, name):
    """Every snapshot — anchor or fresh — must have its kind's schema."""
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        raise SystemExit("FAIL: %s has no totals dict" % name)
    for key in TOTALS_KEYS:
        if key not in totals:
            raise SystemExit("FAIL: %s missing totals[%r]" % (name, key))
    kind = bench_key(payload)[0]
    if kind == "replay-grid":
        axis = payload.get("analytic_axis_speedup")
        if not isinstance(axis, dict):
            raise SystemExit("FAIL: %s has no analytic_axis_speedup" % name)
        for key in AXIS_KEYS:
            if key not in axis:
                msg = "FAIL: %s missing analytic_axis_speedup[%r]" % (
                    name,
                    key,
                )
                raise SystemExit(msg)
        if axis["analytic_cells"] != axis["cells"]:
            raise SystemExit(
                "FAIL: %s solved only %d of %d axis cells analytically"
                % (name, axis["analytic_cells"], axis["cells"])
            )
    elif kind == "scale":
        memory = payload.get("memory")
        if not isinstance(memory, dict):
            raise SystemExit("FAIL: %s has no memory dict" % name)
        for key in MEMORY_KEYS:
            if key not in memory:
                raise SystemExit("FAIL: %s missing memory[%r]" % (name, key))
        if memory["peak_rss_kb"] > memory["ceiling_kb"]:
            raise SystemExit(
                "FAIL: %s records peak RSS %d KB above its own ceiling "
                "%d KB" % (name, memory["peak_rss_kb"], memory["ceiling_kb"])
            )
    else:
        raise SystemExit("FAIL: %s has unknown bench kind %r" % (name, kind))
    return totals


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate a fresh benchmark run against the most recent "
        "committed BENCH_<n>.json anchor of the same kind and scale.",
    )
    parser.add_argument("fresh", help="metrics JSON of the fresh CI run")
    parser.add_argument(
        "--anchor",
        default=None,
        help="anchor path (default: highest matching BENCH_<n>.json "
        "in --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory holding the committed anchors",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.70,
        help="minimum fresh/anchor pages-per-sec ratio "
        "(default 0.70: >30%% degradation fails)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="succeed (skipping the ratio gate) when no committed "
        "anchor matches the fresh run's kind and scale — for the first "
        "run of a new benchmark kind",
    )
    args = parser.parse_args(argv)

    with open(args.fresh) as handle:
        fresh = json.load(handle)
    fresh_totals = check_shape(fresh, args.fresh)
    key = bench_key(fresh)

    if args.anchor:
        anchor_path = args.anchor
        with open(anchor_path) as handle:
            anchor = json.load(handle)
        if bench_key(anchor) != key:
            raise SystemExit(
                "FAIL: anchor %s is %r, fresh run is %r; compare "
                "like-for-like only"
                % (os.path.basename(anchor_path), bench_key(anchor), key)
            )
    else:
        anchor_path, anchor = find_anchor(key, args.root)
        if anchor_path is None:
            message = "no committed anchor matches kind=%r scale=%r" % key
            if args.allow_missing:
                print("%s — gate skipped (--allow-missing)" % message)
                return
            raise SystemExit(
                "FAIL: %s; commit the first BENCH_<n>.json for this "
                "kind or pass --allow-missing" % message
            )
    anchor_totals = check_shape(anchor, os.path.basename(anchor_path))

    anchor_rate = anchor_totals["pages_per_sec"]
    fresh_rate = fresh_totals["pages_per_sec"]
    if anchor_rate <= 0:
        raise SystemExit("FAIL: anchor records a non-positive throughput")
    ratio = fresh_rate / anchor_rate
    print(
        "anchor %s [kind=%s scale=%r]: %.0f pages/s   fresh: %.0f "
        "pages/s   ratio %.2fx"
        % (
            os.path.basename(anchor_path),
            key[0],
            key[1],
            anchor_rate,
            fresh_rate,
            ratio,
        )
    )
    if ratio < args.threshold:
        raise SystemExit(
            "FAIL: fresh throughput is %.2fx of the %s anchor "
            "(threshold %.2f) — a perf regression, or the anchor needs "
            "re-recording alongside an intentional slowdown"
            % (ratio, os.path.basename(anchor_path), args.threshold)
        )
    print("benchmark anchor gate OK (threshold %.2f)" % args.threshold)


if __name__ == "__main__":
    sys.exit(main())
