"""The bounded-memory scale benchmark: streaming generate->compile->replay.

Drives the trace pipeline end to end at datacenter-ish trace lengths
(default: the zipf-kv workload at 20x+ the largest Table 3 lookup
count) and records *memory* alongside throughput.  Generation runs the
parallel per-process path (``--gen-workers``, byte-identical to the
serial streaming compile; 0 forces serial) and replay runs the engine
axis (``--engine fast|kernel|both``; ``both`` asserts byte-identity at
scale and reports the kernel run).  Alongside the timings:

* peak RSS (``getrusage``) is sampled after generate+compile+publish —
  the phase whose footprint used to be O(records) — and gated against
  ``--ceiling-mb``.  With the streaming path the peak is the compiled
  arrays (8 bytes/lookup) plus interpreter baseline; the old eager path
  held every ``TraceRecord`` object as well (~50-100x more), so at this
  trace length it blows the same ceiling.
* an optional ``--eager-probe`` measures that directly: a spawned child
  process builds the full record list the pre-streaming pipeline built,
  compiles it, and reports its own peak RSS (child RSS is isolated —
  ``ru_maxrss`` is process-lifetime-monotone, so the probe must not
  share the parent's counter).
* an optional tracemalloc pass re-runs generate+compile under the
  allocation tracer for a Python-heap peak that is independent of the
  allocator's RSS behaviour.  It is untimed — tracemalloc slows
  generation several-fold — and never part of the throughput numbers.

The metrics JSON mirrors the ``SweepMetrics`` totals schema (so
``check_bench_anchor`` gates it like any other snapshot) with
``bench.kind = "scale"`` and a ``memory`` section; committed anchors
(``BENCH_8.json`` onward) record the memory trajectory PR over PR.

Usage::

    python -m benchmarks.bench_scale --ceiling-mb 220 \
        --metrics-json scale-metrics.json
"""

import argparse
import json
import resource
import sys
import time
import tracemalloc
from multiprocessing import get_context

from repro.sim.config import SimConfig
from repro.sim.simulator import simulate_node
from repro.sim.stream_store import SharedStreamStore
from repro.traces.compile import (
    DEFAULT_CHUNK_RECORDS,
    compile_in_chunks,
    compile_streams,
)
from repro.traces.parallel import (
    compile_node_parallel,
    default_generation_workers,
)
from repro.traces.synth import make_workload

#: The scale factor applied to zipf-kv's defaults: 10x gives 2M lookups
#: per node (8 processes x 250k requests) — 46x the largest Table 3
#: trace (fft, 43132 lookups/node) — over 10k tenants.
DEFAULT_SCALE = 10.0

DEFAULT_SEED = 1

#: Peak-RSS budget (MB) for generate+compile+publish.  The streaming
#: pipeline needs ~95 MB here (interpreter baseline + compiled arrays
#: + the shared-memory copy); the eager path's record list pushes the
#: same work to ~350 MB at the default scale, so the ceiling separates
#: the two regimes with wide margins on both sides.
DEFAULT_CEILING_MB = 220


def _peak_rss_kb():
    """This process's lifetime peak RSS in KB (Linux ``ru_maxrss``)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _eager_probe(scale, seed):
    """The pre-streaming pipeline, in whatever process runs this:
    materialize the full record list, then compile it."""
    workload = make_workload("zipf-kv")
    records = list(workload.iter_node(0, seed=seed, scale=scale))
    compile_streams(records)
    return _peak_rss_kb()


def _eager_peak_rss_kb(scale, seed):
    """Run the eager probe in a spawned child; returns the child's peak
    RSS in KB.  Spawn (not fork) so the child starts from a fresh
    interpreter baseline instead of inheriting the parent's footprint.
    """
    with get_context("spawn").Pool(1) as pool:
        return pool.apply(_eager_probe, (scale, seed))


def _tracemalloc_peak_kb(source, chunk_records):
    """Python-heap peak of one generate+compile pass, in KB (untimed)."""
    tracemalloc.start()
    try:
        compile_in_chunks(source, chunk_records)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak // 1024


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Stream-generate, compile, publish, and replay a "
        "datacenter-scale zipf trace; record peak RSS alongside "
        "pages/sec and gate the RSS against a ceiling.",
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=DEFAULT_CHUNK_RECORDS,
        help="records staged per StreamCompiler.add call (the pipeline's "
        "only O(trace-length-independent) buffer)",
    )
    parser.add_argument(
        "--ceiling-mb",
        type=int,
        default=DEFAULT_CEILING_MB,
        help="peak-RSS budget for generate+compile+publish; exceeding "
        "it fails the run (default 220 MB)",
    )
    parser.add_argument(
        "--eager-probe",
        action="store_true",
        help="also measure the old eager path's peak RSS in a child "
        "process (slow: it really builds the full record list)",
    )
    parser.add_argument(
        "--skip-tracemalloc",
        action="store_true",
        help="skip the (untimed, several-fold slower) tracemalloc "
        "generate+compile pass",
    )
    parser.add_argument(
        "--engine",
        choices=("fast", "kernel", "both"),
        default="both",
        help="replay engine; 'both' replays fast and kernel, asserts "
        "byte-identical results, and reports the headline numbers from "
        "the kernel run (default)",
    )
    parser.add_argument(
        "--gen-workers",
        type=int,
        default=None,
        metavar="N",
        help="generation worker processes for the parallel per-process "
        "compile (default: one per CPU, capped at 16); 0 forces the "
        "serial streaming compile",
    )
    parser.add_argument("--metrics-json", default=None, metavar="PATH")
    args = parser.parse_args(argv)

    workload = make_workload("zipf-kv")
    source = workload.streaming_node(0, seed=args.seed, scale=args.scale)
    lookups = workload.node_lookups(args.scale)
    baseline_kb = _peak_rss_kb()
    print(
        "zipf-kv scale=%g: %d lookups over %d processes, %d tenants"
        % (
            args.scale,
            lookups,
            workload.server_processes,
            workload.scaled_sizes(args.scale)[0],
        )
    )

    gen_workers = (
        default_generation_workers() if args.gen_workers is None else args.gen_workers
    )

    # Phase 1 (timed): per-process parallel generate -> vectorized
    # merge+compile (byte-identical to the serial streaming compile;
    # --gen-workers 0 runs that serial path instead).  The record list
    # never exists either way.
    start = time.perf_counter()
    if gen_workers > 0:
        compiled = compile_node_parallel(
            workload, node=0, seed=args.seed, scale=args.scale, workers=gen_workers
        )
    else:
        compiled = compile_in_chunks(source, args.chunk_records)
    compile_s = time.perf_counter() - start
    assert compiled.total_pages == lookups

    # Phase 2: publish to the shared-memory store and swap to a view,
    # exactly like a pooled SweepRunner batch — then sample the gated
    # peak: everything the parent ever held to get replay-ready.
    engines = ("fast", "kernel") if args.engine == "both" else (args.engine,)
    store = SharedStreamStore()
    try:
        store.publish("bench", compiled)
        compiled = store.view("bench")
        peak_kb = _peak_rss_kb()
        ceiling_kb = args.ceiling_mb * 1024

        # Phase 3 (timed): replay through the requested engine(s)
        # against the shared view (the store outlives the replay, like
        # a batch).  With --engine both the results must be
        # byte-identical and the kernel run is the headline.
        replay_times = {}
        results = {}
        for engine in engines:
            config = SimConfig(engine=engine)
            start = time.perf_counter()
            result = simulate_node(source, config, compiled=compiled)
            replay_times[engine] = time.perf_counter() - start
            results[engine] = result
    finally:
        store.close()
    if len(results) > 1:
        dicts = [json.dumps(r.to_dict(), sort_keys=True) for r in results.values()]
        if len(set(dicts)) != 1:
            raise SystemExit("FAIL: fast and kernel replay diverged at scale")
        print(
            "fast and kernel replays byte-identical "
            "(fast %.2fs, kernel %.2fs, %.1fx)"
            % (
                replay_times["fast"],
                replay_times["kernel"],
                replay_times["fast"] / replay_times["kernel"],
            )
        )
    headline = engines[-1]
    result = results[headline]
    replay_s = replay_times[headline]
    assert result.stats.lookups == lookups

    elapsed_s = compile_s + replay_s
    pages_per_sec = lookups / elapsed_s
    print(
        "compile %.2fs (%.0f rec/s)  replay %.2fs (%.0f pages/s)  "
        "pipeline %.0f pages/s"
        % (
            compile_s,
            lookups / compile_s,
            replay_s,
            lookups / replay_s,
            pages_per_sec,
        )
    )
    print(
        "peak RSS %.1f MB (baseline %.1f MB, ceiling %d MB)"
        % (peak_kb / 1024.0, baseline_kb / 1024.0, args.ceiling_mb)
    )

    tracemalloc_kb = None
    if not args.skip_tracemalloc:
        tracemalloc_kb = _tracemalloc_peak_kb(source, args.chunk_records)
        print(
            "tracemalloc generate+compile heap peak %.1f MB"
            % (tracemalloc_kb / 1024.0)
        )

    eager_kb = None
    if args.eager_probe:
        eager_kb = _eager_peak_rss_kb(args.scale, args.seed)
        print(
            "eager-path peak RSS %.1f MB (%.1fx the streaming peak)"
            % (eager_kb / 1024.0, eager_kb / peak_kb)
        )
        if eager_kb <= ceiling_kb:
            raise SystemExit(
                "FAIL: the eager probe fits the %d MB ceiling — raise "
                "--scale until the ceiling separates the regimes"
                % args.ceiling_mb
            )

    if args.metrics_json:
        archive = {
            "totals": {
                "cells": 1,
                "lookups": lookups,
                "elapsed_s": elapsed_s,
                "pages_per_sec": pages_per_sec,
                "phases": {
                    "compile_s": compile_s,
                    "replay_s": replay_s,
                    "report_s": 0.0,
                },
                "cache_hits": 0,
                "cache_misses": 1,
                "analytic_axes": 0,
                "analytic_cells": 0,
            },
            "memory": {
                "baseline_rss_kb": baseline_kb,
                "peak_rss_kb": peak_kb,
                "ceiling_kb": ceiling_kb,
                "tracemalloc_peak_kb": tracemalloc_kb,
                "eager_peak_rss_kb": eager_kb,
            },
            "engines": {
                engine: {"replay_s": replay_times[engine]} for engine in engines
            },
            "bench": {
                "kind": "scale",
                "workload": "zipf-kv",
                "scale": args.scale,
                "seed": args.seed,
                "nodes": 1,
                "chunk_records": args.chunk_records,
                "engine": headline,
                "gen_workers": gen_workers,
                "tenants": workload.scaled_sizes(args.scale)[0],
                "server_processes": workload.server_processes,
            },
        }
        with open(args.metrics_json, "w") as handle:
            json.dump(archive, handle, indent=2, sort_keys=True)
        print("metrics written to %s" % args.metrics_json)

    if peak_kb > ceiling_kb:
        raise SystemExit(
            "FAIL: peak RSS %.1f MB exceeds the %d MB ceiling — the "
            "generate+compile path is holding O(records) memory again"
            % (peak_kb / 1024.0, args.ceiling_mb)
        )
    print("memory ceiling gate OK (%d MB)" % args.ceiling_mb)


if __name__ == "__main__":
    sys.exit(main())
