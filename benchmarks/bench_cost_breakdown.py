"""Extension experiment: where each lookup microsecond goes.

Decomposes the average lookup cost into the Section 6.2 equation terms
for both mechanisms — the 'why' behind Table 6: UTLB spends on user-level
pinning; the baseline spends on interrupts and kernel pin/unpin.
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once


def bench_cost_breakdown(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.cost_breakdown, scale=scale,
                    nodes=nodes, seed=seed, cache_entries=1024,
                    runner=sweep_runner)
    print()
    print(exp.render_cost_breakdown(data))
    for app, per_mech in data.items():
        utlb = per_mech["utlb"]
        intr = per_mech["intr"]
        # The structural claims behind Table 6:
        assert utlb["interrupt_us"] == 0.0
        assert intr["check_us"] == 0.0 and intr["pin_us"] >= 0.0
        assert intr["interrupt_us"] > 0.0
        # Components sum to the total.
        assert abs(sum(utlb[c] for c in exp.BREAKDOWN_COMPONENTS)
                   - utlb["total_us"]) < 1e-9