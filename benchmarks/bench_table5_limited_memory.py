"""Table 5: UTLB vs interrupt-based under a 4 MB per-process limit."""

from repro import params
from repro.sim import experiments as exp

from benchmarks.conftest import run_once

SIZES = (1024, 4096, 16384)


def bench_table5_limited_memory(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.table5, scale=scale, nodes=nodes,
                    seed=seed, sizes=SIZES,
                    memory_limit_bytes=params.TABLE5_MEMORY_LIMIT_BYTES,
                    runner=sweep_runner)
    print()
    print(exp.render_table5(data))
    # UTLB performs essentially no more pin+unpin work than the baseline
    # even under the limit (the paper's Table 5 itself has cells where
    # the two are within a couple of percent of each other).
    for app in data:
        for size in SIZES:
            cell = data[app][size]
            utlb = cell["utlb"]["stats"]
            intr = cell["intr"]["stats"]
            assert (utlb.pages_pinned + utlb.pages_unpinned
                    <= 1.1 * (intr.pages_pinned + intr.pages_unpinned) + 1)
