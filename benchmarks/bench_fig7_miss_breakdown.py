"""Figure 7: compulsory/capacity/conflict breakdown of NIC-cache misses.

Checks the paper's finding: compulsory misses constitute the majority of
translation misses once the cache is reasonably sized.
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once

SIZES = (1024, 4096, 16384)


def bench_fig7_miss_breakdown(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.figure7, scale=scale, nodes=nodes,
                    seed=seed, sizes=SIZES, runner=sweep_runner)
    print()
    print(exp.render_figure7(data))
    dominant = sum(
        1 for app in data
        if data[app][16384]["compulsory"]
        > data[app][16384]["capacity"] + data[app][16384]["conflict"])
    assert dominant >= 5
