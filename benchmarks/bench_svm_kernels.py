"""SVM-layer benchmarks: whole parallel kernels through the full stack.

Each bench times a verified BSP kernel (compute + page fetches + diff
propagation + barriers) on the SVM layer, and reports the UTLB traffic
it generated — the live counterpart of the paper's traced SVM runs.
"""

import random

from repro.svm import SvmCluster
from repro.svm.apps import (
    parallel_histogram,
    parallel_stencil,
    parallel_transpose,
    serial_histogram,
    serial_stencil,
    serial_transpose,
)

from benchmarks.conftest import run_once


def bench_svm_stencil(benchmark):
    rng = random.Random(1)
    n = 48
    grid = [[rng.randrange(-100, 100) for _ in range(n)] for _ in range(n)]

    def run():
        svm = SvmCluster(num_ranks=4, region_pages=32, nodes=2)
        result = parallel_stencil(svm, grid, 2)
        return svm, result

    svm, result = run_once(benchmark, run)
    assert result == serial_stencil(grid, 2)
    stats = svm.translation_stats()
    print()
    print("stencil: %d SVM fetches, %d diff stores, %d UTLB lookups, "
          "%d interrupts" % (svm.total_fetches(), svm.diff_stores,
                             stats.lookups, stats.interrupts))
    assert stats.interrupts == 0


def bench_svm_transpose(benchmark):
    rng = random.Random(2)
    n = 40
    matrix = [[rng.randrange(10**6) for _ in range(n)] for _ in range(n)]

    def run():
        svm = SvmCluster(num_ranks=4, region_pages=32, nodes=2)
        return parallel_transpose(svm, matrix)

    result = run_once(benchmark, run)
    assert result == serial_transpose(matrix)


def bench_svm_histogram(benchmark):
    rng = random.Random(3)
    keys = [rng.randrange(1 << 20) for _ in range(2000)]

    def run():
        svm = SvmCluster(num_ranks=4, region_pages=32, nodes=2)
        return parallel_histogram(svm, keys, 64)

    result = run_once(benchmark, run)
    assert result == serial_histogram(keys, 64)
