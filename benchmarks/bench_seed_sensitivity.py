"""Robustness: the reproduced rates must not depend on the trace seed.

If the comparison against the paper's numbers only held for one lucky
seed, the reproduction would be cherry-picked.  This bench measures the
NI-miss-rate spread over several seeds for every application and bounds
it.
"""

from repro.sim.ablation import render_seed_sensitivity, seed_sensitivity

from benchmarks.conftest import run_once

SEEDS = (1, 2, 3)


def bench_seed_sensitivity(benchmark, bench_geometry):
    scale, nodes, _ = bench_geometry

    def run_both():
        # A comfortable cache (rates are structural: expect ~0 spread)
        # and a pressure cache (stochastic eviction: expect small spread).
        return {
            1024: seed_sensitivity(seeds=SEEDS, cache_entries=1024,
                                   scale=scale, nodes=nodes),
            128: seed_sensitivity(seeds=SEEDS, cache_entries=128,
                                  scale=scale, nodes=nodes),
        }

    results = run_once(benchmark, run_both)
    for entries, data in sorted(results.items()):
        print()
        print("cache = %d entries" % entries)
        print(render_seed_sensitivity(data, seeds=SEEDS))
        for name, cell in data.items():
            assert cell["spread"] < 0.05, (
                "%s miss rate varies %.3f across seeds"
                % (name, cell["spread"]))
