"""Functional-layer benchmarks: VMMC remote store / fetch end to end.

Times the whole simulated stack — library check, command post, MCP
translation, DMA, fabric, reliability — moving real bytes between nodes.
"""

from repro import params
from repro.vmmc import Cluster, remote_fetch, remote_store

SEND = 0x10000000
RECV = 0x40000000


def _make_pair():
    cluster = Cluster(num_nodes=2)
    sender = cluster.node(0).create_process()
    receiver = cluster.node(1).create_process()
    export_id = receiver.export(RECV, 16 * params.PAGE_SIZE)
    handle = sender.import_buffer(1, export_id)
    return cluster, sender, receiver, handle


def bench_vmmc_remote_store_64k(benchmark):
    cluster, sender, receiver, handle = _make_pair()
    payload = bytes(range(256)) * 256       # 64 KB
    sender.write_memory(SEND, payload)

    def store():
        remote_store(cluster, sender, SEND, len(payload), handle)

    benchmark(store)
    assert receiver.read_memory(RECV, len(payload)) == payload


def bench_vmmc_remote_fetch_64k(benchmark):
    cluster, sender, receiver, handle = _make_pair()
    payload = b"\xab" * (16 * params.PAGE_SIZE)
    receiver.write_memory(RECV, payload)

    def fetch():
        remote_fetch(cluster, sender, SEND, len(payload), handle)

    benchmark(fetch)
    assert sender.read_memory(SEND, len(payload)) == payload


def bench_vmmc_small_message_latency(benchmark):
    """One 64-byte remote store: the latency-bound case where the 0.9 us
    translation path matters most."""
    cluster, sender, receiver, handle = _make_pair()
    sender.write_memory(SEND, b"x" * 64)

    def store():
        remote_store(cluster, sender, SEND, 64, handle)

    benchmark(store)


def bench_vmmc_store_under_loss(benchmark):
    """Remote store through a 20%-lossy fabric (retransmission path)."""
    cluster = Cluster(num_nodes=2, loss_rate=0.2, seed=5)
    sender = cluster.node(0).create_process()
    receiver = cluster.node(1).create_process()
    export_id = receiver.export(RECV, 16 * params.PAGE_SIZE)
    handle = sender.import_buffer(1, export_id)
    payload = b"y" * (4 * params.PAGE_SIZE)
    sender.write_memory(SEND, payload)

    def store():
        remote_store(cluster, sender, SEND, len(payload), handle)

    benchmark(store)
    assert receiver.read_memory(RECV, len(payload)) == payload
