"""Table 8: Shared UTLB-Cache miss rates vs size and associativity.

Checks the paper's finding: a direct-mapped cache with per-process index
offsetting is competitive with 2-/4-way set-associative caches and far
better than direct-mapped without offsetting (multiprogramming
conflicts).
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once

SIZES = (1024, 4096, 16384)


def bench_table8_associativity(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.table8, scale=scale, nodes=nodes,
                    seed=seed, sizes=SIZES, runner=sweep_runner)
    print()
    print(exp.render_table8(data))
    print()
    print(exp.render_table8_cost(exp.table8_cost(data)))
    # direct-nohash is the clear loser on most cells.
    worse = sum(
        1 for app in data for size in SIZES
        if data[app][(size, "direct-nohash")]
        > data[app][(size, "direct")])
    assert worse >= 0.7 * len(data) * len(SIZES)
    # direct (with offsetting) within a whisker of 4-way everywhere.
    for app in data:
        for size in SIZES:
            assert (data[app][(size, "direct")]
                    <= data[app][(size, "4-way")] + 0.08)
