"""Table 3: workload characteristics of the seven synthetic applications.

Times full trace generation and prints the footprint / lookup table the
generators achieve against the paper's targets.
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once


def bench_table3_workloads(benchmark, bench_geometry):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.table3, scale=scale, nodes=nodes,
                    seed=seed)
    print()
    print(exp.render_table3(data))
    print("(scale=%.2f; full-scale targets: fft %d pages / %d lookups)"
          % (scale, data["fft"]["target_footprint"],
             data["fft"]["target_lookups"]))
    assert len(data) == 7
