"""Table 1: host-side UTLB operation costs (check / pin / unpin).

Regenerates the paper's host micro-benchmark table from the calibrated
cost model and times the user-level check against the live BitVector
implementation (the structure the measured 'check' exercises).
"""

from repro.core.bitvector import BitVector
from repro.sim import experiments as exp

from benchmarks.conftest import run_once


def bench_table1_host_costs(benchmark):
    data = run_once(benchmark, exp.table1)
    print()
    print(exp.render_table1(data))
    assert data["pin"][0] == 27.0


def bench_table1_live_check_operation(benchmark):
    """The real user-level check: an all_set probe over a 32-page buffer
    in a bit vector with a realistic pinned population."""
    bitvector = BitVector()
    for page in range(0, 20000, 3):
        bitvector.set(page)

    def check():
        hits = 0
        for start in range(0, 4096, 32):
            if bitvector.all_set(start, 32):
                hits += 1
        return hits

    benchmark(check)
