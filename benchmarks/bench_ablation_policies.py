"""Ablation: the five user-level replacement policies (Section 3.4).

The paper implements LRU/MRU/LFU/MFU/RANDOM but evaluates only LRU
(Section 7 lists this as an open item).  This bench closes it: every
policy runs over every application under a binding pinning limit, and on
a synthetic cyclic scan where MRU provably beats LRU.
"""

from repro import params
from repro.sim.config import SimConfig
from repro.sim.report import format_table
from repro.sim.sweep import generate_traces, sweep_policies
from repro.traces.record import OP_SEND, TraceRecord
from repro.traces.synth import TABLE_ORDER, make_app

from benchmarks.conftest import run_once

POLICIES = ("lru", "mru", "lfu", "mfu", "random")


def _policy_grid(scale, nodes, seed):
    grid = {}
    for name in TABLE_ORDER:
        app = make_app(name)
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        limit_pages = max(16, int(1024 * scale))
        config = SimConfig(cache_entries=4096,
                           memory_limit_bytes=limit_pages * params.PAGE_SIZE)
        results = sweep_policies(traces, config, policies=POLICIES)
        grid[name] = {policy: result.stats.unpin_rate
                      for policy, result in results.items()}
    return grid


def bench_ablation_pin_policies(benchmark, bench_geometry):
    scale, nodes, seed = bench_geometry
    grid = run_once(benchmark, _policy_grid, scale, nodes, seed)
    rows = [[name] + [round(grid[name][p], 3) for p in POLICIES]
            for name in grid]
    print()
    print(format_table(["Application"] + list(POLICIES), rows,
                       title="Ablation: unpins/lookup by pin policy "
                             "(4 MB limit)",
                       precision=3))
    # LRU is never catastrophically worse than the best policy.
    for name in grid:
        best = min(grid[name].values())
        assert grid[name]["lru"] <= best + 0.5


def _cyclic_scan_trace(pool_pages, passes):
    """A scan over pool_pages+8 pages: LRU's worst case."""
    records = []
    timestamp = 0
    for _ in range(passes):
        for page in range(pool_pages + 8):
            records.append(TraceRecord(
                timestamp, 0, 1, OP_SEND,
                0x10000000 + page * params.PAGE_SIZE, params.PAGE_SIZE))
            timestamp += 10
    return records


def bench_ablation_mru_beats_lru_on_scans(benchmark):
    from repro.sim.simulator import simulate_node

    pool = 64
    trace = _cyclic_scan_trace(pool, passes=10)

    def run():
        out = {}
        for policy in ("lru", "mru"):
            config = SimConfig(cache_entries=1024,
                               memory_limit_bytes=pool * params.PAGE_SIZE,
                               pin_policy=policy)
            out[policy] = simulate_node(trace, config).stats
        return out

    stats = run_once(benchmark, run)
    print()
    print("cyclic scan of %d pages through a %d-page pinning budget:"
          % (pool + 8, pool))
    for policy in ("lru", "mru"):
        print("  %-3s: %5d unpins, check miss rate %.3f"
              % (policy, stats[policy].pages_unpinned,
                 stats[policy].check_miss_rate))
    # The application-specific policy pays off: the paper's motivation
    # for letting users choose (Section 3.4).
    assert stats["mru"].pages_unpinned < 0.5 * stats["lru"].pages_unpinned
