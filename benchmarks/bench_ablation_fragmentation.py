"""Ablation: per-process table fragmentation (why Hierarchical-UTLB).

The per-process UTLB scatters free slots as translations churn; the
Hierarchical-UTLB "eliminates the fragmentation problem" by indexing on
virtual addresses directly (Section 3.3).  This bench quantifies the
problem Hierarchical-UTLB removes.
"""

from repro.sim.ablation import fragmentation_over_time, render_fragmentation

from benchmarks.conftest import run_once


def bench_ablation_fragmentation(benchmark):
    points = run_once(benchmark, fragmentation_over_time,
                      num_slots=256, working_set=512, accesses=4000,
                      pin_policy="random", seed=1)
    print()
    print(render_fragmentation(points, slots=256, working_set=512,
                               policy="random"))
    # Once the table churns, free space is scattered: fragmentation is
    # substantial and persistent.
    steady = [frag for _, frag in points[len(points) // 2:]]
    assert all(frag > 0.3 for frag in steady)
