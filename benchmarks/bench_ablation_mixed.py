"""Ablation: heterogeneous multiprogramming (the paper's limitation #1).

Independent programs — not one SPMD app — share a node's NIC.  The bench
sweeps cache organisations for two-program mixes, quantifying how much
index offsetting matters once the programs sharing the translation cache
are strangers.
"""

from repro.sim.ablation import mixed_workload_grid, render_mixed_grid

from benchmarks.conftest import run_once

MIXES = (("barnes", "fft"),
         ("radix", "volrend"),
         ("water-spatial", "raytrace"))
SIZES = (1024, 4096)


def bench_ablation_heterogeneous_mix(benchmark, bench_geometry):
    scale, _, seed = bench_geometry
    data = run_once(benchmark, mixed_workload_grid, mixes=MIXES,
                    sizes=SIZES, scale=scale, seed=seed)
    print()
    print(render_mixed_grid(data))
    for cells in data.values():
        for size in SIZES:
            # Offsetting never loses to no-hash.
            assert cells[(size, "direct")] <= cells[(size, "direct-nohash")]
