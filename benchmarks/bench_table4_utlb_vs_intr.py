"""Table 4: UTLB vs interrupt-based mechanism, infinite host memory.

The headline comparison: per-lookup check misses, NI misses, and unpins
for all seven applications across NIC cache sizes, for both mechanisms.
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once

SIZES = (1024, 4096, 16384)


def bench_table4_utlb_vs_intr(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.table4, scale=scale, nodes=nodes,
                    seed=seed, sizes=SIZES, runner=sweep_runner)
    print()
    print(exp.render_table4(data))
    # Shape assertions (the paper's findings):
    for app in data:
        for size in SIZES:
            cell = data[app][size]
            assert cell["utlb"]["unpins"] == 0.0
            assert abs(cell["utlb"]["ni_misses"]
                       - cell["intr"]["ni_misses"]) < 1e-9
