"""Micro-benchmarks of the hot operations on the translation path.

These are the Python-level analogues of the paper's Table 1/2 hardware
micro-measurements: the real cost drivers of the simulator itself.
"""

import random

from repro.core.bitvector import BitVector
from repro.core.lookup_tree import TwoLevelLookupTree
from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import HierarchicalUtlb


def bench_utlb_hit_path(benchmark):
    """The all-hits fast path: check + NIC hit, no pinning."""
    cache = SharedUtlbCache(num_entries=1024)
    utlb = HierarchicalUtlb(1, cache)
    for page in range(256):
        utlb.access_page(page)
    pages = list(range(256))
    rng = random.Random(0)
    rng.shuffle(pages)
    state = {"i": 0}

    def hit():
        i = state["i"]
        utlb.access_page(pages[i & 255])
        state["i"] = i + 1

    benchmark(hit)


def bench_cache_lookup_hit(benchmark):
    cache = SharedUtlbCache(num_entries=1024)
    cache.register_process(1)
    for page in range(512):
        cache.fill(1, page, page)
    state = {"i": 0}

    def lookup():
        i = state["i"]
        cache.lookup(1, i & 511)
        state["i"] = i + 1

    benchmark(lookup)


def bench_bitvector_test(benchmark):
    bitvector = BitVector()
    for page in range(0, 100000, 2):
        bitvector.set(page)
    state = {"i": 0}

    def test():
        i = state["i"]
        bitvector.test(i % 100000)
        state["i"] = i + 7

    benchmark(test)


def bench_lookup_tree_lookup(benchmark):
    tree = TwoLevelLookupTree()
    for page in range(4096):
        tree.install(page * 3, page)
    state = {"i": 0}

    def lookup():
        i = state["i"]
        tree.lookup((i * 3) % 12288)
        state["i"] = i + 1

    benchmark(lookup)


def bench_demand_pin_path(benchmark):
    """The slow path: check miss -> pin -> table install -> NIC fill."""
    cache = SharedUtlbCache(num_entries=8192)
    utlb = HierarchicalUtlb(1, cache)
    state = {"page": 0}

    def pin_path():
        utlb.access_page(state["page"])
        state["page"] += 1

    benchmark(pin_path)
