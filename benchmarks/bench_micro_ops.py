"""Micro-benchmarks of the hot operations on the translation path.

These are the Python-level analogues of the paper's Table 1/2 hardware
micro-measurements: the real cost drivers of the simulator itself.
"""

import hashlib
import random

from repro.core.bitvector import BitVector
from repro.core.lookup_tree import TwoLevelLookupTree
from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import HierarchicalUtlb
from repro.sim.analytic import _memory_pass
from repro.sim.runner import trace_fingerprint
from repro.traces.compile import compile_streams
from repro.traces.synth import make_app


def bench_utlb_hit_path(benchmark):
    """The all-hits fast path: check + NIC hit, no pinning."""
    cache = SharedUtlbCache(num_entries=1024)
    utlb = HierarchicalUtlb(1, cache)
    for page in range(256):
        utlb.access_page(page)
    pages = list(range(256))
    rng = random.Random(0)
    rng.shuffle(pages)
    state = {"i": 0}

    def hit():
        i = state["i"]
        utlb.access_page(pages[i & 255])
        state["i"] = i + 1

    benchmark(hit)


def bench_cache_lookup_hit(benchmark):
    cache = SharedUtlbCache(num_entries=1024)
    cache.register_process(1)
    for page in range(512):
        cache.fill(1, page, page)
    state = {"i": 0}

    def lookup():
        i = state["i"]
        cache.lookup(1, i & 511)
        state["i"] = i + 1

    benchmark(lookup)


def bench_bitvector_test(benchmark):
    bitvector = BitVector()
    for page in range(0, 100000, 2):
        bitvector.set(page)
    state = {"i": 0}

    def test():
        i = state["i"]
        bitvector.test(i % 100000)
        state["i"] = i + 7

    benchmark(test)


def bench_lookup_tree_lookup(benchmark):
    tree = TwoLevelLookupTree()
    for page in range(4096):
        tree.install(page * 3, page)
    state = {"i": 0}

    def lookup():
        i = state["i"]
        tree.lookup((i * 3) % 12288)
        state["i"] = i + 1

    benchmark(lookup)


def _fingerprint_records():
    """A realistic node trace: fingerprinting guards every cache probe,
    so the sweep runner hashes traces this size once per batch."""
    return make_app("barnes").generate_node(0, seed=1, scale=0.1)


def bench_trace_fingerprint_packed(benchmark):
    """The shipped path: struct-packed record bytes into sha256."""
    records = _fingerprint_records()
    benchmark(trace_fingerprint, records)


def bench_trace_fingerprint_repr(benchmark):
    """The pre-CACHE_FORMAT-2 baseline: repr() per record.  Kept as the
    comparison point for the packed fingerprint above."""
    records = _fingerprint_records()

    def repr_fingerprint():
        digest = hashlib.sha256()
        for record in records:
            digest.update(repr(record.as_tuple()).encode("ascii"))
        return digest.hexdigest()

    benchmark(repr_fingerprint)


def _compiled_trace():
    return compile_streams(make_app("barnes").generate_node(0, seed=1,
                                                            scale=0.1))


def bench_stack_distance_pass_direct(benchmark):
    """The analytic memory-axis kernel (per-pid exact LRU stack
    distances + conflict tracking) under the plain direct index — the
    per-access cost floor of one whole sweep axis."""
    compiled = _compiled_trace()
    benchmark(_memory_pass, compiled, 8192, False, 1024)
    benchmark.extra_info["pages"] = compiled.total_pages


def bench_stack_distance_pass_offset(benchmark):
    """Same kernel, set-partitioned with per-process index offsetting —
    what Table 5's offset-indexed configuration costs per access."""
    compiled = _compiled_trace()
    benchmark(_memory_pass, compiled, 8192, True, 1024)
    benchmark.extra_info["pages"] = compiled.total_pages


def bench_demand_pin_path(benchmark):
    """The slow path: check miss -> pin -> table install -> NIC fill."""
    cache = SharedUtlbCache(num_entries=8192)
    utlb = HierarchicalUtlb(1, cache)
    state = {"page": 0}

    def pin_path():
        utlb.access_page(state["page"])
        state["page"] += 1

    benchmark(pin_path)
