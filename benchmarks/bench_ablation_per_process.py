"""Ablation: per-process UTLB vs Shared UTLB-Cache (Sections 3.1 vs 3.2).

The paper could not compare the two for lack of traces (Section 7).
Here both replay the same workloads: the per-process design never misses
on the NIC but burns scarce SRAM per process and suffers capacity
evictions (extra pin/unpin) once its table is smaller than the
footprint; the shared cache keeps translations alive in host memory.
"""

from repro.core.per_process import PerProcessUtlb
from repro.core.stats import TranslationStats
from repro.core.utlb import CountingFrameDriver
from repro.sim.config import SimConfig
from repro.sim.report import format_table
from repro.sim.simulator import simulate_node
from repro.traces.merge import split_by_pid
from repro.traces.synth import make_app

from benchmarks.conftest import run_once

#: NIC SRAM budget for translation state (the paper's 32 KB).
SRAM_BUDGET_ENTRIES = 8192


def replay_per_process(records, slots_per_process):
    """Replay a node trace over per-process UTLB tables."""
    driver = CountingFrameDriver()
    utlbs = {pid: PerProcessUtlb(pid, num_slots=slots_per_process,
                                 driver=driver)
             for pid in sorted(split_by_pid(records))}
    for record in records:
        utlb = utlbs[record.pid]
        for vpage in record.pages():
            utlb.access_page(vpage)
    return TranslationStats.merged(u.stats for u in utlbs.values())


def _compare(scale, seed):
    rows = []
    for name in ("barnes", "fft", "water-spatial"):
        app = make_app(name)
        records = app.generate_node(0, seed=seed, scale=scale)
        processes = len(split_by_pid(records))
        slots = SRAM_BUDGET_ENTRIES // processes
        per_process = replay_per_process(records, slots)
        shared = simulate_node(
            records, SimConfig(cache_entries=SRAM_BUDGET_ENTRIES)).stats
        rows.append([name,
                     round(per_process.avg_lookup_cost_us, 2),
                     round(shared.avg_lookup_cost_us, 2),
                     per_process.pages_unpinned,
                     shared.pages_unpinned])
    return rows


def bench_ablation_per_process_vs_shared(benchmark, bench_geometry):
    scale, _, seed = bench_geometry
    rows = run_once(benchmark, _compare, scale, seed)
    print()
    print(format_table(
        ["Application", "per-proc us/lookup", "shared us/lookup",
         "per-proc unpins", "shared unpins"],
        rows,
        title="Ablation: per-process UTLB vs Shared UTLB-Cache "
              "(equal SRAM budget, infinite host memory)"))
    for row in rows:
        # The shared cache never unpins under infinite memory; the
        # per-process table must evict (unpin) whenever the per-process
        # slice of SRAM is smaller than the footprint.
        assert row[4] == 0
