"""Ablation: the full translation design-space quadrant.

{user-managed, interrupt-managed} x {per-process NIC table, shared NIC
cache}: Hierarchical-UTLB (the paper), per-process UTLB (Section 3.1),
UNet-MM-style interrupt baseline, and the original VMMC interrupt-managed
per-process tables — all replaying the same traces under the same NIC
SRAM budget.
"""

from repro.sim.ablation import design_quadrant, render_design_quadrant

from benchmarks.conftest import run_once

SRAM_ENTRIES = 256


def bench_ablation_design_quadrant(benchmark, bench_geometry):
    scale, _, seed = bench_geometry
    data = run_once(benchmark, design_quadrant,
                    app_names=("barnes", "fft", "radix"),
                    sram_entries=SRAM_ENTRIES, scale=scale, seed=seed)
    print()
    print(render_design_quadrant(data, sram_entries=SRAM_ENTRIES))
    # The user-managed designs never interrupt; the others always do.
    for cells in data.values():
        assert cells["UTLB (user+shared)"].interrupts == 0
        assert cells["per-proc (user)"].interrupts == 0
        assert cells["intr+shared (UNet-MM)"].interrupts > 0
        assert cells["intr+per-proc (VMMC'97)"].interrupts > 0
