"""Table 2: NIC-side UTLB costs (hit / DMA / miss) vs entries fetched.

Regenerates the cost table and times the live miss path: a Shared
UTLB-Cache miss that reads a block from the host translation table.
"""

from repro.core.shared_cache import SharedUtlbCache
from repro.core.translation_table import HierarchicalTranslationTable
from repro.sim import experiments as exp

from benchmarks.conftest import run_once


def bench_table2_nic_costs(benchmark):
    data = run_once(benchmark, exp.table2)
    print()
    print(exp.render_table2(data))
    assert data["hit_cost"] == 0.8


def bench_table2_live_miss_path(benchmark):
    """One simulated miss: table block read + cache block fill."""
    table = HierarchicalTranslationTable(1)
    for vpage in range(4096):
        table.install(vpage, vpage + 1)
    cache = SharedUtlbCache(num_entries=1024)
    cache.register_process(1)
    state = {"vpage": 0}

    def miss():
        vpage = state["vpage"]
        block = table.read_block(vpage, 16)
        cache.fill_block(1, block)
        state["vpage"] = (vpage + 16) % 4096

    benchmark(miss)
