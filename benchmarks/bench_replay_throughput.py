"""Replay-engine throughput: fast (compiled streams) vs reference.

Times single-node trace replay through both `SimConfig.engine` settings
and asserts their `NodeResult.to_dict()` output is byte-identical — the
fast engine is an optimization, never a model change.  The speedup ratio
is reported, not gated: absolute timing varies across machines, equality
does not.

Also runnable standalone (the CI replay-throughput smoke step):

    python -m benchmarks.bench_replay_throughput

which replays both engines, asserts identical stats JSON, and prints
pages/sec per engine plus the speedup ratio.  The standalone run also
checks the zero-cost-tracing contract: the fast engine with a disabled
:class:`NullTracer` attached must produce byte-identical stats at
throughput within noise of the untraced fast path (gated at
``--nulltracer-threshold``, best-of-``--repeats``).

The standalone run then drives a Table-4-sized sweep grid (both apps x
cache sizes x utlb/intr) through :class:`SweepRunner` to exercise the
shared-stream fan-out path: with ``--workers N`` the parallel results
must be byte-identical to a fresh serial run, and the batch must compile
each distinct node trace exactly once (``compile_count == len(APPS)``),
however many grid cells replay it.  ``--metrics-json PATH`` dumps the
parallel run's full ``SweepMetrics.to_dict()`` so CI can archive the
throughput trajectory (elapsed_s, cpu_time_s, ipc_bytes, pages/sec).
"""

import argparse
import json
import time

from repro.obs.tracer import NullTracer
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.runner import SweepCell, SweepRunner
from repro.sim.simulator import simulate_node
from repro.traces.compile import compile_streams
from repro.traces.synth import make_app

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

#: Apps with contrasting locality (Table 3): radix streams, barnes reuses.
APPS = ("barnes", "radix")

#: The sweep-grid axes: Table 4's cache-size sweep under both
#: interesting mechanisms, over every benchmark app.
GRID_CACHE_ENTRIES = (1024, 4096, 8192, 16384)
GRID_MECHANISMS = ("utlb", "intr")


def _traces(scale=BENCH_SCALE, seed=BENCH_SEED):
    return {app: make_app(app).generate_node(0, seed=seed, scale=scale)
            for app in APPS}


def _total_pages(traces):
    """Lookups per full replay (both mechanisms replay every trace)."""
    return 2 * sum(compile_streams(r).total_pages for r in traces.values())


def _replay_all(traces, engine, tracer=None):
    """Replay every trace through both mechanisms; returns the stats as
    sorted-keys JSON, for byte-identity checks."""
    config = SimConfig(engine=engine, tracer=tracer)
    stats = {}
    for app, records in traces.items():
        stats[app] = {
            "utlb": simulate_node(records, config).to_dict(),
            "intr": simulate_node_intr(records, config).to_dict(),
        }
    return json.dumps(stats, sort_keys=True)


def bench_replay_fast_engine(benchmark):
    traces = _traces()
    reference = _replay_all(traces, "reference")
    result = benchmark(_replay_all, traces, "fast")
    benchmark.extra_info["pages"] = _total_pages(traces)
    assert result == reference, "fast engine diverged from reference"


def bench_replay_reference_engine(benchmark):
    traces = _traces()
    benchmark(_replay_all, traces, "reference")
    benchmark.extra_info["pages"] = _total_pages(traces)


def _grid_cells(traces):
    """The sweep grid, sharing one record list per app across all cells
    (what lets the batch compile each trace once)."""
    cells = []
    for app in APPS:
        node_traces = {0: traces[app]}
        for mechanism in GRID_MECHANISMS:
            for entries in GRID_CACHE_ENTRIES:
                cells.append(SweepCell(
                    "%s/%s/%d" % (app, mechanism, entries), node_traces,
                    SimConfig(cache_entries=entries), mechanism))
    return cells


def _run_grid(traces, workers):
    """Run the grid uncached; returns (sorted-keys results JSON, metrics)."""
    with SweepRunner(workers=workers, cache_dir=None) as runner:
        results = runner.run_cells(_grid_cells(traces))
        payload = json.dumps([r.to_dict() for r in results],
                             sort_keys=True)
        return payload, runner.metrics


def _sweep_grid(traces, workers, metrics_json=None):
    """The shared-stream fan-out check: parallel == serial, one compile
    per distinct trace, metrics optionally archived as JSON."""
    serial_payload, _ = _run_grid(traces, workers=1)
    payload, metrics = _run_grid(traces, workers=workers)
    if payload != serial_payload:
        raise SystemExit(
            "FAIL: sweep grid with workers=%d diverged from serial"
            % workers)
    if metrics.compile_count != len(APPS):
        raise SystemExit(
            "FAIL: batch compiled %d traces, expected %d (one per "
            "distinct node trace)" % (metrics.compile_count, len(APPS)))
    totals = metrics.to_dict()["totals"]
    print("sweep grid (%d cells, workers=%d) byte-identical to serial"
          % (totals["cells"], workers))
    print("  elapsed %.3fs  cpu %.3fs  ipc %d bytes  %.0f pages/s"
          % (totals["elapsed_s"], totals["cpu_time_s"],
             totals["ipc_bytes"], totals["pages_per_sec"]))
    if metrics_json:
        with open(metrics_json, "w") as handle:
            json.dump(metrics.to_dict(), handle, indent=2, sort_keys=True)
        print("  metrics written to %s" % metrics_json)


def _time_engine(traces, engine, repeats, tracer=None):
    """Best-of-``repeats`` wall time (deterministic work, noisy machines)."""
    best = None
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        stats = _replay_all(traces, engine, tracer)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return stats, best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Replay a trace through both engines, assert "
                    "identical stats, report the speedup.")
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per engine (best-of)")
    parser.add_argument("--nulltracer-threshold", type=float, default=0.75,
                        help="minimum fast+NullTracer throughput as a "
                             "fraction of the untraced fast path "
                             "(best-of-N absorbs scheduler noise)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep-grid phase; "
                             ">1 exercises the shared-stream fan-out and "
                             "diffs it against a serial run")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write the sweep grid's SweepMetrics dict "
                             "as JSON to PATH")
    args = parser.parse_args(argv)

    traces = _traces(scale=args.scale, seed=args.seed)
    pages = _total_pages(traces)
    fast_stats, fast_s = _time_engine(traces, "fast", args.repeats)
    ref_stats, ref_s = _time_engine(traces, "reference", args.repeats)

    if fast_stats != ref_stats:
        raise SystemExit("FAIL: fast engine stats differ from reference")
    print("engines byte-identical over %s (%d pages replayed)"
          % (", ".join(APPS), pages))
    print("reference: %.3fs  (%.0f pages/s)" % (ref_s, pages / ref_s))
    print("fast:      %.3fs  (%.0f pages/s)" % (fast_s, pages / fast_s))
    print("speedup:   %.2fx" % (ref_s / fast_s))

    # Zero-cost tracing: a disabled tracer must leave the fast path's
    # output byte-identical and its throughput within noise.
    null_stats, null_s = _time_engine(traces, "fast", args.repeats,
                                      tracer=NullTracer())
    if null_stats != fast_stats:
        raise SystemExit("FAIL: NullTracer changed the fast engine stats")
    ratio = fast_s / null_s
    print("fast+NullTracer: %.3fs  (%.0f pages/s, %.2fx of untraced)"
          % (null_s, pages / null_s, ratio))
    if ratio < args.nulltracer_threshold:
        raise SystemExit(
            "FAIL: NullTracer throughput %.2fx of the untraced fast path "
            "(threshold %.2f)" % (ratio, args.nulltracer_threshold))

    _sweep_grid(traces, args.workers, args.metrics_json)


if __name__ == "__main__":
    main()
