"""Replay-engine throughput: fast (compiled streams) vs reference.

Times single-node trace replay through both `SimConfig.engine` settings
and asserts their `NodeResult.to_dict()` output is byte-identical — the
fast engine is an optimization, never a model change.  The speedup ratio
is reported, not gated: absolute timing varies across machines, equality
does not.

Also runnable standalone (the CI replay-throughput smoke step):

    python -m benchmarks.bench_replay_throughput

which replays both engines, asserts identical stats JSON, and prints
pages/sec per engine plus the speedup ratio.  The standalone run also
checks the zero-cost-tracing contract: the fast engine with a disabled
:class:`NullTracer` attached must produce byte-identical stats at
throughput within noise of the untraced fast path (gated at
``--nulltracer-threshold``, best-of-``--repeats``).

The standalone run then gates the kernel replay tier: ``engine=
"kernel"`` must be byte-identical to the fast engine across the full
mechanism matrix (utlb vectorized, intr falling back), and the
utlb-only replay must be at least ``--min-kernel-speedup`` times
faster than the fast engine (best-of-repeats).  The sweep-grid phase
re-runs the grid under the kernel engine and checks the runner
kernel-plans every utlb cell.

It also gates the analytic axis solver: the utlb
cache-size axis of the grid (per app, every ``GRID_CACHE_ENTRIES``
point) is run once through the solver and once through per-cell replay
(``analytic=False``); the results must be byte-identical and the solver
must be at least ``--min-axis-speedup`` times faster (best-of-repeats
wall time).

Finally it drives a Table-4-sized sweep grid (both apps x cache sizes x
utlb/intr) through :class:`SweepRunner` to exercise the shared-stream
fan-out path: with ``--workers N`` the parallel results must be
byte-identical to a fresh serial run, and the batch must compile each
distinct node trace exactly once (``compile_count == len(APPS)``),
however many grid cells replay it.  ``--metrics-json PATH`` dumps the
parallel run's full ``SweepMetrics.to_dict()`` — including the
``analytic_axes`` / ``analytic_cells`` totals and, under
``analytic_axis_speedup``, the solver-vs-replay timing — so CI can
archive the throughput trajectory (``BENCH_*.json``).
"""

import argparse
import json
import time

from repro.obs.tracer import NullTracer
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.runner import SweepCell, SweepRunner
from repro.sim.simulator import simulate_node
from repro.traces.compile import compile_streams
from repro.traces.synth import make_app

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

#: Apps with contrasting locality (Table 3): radix streams, barnes reuses.
APPS = ("barnes", "radix")

#: The sweep-grid axes: Table 4's cache-size sweep under both
#: interesting mechanisms, over every benchmark app.
GRID_CACHE_ENTRIES = (1024, 4096, 8192, 16384)
GRID_MECHANISMS = ("utlb", "intr")

#: The cache-size axis the analytic solver is timed on: the grid's
#: sizes densified to the kind of sweep the one-pass solver makes cheap
#: (every cell beyond the first is nearly free — the pass is shared).
AXIS_CACHE_ENTRIES = (512, 1024, 2048, 4096, 8192, 16384)


def _traces(scale=BENCH_SCALE, seed=BENCH_SEED):
    return {
        app: make_app(app).generate_node(0, seed=seed, scale=scale) for app in APPS
    }


def _total_pages(traces):
    """Lookups per full replay (both mechanisms replay every trace)."""
    return 2 * sum(compile_streams(r).total_pages for r in traces.values())


def _replay_all(traces, engine, tracer=None):
    """Replay every trace through both mechanisms; returns the stats as
    sorted-keys JSON, for byte-identity checks."""
    config = SimConfig(engine=engine, tracer=tracer)
    stats = {}
    for app, records in traces.items():
        stats[app] = {
            "utlb": simulate_node(records, config).to_dict(),
            "intr": simulate_node_intr(records, config).to_dict(),
        }
    return json.dumps(stats, sort_keys=True)


def _replay_utlb(traces, engine):
    """Replay the utlb mechanism only — the kernel tier's home turf
    (intr rides the fast path under every engine)."""
    config = SimConfig(engine=engine)
    stats = {
        app: simulate_node(records, config).to_dict()
        for app, records in traces.items()
    }
    return json.dumps(stats, sort_keys=True)


def _time_utlb(traces, engine, repeats):
    best = None
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        stats = _replay_utlb(traces, engine)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return stats, best


def _kernel_speedup(traces, repeats, min_speedup):
    """The kernel-parity gate plus the kernel-vs-fast speedup point.

    Parity covers the full mechanism matrix (``_replay_all`` exercises
    the intr fallback too); the timed comparison replays utlb only, the
    slice the kernel tier actually vectorizes.
    """
    kernel_all, _ = _time_engine(traces, "kernel", repeats)
    fast_all, _ = _time_engine(traces, "fast", repeats)
    if kernel_all != fast_all:
        raise SystemExit("FAIL: kernel engine diverged from the fast engine")
    fast_stats, fast_s = _time_utlb(traces, "fast", repeats)
    kernel_stats, kernel_s = _time_utlb(traces, "kernel", repeats)
    if kernel_stats != fast_stats:
        raise SystemExit("FAIL: kernel utlb replay diverged from the fast engine")
    speedup = fast_s / kernel_s
    print("kernel engine byte-identical to fast (utlb + intr fallback)")
    print(
        "  utlb replay: fast %.3fs  kernel %.3fs  speedup %.1fx"
        % (fast_s, kernel_s, speedup)
    )
    if speedup < min_speedup:
        raise SystemExit(
            "FAIL: kernel speedup %.1fx below threshold %.1fx" % (speedup, min_speedup)
        )
    return {
        "fast_s": fast_s,
        "kernel_s": kernel_s,
        "speedup": speedup,
    }


def bench_replay_fast_engine(benchmark):
    traces = _traces()
    reference = _replay_all(traces, "reference")
    result = benchmark(_replay_all, traces, "fast")
    benchmark.extra_info["pages"] = _total_pages(traces)
    assert result == reference, "fast engine diverged from reference"


def bench_replay_reference_engine(benchmark):
    traces = _traces()
    benchmark(_replay_all, traces, "reference")
    benchmark.extra_info["pages"] = _total_pages(traces)


def _grid_cells(traces, engine="fast"):
    """The sweep grid, sharing one record list per app across all cells
    (what lets the batch compile each trace once)."""
    cells = []
    for app in APPS:
        node_traces = {0: traces[app]}
        for mechanism in GRID_MECHANISMS:
            for entries in GRID_CACHE_ENTRIES:
                cells.append(
                    SweepCell(
                        "%s/%s/%d" % (app, mechanism, entries),
                        node_traces,
                        SimConfig(engine=engine, cache_entries=entries),
                        mechanism,
                    )
                )
    return cells


def _run_grid(traces, workers, engine="fast", analytic=True):
    """Run the grid uncached; returns (sorted-keys results JSON, metrics)."""
    with SweepRunner(workers=workers, cache_dir=None, analytic=analytic) as runner:
        results = runner.run_cells(_grid_cells(traces, engine))
        payload = json.dumps([r.to_dict() for r in results], sort_keys=True)
        return payload, runner.metrics


def _axis_cells(traces):
    """The analytic-eligible slice of the grid: per app, the utlb
    cache-size axis over every ``AXIS_CACHE_ENTRIES`` point."""
    cells = []
    for app in APPS:
        node_traces = {0: traces[app]}
        for entries in AXIS_CACHE_ENTRIES:
            cells.append(
                SweepCell(
                    "%s/utlb/%d" % (app, entries),
                    node_traces,
                    SimConfig(cache_entries=entries),
                    "utlb",
                )
            )
    return cells


def _time_axis(traces, analytic, repeats):
    """Best-of-``repeats`` wall time for the cache-size axis cells."""
    best = None
    payload = None
    metrics = None
    for _ in range(repeats):
        with SweepRunner(workers=1, cache_dir=None, analytic=analytic) as runner:
            start = time.perf_counter()
            results = runner.run_cells(_axis_cells(traces))
            elapsed = time.perf_counter() - start
        candidate = json.dumps([r.to_dict() for r in results], sort_keys=True)
        if best is None or elapsed < best:
            best, payload, metrics = elapsed, candidate, runner.metrics
    return payload, best, metrics


def _axis_speedup(traces, repeats, min_speedup):
    """The analytic-parity gate plus the axis-solver speedup point.

    Parity is a hard gate (byte-identity is the solver's contract);
    the speedup threshold is configurable so CI can keep it modest on
    noisy shared runners while ``BENCH_*.json`` records the real ratio.
    """
    replay_payload, replay_s, _ = _time_axis(traces, False, repeats)
    solved_payload, solved_s, metrics = _time_axis(traces, True, repeats)
    if solved_payload != replay_payload:
        raise SystemExit("FAIL: analytic axis solver diverged from per-cell replay")
    cells = len(metrics.cells)
    if metrics.analytic_cells != cells:
        raise SystemExit(
            "FAIL: only %d of %d axis cells were solved analytically"
            % (metrics.analytic_cells, cells)
        )
    speedup = replay_s / solved_s
    print(
        "analytic axis (%d cells, %d axes) byte-identical to replay"
        % (cells, metrics.analytic_axes)
    )
    print(
        "  replay %.3fs  analytic %.3fs  speedup %.1fx" % (replay_s, solved_s, speedup)
    )
    if speedup < min_speedup:
        raise SystemExit(
            "FAIL: axis-solver speedup %.1fx below threshold %.1fx"
            % (speedup, min_speedup)
        )
    return {
        "cells": cells,
        "analytic_axes": metrics.analytic_axes,
        "analytic_cells": metrics.analytic_cells,
        "replay_s": replay_s,
        "analytic_s": solved_s,
        "speedup": speedup,
    }


def _kernel_grid(traces, serial_payload):
    """Run the grid under ``engine="kernel"``: the runner must tag the
    utlb cells as kernel-planned and the results must stay identical.

    The analytic solver is disabled for this phase — it outranks the
    kernel tier (a cache-size axis is answered in one shared pass), so
    leaving it on would lift exactly the kernel-eligible cells out of
    replay and the planning under test would never run."""
    payload, metrics = _run_grid(traces, workers=1, engine="kernel", analytic=False)
    if payload != serial_payload:
        raise SystemExit("FAIL: kernel-engine sweep grid diverged from the fast grid")
    expected = len(APPS) * len(GRID_CACHE_ENTRIES)
    if metrics.kernel_cells != expected:
        raise SystemExit(
            "FAIL: runner planned %d kernel cells, expected %d (every "
            "utlb cell)" % (metrics.kernel_cells, expected)
        )
    print(
        "kernel-engine grid byte-identical to fast (%d of %d cells "
        "kernel-planned)" % (metrics.kernel_cells, len(metrics.cells))
    )
    return metrics.kernel_cells


def _sweep_grid(
    traces,
    workers,
    metrics_json=None,
    axis_speedup=None,
    kernel_speedup=None,
    bench_scale=BENCH_SCALE,
    bench_seed=BENCH_SEED,
):
    """The shared-stream fan-out check: parallel == serial, one compile
    per distinct trace, metrics optionally archived as JSON."""
    serial_payload, _ = _run_grid(traces, workers=1)
    payload, metrics = _run_grid(traces, workers=workers)
    if payload != serial_payload:
        raise SystemExit(
            "FAIL: sweep grid with workers=%d diverged from serial" % workers
        )
    if metrics.compile_count != len(APPS):
        raise SystemExit(
            "FAIL: batch compiled %d traces, expected %d (one per "
            "distinct node trace)" % (metrics.compile_count, len(APPS))
        )
    kernel_cells = _kernel_grid(traces, serial_payload)
    totals = metrics.to_dict()["totals"]
    print(
        "sweep grid (%d cells, workers=%d) byte-identical to serial"
        % (totals["cells"], workers)
    )
    print(
        "  elapsed %.3fs  cpu %.3fs  ipc %d bytes  %.0f pages/s  "
        "%d analytic cells"
        % (
            totals["elapsed_s"],
            totals["cpu_time_s"],
            totals["ipc_bytes"],
            totals["pages_per_sec"],
            totals["analytic_cells"],
        )
    )
    if metrics_json:
        archive = metrics.to_dict()
        if axis_speedup is not None:
            archive["analytic_axis_speedup"] = axis_speedup
        if kernel_speedup is not None:
            archive["kernel_speedup"] = kernel_speedup
        archive["bench"] = {
            "kind": "replay-grid",
            "apps": list(APPS),
            "engines": ["fast", "kernel"],
            "grid_cache_entries": list(GRID_CACHE_ENTRIES),
            "axis_cache_entries": list(AXIS_CACHE_ENTRIES),
            "kernel_grid_cells": kernel_cells,
            "scale": bench_scale,
            "seed": bench_seed,
            "workers": workers,
        }
        with open(metrics_json, "w") as handle:
            json.dump(archive, handle, indent=2, sort_keys=True)
        print("  metrics written to %s" % metrics_json)


def _time_engine(traces, engine, repeats, tracer=None):
    """Best-of-``repeats`` wall time (deterministic work, noisy machines)."""
    best = None
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        stats = _replay_all(traces, engine, tracer)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return stats, best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Replay a trace through both engines, assert "
        "identical stats, report the speedup."
    )
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per engine (best-of)"
    )
    parser.add_argument(
        "--nulltracer-threshold",
        type=float,
        default=0.75,
        help="minimum fast+NullTracer throughput as a "
        "fraction of the untraced fast path "
        "(best-of-N absorbs scheduler noise)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep-grid phase; "
        ">1 exercises the shared-stream fan-out and "
        "diffs it against a serial run",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="write the sweep grid's SweepMetrics dict as JSON to PATH",
    )
    parser.add_argument(
        "--min-axis-speedup",
        type=float,
        default=2.0,
        help="minimum analytic-axis-solver speedup over "
        "per-cell replay (parity is always gated; "
        "the recorded ratio is the real one)",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=1.5,
        help="minimum kernel-engine speedup over the "
        "fast engine on the utlb replay (parity is "
        "always gated; the recorded ratio is the "
        "real one)",
    )
    args = parser.parse_args(argv)

    traces = _traces(scale=args.scale, seed=args.seed)
    pages = _total_pages(traces)
    fast_stats, fast_s = _time_engine(traces, "fast", args.repeats)
    ref_stats, ref_s = _time_engine(traces, "reference", args.repeats)

    if fast_stats != ref_stats:
        raise SystemExit("FAIL: fast engine stats differ from reference")
    print(
        "engines byte-identical over %s (%d pages replayed)" % (", ".join(APPS), pages)
    )
    print("reference: %.3fs  (%.0f pages/s)" % (ref_s, pages / ref_s))
    print("fast:      %.3fs  (%.0f pages/s)" % (fast_s, pages / fast_s))
    print("speedup:   %.2fx" % (ref_s / fast_s))

    # Zero-cost tracing: a disabled tracer must leave the fast path's
    # output byte-identical and its throughput within noise.
    null_stats, null_s = _time_engine(traces, "fast", args.repeats, tracer=NullTracer())
    if null_stats != fast_stats:
        raise SystemExit("FAIL: NullTracer changed the fast engine stats")
    ratio = fast_s / null_s
    print(
        "fast+NullTracer: %.3fs  (%.0f pages/s, %.2fx of untraced)"
        % (null_s, pages / null_s, ratio)
    )
    if ratio < args.nulltracer_threshold:
        raise SystemExit(
            "FAIL: NullTracer throughput %.2fx of the untraced fast path "
            "(threshold %.2f)" % (ratio, args.nulltracer_threshold)
        )

    kernel_speedup = _kernel_speedup(traces, args.repeats, args.min_kernel_speedup)
    axis_speedup = _axis_speedup(traces, args.repeats, args.min_axis_speedup)
    _sweep_grid(
        traces,
        args.workers,
        args.metrics_json,
        axis_speedup,
        kernel_speedup,
        bench_scale=args.scale,
        bench_seed=args.seed,
    )


if __name__ == "__main__":
    main()
