"""Ablation: multiprogramming pressure on the Shared UTLB-Cache.

The paper's open limitation (Section 7): its traces could not vary the
degree of multiprogramming.  Here the same aggregate workload is split
across 2..12 processes sharing one NIC cache, with and without index
offsetting, showing how conflict misses scale with process count.
"""

import random

from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb
from repro.sim.report import format_table

from benchmarks.conftest import run_once

PAGES_PER_PROCESS = 96
ACCESSES_PER_PROCESS = 2000
CACHE_ENTRIES = 512


def _run(num_processes, offsetting, seed=1):
    cache = SharedUtlbCache(CACHE_ENTRIES, offsetting=offsetting,
                            max_processes=16)
    driver = CountingFrameDriver()
    utlbs = [HierarchicalUtlb(pid, cache, driver=driver)
             for pid in range(num_processes)]
    rng = random.Random(seed)
    # Every process cycles the same page numbers (SPMD layout): the
    # worst case for an unhashed shared cache.
    for _ in range(ACCESSES_PER_PROCESS):
        for utlb in utlbs:
            utlb.access_page(rng.randrange(PAGES_PER_PROCESS))
    return cache.stats.miss_rate


def _grid():
    rows = []
    for processes in (2, 4, 8, 12):
        rows.append([processes,
                     round(_run(processes, offsetting=True), 3),
                     round(_run(processes, offsetting=False), 3)])
    return rows


def bench_ablation_multiprogramming(benchmark):
    rows = run_once(benchmark, _grid)
    print()
    print(format_table(
        ["processes", "offset miss rate", "nohash miss rate"], rows,
        title="Ablation: shared-cache miss rate vs multiprogramming "
              "degree (%d entries)" % CACHE_ENTRIES,
        precision=3))
    for processes, offset_rate, nohash_rate in rows:
        if processes * PAGES_PER_PROCESS <= CACHE_ENTRIES:
            # While the aggregate working set fits, offsetting keeps the
            # processes from colliding; nohash thrashes regardless.
            assert offset_rate < nohash_rate
