"""Table 6: average translation lookup cost, UTLB vs interrupt-based.

Applies the Section 6.2 cost equations to measured rates for Barnes and
FFT and checks the paper's two findings: UTLB wins at small caches, and
Barnes' crossover (Intr cheaper at 16K entries) appears.
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once

SIZES = (1024, 4096, 16384)


def bench_table6_lookup_cost(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.table6, scale=scale, nodes=nodes,
                    seed=seed, sizes=SIZES, apps=("barnes", "fft"),
                    runner=sweep_runner)
    print()
    print(exp.render_table6(data))
    # UTLB wins for FFT while the cache is smaller than the footprint
    # (at reduced trace scale the largest cache can swallow the whole
    # app, which shifts the crossover — the paper's full-scale FFT never
    # fits).
    assert data["fft"][SIZES[0]]["utlb_us"] < data["fft"][SIZES[0]]["intr_us"]
    # The equations agree with the simulator's measured time.
    for app in data:
        for size in SIZES:
            cell = data[app][size]
            assert abs(cell["utlb_us"] - cell["utlb_measured_us"]) < 1e-6
