"""Table 7: sequential pre-pinning, 1 page vs 16 pages per check miss.

Checks the paper's finding: pre-pinning amortizes pin cost for apps with
spatial locality, but FFT's strided transpose makes it backfire — the
unpin cost explodes.
"""

from repro.sim import experiments as exp

from benchmarks.conftest import run_once


def bench_table7_prepinning(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.table7, scale=scale, nodes=nodes,
                    seed=seed, cache_entries=4096, runner=sweep_runner)
    print()
    print(exp.render_table7(data))
    # Pre-pinning backfires (unpin cost grows) for at least one app with
    # a prepin-hostile pattern — FFT at the default reduced scale, where
    # its column stride matches the paper's geometry; Raytrace at full
    # scale (see EXPERIMENTS.md).
    backfired = [app for app in data
                 if data[app][16]["unpin_us"] > 1.5 * data[app][1]["unpin_us"]
                 and data[app][16]["unpin_us"] > 1.0]
    assert backfired, "no application showed the pre-pinning pathology"
    helped = [app for app in data
              if data[app][16]["pin_us"] < data[app][1]["pin_us"]]
    assert len(helped) >= 3
