"""The CI mechanism matrix: every registered mechanism, every gate.

Enumerates the mechanism registry (``repro.sim.mechanisms``) — not a
hand-maintained list, so registering a new mechanism without keeping it
green here fails loudly — and drives a small Table-4-sized grid per
mechanism through the full set of parity gates:

* **serial == parallel**: the grid over ``--workers`` processes must be
  byte-identical to a fresh serial run (the shared-stream fan-out and
  pickled-records paths both land here, depending on eligibility);
* **cached == fresh**: a warm re-run against the same result cache must
  hit for every cell and reproduce the bytes exactly;
* **fast == reference**: the two replay engines must agree per cell
  (mechanisms whose geometry rules out an engine combination — e.g. the
  interrupt baseline's associative fast path — are exercised in the
  configurations their validators admit);
* **invariants**: for traceable mechanisms, one reference replay streams
  through :class:`~repro.obs.invariants.InvariantChecker` and the
  finished counters are verified against the event tallies.

Usage (the CI ``mechanism-matrix`` job)::

    python -m benchmarks.bench_mechanism_matrix --workers 2
"""

import argparse
import json
import shutil
import sys
import tempfile

from repro.obs.invariants import InvariantChecker
from repro.sim.config import SimConfig
from repro.sim.mechanisms import mechanism_names, resolve
from repro.sim.runner import SweepCell, SweepRunner
from repro.traces.synth import make_app

from benchmarks.conftest import BENCH_SEED

#: Contrasting-locality apps (Table 3): radix streams, barnes reuses.
APPS = ("barnes", "radix")

#: A small Table-4-shaped size axis (full-size grids belong to
#: bench_replay_throughput; this matrix is about mechanism coverage).
GRID_CACHE_ENTRIES = (1024, 8192)

#: The matrix runs small: parity is scale-independent, CI time is not.
MATRIX_SCALE = 0.05


def _traces(scale, seed):
    return {
        app: {0: make_app(app).generate_node(0, seed=seed, scale=scale)}
        for app in APPS
    }


def _grid_cells(traces, mechanism):
    return [
        SweepCell(
            "%s/%s/%d" % (app, mechanism, entries),
            traces[app],
            SimConfig(cache_entries=entries, mechanism=mechanism),
        )
        for app in APPS
        for entries in GRID_CACHE_ENTRIES
    ]


def _payload(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


def _run(traces, mechanism, workers, cache_dir=None):
    with SweepRunner(workers=workers, cache_dir=cache_dir) as runner:
        results = runner.run_cells(_grid_cells(traces, mechanism))
        return _payload(results), runner.metrics


def _check_parallel_and_cache(traces, mechanism, workers):
    serial, _ = _run(traces, mechanism, workers=1)
    parallel, _ = _run(traces, mechanism, workers=workers)
    if parallel != serial:
        raise SystemExit(
            "FAIL: %s grid with workers=%d diverged from serial"
            % (mechanism, workers)
        )
    cache_dir = tempfile.mkdtemp(prefix="mech-matrix-")
    try:
        cold, _ = _run(traces, mechanism, workers=1, cache_dir=cache_dir)
        warm, metrics = _run(traces, mechanism, workers=1, cache_dir=cache_dir)
        totals = metrics.to_dict()["totals"]
        if warm != cold or warm != serial:
            raise SystemExit(
                "FAIL: %s cached re-run is not byte-identical" % mechanism
            )
        if totals["cache_misses"] or not totals["cache_hits"]:
            raise SystemExit(
                "FAIL: %s warm run missed the result cache (%d hits, "
                "%d misses)"
                % (mechanism, totals["cache_hits"], totals["cache_misses"])
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return serial


def _check_differential(traces, mechanism):
    """fast == reference per cell, in the configs the validator admits."""
    simulate = resolve(mechanism).simulate
    for app in APPS:
        records = traces[app][0]
        for entries in GRID_CACHE_ENTRIES:
            fast_config = SimConfig(
                cache_entries=entries,
                mechanism=mechanism,
                engine="fast",
            )
            ref_config = SimConfig(
                cache_entries=entries,
                mechanism=mechanism,
                engine="reference",
            )
            fast = simulate(records, fast_config)
            ref = simulate(records, ref_config)
            fast_json = json.dumps(fast.to_dict(), sort_keys=True)
            ref_json = json.dumps(ref.to_dict(), sort_keys=True)
            if fast_json != ref_json:
                raise SystemExit(
                    "FAIL: %s fast engine diverged from reference "
                    "(%s, %d entries)" % (mechanism, app, entries)
                )


def _check_invariants(traces, mechanism):
    """One invariant-checked reference replay per traceable mechanism."""
    mech = resolve(mechanism)
    if not mech.traceable:
        return False
    for app in APPS:
        checker = InvariantChecker(mechanism=mechanism)
        config = SimConfig(
            cache_entries=GRID_CACHE_ENTRIES[0],
            mechanism=mechanism,
            engine="reference",
            tracer=checker,
        )
        result = mech.simulate(traces[app][0], config, check_invariants=True)
        checker.close()
        checker.verify_node(result)
        if not checker.events_seen:
            raise SystemExit(
                "FAIL: %s traced replay emitted no events" % mechanism
            )
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run the per-mechanism parity matrix over every "
        "registered translation mechanism.",
    )
    parser.add_argument("--scale", type=float, default=MATRIX_SCALE)
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the parallel leg",
    )
    args = parser.parse_args(argv)

    traces = _traces(args.scale, args.seed)
    names = mechanism_names()
    print("mechanism matrix: %s" % ", ".join(names))
    for mechanism in names:
        _check_parallel_and_cache(traces, mechanism, args.workers)
        _check_differential(traces, mechanism)
        checked = _check_invariants(traces, mechanism)
        print(
            "  [ok] %-13s serial==parallel==cached, fast==reference%s"
            % (mechanism, ", invariants" if checked else " (not traceable)")
        )
    print(
        "mechanism matrix OK: %d mechanisms x %d cells"
        % (len(names), len(APPS) * len(GRID_CACHE_ENTRIES))
    )


if __name__ == "__main__":
    sys.exit(main())
