"""Shared settings for the benchmark harness.

Every benchmark regenerates one paper table or figure and prints it, so
``pytest benchmarks/ --benchmark-only -s`` both times the experiment
kernels and emits the reproduced results.

Scale: benchmarks default to a reduced trace scale so the whole suite
runs in minutes.  Set ``REPRO_BENCH_SCALE=1.0`` (and ``REPRO_BENCH_NODES=4``)
to run the paper-sized experiments; EXPERIMENTS.md records a full-scale
run via ``repro.sim.experiments.run_all``.

Execution: experiment benches share one :class:`SweepRunner`;
``REPRO_BENCH_WORKERS=N`` replays cells over N worker processes and
``REPRO_BENCH_CACHE_DIR=...`` enables the on-disk result cache.  Each
bench's structured run metrics (cells, cache hits, replay wall time)
land in its ``extra_info``, so the benchmark JSON carries the runner's
machine-readable report instead of ad-hoc numbers.
"""

import os

import pytest

from repro.sim.runner import SweepRunner

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None


@pytest.fixture(scope="session")
def bench_geometry():
    """(scale, nodes, seed) used by every experiment benchmark."""
    return BENCH_SCALE, BENCH_NODES, BENCH_SEED


@pytest.fixture(scope="session")
def sweep_runner():
    """The sweep engine shared by all experiment benches."""
    runner = SweepRunner(workers=BENCH_WORKERS, cache_dir=BENCH_CACHE_DIR)
    yield runner
    runner.close()


def run_once(benchmark, func, *args, runner=None, **kwargs):
    """Time ``func`` with a single round (experiments are heavy and
    deterministic; statistical repetition adds nothing).

    With ``runner``, the call executes on that sweep engine and the
    cells it ran land in the benchmark's ``extra_info`` as the structured
    metrics delta (cells, cache hits/misses, replay wall time).
    """
    if runner is not None:
        kwargs["runner"] = runner
        before = len(runner.metrics.cells)
    result = benchmark.pedantic(func, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    if runner is not None:
        cells = runner.metrics.cells[before:]
        replayed = [c for c in cells if not c.cache_hit]
        replay_s = sum(c.wall_time_s for c in replayed)
        benchmark.extra_info.update({
            "workers": runner.metrics.workers,
            "cells": len(cells),
            "cache_hits": len(cells) - len(replayed),
            "cache_misses": len(replayed),
            "replay_wall_time_s": sum(c.wall_time_s for c in cells),
            "lookups": sum(c.lookups for c in cells),
            "pages_per_sec": (sum(c.lookups for c in replayed) / replay_s
                              if replay_s > 0.0 else 0.0),
        })
    return result
