"""Shared settings for the benchmark harness.

Every benchmark regenerates one paper table or figure and prints it, so
``pytest benchmarks/ --benchmark-only -s`` both times the experiment
kernels and emits the reproduced results.

Scale: benchmarks default to a reduced trace scale so the whole suite
runs in minutes.  Set ``REPRO_BENCH_SCALE=1.0`` (and ``REPRO_BENCH_NODES=4``)
to run the paper-sized experiments; EXPERIMENTS.md records a full-scale
run via ``repro.sim.experiments.run_all``.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def bench_geometry():
    """(scale, nodes, seed) used by every experiment benchmark."""
    return BENCH_SCALE, BENCH_NODES, BENCH_SEED


def run_once(benchmark, func, *args, **kwargs):
    """Time ``func`` with a single round (experiments are heavy and
    deterministic; statistical repetition adds nothing)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
