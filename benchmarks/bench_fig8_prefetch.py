"""Figure 8: prefetching translation entries (Radix).

Checks the paper's finding: overall miss rate and average lookup cost
both fall as the prefetch degree grows, because the DMA cost of fetching
extra entries grows far slower than the miss-rate drop.
"""

from repro import params
from repro.sim import experiments as exp

from benchmarks.conftest import run_once

SIZES = (1024, 4096, 16384)


def bench_fig8_prefetch(benchmark, bench_geometry, sweep_runner):
    scale, nodes, seed = bench_geometry
    data = run_once(benchmark, exp.figure8, scale=scale, nodes=nodes,
                    seed=seed, sizes=SIZES, degrees=params.PREFETCH_SWEEP,
                    runner=sweep_runner)
    print()
    print(exp.render_figure8(data))
    for size in SIZES:
        curve = data[size]
        assert curve[16]["miss_rate"] < curve[1]["miss_rate"]
        assert curve[16]["lookup_cost_us"] < curve[1]["lookup_cost_us"]
