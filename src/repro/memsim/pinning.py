"""The OS page pinning/unpinning facility.

This is the only kernel service the UTLB design requires ("Only a device
driver that accesses the OS page-pinning and unpinning facility is
required", Section 1).  The facility pins batches of virtual pages on
behalf of a process, keeps full accounting of calls and pages, and charges
simulated time through an optional cost model — page pinning is expensive
(27 µs for one page on the paper's NT hosts) and amortizes when several
pages are pinned per call (Table 1).
"""

from repro.errors import PinningError


class PinStats:
    """Counters for pin/unpin activity (what Tables 4, 5, 7 report)."""

    __slots__ = ("pin_calls", "pages_pinned", "unpin_calls", "pages_unpinned",
                 "time_us")

    def __init__(self):
        self.pin_calls = 0
        self.pages_pinned = 0
        self.unpin_calls = 0
        self.pages_unpinned = 0
        self.time_us = 0.0

    def snapshot(self):
        return {
            "pin_calls": self.pin_calls,
            "pages_pinned": self.pages_pinned,
            "unpin_calls": self.unpin_calls,
            "pages_unpinned": self.pages_unpinned,
            "time_us": self.time_us,
        }

    def __repr__(self):
        return ("PinStats(pin_calls=%d, pages_pinned=%d, unpin_calls=%d, "
                "pages_unpinned=%d, time_us=%.1f)" % (
                    self.pin_calls, self.pages_pinned,
                    self.unpin_calls, self.pages_unpinned, self.time_us))


class PinFacility:
    """Kernel-side pin/unpin service over a set of address spaces.

    Parameters
    ----------
    cost_model:
        Optional :class:`repro.core.costs.CostModel`; when present, each
        call accrues simulated microseconds in ``stats.time_us`` using the
        paper's measured batch costs.
    in_kernel:
        When True the facility is being driven from an interrupt handler
        (the interrupt-based baseline); pin/unpin costs are then charged at
        kernel rates, which exclude the user/kernel protection-domain
        crossing (Section 6.2: costs "adjusted to factor out context
        switches").
    """

    def __init__(self, cost_model=None, in_kernel=False):
        self.cost_model = cost_model
        self.in_kernel = in_kernel
        self.stats = PinStats()

    def pin_pages(self, space, vpages):
        """Pin ``vpages`` (iterable) in ``space`` in one call.

        Returns ``{vpage: frame}`` for the newly pinned pages.  The call is
        atomic: if any page is already pinned the whole call fails before
        touching memory.
        """
        vpages = list(vpages)
        already = [v for v in vpages if space.is_pinned(v)]
        if already:
            raise PinningError(
                "pid %r: pages already pinned: %s"
                % (space.pid, [hex(v) for v in already]))
        frames = {}
        for vpage in vpages:
            frames[vpage] = space.pin(vpage)
        self.stats.pin_calls += 1
        self.stats.pages_pinned += len(vpages)
        if self.cost_model is not None and vpages:
            if self.in_kernel:
                self.stats.time_us += self.cost_model.kernel_pin_cost(len(vpages))
            else:
                self.stats.time_us += self.cost_model.pin_cost(len(vpages))
        return frames

    def unpin_pages(self, space, vpages):
        """Unpin ``vpages`` in ``space`` in one call."""
        vpages = list(vpages)
        missing = [v for v in vpages if not space.is_pinned(v)]
        if missing:
            raise PinningError(
                "pid %r: pages not pinned: %s"
                % (space.pid, [hex(v) for v in missing]))
        for vpage in vpages:
            space.unpin(vpage)
        self.stats.unpin_calls += 1
        self.stats.pages_unpinned += len(vpages)
        if self.cost_model is not None and vpages:
            if self.in_kernel:
                self.stats.time_us += self.cost_model.kernel_unpin_cost(len(vpages))
            else:
                self.stats.time_us += self.cost_model.unpin_cost(len(vpages))
        return len(vpages)
