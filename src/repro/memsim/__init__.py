"""Host memory and operating-system substrate: physical frames, per-process
address spaces with demand paging and swapping, the page pin/unpin facility,
and a minimal OS (processes, syscalls, ioctl dispatch, interrupts)."""

from repro.memsim.address_space import AddressSpace
from repro.memsim.os_kernel import Process, SimulatedOS
from repro.memsim.physical import Frame, PhysicalMemory
from repro.memsim.pinning import PinFacility, PinStats

__all__ = [
    "AddressSpace",
    "Frame",
    "PhysicalMemory",
    "PinFacility",
    "PinStats",
    "Process",
    "SimulatedOS",
]
