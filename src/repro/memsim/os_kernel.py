"""A minimal simulated operating system.

``SimulatedOS`` owns physical memory, creates processes (each with its own
:class:`AddressSpace`), exposes the pin/unpin facility through a
syscall-style interface, and dispatches device interrupts to registered
handlers.  The UTLB device driver (``repro.vmmc.driver``) plugs into this
object exactly as the paper's driver plugs into Windows NT: no OS
modifications, just an ioctl entry point and the pinning facility.
"""

from repro.errors import ConfigError, ProtectionError
from repro.memsim.address_space import AddressSpace
from repro.memsim.physical import PhysicalMemory
from repro.memsim.pinning import PinFacility


class Process:
    """A user process: a pid, an address space, and accounting."""

    def __init__(self, pid, space):
        self.pid = pid
        self.space = space
        self.syscalls = 0

    def __repr__(self):
        return "Process(pid=%r, pinned=%d)" % (self.pid, self.space.pinned_count)


class SimulatedOS:
    """Host operating system model: processes, syscalls, interrupts."""

    def __init__(self, physical=None, cost_model=None):
        self.physical = physical if physical is not None else PhysicalMemory()
        self.cost_model = cost_model
        self.pin_facility = PinFacility(cost_model=cost_model)
        self.kernel_pin_facility = PinFacility(cost_model=cost_model,
                                               in_kernel=True)
        self._processes = {}
        self._interrupt_handlers = {}
        self._ioctl_handlers = {}
        self._next_pid = 1
        self.interrupts_delivered = 0
        self.syscalls = 0

    # -- processes ----------------------------------------------------------

    def create_process(self, pid=None):
        """Create a process; auto-assigns a pid when none is given."""
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        if pid in self._processes:
            raise ConfigError("pid %r already exists" % (pid,))
        self._next_pid = max(self._next_pid, (pid + 1) if isinstance(pid, int)
                             else self._next_pid)
        process = Process(pid, AddressSpace(pid, self.physical))
        self._processes[pid] = process
        return process

    def process(self, pid):
        try:
            return self._processes[pid]
        except KeyError:
            raise ProtectionError("no such process: %r" % (pid,))

    def processes(self):
        return list(self._processes.values())

    def destroy_process(self, pid):
        process = self.process(pid)
        process.space.destroy()
        del self._processes[pid]

    # -- syscalls -----------------------------------------------------------

    def sys_pin(self, pid, vpages):
        """Pin pages on behalf of a user process (a driver ioctl path)."""
        process = self.process(pid)
        process.syscalls += 1
        self.syscalls += 1
        return self.pin_facility.pin_pages(process.space, vpages)

    def sys_unpin(self, pid, vpages):
        """Unpin pages on behalf of a user process."""
        process = self.process(pid)
        process.syscalls += 1
        self.syscalls += 1
        return self.pin_facility.unpin_pages(process.space, vpages)

    # -- ioctl dispatch (device drivers register here) ------------------------

    def register_ioctl(self, device, handler):
        """Register ``handler(pid, request, **kwargs)`` for ``device``."""
        if device in self._ioctl_handlers:
            raise ConfigError("device %r already registered" % (device,))
        self._ioctl_handlers[device] = handler

    def ioctl(self, pid, device, request, **kwargs):
        """User-process entry into a device driver (counted as a syscall)."""
        process = self.process(pid)
        try:
            handler = self._ioctl_handlers[device]
        except KeyError:
            raise ConfigError("no driver registered for device %r" % (device,))
        process.syscalls += 1
        self.syscalls += 1
        return handler(pid, request, **kwargs)

    # -- interrupts ---------------------------------------------------------

    def register_interrupt(self, vector, handler):
        """Register ``handler(**kwargs)`` for interrupt ``vector``."""
        self._interrupt_handlers[vector] = handler

    def raise_interrupt(self, vector, **kwargs):
        """Deliver a device interrupt to the host CPU."""
        try:
            handler = self._interrupt_handlers[vector]
        except KeyError:
            raise ConfigError("no handler for interrupt vector %r" % (vector,))
        self.interrupts_delivered += 1
        return handler(**kwargs)
