"""Simulated physical memory: a pool of page frames with byte contents.

The network interface in the paper addresses host memory physically, so the
simulation needs a real notion of page frames.  ``PhysicalMemory`` hands out
frame numbers, tracks ownership, and (lazily) stores per-frame byte contents
so the functional VMMC layer can move actual data end to end.

Frame contents are allocated on first write; an untouched frame reads as
zeros.  This keeps simulating multi-gigabyte memories cheap.
"""

from repro import params
from repro.errors import AddressError, CapacityError


class Frame:
    """Bookkeeping for one physical page frame."""

    __slots__ = ("number", "owner_pid", "pin_count")

    def __init__(self, number, owner_pid):
        self.number = number
        self.owner_pid = owner_pid
        self.pin_count = 0

    def __repr__(self):
        return "Frame(%d, owner=%r, pins=%d)" % (
            self.number, self.owner_pid, self.pin_count)


class PhysicalMemory:
    """A fixed pool of 4 KB page frames.

    Parameters
    ----------
    total_bytes:
        Size of physical memory.  Defaults to 256 MB, the DRAM of the
        paper's PentiumPro SMP nodes.
    """

    def __init__(self, total_bytes=256 * 1024 * 1024):
        if total_bytes < params.PAGE_SIZE:
            raise ValueError("physical memory smaller than one page")
        self.num_frames = total_bytes // params.PAGE_SIZE
        self._free = list(range(self.num_frames - 1, -1, -1))
        self._frames = {}           # frame number -> Frame
        self._contents = {}         # frame number -> bytearray (lazy)
        self.allocations = 0
        self.frees = 0

    # -- allocation ---------------------------------------------------------

    @property
    def free_frames(self):
        """Number of frames currently unallocated."""
        return len(self._free)

    @property
    def allocated_frames(self):
        """Number of frames currently allocated."""
        return len(self._frames)

    def allocate(self, owner_pid=None):
        """Allocate one frame; returns its frame number.

        Raises :class:`CapacityError` when physical memory is exhausted.
        """
        if not self._free:
            raise CapacityError("out of physical memory (%d frames in use)"
                                % self.num_frames)
        number = self._free.pop()
        self._frames[number] = Frame(number, owner_pid)
        self.allocations += 1
        return number

    def free(self, number):
        """Return a frame to the free pool.  The frame must be unpinned."""
        frame = self._lookup(number)
        if frame.pin_count:
            raise AddressError(
                "cannot free pinned frame %d (pin count %d)"
                % (number, frame.pin_count))
        del self._frames[number]
        self._contents.pop(number, None)
        self._free.append(number)
        self.frees += 1

    def frame(self, number):
        """Return the :class:`Frame` record for an allocated frame."""
        return self._lookup(number)

    def is_allocated(self, number):
        return number in self._frames

    def _lookup(self, number):
        try:
            return self._frames[number]
        except KeyError:
            raise AddressError("frame %d is not allocated" % (number,))

    # -- pinning ------------------------------------------------------------

    def pin_frame(self, number):
        """Increment a frame's pin count (it may be pinned by several users)."""
        self._lookup(number).pin_count += 1

    def unpin_frame(self, number):
        frame = self._lookup(number)
        if frame.pin_count == 0:
            raise AddressError("frame %d is not pinned" % (number,))
        frame.pin_count -= 1

    def pinned_frames(self):
        """Frame numbers with a nonzero pin count (sorted, for determinism)."""
        return sorted(n for n, f in self._frames.items() if f.pin_count)

    # -- contents -----------------------------------------------------------

    def read(self, number, offset, nbytes):
        """Read ``nbytes`` from a frame; untouched frames read as zeros."""
        self._check_span(number, offset, nbytes)
        data = self._contents.get(number)
        if data is None:
            return bytes(nbytes)
        return bytes(data[offset:offset + nbytes])

    def write(self, number, offset, data):
        """Write ``data`` (bytes-like) into a frame at ``offset``."""
        self._check_span(number, offset, len(data))
        contents = self._contents.get(number)
        if contents is None:
            contents = bytearray(params.PAGE_SIZE)
            self._contents[number] = contents
        contents[offset:offset + len(data)] = data

    def _check_span(self, number, offset, nbytes):
        self._lookup(number)
        if not 0 <= offset <= params.PAGE_SIZE:
            raise AddressError("offset %d outside frame" % (offset,))
        if nbytes < 0 or offset + nbytes > params.PAGE_SIZE:
            raise AddressError(
                "access [%d, %d) crosses the frame boundary"
                % (offset, offset + nbytes))
