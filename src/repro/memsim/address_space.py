"""Per-process virtual address spaces with demand paging.

An :class:`AddressSpace` is the OS view of one process's memory: a mapping
from virtual page numbers to physical frames, populated on demand.  It also
supports swapping a page out (the frame is reclaimed and the page contents
are parked in a swap store), which is what makes pinning meaningful: the
network interface can only DMA to/from pages the OS promises not to evict.
"""

from repro import params
from repro.core import addresses
from repro.errors import AddressError, PinningError


class AddressSpace:
    """Virtual address space of one process, backed by a PhysicalMemory."""

    def __init__(self, pid, physical):
        self.pid = pid
        self.physical = physical
        self._page_table = {}       # vpage -> frame number
        self._swap = {}             # vpage -> bytes (page contents on disk)
        self._pinned = set()        # vpages pinned via this address space
        self.page_faults = 0
        self.swap_ins = 0
        self.swap_outs = 0

    # -- mapping ------------------------------------------------------------

    def is_resident(self, vpage):
        """True when the virtual page currently has a physical frame."""
        return vpage in self._page_table

    def is_pinned(self, vpage):
        return vpage in self._pinned

    def frame_of(self, vpage):
        """Physical frame backing ``vpage``; raises if not resident."""
        try:
            return self._page_table[vpage]
        except KeyError:
            raise AddressError(
                "pid %r: virtual page %#x is not resident" % (self.pid, vpage))

    def translate(self, vaddr):
        """Translate a virtual address to (frame, offset)."""
        vpage = addresses.vpage_of(vaddr)
        return self.frame_of(vpage), addresses.page_offset(vaddr)

    def touch(self, vpage):
        """Ensure ``vpage`` is resident (demand paging); returns its frame."""
        frame = self._page_table.get(vpage)
        if frame is not None:
            return frame
        self.page_faults += 1
        frame = self.physical.allocate(owner_pid=self.pid)
        contents = self._swap.pop(vpage, None)
        if contents is not None:
            self.physical.write(frame, 0, contents)
            self.swap_ins += 1
        self._page_table[vpage] = frame
        return frame

    def resident_pages(self):
        """Sorted list of resident virtual page numbers."""
        return sorted(self._page_table)

    # -- pinning ------------------------------------------------------------

    def pin(self, vpage):
        """Pin ``vpage``: make it resident and forbid swap-out.

        Pinning an already-pinned page is an error — the UTLB layers above
        are responsible for tracking what they pinned (double pinning would
        silently distort the pin/unpin counts the paper measures).
        """
        if vpage in self._pinned:
            raise PinningError(
                "pid %r: page %#x is already pinned" % (self.pid, vpage))
        frame = self.touch(vpage)
        self.physical.pin_frame(frame)
        self._pinned.add(vpage)
        return frame

    def unpin(self, vpage):
        """Release the pin on ``vpage``."""
        if vpage not in self._pinned:
            raise PinningError(
                "pid %r: page %#x is not pinned" % (self.pid, vpage))
        self.physical.unpin_frame(self._page_table[vpage])
        self._pinned.remove(vpage)

    def pinned_pages(self):
        """Sorted list of pinned virtual page numbers."""
        return sorted(self._pinned)

    @property
    def pinned_count(self):
        return len(self._pinned)

    # -- swapping -----------------------------------------------------------

    def swap_out(self, vpage):
        """Evict a resident, unpinned page to the swap store."""
        if vpage in self._pinned:
            raise PinningError(
                "pid %r: cannot swap out pinned page %#x" % (self.pid, vpage))
        frame = self.frame_of(vpage)
        self._swap[vpage] = self.physical.read(frame, 0, params.PAGE_SIZE)
        self.physical.free(frame)
        del self._page_table[vpage]
        self.swap_outs += 1

    # -- data access --------------------------------------------------------

    def read(self, vaddr, nbytes):
        """Read bytes through the virtual address space (faults pages in)."""
        out = []
        for chunk_va, chunk_len in addresses.split_at_page_boundaries(vaddr, nbytes):
            vpage = addresses.vpage_of(chunk_va)
            frame = self.touch(vpage)
            out.append(self.physical.read(
                frame, addresses.page_offset(chunk_va), chunk_len))
        return b"".join(out)

    def write(self, vaddr, data):
        """Write bytes through the virtual address space (faults pages in)."""
        cursor = 0
        for chunk_va, chunk_len in addresses.split_at_page_boundaries(vaddr, len(data)):
            vpage = addresses.vpage_of(chunk_va)
            frame = self.touch(vpage)
            self.physical.write(frame, addresses.page_offset(chunk_va),
                                data[cursor:cursor + chunk_len])
            cursor += chunk_len

    # -- teardown -----------------------------------------------------------

    def destroy(self):
        """Release every frame (pins are force-dropped first)."""
        for vpage in list(self._pinned):
            self.unpin(vpage)
        for vpage, frame in list(self._page_table.items()):
            self.physical.free(frame)
            del self._page_table[vpage]
        self._swap.clear()
