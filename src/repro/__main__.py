"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro [--scale S] [--nodes N] [--seed K] [--only table4]

Prints every table and figure of the paper's Section 5/6 evaluation (or a
single one with ``--only``).  ``--scale 1.0 --nodes 4`` is the
paper-sized run recorded in EXPERIMENTS.md.
"""

import argparse
import sys

from repro.sim import experiments as exp

SECTIONS = {
    "table1": lambda a: exp.render_table1(exp.table1()),
    "table2": lambda a: exp.render_table2(exp.table2()),
    "table3": lambda a: exp.render_table3(
        exp.table3(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "table4": lambda a: exp.render_table4(
        exp.table4(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "table5": lambda a: exp.render_table5(
        exp.table5(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "table6": lambda a: exp.render_table6(
        exp.table6(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "table7": lambda a: exp.render_table7(
        exp.table7(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "table8": lambda a: exp.render_table8(
        exp.table8(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "figure7": lambda a: exp.render_figure7(
        exp.figure7(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "figure8": lambda a: exp.render_figure8(
        exp.figure8(scale=a.scale, nodes=a.nodes, seed=a.seed)),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the UTLB paper's tables and figures.")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster nodes to simulate (default 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace generation seed (default 1)")
    parser.add_argument("--only", choices=sorted(SECTIONS),
                        help="regenerate a single table/figure")
    parser.add_argument("--compare", action="store_true",
                        help="compare measured results against the "
                             "paper's published numbers")
    args = parser.parse_args(argv)

    if args.compare:
        from repro.sim.compare import run_comparison
        run_comparison(scale=args.scale, nodes=args.nodes, seed=args.seed,
                       stream=sys.stdout)
        return 0
    if args.only:
        print(SECTIONS[args.only](args))
        return 0
    exp.run_all(scale=args.scale, nodes=args.nodes, seed=args.seed,
                stream=sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
