"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro [compare] [--scale S] [--nodes N] [--seed K]
                    [--only table4] [--mechanisms all|LIST]
                    [--workload LIST] [--workers W] [--no-cache]
                    [--cache-dir DIR] [--metrics-json PATH]
                    [--trace-dir DIR] [--chrome-trace NAME]

Prints every table and figure of the paper's Section 5/6 evaluation (or a
single one with ``--only``).  ``--scale 1.0 --nodes 4`` is the
paper-sized run recorded in EXPERIMENTS.md.  ``compare`` (or
``--compare``) lines the measured numbers up against the paper's
published ones; ``--mechanisms all`` (or a comma-separated subset)
instead replays the Table 4 grid once per registered translation
mechanism and prints the N-way comparison with its shape criteria;
``--workload`` swaps the workload list (e.g. ``--workload zipf-kv`` for
the skewed multi-tenant family) for that comparison.

``--workers N`` fans the trace replays out over N worker processes;
results are byte-identical to a serial run.  Finished cells land in an
on-disk cache (disable with ``--no-cache``), so a re-run only replays
cells whose inputs changed.  ``--metrics-json PATH`` dumps the structured
run report — per-cell wall time, cache hits/misses, worker count, stats
snapshots, per-phase timing breakdowns — for machine consumption.

``--trace-dir DIR`` dumps the full translation event stream of every
traceable cell as one JSONL file per cell (``repro.obs`` events); traced
cells replay serially through the reference engine and bypass the result
cache.  ``--chrome-trace NAME`` additionally converts the named cell's
dump (``DIR/NAME.jsonl``) to Chrome trace-event format for
``chrome://tracing`` / Perfetto.
"""

import argparse
import json
import os
import sys

from repro.sim import experiments as exp
from repro.sim.runner import default_cache_dir

SECTIONS = {
    "table1": lambda a: exp.render_table1(exp.table1()),
    "table2": lambda a: exp.render_table2(exp.table2()),
    "table3": lambda a: exp.render_table3(
        exp.table3(scale=a.scale, nodes=a.nodes, seed=a.seed)),
    "table4": lambda a: exp.render_table4(
        exp.table4(scale=a.scale, nodes=a.nodes, seed=a.seed,
                   runner=a.runner)),
    "table5": lambda a: exp.render_table5(
        exp.table5(scale=a.scale, nodes=a.nodes, seed=a.seed,
                   runner=a.runner)),
    "table6": lambda a: exp.render_table6(
        exp.table6(scale=a.scale, nodes=a.nodes, seed=a.seed,
                   runner=a.runner)),
    "table7": lambda a: exp.render_table7(
        exp.table7(scale=a.scale, nodes=a.nodes, seed=a.seed,
                   runner=a.runner)),
    "table8": lambda a: exp.render_table8(
        exp.table8(scale=a.scale, nodes=a.nodes, seed=a.seed,
                   runner=a.runner)),
    "figure7": lambda a: exp.render_figure7(
        exp.figure7(scale=a.scale, nodes=a.nodes, seed=a.seed,
                    runner=a.runner)),
    "figure8": lambda a: exp.render_figure8(
        exp.figure8(scale=a.scale, nodes=a.nodes, seed=a.seed,
                    runner=a.runner)),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the UTLB paper's tables and figures.")
    parser.add_argument("mode", nargs="?", choices=("compare",),
                        help="'compare' runs the paper-vs-measured "
                             "comparison (same as --compare)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster nodes to simulate (default 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace generation seed (default 1)")
    parser.add_argument("--only", choices=sorted(SECTIONS),
                        help="regenerate a single table/figure")
    parser.add_argument("--compare", action="store_true",
                        help="compare measured results against the "
                             "paper's published numbers")
    parser.add_argument("--mechanisms", default=None, metavar="LIST",
                        help="comma-separated mechanism names (or 'all' "
                             "for every registered mechanism): run the "
                             "N-way mechanism comparison instead of the "
                             "paper tables")
    parser.add_argument("--workload", default=None, metavar="LIST",
                        help="comma-separated workload names for the "
                             "mechanism comparison (Table 3 apps plus "
                             "post-paper families like zipf-kv; default: "
                             "the Table 3 set; requires --mechanisms)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for trace replay "
                             "(default: REPRO_WORKERS or 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default: "
                             "REPRO_CACHE_DIR or %s)" % default_cache_dir())
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="dump the structured run metrics (per-cell "
                             "wall time, phase timings, cache hits, "
                             "stats) as JSON")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="dump one JSONL event stream per traceable "
                             "cell into DIR (forces the reference "
                             "engine for those cells)")
    parser.add_argument("--chrome-trace", default=None, metavar="NAME",
                        help="also convert DIR/NAME.jsonl to Chrome "
                             "trace-event format (requires --trace-dir)")
    args = parser.parse_args(argv)
    if args.chrome_trace and not args.trace_dir:
        parser.error("--chrome-trace requires --trace-dir")
    mechanisms = None
    if args.mechanisms is not None:
        from repro.sim.runner import MECHANISMS
        if args.mechanisms.strip().lower() == "all":
            mechanisms = MECHANISMS
        else:
            mechanisms = tuple(name.strip()
                               for name in args.mechanisms.split(",")
                               if name.strip())
            unknown = [m for m in mechanisms if m not in MECHANISMS]
            if unknown:
                parser.error("unknown mechanisms %s (choose from %s)"
                             % (", ".join(unknown), ", ".join(MECHANISMS)))
        if not mechanisms:
            parser.error("--mechanisms got an empty list")
    apps = None
    if args.workload is not None:
        if mechanisms is None:
            parser.error("--workload requires --mechanisms")
        from repro.traces.synth import WORKLOADS, make_workload
        names = tuple(name.strip() for name in args.workload.split(",")
                      if name.strip())
        unknown = [w for w in names if w not in WORKLOADS]
        if unknown:
            parser.error("unknown workloads %s (choose from %s)"
                         % (", ".join(unknown), ", ".join(sorted(WORKLOADS))))
        if not names:
            parser.error("--workload got an empty list")
        apps = [make_workload(name) for name in names]

    args.runner = exp.make_runner(
        workers=args.workers,
        cache_dir=False if args.no_cache else args.cache_dir,
        trace_dir=args.trace_dir)
    try:
        if mechanisms is not None:
            from repro.sim.compare import compare_mechanisms
            _, text = compare_mechanisms(
                scale=args.scale, nodes=args.nodes, seed=args.seed,
                mechanisms=mechanisms, runner=args.runner, apps=apps)
            print(text)
        elif args.compare or args.mode == "compare":
            from repro.sim.compare import run_comparison
            run_comparison(scale=args.scale, nodes=args.nodes,
                           seed=args.seed, stream=sys.stdout,
                           runner=args.runner)
        elif args.only:
            print(SECTIONS[args.only](args))
        else:
            exp.run_all(scale=args.scale, nodes=args.nodes, seed=args.seed,
                        stream=sys.stdout, runner=args.runner)
    finally:
        args.runner.close()

    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(args.runner.metrics.to_dict(), handle, indent=2)
            handle.write("\n")

    if args.chrome_trace:
        from repro.obs.export import load_events_jsonl, write_chrome_trace
        source = os.path.join(args.trace_dir, args.chrome_trace + ".jsonl")
        target = os.path.join(args.trace_dir, args.chrome_trace
                              + ".chrome.json")
        write_chrome_trace(load_events_jsonl(source), target)
        print("chrome trace written to %s" % target, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
