"""The paper's published numbers, machine-readable.

Transcribed from the ASPLOS 1998 text so that comparisons against the
reproduction are computed, not eyeballed: ``repro.sim.compare`` renders
side-by-side tables and the test suite asserts the shape criteria against
these values programmatically.

Only the evaluation tables are transcribed (micro-benchmark Tables 1/2
live in :mod:`repro.core.costs`, which *is* their machine-readable form).
"""

#: Table 3 — problem size, per-node footprint (4 KB pages), lookups.
TABLE3 = {
    "fft": {"problem_size": "4M elements", "footprint": 10803,
            "lookups": 43132},
    "lu": {"problem_size": "4K x 4K matrix", "footprint": 12507,
           "lookups": 25198},
    "barnes": {"problem_size": "32K particles", "footprint": 2235,
               "lookups": 35904},
    "radix": {"problem_size": "4M keys", "footprint": 6393,
              "lookups": 11775},
    "raytrace": {"problem_size": "256 x 256 car", "footprint": 6319,
                 "lookups": 14594},
    "volrend": {"problem_size": "256^3 CST head", "footprint": 2371,
                "lookups": 9438},
    "water-spatial": {"problem_size": "15,625 molecules",
                      "footprint": 1890, "lookups": 8488},
}

#: Table 4 — per-lookup rates, infinite host memory.
#: {app: {cache entries: {"utlb": (check, ni, unpins),
#:                        "intr": (ni, unpins)}}}
TABLE4 = {
    "barnes": {
        1024: {"utlb": (0.04, 0.10, 0.00), "intr": (0.10, 0.09)},
        2048: {"utlb": (0.04, 0.07, 0.00), "intr": (0.07, 0.04)},
        4096: {"utlb": (0.04, 0.05, 0.00), "intr": (0.05, 0.02)},
        8192: {"utlb": (0.04, 0.04, 0.00), "intr": (0.04, 0.01)},
        16384: {"utlb": (0.04, 0.04, 0.00), "intr": (0.04, 0.00)},
    },
    "fft": {
        1024: {"utlb": (0.25, 0.50, 0.00), "intr": (0.50, 0.49)},
        2048: {"utlb": (0.25, 0.50, 0.00), "intr": (0.50, 0.48)},
        4096: {"utlb": (0.25, 0.49, 0.00), "intr": (0.49, 0.46)},
        8192: {"utlb": (0.25, 0.46, 0.00), "intr": (0.46, 0.40)},
        16384: {"utlb": (0.25, 0.38, 0.00), "intr": (0.38, 0.25)},
    },
    "lu": {
        1024: {"utlb": (0.49, 0.50, 0.00), "intr": (0.50, 0.46)},
        2048: {"utlb": (0.49, 0.49, 0.00), "intr": (0.49, 0.43)},
        4096: {"utlb": (0.49, 0.49, 0.00), "intr": (0.49, 0.37)},
        8192: {"utlb": (0.49, 0.49, 0.00), "intr": (0.49, 0.33)},
        16384: {"utlb": (0.49, 0.49, 0.00), "intr": (0.49, 0.17)},
    },
    "radix": {
        1024: {"utlb": (0.54, 0.62, 0.00), "intr": (0.62, 0.54)},
        2048: {"utlb": (0.54, 0.60, 0.00), "intr": (0.60, 0.44)},
        4096: {"utlb": (0.54, 0.57, 0.00), "intr": (0.57, 0.30)},
        8192: {"utlb": (0.54, 0.55, 0.00), "intr": (0.55, 0.16)},
        16384: {"utlb": (0.54, 0.54, 0.00), "intr": (0.54, 0.09)},
    },
    "raytrace": {
        1024: {"utlb": (0.43, 0.48, 0.00), "intr": (0.48, 0.41)},
        2048: {"utlb": (0.43, 0.46, 0.00), "intr": (0.46, 0.33)},
        4096: {"utlb": (0.43, 0.45, 0.00), "intr": (0.45, 0.24)},
        8192: {"utlb": (0.43, 0.44, 0.00), "intr": (0.44, 0.14)},
        16384: {"utlb": (0.43, 0.43, 0.00), "intr": (0.43, 0.07)},
    },
    "volrend": {
        1024: {"utlb": (0.25, 0.31, 0.00), "intr": (0.31, 0.22)},
        2048: {"utlb": (0.25, 0.29, 0.00), "intr": (0.29, 0.13)},
        4096: {"utlb": (0.25, 0.27, 0.00), "intr": (0.27, 0.07)},
        8192: {"utlb": (0.25, 0.25, 0.00), "intr": (0.25, 0.03)},
        16384: {"utlb": (0.25, 0.25, 0.00), "intr": (0.25, 0.01)},
    },
    "water-spatial": {
        1024: {"utlb": (0.10, 0.35, 0.00), "intr": (0.35, 0.31)},
        2048: {"utlb": (0.10, 0.27, 0.00), "intr": (0.27, 0.21)},
        4096: {"utlb": (0.10, 0.12, 0.00), "intr": (0.12, 0.03)},
        8192: {"utlb": (0.10, 0.11, 0.00), "intr": (0.11, 0.02)},
        16384: {"utlb": (0.10, 0.10, 0.00), "intr": (0.10, 0.00)},
    },
}

#: Table 6 — average lookup cost in microseconds.
#: {app: {cache entries: (utlb_us, intr_us)}}
TABLE6 = {
    "barnes": {1024: (2.6, 4.9), 4096: (2.5, 2.5), 16384: (2.5, 1.9)},
    "fft": {1024: (9.0, 21.7), 4096: (8.9, 20.9), 16384: (8.7, 14.8)},
}

#: Table 7 — amortized pin/unpin cost (us/lookup), prepin 1 vs 16 pages,
#: 16 MB limit.  {app: {"pin": (1pg, 16pg), "unpin": (1pg, 16pg)}}
TABLE7 = {
    "barnes": {"pin": (1.0, 0.8), "unpin": (0.1, 0.1)},
    "radix": {"pin": (13.0, 7.3), "unpin": (0.1, 10.8)},
    "raytrace": {"pin": (10.5, 5.0), "unpin": (0.8, 3.5)},
    "water-spatial": {"pin": (2.5, 1.5), "unpin": (0.1, 0.1)},
    "fft": {"pin": (6.1, 15.8), "unpin": (0.1, 93.0)},
    "lu": {"pin": (12.0, 2.3), "unpin": (0.1, 0.1)},
}

#: Table 8 — overall Shared UTLB-Cache miss rates.
#: {app: {(cache entries, organisation): rate}}
_T8_ORGS = ("direct", "2-way", "4-way", "direct-nohash")


def _t8(app_rows):
    out = {}
    for size, rates in app_rows.items():
        for org, rate in zip(_T8_ORGS, rates):
            out[(size, org)] = rate
    return out


TABLE8 = {
    "barnes": _t8({1024: (0.10, 0.12, 0.13, 0.36),
                   2048: (0.07, 0.06, 0.07, 0.35),
                   4096: (0.05, 0.05, 0.04, 0.27),
                   8192: (0.04, 0.04, 0.04, 0.27),
                   16384: (0.04, 0.04, 0.04, 0.27)}),
    "fft": _t8({1024: (0.31, 0.30, 0.30, 0.50),
                2048: (0.27, 0.26, 0.22, 0.42),
                4096: (0.12, 0.11, 0.10, 0.35),
                8192: (0.11, 0.10, 0.10, 0.35),
                16384: (0.10, 0.10, 0.10, 0.35)}),
    "lu": _t8({1024: (0.35, 0.32, 0.30, 0.51),
               2048: (0.29, 0.27, 0.26, 0.48),
               4096: (0.27, 0.25, 0.25, 0.47),
               8192: (0.25, 0.25, 0.25, 0.46),
               16384: (0.25, 0.25, 0.25, 0.46)}),
    "raytrace": _t8({1024: (0.48, 0.48, 0.49, 0.57),
                     2048: (0.46, 0.46, 0.47, 0.57),
                     4096: (0.45, 0.45, 0.44, 0.56),
                     8192: (0.44, 0.44, 0.41, 0.56),
                     16384: (0.38, 0.37, 0.34, 0.50)}),
    "radix": _t8({1024: (0.50, 0.49, 0.50, 0.60),
                  2048: (0.49, 0.48, 0.48, 0.60),
                  4096: (0.49, 0.47, 0.46, 0.60),
                  8192: (0.46, 0.44, 0.43, 0.57),
                  16384: (0.43, 0.43, 0.43, 0.55)}),
    "volrend": _t8({1024: (0.50, 0.50, 0.51, 0.78),
                    2048: (0.50, 0.50, 0.50, 0.74),
                    4096: (0.49, 0.49, 0.49, 0.71),
                    8192: (0.49, 0.49, 0.49, 0.71),
                    16384: (0.49, 0.49, 0.49, 0.71)}),
    "water-spatial": _t8({1024: (0.62, 0.63, 0.63, 0.90),
                          2048: (0.60, 0.60, 0.60, 0.90),
                          4096: (0.57, 0.57, 0.57, 0.90),
                          8192: (0.55, 0.55, 0.55, 0.90),
                          16384: (0.54, 0.54, 0.54, 0.90)}),
}

#: Headline micro-measurements quoted in the running text.
HEADLINE = {
    "fast_path_total_us": 0.9,
    "fast_path_host_us": 0.4,
    "fast_path_nic_us": 0.5,
    "translation_lookup_best_us": 0.5,
    "interrupt_cost_us": 10.0,
    "pin_one_page_us": 27.0,
    "unpin_one_page_us": 25.0,
}
