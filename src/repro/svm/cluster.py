"""The SVM runtime: ranks, barriers, and diff propagation over VMMC.

:class:`SvmCluster` builds a VMMC cluster, creates one process per rank
(spread round-robin over the nodes, like the paper's 4 processes per
SMP), exports every rank's home segment, and implements the home-based
release-consistency protocol:

* page faults fetch pages from their homes (VMMC remote fetch);
* at a barrier, every dirty page's diff is sent *zero-copy* straight out
  of the faulting rank's memory into the home's memory (VMMC remote
  store through the UTLB — no staging buffers anywhere);
* write notices invalidate stale copies everywhere else.

Every fetch and diff store is real traffic through the NIC model, so an
attached :class:`~repro.traces.capture.TraceRecorder` captures exactly
what the paper's instrumented VMMC build captured.
"""

from repro import params
from repro.errors import CapacityError, ConfigError
from repro.svm.memory import SvmMemory
from repro.svm.region import SharedRegion
from repro.vmmc import Cluster

#: Pages each rank may pin; the shared region plus slack for private use.
DEFAULT_PIN_LIMIT = None


class SvmCluster:
    """A shared-virtual-memory machine on top of the VMMC cluster."""

    def __init__(self, num_ranks, region_pages, nodes=2, recorder=None,
                 cluster=None, pin_limit_pages=DEFAULT_PIN_LIMIT,
                 **cluster_kwargs):
        if num_ranks <= 0:
            raise ConfigError("need at least one rank")
        if nodes <= 0:
            raise ConfigError("need at least one node")
        self.num_ranks = num_ranks
        self.region = SharedRegion(region_pages, num_ranks)
        self.cluster = (cluster if cluster is not None
                        else Cluster(num_nodes=min(nodes, num_ranks),
                                     **cluster_kwargs))
        self.recorder = recorder
        self.barriers = 0
        self.diff_stores = 0
        self.diff_bytes = 0

        num_nodes = len(self.cluster.nodes())
        self._node_of_rank = [r % num_nodes for r in range(num_ranks)]
        self._libraries = []
        for rank in range(num_ranks):
            library = self.cluster.node(
                self._node_of_rank[rank]).create_process(
                    memory_limit_pages=pin_limit_pages)
            if recorder is not None:
                recorder.attach(library, node=self._node_of_rank[rank])
            self._libraries.append(library)

        # Export every rank's home segment, then import cross-rank.
        self._export_ids = {}
        for rank in range(num_ranks):
            block = self.region.home_block(rank)
            if not len(block):
                continue
            vaddr = self.region.vaddr(block.start * params.PAGE_SIZE)
            self._export_ids[rank] = self._libraries[rank].export(
                vaddr, len(block) * params.PAGE_SIZE)
        self._handles = []
        for rank in range(num_ranks):
            handles = {}
            for home, export_id in self._export_ids.items():
                if home == rank:
                    continue
                handles[home] = self._libraries[rank].import_buffer(
                    self._node_of_rank[home], export_id)
            self._handles.append(handles)

        self._memories = [
            SvmMemory(rank, self.region, self._libraries[rank],
                      self._handles[rank], self._fetch)
            for rank in range(num_ranks)]

    # -- plumbing ---------------------------------------------------------------

    def _fetch(self, library, vaddr, nbytes, handle, remote_offset):
        """Synchronous page fetch (a fault blocks the faulting rank)."""
        seq = library.fetch(vaddr, nbytes, handle, remote_offset)
        self.cluster.run_until_quiet()
        library.complete(seq)

    def _post_store(self, library, vaddr, nbytes, handle, remote_offset):
        """Post a diff store, draining the fabric if the queue fills."""
        try:
            return library.send(vaddr, nbytes, handle, remote_offset)
        except CapacityError:
            self.cluster.run_until_quiet()
            library.complete()
            return library.send(vaddr, nbytes, handle, remote_offset)

    # -- the application-facing API ------------------------------------------------

    def memory(self, rank):
        """The :class:`SvmMemory` of one rank."""
        return self._memories[rank]

    def memories(self):
        return list(self._memories)

    def library(self, rank):
        return self._libraries[rank]

    def barrier(self):
        """Release + acquire for every rank (BSP superstep boundary)."""
        # Release: propagate diffs of all dirty pages to their homes,
        # zero-copy out of each rank's own page copies.
        all_dirty = set()
        for rank, memory in enumerate(self._memories):
            diffs = memory.collect_diffs()
            for page, runs in diffs.items():
                all_dirty.add(page)
                home = self.region.home_of(page)
                handle = self._handles[rank][home]
                page_base = page * params.PAGE_SIZE
                home_base = self.region.page_offset_in_home_block(page)
                for offset, data in runs:
                    self._post_store(
                        self._libraries[rank],
                        self.region.vaddr(page_base + offset),
                        len(data), handle, home_base + offset)
                    self.diff_stores += 1
                    self.diff_bytes += len(data)
            all_dirty.update(memory.written_pages())
        self.cluster.run_until_quiet()
        for library in self._libraries:
            library.complete()

        # Acquire: write notices invalidate every copy of a written page
        # (the home keeps the merged authoritative copy).
        for memory in self._memories:
            memory.clear_dirty()
            memory.invalidate(all_dirty)
        self.barriers += 1

    # -- whole-region access (init / verification, via the homes) --------------------

    def scatter(self, offset, data):
        """Write authoritative region contents directly at the homes."""
        cursor = 0
        while cursor < len(data):
            page = self.region.page_of_offset(offset + cursor)
            page_end = (page + 1) * params.PAGE_SIZE
            chunk = min(len(data) - cursor, page_end - (offset + cursor))
            home = self.region.home_of(page)
            self._libraries[home].write_memory(
                self.region.vaddr(offset + cursor),
                data[cursor:cursor + chunk])
            cursor += chunk

    def gather(self, offset, nbytes):
        """Read authoritative region contents from the homes."""
        out = []
        cursor = 0
        while cursor < nbytes:
            page = self.region.page_of_offset(offset + cursor)
            page_end = (page + 1) * params.PAGE_SIZE
            chunk = min(nbytes - cursor, page_end - (offset + cursor))
            home = self.region.home_of(page)
            out.append(self._libraries[home].read_memory(
                self.region.vaddr(offset + cursor), chunk))
            cursor += chunk
        return b"".join(out)

    # -- statistics --------------------------------------------------------------------

    def translation_stats(self):
        """Merged UTLB stats across all ranks."""
        from repro.core.stats import TranslationStats
        return TranslationStats.merged(
            library.stats for library in self._libraries)

    def total_fetches(self):
        return sum(memory.fetches for memory in self._memories)

    def check_invariants(self):
        for memory in self._memories:
            memory.check_invariants()
        for library in self._libraries:
            library.utlb.check_invariants()
        return True
