"""Diff creation for the home-based SVM protocol.

HLRC propagates page *diffs*: at a release point, each dirty page is
compared against its twin (the copy saved before the first write) and
only the changed byte runs travel to the home.  Runs are exact — they
contain changed bytes only, never unchanged gap bytes.  That exactness
is what makes HLRC's multiple-writer protocol correct: diffs from
concurrent writers of one page are applied at the home in arrival
order, and a run that carried unchanged (twin-valued) bytes would
overwrite another writer's concurrent update to those bytes.
"""


def compute_diffs(twin, current):
    """Changed byte runs between ``twin`` and ``current``.

    Returns a list of ``(offset, bytes)`` pairs, one per maximal run of
    contiguous changed bytes.  Every byte in a run differs from the
    twin, so applying the runs at the home touches exactly the bytes
    this writer changed.  Both inputs must be equal length.
    """
    if len(twin) != len(current):
        raise ValueError("twin (%d B) and current (%d B) differ in length"
                         % (len(twin), len(current)))
    runs = []
    start = None
    for index in range(len(twin)):
        if twin[index] != current[index]:
            if start is None:
                start = index
        elif start is not None:
            runs.append((start, bytes(current[start:index])))
            start = None
    if start is not None:
        runs.append((start, bytes(current[start:])))
    return runs


def apply_diffs(base, diffs):
    """Apply ``(offset, bytes)`` runs to ``base``; returns new bytes."""
    out = bytearray(base)
    for offset, data in diffs:
        if offset < 0 or offset + len(data) > len(out):
            raise ValueError("diff [%d, %d) outside the %d-byte page"
                             % (offset, offset + len(data), len(out)))
        out[offset:offset + len(data)] = data
    return bytes(out)


def diff_bytes(diffs):
    """Total payload bytes across a diff list."""
    return sum(len(data) for _, data in diffs)
