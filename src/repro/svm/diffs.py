"""Diff creation for the home-based SVM protocol.

HLRC propagates page *diffs*: at a release point, each dirty page is
compared against its twin (the copy saved before the first write) and
only the changed byte runs travel to the home.  Runs closer than
``GAP_TOLERANCE`` bytes are coalesced — sending one slightly longer run
is cheaper than two VMMC requests.
"""

#: Merge changed runs separated by fewer than this many unchanged bytes.
GAP_TOLERANCE = 32


def compute_diffs(twin, current, gap_tolerance=GAP_TOLERANCE):
    """Changed byte runs between ``twin`` and ``current``.

    Returns a list of ``(offset, bytes)`` pairs covering every changed
    byte, coalesced per the gap tolerance.  Both inputs must be equal
    length.
    """
    if len(twin) != len(current):
        raise ValueError("twin (%d B) and current (%d B) differ in length"
                         % (len(twin), len(current)))
    runs = []
    start = None
    last_change = None
    for index in range(len(twin)):
        if twin[index] != current[index]:
            if start is None:
                start = index
            elif index - last_change > gap_tolerance:
                runs.append((start, bytes(current[start:last_change + 1])))
                start = index
            last_change = index
    if start is not None:
        runs.append((start, bytes(current[start:last_change + 1])))
    return runs


def apply_diffs(base, diffs):
    """Apply ``(offset, bytes)`` runs to ``base``; returns new bytes."""
    out = bytearray(base)
    for offset, data in diffs:
        if offset < 0 or offset + len(data) > len(out):
            raise ValueError("diff [%d, %d) outside the %d-byte page"
                             % (offset, offset + len(data), len(out)))
        out[offset:offset + len(data)] = data
    return bytes(out)


def diff_bytes(diffs):
    """Total payload bytes across a diff list."""
    return sum(len(data) for _, data in diffs)
