"""Home-based release-consistency shared virtual memory over VMMC.

The substrate the paper's traces were captured on: SPLASH-2-class
programs run on an HLRC-style SVM protocol whose page fetches and diff
propagation are VMMC remote fetches and remote stores — all of it real
traffic through the simulated NIC and its UTLB.

* :class:`SvmCluster` — ranks, shared region, barriers, diff protocol
* :class:`SvmMemory` — per-rank page cache with INVALID/CLEAN/DIRTY states
* :mod:`repro.svm.apps` — runnable BSP kernels (stencil, transpose,
  histogram) with serial references for verification
"""

from repro.svm.cluster import SvmCluster
from repro.svm.diffs import apply_diffs, compute_diffs, diff_bytes
from repro.svm.memory import CLEAN, DIRTY, INVALID, SvmMemory
from repro.svm.region import SVM_BASE, SharedRegion

__all__ = [
    "CLEAN",
    "DIRTY",
    "INVALID",
    "SVM_BASE",
    "SharedRegion",
    "SvmCluster",
    "SvmMemory",
    "apply_diffs",
    "compute_diffs",
    "diff_bytes",
]
