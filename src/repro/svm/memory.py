"""Per-rank SVM memory: page states, twins, and the access protocol.

Each rank sees the shared region at the same virtual address.  Pages the
rank homes are always valid locally (remote writers push diffs straight
into the home's physical memory through VMMC).  Other pages follow the
HLRC state machine:

* INVALID — no local copy; a read or write first *fetches* the page from
  its home (a VMMC remote fetch = real NIC translation traffic);
* CLEAN — valid local copy, no local modifications;
* DIRTY — locally modified; a *twin* of the pre-write contents is kept so
  the release (barrier) can compute and send diffs.

All offsets in the public API are region-relative.
"""

import struct

from repro import params
from repro.svm.diffs import compute_diffs

INVALID = "invalid"
CLEAN = "clean"
DIRTY = "dirty"

_I32 = struct.Struct("<i")


class SvmMemory:
    """One rank's view of the shared region."""

    def __init__(self, rank, region, library, home_handles, fetcher):
        self.rank = rank
        self.region = region
        self.library = library
        self._home_handles = home_handles      # home rank -> ImportHandle
        self._fetcher = fetcher                # callable: run a fetch now
        self._states = {}                      # page -> state (default INVALID)
        self._twins = {}                       # page -> bytes
        self._home_written = set()             # home pages written locally
        self.fetches = 0
        self.bytes_fetched = 0

    # -- state machine ------------------------------------------------------------

    def state_of(self, page):
        if self.region.home_of(page) == self.rank:
            return CLEAN            # home pages are always valid locally
        return self._states.get(page, INVALID)

    def is_home(self, page):
        return self.region.home_of(page) == self.rank

    def dirty_pages(self):
        return sorted(p for p, s in self._states.items() if s == DIRTY)

    def twin_of(self, page):
        return self._twins.get(page)

    def _ensure_valid(self, page):
        """Fault handler: fetch an INVALID page from its home."""
        if self.is_home(page) or self._states.get(page, INVALID) != INVALID:
            return
        home = self.region.home_of(page)
        vaddr = self.region.vaddr(page * params.PAGE_SIZE)
        self._fetcher(self.library, vaddr, params.PAGE_SIZE,
                      self._home_handles[home],
                      self.region.page_offset_in_home_block(page))
        self._states[page] = CLEAN
        self.fetches += 1
        self.bytes_fetched += params.PAGE_SIZE

    def _ensure_writable(self, page):
        self._ensure_valid(page)
        if self.is_home(page):
            # Home writes are directly authoritative (no twin), but they
            # still generate a write notice so other ranks' cached copies
            # are invalidated at the next release.
            self._home_written.add(page)
            return
        if self._states.get(page) != DIRTY:
            vaddr = self.region.vaddr(page * params.PAGE_SIZE)
            self._twins[page] = self.library.read_memory(
                vaddr, params.PAGE_SIZE)
            self._states[page] = DIRTY

    # -- data access ------------------------------------------------------------------

    def read(self, offset, nbytes):
        """Read region bytes (faulting pages in from their homes)."""
        for page in self.region.pages_of_span(offset, nbytes):
            self._ensure_valid(page)
        return self.library.read_memory(self.region.vaddr(offset), nbytes)

    def write(self, offset, data):
        """Write region bytes (twinning pages on first write)."""
        if not data:
            return
        for page in self.region.pages_of_span(offset, len(data)):
            self._ensure_writable(page)
        self.library.write_memory(self.region.vaddr(offset), data)

    # -- typed helpers (apps work in 32-bit ints) -----------------------------------------

    def read_i32(self, offset):
        return _I32.unpack(self.read(offset, 4))[0]

    def write_i32(self, offset, value):
        self.write(offset, _I32.pack(value))

    def read_i32s(self, offset, count):
        raw = self.read(offset, 4 * count)
        return list(struct.unpack("<%di" % count, raw))

    def write_i32s(self, offset, values):
        self.write(offset, struct.pack("<%di" % len(values), *values))

    # -- release support ---------------------------------------------------------------------

    def collect_diffs(self):
        """Diffs of every dirty page: {page: [(offset, bytes), ...]}."""
        out = {}
        for page in self.dirty_pages():
            vaddr = self.region.vaddr(page * params.PAGE_SIZE)
            current = self.library.read_memory(vaddr, params.PAGE_SIZE)
            runs = compute_diffs(self._twins[page], current)
            if runs:
                out[page] = runs
        return out

    def invalidate(self, pages):
        """Write-notice processing: drop local copies of ``pages``."""
        for page in pages:
            if self.is_home(page):
                continue
            self._states[page] = INVALID
            self._twins.pop(page, None)

    def written_pages(self):
        """Every page this rank wrote since the last release (dirty
        non-home pages plus written home pages) — the write notices."""
        return sorted(set(self.dirty_pages()) | self._home_written)

    def clear_dirty(self):
        """After a release: dirty copies are stale until refetched."""
        for page in self.dirty_pages():
            self._states[page] = INVALID
            self._twins.pop(page, None)
        self._home_written.clear()

    def check_invariants(self):
        """Twins exist exactly for dirty pages; home pages never tracked."""
        for page, state in self._states.items():
            assert not self.is_home(page), (
                "home page %d has tracked state %s" % (page, state))
            if state == DIRTY:
                assert page in self._twins, "dirty page %d has no twin" % page
            else:
                assert page not in self._twins, (
                    "non-dirty page %d has a twin" % page)
        return True
