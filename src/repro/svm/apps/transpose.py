"""Matrix transpose: the FFT communication pattern.

The paper's FFT is dominated by its transpose phases — column-strided
access across every other process's data.  This kernel reproduces that
pattern on the SVM layer: each rank computes a block of rows of
``B = A^T`` by reading columns of ``A`` (strided fetches from all homes)
and writing its own rows (local-ish stores).

Region layout: A at offset 0 (n*n int32, row-major), B right after.
"""


def serial_transpose(matrix):
    n = len(matrix)
    return [[matrix[j][i] for j in range(n)] for i in range(n)]


def parallel_transpose(svm, matrix):
    """Transpose ``matrix`` on the SVM cluster; returns B as lists."""
    n = len(matrix)
    cell = 4
    a_base = 0
    b_base = n * n * cell

    svm.scatter(a_base, b"".join(
        value.to_bytes(4, "little", signed=True)
        for row in matrix for value in row))
    svm.barrier()

    rows_per_rank = (n + svm.num_ranks - 1) // svm.num_ranks
    for rank in range(svm.num_ranks):
        memory = svm.memory(rank)
        start = rank * rows_per_rank
        end = min(start + rows_per_rank, n)
        for i in range(start, end):
            # Row i of B = column i of A: one strided read per element.
            column = [memory.read_i32(a_base + (j * n + i) * cell)
                      for j in range(n)]
            memory.write_i32s(b_base + i * n * cell, column)
    svm.barrier()

    raw = svm.gather(b_base, n * n * cell)
    values = [int.from_bytes(raw[k:k + 4], "little", signed=True)
              for k in range(0, len(raw), 4)]
    return [values[i * n:(i + 1) * n] for i in range(n)]
