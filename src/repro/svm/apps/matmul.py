"""Blocked matrix multiply: the LU communication class.

LU decomposition's traffic is "broadcast a pivot block, update the
trailing matrix" — every process repeatedly re-reads blocks another
process produced.  C = A x B has the same shape: rank r computes a row
block of C, streaming through *all* of B (fetches from every home) while
re-reading its own rows of A (local after the first touch).

Integer matrices keep verification exact.
"""


def serial_matmul(a, b):
    n = len(a)
    m = len(b[0])
    inner = len(b)
    out = [[0] * m for _ in range(n)]
    for i in range(n):
        row = a[i]
        for k in range(inner):
            aik = row[k]
            if aik == 0:
                continue
            brow = b[k]
            orow = out[i]
            for j in range(m):
                orow[j] += aik * brow[j]
    return out


def parallel_matmul(svm, a, b):
    """Compute C = A x B on the SVM cluster; returns C as lists."""
    n = len(a)
    inner = len(b)
    m = len(b[0])
    cell = 4
    a_base = 0
    b_base = n * inner * cell
    c_base = b_base + inner * m * cell

    def pack(matrix):
        return b"".join(value.to_bytes(4, "little", signed=True)
                        for row in matrix for value in row)

    svm.scatter(a_base, pack(a))
    svm.scatter(b_base, pack(b))
    svm.barrier()

    rows_per_rank = (n + svm.num_ranks - 1) // svm.num_ranks
    for rank in range(svm.num_ranks):
        memory = svm.memory(rank)
        start = rank * rows_per_rank
        end = min(start + rows_per_rank, n)
        for i in range(start, end):
            row_a = memory.read_i32s(a_base + i * inner * cell, inner)
            acc = [0] * m
            for k in range(inner):
                aik = row_a[k]
                if aik == 0:
                    continue
                row_b = memory.read_i32s(b_base + k * m * cell, m)
                for j in range(m):
                    acc[j] += aik * row_b[j]
            memory.write_i32s(c_base + i * m * cell, acc)
    svm.barrier()

    raw = svm.gather(c_base, n * m * cell)
    values = [int.from_bytes(raw[k:k + 4], "little", signed=True)
              for k in range(0, len(raw), 4)]
    return [values[i * m:(i + 1) * m] for i in range(n)]
