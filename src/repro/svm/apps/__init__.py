"""Parallel kernels running on the SVM layer.

Each kernel is a BSP (bulk-synchronous) program: ranks compute on the
shared region, separated by :meth:`SvmCluster.barrier` calls that
propagate diffs and invalidate stale copies.  Every kernel returns a
result that the caller can verify against a serial reference — these are
real programs whose communication drives real NIC translation traffic.
"""

from repro.svm.apps.histogram import parallel_histogram, serial_histogram
from repro.svm.apps.matmul import parallel_matmul, serial_matmul
from repro.svm.apps.stencil import parallel_stencil, serial_stencil
from repro.svm.apps.transpose import parallel_transpose, serial_transpose

__all__ = [
    "parallel_histogram",
    "parallel_matmul",
    "parallel_stencil",
    "parallel_transpose",
    "serial_histogram",
    "serial_matmul",
    "serial_stencil",
    "serial_transpose",
]
