"""Parallel histogram: the Radix communication pattern.

Radix sort's phases are "count local, combine global": each rank scans
its contiguous slice of the keys (sequential reads), writes its partial
counts into a per-rank area of the shared region (local stores), and
after a barrier rank 0 reduces the partials (fetches from every home).

Region layout: keys at offset 0, then ``num_ranks`` partial-count
arrays, then the final histogram.
"""


def serial_histogram(keys, buckets):
    counts = [0] * buckets
    for key in keys:
        counts[key % buckets] += 1
    return counts


def parallel_histogram(svm, keys, buckets):
    """Histogram ``keys`` into ``buckets`` on the SVM cluster."""
    cell = 4
    keys_base = 0
    keys_bytes = len(keys) * cell
    partial_base = keys_bytes
    partial_bytes = buckets * cell
    final_base = partial_base + svm.num_ranks * partial_bytes

    svm.scatter(keys_base, b"".join(
        key.to_bytes(4, "little", signed=True) for key in keys))
    svm.barrier()

    # Phase 1: local counting, partial arrays written to the region.
    per_rank = (len(keys) + svm.num_ranks - 1) // svm.num_ranks
    for rank in range(svm.num_ranks):
        memory = svm.memory(rank)
        start = rank * per_rank
        end = min(start + per_rank, len(keys))
        counts = [0] * buckets
        if start < end:
            for key in memory.read_i32s(keys_base + start * cell,
                                        end - start):
                counts[key % buckets] += 1
        memory.write_i32s(partial_base + rank * partial_bytes, counts)
    svm.barrier()

    # Phase 2: rank 0 reduces every partial array.
    memory = svm.memory(0)
    total = [0] * buckets
    for rank in range(svm.num_ranks):
        partial = memory.read_i32s(partial_base + rank * partial_bytes,
                                   buckets)
        for index in range(buckets):
            total[index] += partial[index]
    memory.write_i32s(final_base, total)
    svm.barrier()

    raw = svm.gather(final_base, buckets * cell)
    return [int.from_bytes(raw[k:k + 4], "little", signed=True)
            for k in range(0, len(raw), 4)]
