"""Jacobi stencil on a shared grid (the Water/Ocean communication class).

Each rank owns a contiguous block of rows; every iteration reads the
neighbouring ranks' boundary rows (page fetches from their homes) and
writes its own block (diffs back to the home at the barrier).  Integer
arithmetic keeps verification exact.

Region layout: grid A at offset 0, grid B right after; iterations swap
roles, so homes see alternating read/write traffic.
"""


def _average(up, down, left, right):
    return (up + down + left + right) // 4


def serial_stencil(grid, iterations):
    """Reference implementation on a list-of-lists grid."""
    n = len(grid)
    current = [row[:] for row in grid]
    for _ in range(iterations):
        following = [row[:] for row in current]
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                following[i][j] = _average(
                    current[i - 1][j], current[i + 1][j],
                    current[i][j - 1], current[i][j + 1])
        current = following
    return current


def parallel_stencil(svm, grid, iterations):
    """Run the stencil on the SVM cluster; returns the final grid."""
    n = len(grid)
    cell_bytes = 4
    grid_bytes = n * n * cell_bytes
    a_base, b_base = 0, grid_bytes

    flat = [value for row in grid for value in row]
    svm.scatter(a_base, b"".join(
        value.to_bytes(4, "little", signed=True) for value in flat))
    svm.scatter(b_base, b"".join(
        value.to_bytes(4, "little", signed=True) for value in flat))
    svm.barrier()

    rows_per_rank = (n + svm.num_ranks - 1) // svm.num_ranks

    def row_offset(base, i):
        return base + i * n * cell_bytes

    src, dst = a_base, b_base
    for _ in range(iterations):
        for rank in range(svm.num_ranks):
            memory = svm.memory(rank)
            start = rank * rows_per_rank
            end = min(start + rows_per_rank, n)
            for i in range(max(start, 1), min(end, n - 1)):
                above = memory.read_i32s(row_offset(src, i - 1), n)
                here = memory.read_i32s(row_offset(src, i), n)
                below = memory.read_i32s(row_offset(src, i + 1), n)
                new_row = here[:]
                for j in range(1, n - 1):
                    new_row[j] = _average(above[j], below[j],
                                          here[j - 1], here[j + 1])
                memory.write_i32s(row_offset(dst, i), new_row)
        svm.barrier()
        src, dst = dst, src

    raw = svm.gather(src, grid_bytes)
    values = [int.from_bytes(raw[k:k + 4], "little", signed=True)
              for k in range(0, grid_bytes, 4)]
    return [values[i * n:(i + 1) * n] for i in range(n)]
