"""Shared-region geometry for the SVM layer.

The paper's traces come from SPLASH-2 programs running on a home-based
release-consistency SVM protocol (HLRC [48, 39]) over VMMC.  Our SVM
layer reproduces that substrate: a shared region of 4 KB pages, each page
assigned a *home* rank that holds its authoritative copy.

Homes use a block distribution (rank r homes a contiguous slice), which
keeps each home segment a single exported VMMC buffer.
"""

from repro import params
from repro.errors import ConfigError

#: Base virtual address of the shared region in every rank (SPMD layout).
SVM_BASE = 0x60000000


class SharedRegion:
    """Geometry of one shared region: pages, homes, address mapping."""

    def __init__(self, num_pages, num_ranks, base_vaddr=SVM_BASE):
        if num_pages <= 0:
            raise ConfigError("shared region needs at least one page")
        if num_ranks <= 0:
            raise ConfigError("need at least one rank")
        if base_vaddr % params.PAGE_SIZE:
            raise ConfigError("region base must be page aligned")
        self.num_pages = num_pages
        self.num_ranks = num_ranks
        self.base_vaddr = base_vaddr
        self.size = num_pages * params.PAGE_SIZE
        self._block = (num_pages + num_ranks - 1) // num_ranks

    # -- homes ---------------------------------------------------------------

    def home_of(self, page_index):
        """The rank holding the authoritative copy of a region page."""
        self._check_page(page_index)
        return min(page_index // self._block, self.num_ranks - 1)

    def home_block(self, rank):
        """The contiguous range of region pages homed by ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise ConfigError("rank %r out of range" % (rank,))
        start = rank * self._block
        end = min(start + self._block, self.num_pages)
        if start >= self.num_pages:
            return range(0)
        return range(start, end)

    # -- addressing ------------------------------------------------------------

    def vaddr(self, offset):
        """Virtual address of a region-relative byte offset."""
        if not 0 <= offset <= self.size:
            raise ConfigError("offset %d outside the %d-byte region"
                              % (offset, self.size))
        return self.base_vaddr + offset

    def page_of_offset(self, offset):
        """Region page index containing a region-relative offset."""
        if not 0 <= offset < self.size:
            raise ConfigError("offset %d outside the region" % (offset,))
        return offset // params.PAGE_SIZE

    def pages_of_span(self, offset, nbytes):
        """Region pages touched by [offset, offset+nbytes)."""
        if nbytes <= 0:
            return range(0)
        if offset < 0 or offset + nbytes > self.size:
            raise ConfigError("span [%d, %d) outside the region"
                              % (offset, offset + nbytes))
        return range(offset // params.PAGE_SIZE,
                     (offset + nbytes - 1) // params.PAGE_SIZE + 1)

    def page_offset_in_home_block(self, page_index):
        """Byte offset of a page within its home's exported segment."""
        home = self.home_of(page_index)
        return (page_index - self.home_block(home).start) * params.PAGE_SIZE

    def _check_page(self, page_index):
        if not 0 <= page_index < self.num_pages:
            raise ConfigError("region page %r out of range" % (page_index,))
