"""Global constants and default parameters for the UTLB reproduction.

The numbers here mirror the hardware the paper used: 4 KB virtual pages,
32-bit virtual addresses (Pentium-II era), a Myrinet LANai 4.2 network
interface with 1 MB of SRAM, and a 33 MHz NIC processor.  Everything is a
plain module-level constant so that the rest of the code base can reference
a single authoritative definition, and so tests can assert against the same
values the paper states.
"""

# ---------------------------------------------------------------------------
# Virtual memory geometry (x86, the paper's host platform)
# ---------------------------------------------------------------------------

#: Bytes per virtual/physical page.  The paper's entire analysis is in units
#: of 4 KB pages ("communication memory footprint (4 KB pages)").
PAGE_SIZE = 4096

#: log2(PAGE_SIZE); shifting a virtual address right by this many bits gives
#: the virtual page number.
PAGE_SHIFT = 12

#: Mask selecting the within-page offset of an address.
PAGE_OFFSET_MASK = PAGE_SIZE - 1

#: Width of a virtual address in bits (Pentium-II hosts).
VA_BITS = 32

#: Number of virtual pages in an address space (2^20 for 32-bit / 4 KB).
NUM_VPAGES = 1 << (VA_BITS - PAGE_SHIFT)

#: Two-level page-table split used both by the user-level lookup tree and by
#: the Hierarchical-UTLB translation table: the top 10 bits of the virtual
#: page number index the directory, the bottom 10 bits index a second-level
#: table (exactly the x86 2-level layout the paper cites [21, 26]).
DIRECTORY_BITS = 10
TABLE_BITS = 10
DIRECTORY_ENTRIES = 1 << DIRECTORY_BITS
TABLE_ENTRIES = 1 << TABLE_BITS
TABLE_INDEX_MASK = TABLE_ENTRIES - 1

# ---------------------------------------------------------------------------
# Network interface (Myrinet LANai 4.2)
# ---------------------------------------------------------------------------

#: Bytes of SRAM on the Myrinet PCI interface.
NIC_SRAM_BYTES = 1 << 20

#: Bytes per Shared UTLB-Cache entry: 20-bit physical page number + 8-bit
#: tag + 4-bit process tag packs into 4 bytes (Figure 3 / Figure 4 line
#: formats).
UTLB_CACHE_ENTRY_BYTES = 4

#: The implementation in the paper chose a 32 KB Shared UTLB-Cache,
#: i.e. 8 K entries (Section 4.2).
DEFAULT_UTLB_CACHE_ENTRIES = 8 * 1024

#: Cache-line process tag width: 4 bits -> at most 16 concurrently active
#: processes per NIC (Figure 3).
PROCESS_TAG_BITS = 4
MAX_PROCESSES_PER_NIC = 1 << PROCESS_TAG_BITS

#: Myrinet link rate (bytes/second): 160 MB/s per link.
LINK_BANDWIDTH = 160 * 1000 * 1000

#: Each VMMC transfer is broken at 4 KB page boundaries by the firmware, so
#: translation lookups happen one page at a time (paper, footnote 1).
MAX_DMA_BYTES = PAGE_SIZE

# ---------------------------------------------------------------------------
# Default experiment parameters (Section 6)
# ---------------------------------------------------------------------------

#: Cache sizes (in entries) swept by Tables 4, 5, 8 and Figure 7.
CACHE_SIZE_SWEEP = (1024, 2048, 4096, 8192, 16384)

#: Prefetch degrees swept by Figure 8 and Table 2.
PREFETCH_SWEEP = (1, 2, 4, 8, 16, 32)

#: Per-process pinned-memory limit used by Table 5: 4 MB.
TABLE5_MEMORY_LIMIT_BYTES = 4 * 1024 * 1024

#: Per-process pinned-memory limit used by Table 7: 16 MB.
TABLE7_MEMORY_LIMIT_BYTES = 16 * 1024 * 1024

#: Victima-style cache-resident translation (``mechanism="victima"``):
#: the NIC cache shares capacity with modeled data traffic, so every
#: this-many translation lookups one data line claims a way and evicts
#: a translation entry from the pressured set.
VICTIMA_PRESSURE_PERIOD = 64

#: SPARTA-style range translation (``mechanism="sparta-range"``): one
#: base+bounds segment entry costs this many page-entry slots of SRAM
#: (base, bounds, and frame fields versus a single packed page entry).
SPARTA_RANGE_ENTRY_COST = 2

#: Number of cluster nodes in the trace capture (four 4-way SMPs).
TRACE_NODES = 4

#: Processes per node in the trace capture: four application processes plus
#: one SVM protocol process.
TRACE_PROCESSES_PER_NODE = 5


def pages_for_bytes(nbytes):
    """Number of pages needed to hold ``nbytes`` (at least 1 for nbytes>0)."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative, got %r" % (nbytes,))
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
