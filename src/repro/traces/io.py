"""Trace serialization: a text format and a compact binary format.

Text format (one record per line, ``#`` comments allowed)::

    # timestamp node pid op vaddr nbytes
    1040 0 3 send 0x10004000 4096

Binary format: an 16-byte header (magic, version, record count) followed
by fixed 28-byte records, little-endian.
"""

import struct

from repro.errors import TraceError
from repro.traces.record import (
    OP_CODES,
    OP_FROM_CODE,
    TraceRecord,
)

MAGIC = b"UTLB"
VERSION = 1

_HEADER = struct.Struct("<4sII")
_RECORD = struct.Struct("<QIIIIi")     # timestamp, node, pid, op, vaddr, nbytes


# -- text ---------------------------------------------------------------------

def write_text(path, records):
    """Write records as text; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        handle.write("# timestamp node pid op vaddr nbytes\n")
        for record in records:
            handle.write("%d %d %d %s 0x%x %d\n" % (
                record.timestamp, record.node, record.pid, record.op,
                record.vaddr, record.nbytes))
            count += 1
    return count


def read_text(path):
    """Yield records from a text trace."""
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 6:
                raise TraceError("%s:%d: expected 6 fields, got %d"
                                 % (path, line_no, len(fields)))
            try:
                yield TraceRecord(
                    timestamp=int(fields[0]),
                    node=int(fields[1]),
                    pid=int(fields[2]),
                    op=fields[3],
                    vaddr=int(fields[4], 0),
                    nbytes=int(fields[5]))
            except (ValueError, TraceError) as exc:
                raise TraceError("%s:%d: bad record: %s"
                                 % (path, line_no, exc))


# -- binary --------------------------------------------------------------------

def write_binary(path, records):
    """Write records in the binary format; returns the record count."""
    records = list(records)
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION, len(records)))
        for record in records:
            handle.write(_RECORD.pack(
                record.timestamp, record.node, record.pid,
                OP_CODES[record.op], record.vaddr, record.nbytes))
    return len(records)


def read_binary(path):
    """Yield records from a binary trace."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceError("%s: truncated header" % (path,))
        magic, version, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceError("%s: bad magic %r" % (path, magic))
        if version != VERSION:
            raise TraceError("%s: unsupported version %d" % (path, version))
        for index in range(count):
            raw = handle.read(_RECORD.size)
            if len(raw) != _RECORD.size:
                raise TraceError("%s: truncated at record %d" % (path, index))
            timestamp, node, pid, op_code, vaddr, nbytes = _RECORD.unpack(raw)
            if op_code not in OP_FROM_CODE:
                raise TraceError("%s: record %d has bad op code %d"
                                 % (path, index, op_code))
            yield TraceRecord(timestamp, node, pid, OP_FROM_CODE[op_code],
                              vaddr, nbytes)
