"""Parallel trace generation: per-process streams fanned out to workers.

Trace *generation* is the last record-at-a-time pass on the scale
benchmark's critical path: the zipf draws and timestamp walks are pure
Python, and one process's stream cannot be vectorized (every draw feeds
the next).  But a node's trace is *defined* as the timestamp merge of
per-process streams that are each an independent function of ``(seed,
node, local_index)`` — the :meth:`iter_processes` protocol exposes
exactly that factorization — so the streams can be generated in
parallel worker processes and only their flat arrays shipped home.

:func:`compile_node_parallel` runs that pipeline end to end: each
worker generates one process's records and returns ``(pid, timestamps,
pages)`` as raw ``uint64`` buffers (one entry per translation lookup,
multi-page records pre-expanded); the parent reproduces the merge
vectorized — the ordering contract sorts records by ``(timestamp, pid,
stream index, arrival order)``, and since every pid lives in exactly
one stream, a *stable* argsort over ``(timestamp, pid-rank)`` of the
stream-ordered concatenation serializes identically — and assembles a
:class:`~repro.traces.compile.CompiledStreams` **byte-identical** to
``compile_streams(workload.iter_node(...))``: per-pid streams are the
workers' page arrays verbatim (a merge never reorders within one pid),
``pid_order`` falls out of each pid's first merged position, and the
interleaved flat arrays out of the sort permutation.

Workers prefer the ``iter_page_streams`` protocol — the pre-record form
that yields ``(timestamp, page)`` pairs directly — which halves
generation cost by never constructing (or re-parsing) record objects;
workloads exposing only ``iter_processes`` take the record form with
``record.pages()`` expansion.  With ``workers <= 1`` (notably on a
single-CPU host, where a pool is pure overhead) the same per-process
array generation runs in-process and still beats the record-at-a-time
merge.  Without numpy or without either protocol, the function degrades
to the streaming serial compile
(:func:`~repro.traces.compile.compile_in_chunks` over ``iter_node``) —
same output, one process.
"""

from array import array
from multiprocessing import get_context
import os

from repro.errors import TraceError
from repro.traces.compile import CompiledStreams, compile_in_chunks

#: Timestamps at or above 2^48 no longer fit beside a 16-bit pid rank in
#: one uint64 sort key; such traces take the (slower, equivalent)
#: two-key lexsort.
_TS_KEY_LIMIT = 1 << 48


def _numpy():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def generate_process_arrays(workload, node, seed, scale, index):
    """Generate one process's stream as ``(pid, ts bytes, page bytes)``.

    The worker-side half of the pipeline (also the pool ``map`` target):
    drains stream ``index`` of the workload into two flat ``uint64``
    arrays with one entry per translation lookup, verifying timestamp
    sortedness as it drains (like the lazy merge would).  Prefers the
    pre-record ``iter_page_streams`` form; falls back to
    ``iter_processes`` records with ``record.pages()`` expansion.
    """
    ts = array("Q")
    pages = array("Q")
    append_ts = ts.append
    append_page = pages.append
    last = float("-inf")
    if hasattr(workload, "iter_page_streams"):
        pid, stream = workload.iter_page_streams(
            node, seed=seed, scale=scale)[index]
        for t, page in stream:
            if t < last:
                raise TraceError(
                    "stream %d not timestamp-sorted at t=%r" % (index, t))
            last = t
            append_ts(t)
            append_page(page)
        if not pages:
            pid = None
        return pid, ts.tobytes(), pages.tobytes()
    stream = workload.iter_processes(node, seed=seed, scale=scale)[index]
    pid = None
    for record in stream:
        t = record.timestamp
        if t < last:
            raise TraceError(
                "stream %d not timestamp-sorted at t=%r" % (index, t))
        last = t
        pid = record.pid
        for page in record.pages():
            append_ts(t)
            append_page(page)
    return pid, ts.tobytes(), pages.tobytes()


def _worker(args):
    return generate_process_arrays(*args)


def default_generation_workers():
    """Worker-count default: one per CPU, capped at the NIC's 16-tag
    process ceiling (a node never has more streams than that)."""
    return max(1, min(16, os.cpu_count() or 1))


def compile_node_parallel(workload, node=0, seed=0, scale=1.0,
                          workers=None, mp_context=None, kernel=None):
    """Generate and compile one node's trace with parallel generation.

    Returns a :class:`CompiledStreams` byte-identical to
    ``compile_streams(list(workload.iter_node(node, seed, scale)))``.
    ``workers`` caps the generation pool (default
    :func:`default_generation_workers`); ``kernel`` is the serial
    fallback's compile knob.  See the module docstring for the merge
    reproduction argument.
    """
    numpy = _numpy()
    if workers is None:
        workers = default_generation_workers()
    if hasattr(workload, "iter_page_streams"):
        count = len(workload.iter_page_streams(node, seed=seed,
                                               scale=scale))
    elif hasattr(workload, "iter_processes"):
        count = len(workload.iter_processes(node, seed=seed, scale=scale))
    else:
        count = 0
    if numpy is None or count == 0:
        return compile_in_chunks(
            workload.iter_node(node, seed=seed, scale=scale),
            kernel=kernel)
    jobs = [(workload, node, seed, scale, index) for index in range(count)]
    if workers > 1 and count > 1:
        context = get_context(mp_context)
        with context.Pool(processes=min(workers, count)) as pool:
            produced = pool.map(_worker, jobs)
    else:
        produced = [generate_process_arrays(*job) for job in jobs]

    # Streams in stream order, empty ones dropped (a pid with no records
    # never registers in serial compilation either).
    pids_in_order = []
    ts_parts = []
    page_parts = []
    for pid, ts_bytes, page_bytes in produced:
        if pid is None:
            continue
        pids_in_order.append(pid)
        ts_parts.append(numpy.frombuffer(ts_bytes, dtype=numpy.uint64))
        page_parts.append(numpy.frombuffer(page_bytes,
                                           dtype=numpy.uint64))
    if not pids_in_order:
        return CompiledStreams([], {}, [], array("H"), array("Q"), 0)
    if len(set(pids_in_order)) != len(pids_in_order):
        raise TraceError(
            "iter_processes streams share a pid; the parallel merge "
            "requires one stream per process")

    # Transients are released as soon as the next stage no longer needs
    # them: at headline scale every uint64 array here is 8 bytes per
    # lookup, and the scale benchmark gates peak RSS.
    lens = numpy.array([len(part) for part in ts_parts],
                       dtype=numpy.intp)
    ts_all = numpy.concatenate(ts_parts)
    del ts_parts
    pids_sorted = sorted(pids_in_order)
    rank_of = {pid: rank for rank, pid in enumerate(pids_sorted)}
    ranks_all = numpy.repeat(
        numpy.array([rank_of[pid] for pid in pids_in_order],
                    dtype=numpy.uint16), lens)

    # The merge: a stable sort by (timestamp, pid) over the
    # stream-ordered concatenation.  Packing both into one uint64 key
    # (in place — the timestamps are never needed again) sorts ~2x
    # faster than lexsort; huge timestamps take the lexsort fallback.
    if int(ts_all.max()) < _TS_KEY_LIMIT:
        ts_all <<= numpy.uint64(16)
        ts_all |= ranks_all
        order = numpy.argsort(ts_all, kind="stable")
    else:
        order = numpy.lexsort((ranks_all, ts_all))
    del ts_all

    ranks_merged = ranks_all[order]
    del ranks_all
    uniq, first_pos = numpy.unique(ranks_merged, return_index=True)
    appearance = numpy.argsort(first_pos)
    pid_order = [pids_sorted[int(uniq[i])] for i in appearance]
    dense_of_rank = numpy.empty(len(pids_sorted), dtype=numpy.uint16)
    for dense, i in enumerate(appearance):
        dense_of_rank[uniq[i]] = dense

    index_stream = array("H")
    index_stream.frombytes(dense_of_rank[ranks_merged].tobytes())
    del ranks_merged
    pages_all = numpy.concatenate(page_parts)
    page_stream = array("Q")
    page_stream.frombytes(pages_all[order].tobytes())
    del pages_all, order
    streams = {}
    for pid, part in zip(pids_in_order, page_parts):
        stream = streams[pid] = array("Q")
        stream.frombytes(part.tobytes())
    return CompiledStreams(pids_sorted, streams, pid_order, index_stream,
                           page_stream, len(page_stream))
