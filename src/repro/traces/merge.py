"""Timestamp serialization of per-process traces.

"Time stamps are used to serialize the traces from the five processes on
each SMP" (Section 6).  The merge is stable: ties are broken by
(timestamp, pid, arrival order) so a given set of per-process streams
always serializes identically.
"""

import heapq

from repro.errors import TraceError


def merge_streams(streams):
    """Merge per-process record lists into one timestamp-ordered list.

    ``streams`` is an iterable of record sequences, each already sorted by
    timestamp (they are verified).  Returns a single sorted list.
    """
    decorated = []
    for stream_index, stream in enumerate(streams):
        last = None
        for order, record in enumerate(stream):
            if last is not None and record.timestamp < last:
                raise TraceError(
                    "stream %d not timestamp-sorted at record %d"
                    % (stream_index, order))
            last = record.timestamp
            decorated.append(
                ((record.timestamp, record.pid, stream_index, order), record))
    decorated.sort(key=lambda pair: pair[0])
    return [record for _, record in decorated]


def merge_record_streams(streams):
    """Lazily merge per-process record *iterables* by timestamp.

    The streaming twin of :func:`merge_streams`, with the identical
    ordering contract — records come out sorted by ``(timestamp, pid,
    stream index, arrival order)`` — but the inputs are consumed one
    record at a time through :func:`heapq.merge`, so peak memory is one
    pending record per stream instead of the whole serialized trace.
    ``heapq.merge`` is stable across its inputs (ties go to the earlier
    iterable), which is exactly the eager sort's ``stream_index`` then
    ``order`` tie-break, so ``list(merge_record_streams(gens))`` is
    byte-identical to ``merge_streams(lists)`` over the same records —
    the Hypothesis differential test in ``tests/traces/test_merge.py``
    enforces it.

    Each stream's timestamp-sortedness is verified as it drains, like
    the eager merge; a violation raises :class:`TraceError` naming the
    stream and record.
    """
    def _keyed(stream_index, stream):
        last = None
        for order, record in enumerate(stream):
            if last is not None and record.timestamp < last:
                raise TraceError(
                    "stream %d not timestamp-sorted at record %d"
                    % (stream_index, order))
            last = record.timestamp
            yield (record.timestamp, record.pid), record

    merged = heapq.merge(*[_keyed(i, s) for i, s in enumerate(streams)])
    for _key, record in merged:
        yield record


def merge_sorted_iters(iterables):
    """Lazily merge already-sorted record iterables (for big trace files)."""
    keyed = (
        ((record.timestamp, record.pid, index), record)
        for index, it in enumerate(iterables)
        for record in it
    )
    # heapq.merge needs each input sorted; we sort the flattened stream
    # lazily per input by wrapping each iterable with its own generator.
    def _keyed(index, iterable):
        for record in iterable:
            yield (record.timestamp, record.pid, index), record

    merged = heapq.merge(*[_keyed(i, it) for i, it in enumerate(iterables)])
    for _, record in merged:
        yield record


def split_by_node(records):
    """Group a merged trace into per-node streams (dict node -> list)."""
    by_node = {}
    for record in records:
        by_node.setdefault(record.node, []).append(record)
    return by_node


def split_by_pid(records):
    """Group a trace into per-process streams (dict pid -> list)."""
    by_pid = {}
    for record in records:
        by_pid.setdefault(record.pid, []).append(record)
    return by_pid
