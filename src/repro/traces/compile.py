"""Trace compilation: flat page streams for the fast replay engine.

The trace-driven analysis charges one translation lookup per virtual page
crossed (footnote 1), so replay only ever consumes ``(pid, vpage)`` pairs
in trace order.  :func:`compile_streams` performs that flattening once,
ahead of replay: each process's page numbers land in a compact
``array('Q')`` and the merged trace's pid interleaving is preserved both
as a run-length segment list and as a pair of parallel flat arrays (pid
index + page number, one entry per lookup).  The simulator's inner loop
then iterates plain integers instead of calling ``TraceRecord.pages()``
per record — the shape the paper's Section 6.2 analysis implies
(per-mechanism cost is a linear function of event counts over the page
stream).

Compilation is a single pass over the records, which also yields the pid
set — callers no longer need a separate ``split_by_pid`` pass just to
enumerate processes.
"""

import sys
from array import array


class CompiledStreams:
    """One node's trace, flattened to per-process page streams.

    Attributes
    ----------
    pids:
        Sorted list of process ids appearing in the trace.
    streams:
        ``{pid: array('Q')}`` — every virtual page the process touches,
        in trace order, one entry per translation lookup.
    segments:
        ``[(pid, start, stop), ...]`` — the merged trace's interleaving:
        replaying ``streams[pid][start:stop]`` for each segment in order
        visits every lookup in exactly the order record-at-a-time replay
        does.  Runs of consecutive same-pid records are merged into one
        segment.
    pid_order:
        Pids in first-appearance order; position is the dense index used
        by ``index_stream``.
    index_stream / page_stream:
        Parallel flat arrays over the whole merged trace: lookup ``i`` is
        process ``pid_order[index_stream[i]]`` touching page
        ``page_stream[i]``.  This is the replay hot loop's input — pid
        interleaving in real traces is fine-grained (often one page per
        record), so per-lookup indexing beats per-segment dispatch.
    total_pages:
        Total lookups across all streams (the replay work, in pages).
    """

    __slots__ = ("pids", "streams", "segments", "pid_order", "index_stream",
                 "page_stream", "total_pages")

    def __init__(self, pids, streams, segments, pid_order, index_stream,
                 page_stream, total_pages):
        self.pids = pids
        self.streams = streams
        self.segments = segments
        self.pid_order = pid_order
        self.index_stream = index_stream
        self.page_stream = page_stream
        self.total_pages = total_pages

    def __repr__(self):
        return ("CompiledStreams(pids=%r, segments=%d, pages=%d)"
                % (self.pids, len(self.segments), self.total_pages))


def compile_streams(records):
    """Compile a (timestamp-sorted, merged) trace into page streams.

    Single pass: builds the per-pid streams, the segment list, the
    interleaved flat arrays, and the pid set together.  Works on any
    iterable of records.
    """
    streams = {}
    segments = []
    pid_order = []
    pid_chunk = {}          # pid -> its dense index as one 'H' item's bytes
    index_stream = array("H")
    page_stream = array("Q")
    byteorder = sys.byteorder
    last_pid = None
    for record in records:
        pid = record.pid
        stream = streams.get(pid)
        if stream is None:
            stream = streams[pid] = array("Q")
            pid_chunk[pid] = len(pid_order).to_bytes(2, byteorder)
            pid_order.append(pid)
        start = len(stream)
        pages = record.pages()
        stream.extend(pages)
        stop = len(stream)
        page_stream.extend(pages)
        index_stream.frombytes(pid_chunk[pid] * (stop - start))
        if pid == last_pid:
            segments[-1] = (pid, segments[-1][1], stop)
        else:
            segments.append((pid, start, stop))
            last_pid = pid
    return CompiledStreams(sorted(streams), streams, segments, pid_order,
                           index_stream, page_stream, len(page_stream))
