"""Trace compilation: flat page streams for the fast replay engine.

The trace-driven analysis charges one translation lookup per virtual page
crossed (footnote 1), so replay only ever consumes ``(pid, vpage)`` pairs
in trace order.  :func:`compile_streams` performs that flattening once,
ahead of replay: each process's page numbers land in a compact
``array('Q')`` and the merged trace's pid interleaving is preserved both
as a run-length segment list and as a pair of parallel flat arrays (pid
index + page number, one entry per lookup).  The simulator's inner loop
then iterates plain integers instead of calling ``TraceRecord.pages()``
per record — the shape the paper's Section 6.2 analysis implies
(per-mechanism cost is a linear function of event counts over the page
stream).

Compilation is a single pass over the records, which also yields the pid
set — callers no longer need a separate ``split_by_pid`` pass just to
enumerate processes.

For cross-process distribution, :meth:`CompiledStreams.to_buffers` /
:meth:`CompiledStreams.from_buffers` split a compiled trace into a small
JSON-safe metadata header plus a flat list of raw byte buffers — the
shape ``multiprocessing.shared_memory`` wants.  ``from_buffers`` wraps
the buffers with zero-copy ``memoryview`` casts, so a worker attached to
a shared block replays the parent's arrays in place instead of unpickling
a copy of the trace.

Compilation is *incremental* at heart: :class:`StreamCompiler` consumes
record chunks (or whole lazy generators) and appends straight into the
growing arrays, so a trace generated through the streaming record
protocol (``SyntheticApp.iter_node`` / ``StreamingNodeTrace``) compiles
with peak memory O(chunk + compiled size) — the per-record Python
objects are transient and the full record list never exists.
:func:`compile_streams` is the one-shot spelling of the same pass.

With numpy importable, ingestion runs through a *compile kernel*: each
staged batch of records collapses to three int64 columns in one pass,
page expansion becomes vectorized index math (``vaddr >> PAGE_SHIFT``
plus a repeat/cumsum ladder for multi-page records), and the flat
buffers grow by ``frombytes`` of whole ndarrays instead of per-record
appends.  The kernel is **byte-identical** to the per-record loop at
every chunking — batches with values the vectorized path cannot model
exactly (``nbytes < 1``, 64-bit wraparound in ``vaddr + nbytes - 1``,
fields beyond int64) fall back to the loop *before* touching any
buffer, so exotic records compile exactly as before.  ``kernel=False``
forces the loop everywhere (the differential baseline).
"""

import sys
from array import array
from itertools import islice

from repro import params
from repro.errors import TraceError

_NUMPY = None
_NUMPY_CHECKED = False


def _numpy():
    """The numpy module, or None (optional accelerator, not a dependency)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _NUMPY = numpy
    return _NUMPY

#: Version tag of the ``to_buffers`` metadata layout.
#: 2: ``segments`` left the header — it is derived (the run-length
#: encoding of ``index_stream``), and serializing one JSON list per
#: pid run made the header O(records) for fine-interleaved traces.
BUFFER_FORMAT = 2

#: Default record-chunk size for :func:`compile_in_chunks`: the staging
#: buffer a chunked caller holds between ``StreamCompiler.add`` calls.
#: Big enough to amortize per-call overhead, small enough (a few MB of
#: records) that chunk staging never shows up in peak RSS next to the
#: compiled arrays themselves.
DEFAULT_CHUNK_RECORDS = 65536


class CompiledStreams:
    """One node's trace, flattened to per-process page streams.

    Attributes
    ----------
    pids:
        Sorted list of process ids appearing in the trace.
    streams:
        ``{pid: array('Q')}`` — every virtual page the process touches,
        in trace order, one entry per translation lookup.
    pid_order:
        Pids in first-appearance order; position is the dense index used
        by ``index_stream``.
    index_stream / page_stream:
        Parallel flat arrays over the whole merged trace: lookup ``i`` is
        process ``pid_order[index_stream[i]]`` touching page
        ``page_stream[i]``.  This is the replay hot loop's input — pid
        interleaving in real traces is fine-grained (often one page per
        record), so per-lookup indexing beats per-segment dispatch.
    total_pages:
        Total lookups across all streams (the replay work, in pages).

    ``segments`` — the ``[(pid, start, stop), ...]`` run-length view of
    the merged trace's pid interleaving — is *derived on demand*: it is
    exactly the run-length encoding of ``index_stream``, and storing it
    (or shipping it in the transport header) cost O(records) for
    fine-interleaved traces where nearly every record switches pid
    (the datacenter workloads do; that list dwarfed the arrays it
    described).  Nothing in replay consumes it — the hot loop reads the
    flat arrays — so the tuples exist only while a caller (tests,
    debugging) iterates the property.
    """

    __slots__ = ("pids", "streams", "pid_order", "index_stream",
                 "page_stream", "total_pages")

    def __init__(self, pids, streams, pid_order, index_stream,
                 page_stream, total_pages):
        self.pids = pids
        self.streams = streams
        self.pid_order = pid_order
        self.index_stream = index_stream
        self.page_stream = page_stream
        self.total_pages = total_pages

    @property
    def segments(self):
        """The pid interleaving as ``[(pid, start, stop), ...]`` runs.

        Replaying ``streams[pid][start:stop]`` for each segment in
        order visits every lookup exactly as record-at-a-time replay
        does; runs of consecutive same-pid records merge into one
        segment (a record's pages share its pid, so record-level and
        lookup-level run-length encodings coincide).  Computed fresh
        from ``index_stream`` on each access — O(total_pages) time,
        nothing retained.
        """
        segments = []
        pid_order = self.pid_order
        counts = [0] * len(pid_order)
        last = -1
        run = 0
        for dense in self.index_stream:
            if dense == last:
                run += 1
                continue
            if run:
                start = counts[last]
                counts[last] = start + run
                segments.append((pid_order[last], start, start + run))
            last = dense
            run = 1
        if run:
            start = counts[last]
            segments.append((pid_order[last], start, start + run))
        return segments

    def __repr__(self):
        return ("CompiledStreams(pids=%r, pages=%d)"
                % (self.pids, self.total_pages))

    def numpy_views(self):
        """Zero-copy numpy views ``(index_stream, page_stream)``, or None.

        Wraps the interleaved flat arrays as ``uint16`` / ``uint64``
        ndarrays without copying — works both on owned ``array`` objects
        and on the ``memoryview`` casts a shared-memory attachment holds.
        Returns None when numpy is not installed (it is an optional
        accelerator, never a dependency): callers must keep a pure-Python
        fallback.
        """
        try:
            import numpy
        except ImportError:
            return None
        return (numpy.frombuffer(self.index_stream, dtype=numpy.uint16),
                numpy.frombuffer(self.page_stream, dtype=numpy.uint64))

    def to_buffers(self):
        """Split into ``(meta, buffers)`` for shared-memory transport.

        ``meta`` is a small JSON-safe dict (pids, segment list, byte
        order, and one ``[typecode, nbytes]`` descriptor per buffer);
        ``buffers`` is the matching list of raw little-endian byte views
        over the arrays, in a fixed order: ``index_stream``,
        ``page_stream``, then one per-pid stream per ``pid_order`` entry.
        The views alias this object's arrays — nothing is copied here;
        the copy (if any) is the caller writing them into a block.
        """
        arrays = [("H", self.index_stream), ("Q", self.page_stream)]
        arrays.extend(("Q", self.streams[pid]) for pid in self.pid_order)
        meta = {
            "format": BUFFER_FORMAT,
            "byteorder": sys.byteorder,
            "pids": list(self.pids),
            "pid_order": list(self.pid_order),
            "total_pages": self.total_pages,
            "buffers": [[code, _raw_view(data).nbytes]
                        for code, data in arrays],
        }
        return meta, [_raw_view(data) for _, data in arrays]

    @classmethod
    def from_buffers(cls, meta, buffers):
        """Rebuild from :meth:`to_buffers` output without copying.

        ``buffers`` may be any bytes-like objects (typically memoryview
        slices of one shared-memory block); each is wrapped with a
        ``memoryview.cast`` to its declared typecode, so the arrays of
        the result are views over the caller's buffers.  Raises
        :class:`TraceError` on a layout-version or byte-order mismatch —
        shared memory never crosses machines, so a mismatch means a bug,
        not an exotic host.
        """
        if meta.get("format") != BUFFER_FORMAT:
            raise TraceError("unsupported compiled-stream buffer format %r"
                             % (meta.get("format"),))
        if meta["byteorder"] != sys.byteorder:
            raise TraceError("compiled-stream buffers are %s-endian, host "
                             "is %s-endian" % (meta["byteorder"],
                                               sys.byteorder))
        if len(buffers) != len(meta["buffers"]):
            raise TraceError("expected %d stream buffers, got %d"
                             % (len(meta["buffers"]), len(buffers)))
        views = []
        for (code, nbytes), data in zip(meta["buffers"], buffers):
            view = memoryview(data).cast("B")
            if view.nbytes != nbytes:
                raise TraceError("stream buffer is %d bytes, header says %d"
                                 % (view.nbytes, nbytes))
            views.append(view.cast(code))
        pid_order = list(meta["pid_order"])
        index_stream, page_stream = views[0], views[1]
        streams = dict(zip(pid_order, views[2:]))
        return cls(list(meta["pids"]), streams, pid_order, index_stream,
                   page_stream, meta["total_pages"])


def _raw_view(data):
    """A flat unsigned-byte view of any bytes-like object (zero-copy)."""
    return memoryview(data).cast("B")


class StreamCompiler:
    """Incremental trace compilation: feed record chunks, finish once.

    The streaming pipeline's sink: :meth:`add` consumes any iterable of
    records (a chunk, or a whole lazy generator) and appends directly
    into the growing ``array('Q')`` buffers; :meth:`finish` seals the
    compiler and returns a :class:`CompiledStreams` **byte-identical**
    to what one-shot :func:`compile_streams` produces over the same
    records — chunk boundaries leave no trace in the output (the flat
    arrays only ever append, and the derived ``segments`` view cannot
    see where an ``add`` ended).  Peak memory is therefore O(caller's
    chunk + compiled size), never O(records); :func:`compile_streams`
    itself is just one ``add`` of the whole iterable.

    ``kernel`` selects the ingestion path: None (the default) uses the
    vectorized numpy kernel when numpy is importable, True requires it
    (:class:`TraceError` otherwise), False forces the per-record loop.
    Either path produces byte-identical output; batches the kernel
    cannot model exactly fall back to the loop record-by-record.
    """

    __slots__ = ("_streams", "_pid_order", "_pid_chunk", "_index_stream",
                 "_page_stream", "_finished", "_kernel")

    def __init__(self, kernel=None):
        self._streams = {}
        self._pid_order = []
        self._pid_chunk = {}    # pid -> its dense index as one 'H' item
        self._index_stream = array("H")
        self._page_stream = array("Q")
        self._finished = False
        if kernel is None:
            kernel = _numpy() is not None
        elif kernel and _numpy() is None:
            raise TraceError(
                "kernel=True requires numpy, which is not installed")
        self._kernel = bool(kernel)

    def add(self, records):
        """Compile one chunk (any iterable of records) into the buffers."""
        if self._finished:
            raise TraceError("StreamCompiler already finished")
        if not self._kernel:
            return self._add_loop(records)
        source = iter(records)
        while True:
            batch = list(islice(source, DEFAULT_CHUNK_RECORDS))
            if not batch:
                return
            if not self._add_batch_kernel(batch):
                self._add_loop(batch)

    def _add_batch_kernel(self, batch):
        """Vectorized ingestion of one staged batch; False = punt.

        Computes everything *before* mutating any buffer, so returning
        False (a value the vectorized math cannot model exactly — see
        the class docstring) leaves the compiler untouched and the
        per-record loop reproduces the batch byte-identically.
        """
        numpy = _numpy()
        count = len(batch)
        try:
            pids = numpy.fromiter((r.pid for r in batch),
                                  dtype=numpy.int64, count=count)
            vaddr = numpy.fromiter((r.vaddr for r in batch),
                                   dtype=numpy.int64, count=count)
            nbytes = numpy.fromiter((r.nbytes for r in batch),
                                    dtype=numpy.int64, count=count)
        except (OverflowError, ValueError, TypeError):
            return False
        vaddr = vaddr.astype(numpy.uint64)
        if int(nbytes.min()) < 1:
            return False            # pages() yields an empty/exotic range
        shift = numpy.uint64(params.PAGE_SHIFT)
        one = numpy.uint64(1)
        end = vaddr + nbytes.astype(numpy.uint64) - one
        if bool((end < vaddr).any()):
            return False            # 2^64 wraparound; python ints don't wrap
        firsts = vaddr >> shift
        counts = (end >> shift) - firsts + one

        # Dense-index mapping in first-appearance order; new pids
        # register exactly as the loop would (the 2-byte encoding raises
        # the same OverflowError past 65535 processes).
        uniq, first_pos, inverse = numpy.unique(
            pids, return_index=True, return_inverse=True)
        byteorder = sys.byteorder
        dense_of = numpy.empty(len(uniq), dtype=numpy.uint16)
        for u in numpy.argsort(first_pos):
            pid = int(uniq[u])
            chunk = self._pid_chunk.get(pid)
            if chunk is None:
                dense = len(self._pid_order)
                self._pid_chunk[pid] = dense.to_bytes(2, byteorder)
                self._pid_order.append(pid)
                self._streams[pid] = array("Q")
            else:
                dense = int.from_bytes(chunk, byteorder)
            dense_of[u] = dense
        rec_dense = dense_of[inverse.reshape(-1)]

        if int(counts.max()) == 1:
            pages = firsts
            page_dense = rec_dense
        else:
            lens = counts.astype(numpy.intp)
            total = int(lens.sum())
            starts = numpy.repeat(firsts, lens)
            offsets = numpy.cumsum(lens) - lens     # exclusive prefix
            steps = (numpy.arange(total, dtype=numpy.uint64)
                     - numpy.repeat(offsets.astype(numpy.uint64), lens))
            pages = starts + steps
            page_dense = numpy.repeat(rec_dense, lens)
        self._page_stream.frombytes(pages.tobytes())
        self._index_stream.frombytes(page_dense.tobytes())
        for dense in numpy.unique(page_dense):
            pid = self._pid_order[int(dense)]
            self._streams[pid].frombytes(
                pages[page_dense == dense].tobytes())
        return True

    def _add_loop(self, records):
        """The per-record reference path (and the kernel's fallback)."""
        streams = self._streams
        pid_order = self._pid_order
        pid_chunk = self._pid_chunk
        index_stream = self._index_stream
        page_stream = self._page_stream
        byteorder = sys.byteorder
        for record in records:
            pid = record.pid
            stream = streams.get(pid)
            if stream is None:
                stream = streams[pid] = array("Q")
                pid_chunk[pid] = len(pid_order).to_bytes(2, byteorder)
                pid_order.append(pid)
            pages = record.pages()
            stream.extend(pages)
            page_stream.extend(pages)
            index_stream.frombytes(pid_chunk[pid] * len(pages))

    def finish(self):
        """Seal the compiler; returns the :class:`CompiledStreams`."""
        if self._finished:
            raise TraceError("StreamCompiler already finished")
        self._finished = True
        return CompiledStreams(sorted(self._streams), self._streams,
                               self._pid_order, self._index_stream,
                               self._page_stream,
                               len(self._page_stream))


def compile_streams(records, kernel=None):
    """Compile a (timestamp-sorted, merged) trace into page streams.

    Single pass: builds the per-pid streams, the segment list, the
    interleaved flat arrays, and the pid set together.  Works on any
    iterable of records — a list, or a lazy generator/
    ``StreamingNodeTrace``, in which case the record objects are
    transient and peak memory is bounded by the compiled arrays.
    ``kernel`` is the :class:`StreamCompiler` ingestion knob (None =
    numpy when available).
    """
    compiler = StreamCompiler(kernel=kernel)
    compiler.add(records)
    return compiler.finish()


def compile_in_chunks(records, chunk_records=DEFAULT_CHUNK_RECORDS,
                      kernel=None):
    """Compile via fixed-size record chunks (the explicit chunk knob).

    Equivalent to :func:`compile_streams` for any ``chunk_records >= 1``
    — the differential tests diff them byte-for-byte, including
    ``chunk_records=1`` and chunks larger than the trace.  Callers that
    pull records from an external source (a trace file reader, an IPC
    pipe) use this to bound their staging buffer explicitly.
    """
    if chunk_records < 1:
        raise TraceError("chunk_records must be at least 1, got %r"
                         % (chunk_records,))
    compiler = StreamCompiler(kernel=kernel)
    chunk = []
    append = chunk.append
    for record in records:
        append(record)
        if len(chunk) >= chunk_records:
            compiler.add(chunk)
            del chunk[:]
    if chunk:
        compiler.add(chunk)
    return compiler.finish()
