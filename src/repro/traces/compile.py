"""Trace compilation: flat page streams for the fast replay engine.

The trace-driven analysis charges one translation lookup per virtual page
crossed (footnote 1), so replay only ever consumes ``(pid, vpage)`` pairs
in trace order.  :func:`compile_streams` performs that flattening once,
ahead of replay: each process's page numbers land in a compact
``array('Q')`` and the merged trace's pid interleaving is preserved both
as a run-length segment list and as a pair of parallel flat arrays (pid
index + page number, one entry per lookup).  The simulator's inner loop
then iterates plain integers instead of calling ``TraceRecord.pages()``
per record — the shape the paper's Section 6.2 analysis implies
(per-mechanism cost is a linear function of event counts over the page
stream).

Compilation is a single pass over the records, which also yields the pid
set — callers no longer need a separate ``split_by_pid`` pass just to
enumerate processes.

For cross-process distribution, :meth:`CompiledStreams.to_buffers` /
:meth:`CompiledStreams.from_buffers` split a compiled trace into a small
JSON-safe metadata header plus a flat list of raw byte buffers — the
shape ``multiprocessing.shared_memory`` wants.  ``from_buffers`` wraps
the buffers with zero-copy ``memoryview`` casts, so a worker attached to
a shared block replays the parent's arrays in place instead of unpickling
a copy of the trace.
"""

import sys
from array import array

from repro.errors import TraceError

#: Version tag of the ``to_buffers`` metadata layout.
BUFFER_FORMAT = 1


class CompiledStreams:
    """One node's trace, flattened to per-process page streams.

    Attributes
    ----------
    pids:
        Sorted list of process ids appearing in the trace.
    streams:
        ``{pid: array('Q')}`` — every virtual page the process touches,
        in trace order, one entry per translation lookup.
    segments:
        ``[(pid, start, stop), ...]`` — the merged trace's interleaving:
        replaying ``streams[pid][start:stop]`` for each segment in order
        visits every lookup in exactly the order record-at-a-time replay
        does.  Runs of consecutive same-pid records are merged into one
        segment.
    pid_order:
        Pids in first-appearance order; position is the dense index used
        by ``index_stream``.
    index_stream / page_stream:
        Parallel flat arrays over the whole merged trace: lookup ``i`` is
        process ``pid_order[index_stream[i]]`` touching page
        ``page_stream[i]``.  This is the replay hot loop's input — pid
        interleaving in real traces is fine-grained (often one page per
        record), so per-lookup indexing beats per-segment dispatch.
    total_pages:
        Total lookups across all streams (the replay work, in pages).
    """

    __slots__ = ("pids", "streams", "segments", "pid_order", "index_stream",
                 "page_stream", "total_pages")

    def __init__(self, pids, streams, segments, pid_order, index_stream,
                 page_stream, total_pages):
        self.pids = pids
        self.streams = streams
        self.segments = segments
        self.pid_order = pid_order
        self.index_stream = index_stream
        self.page_stream = page_stream
        self.total_pages = total_pages

    def __repr__(self):
        return ("CompiledStreams(pids=%r, segments=%d, pages=%d)"
                % (self.pids, len(self.segments), self.total_pages))

    def numpy_views(self):
        """Zero-copy numpy views ``(index_stream, page_stream)``, or None.

        Wraps the interleaved flat arrays as ``uint16`` / ``uint64``
        ndarrays without copying — works both on owned ``array`` objects
        and on the ``memoryview`` casts a shared-memory attachment holds.
        Returns None when numpy is not installed (it is an optional
        accelerator, never a dependency): callers must keep a pure-Python
        fallback.
        """
        try:
            import numpy
        except ImportError:
            return None
        return (numpy.frombuffer(self.index_stream, dtype=numpy.uint16),
                numpy.frombuffer(self.page_stream, dtype=numpy.uint64))

    def to_buffers(self):
        """Split into ``(meta, buffers)`` for shared-memory transport.

        ``meta`` is a small JSON-safe dict (pids, segment list, byte
        order, and one ``[typecode, nbytes]`` descriptor per buffer);
        ``buffers`` is the matching list of raw little-endian byte views
        over the arrays, in a fixed order: ``index_stream``,
        ``page_stream``, then one per-pid stream per ``pid_order`` entry.
        The views alias this object's arrays — nothing is copied here;
        the copy (if any) is the caller writing them into a block.
        """
        arrays = [("H", self.index_stream), ("Q", self.page_stream)]
        arrays.extend(("Q", self.streams[pid]) for pid in self.pid_order)
        meta = {
            "format": BUFFER_FORMAT,
            "byteorder": sys.byteorder,
            "pids": list(self.pids),
            "pid_order": list(self.pid_order),
            "segments": [list(segment) for segment in self.segments],
            "total_pages": self.total_pages,
            "buffers": [[code, _raw_view(data).nbytes]
                        for code, data in arrays],
        }
        return meta, [_raw_view(data) for _, data in arrays]

    @classmethod
    def from_buffers(cls, meta, buffers):
        """Rebuild from :meth:`to_buffers` output without copying.

        ``buffers`` may be any bytes-like objects (typically memoryview
        slices of one shared-memory block); each is wrapped with a
        ``memoryview.cast`` to its declared typecode, so the arrays of
        the result are views over the caller's buffers.  Raises
        :class:`TraceError` on a layout-version or byte-order mismatch —
        shared memory never crosses machines, so a mismatch means a bug,
        not an exotic host.
        """
        if meta.get("format") != BUFFER_FORMAT:
            raise TraceError("unsupported compiled-stream buffer format %r"
                             % (meta.get("format"),))
        if meta["byteorder"] != sys.byteorder:
            raise TraceError("compiled-stream buffers are %s-endian, host "
                             "is %s-endian" % (meta["byteorder"],
                                               sys.byteorder))
        if len(buffers) != len(meta["buffers"]):
            raise TraceError("expected %d stream buffers, got %d"
                             % (len(meta["buffers"]), len(buffers)))
        views = []
        for (code, nbytes), data in zip(meta["buffers"], buffers):
            view = memoryview(data).cast("B")
            if view.nbytes != nbytes:
                raise TraceError("stream buffer is %d bytes, header says %d"
                                 % (view.nbytes, nbytes))
            views.append(view.cast(code))
        pid_order = list(meta["pid_order"])
        index_stream, page_stream = views[0], views[1]
        streams = dict(zip(pid_order, views[2:]))
        return cls(list(meta["pids"]), streams,
                   [tuple(segment) for segment in meta["segments"]],
                   pid_order, index_stream, page_stream,
                   meta["total_pages"])


def _raw_view(data):
    """A flat unsigned-byte view of any bytes-like object (zero-copy)."""
    return memoryview(data).cast("B")


def compile_streams(records):
    """Compile a (timestamp-sorted, merged) trace into page streams.

    Single pass: builds the per-pid streams, the segment list, the
    interleaved flat arrays, and the pid set together.  Works on any
    iterable of records.
    """
    streams = {}
    segments = []
    pid_order = []
    pid_chunk = {}          # pid -> its dense index as one 'H' item's bytes
    index_stream = array("H")
    page_stream = array("Q")
    byteorder = sys.byteorder
    last_pid = None
    for record in records:
        pid = record.pid
        stream = streams.get(pid)
        if stream is None:
            stream = streams[pid] = array("Q")
            pid_chunk[pid] = len(pid_order).to_bytes(2, byteorder)
            pid_order.append(pid)
        start = len(stream)
        pages = record.pages()
        stream.extend(pages)
        stop = len(stream)
        page_stream.extend(pages)
        index_stream.frombytes(pid_chunk[pid] * (stop - start))
        if pid == last_pid:
            segments[-1] = (pid, segments[-1][1], stop)
        else:
            segments.append((pid, start, stop))
            last_pid = pid
    return CompiledStreams(sorted(streams), streams, segments, pid_order,
                           index_stream, page_stream, len(page_stream))
