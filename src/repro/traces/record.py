"""Trace records: the unit of the paper's trace-driven analysis.

The Princeton group instrumented the VMMC software "to trace each send and
remote read request along with a globally-synchronized clock" (Section 6).
A record is therefore: a timestamp, the node and process that issued the
request, the operation (send or fetch/remote-read), and the virtual buffer
(address + length).
"""

from repro import params
from repro.core import addresses
from repro.errors import TraceError

OP_SEND = "send"
OP_FETCH = "fetch"

OPS = (OP_SEND, OP_FETCH)

#: Numeric codes for the binary trace format.
OP_CODES = {OP_SEND: 0, OP_FETCH: 1}
OP_FROM_CODE = {code: op for op, code in OP_CODES.items()}


class TraceRecord:
    """One communication request."""

    __slots__ = ("timestamp", "node", "pid", "op", "vaddr", "nbytes")

    def __init__(self, timestamp, node, pid, op, vaddr, nbytes):
        if op not in OPS:
            raise TraceError("unknown trace operation %r" % (op,))
        if nbytes <= 0:
            raise TraceError("trace record with non-positive length %r"
                             % (nbytes,))
        if timestamp < 0:
            raise TraceError("negative timestamp %r" % (timestamp,))
        addresses.validate_vaddr(vaddr)
        addresses.validate_vaddr(vaddr + nbytes - 1)
        self.timestamp = timestamp
        self.node = node
        self.pid = pid
        self.op = op
        self.vaddr = vaddr
        self.nbytes = nbytes

    def pages(self):
        """Virtual pages this request touches (one lookup per page).

        Equivalent to ``addresses.page_range(self.vaddr, self.nbytes)``
        but skips revalidation — the constructor already proved both
        endpoints valid, and replay calls this once per record.
        """
        shift = params.PAGE_SHIFT
        vaddr = self.vaddr
        return range(vaddr >> shift,
                     ((vaddr + self.nbytes - 1) >> shift) + 1)

    @property
    def num_pages(self):
        return len(self.pages())

    def as_tuple(self):
        return (self.timestamp, self.node, self.pid, self.op, self.vaddr,
                self.nbytes)

    def __eq__(self, other):
        return (isinstance(other, TraceRecord)
                and self.as_tuple() == other.as_tuple())

    def __hash__(self):
        return hash(self.as_tuple())

    def __repr__(self):
        return ("TraceRecord(t=%d, node=%d, pid=%d, %s, vaddr=%#x, "
                "nbytes=%d)" % (self.timestamp, self.node, self.pid,
                                self.op, self.vaddr, self.nbytes))


def count_lookups(records):
    """Total translation lookups a record stream induces (one per page)."""
    return sum(record.num_pages for record in records)


def footprint_pages(records):
    """Distinct (pid, vpage) pairs — the communication memory footprint
    as Table 3 counts it (distinct virtual pages used in communication)."""
    seen = set()
    for record in records:
        for vpage in record.pages():
            seen.add((record.pid, vpage))
    return len(seen)
