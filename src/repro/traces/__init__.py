"""Trace infrastructure: records, (de)serialization, timestamp merging,
and the synthetic SPLASH-2-like workload generators."""

from repro.traces.compile import CompiledStreams, compile_streams
from repro.traces.io import read_binary, read_text, write_binary, write_text
from repro.traces.merge import (
    merge_sorted_iters,
    merge_streams,
    split_by_node,
    split_by_pid,
)
from repro.traces.record import (
    OP_FETCH,
    OP_SEND,
    TraceRecord,
    count_lookups,
    footprint_pages,
)

__all__ = [
    "CompiledStreams",
    "OP_FETCH",
    "OP_SEND",
    "TraceRecord",
    "compile_streams",
    "count_lookups",
    "footprint_pages",
    "merge_sorted_iters",
    "merge_streams",
    "read_binary",
    "read_text",
    "split_by_node",
    "split_by_pid",
    "write_binary",
    "write_text",
]
