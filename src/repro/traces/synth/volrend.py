"""Volrend: task-farm volume rendering (irregular, queue-centred).

"Communication in this application also centers on the task queues", but
rays through a volume touch *blocks* of adjacent voxel pages, so Volrend
has more spatial structure than Raytrace: shuffled block order with
sequential pages inside a block.
"""

from repro.traces.synth.base import (
    SyntheticApp,
    inject_long,
    shuffled_sweep,
    touch_repeat,
)


class VolrendApp(SyntheticApp):
    name = "volrend"
    problem_size = "256^3 CST head"
    footprint_pages = 2371
    lookups = 9438
    category = "irregular"

    QUEUE_PAGES = 8
    QUEUE_PERIOD = 7
    #: Adjacent voxel pages a ray touches together.
    BLOCK_PAGES = 4
    #: Rays through a block resample its pages while they are hot.
    RESAMPLE_TOUCHES = 3
    #: One access in LONG_EVERY crosses into a far block (oblique ray).
    LONG_EVERY = 11

    def _pattern(self, rng, footprint, lookups):
        queue = min(self.QUEUE_PAGES, max(1, footprint // 16))
        volume = footprint - queue
        produced = 0
        volume_stream = self._volume_stream(rng, volume)
        while produced < lookups:
            if produced % self.QUEUE_PERIOD == 0:
                yield rng.randrange(queue)
            else:
                yield queue + next(volume_stream)
            produced += 1

    def _volume_stream(self, rng, volume):
        """Full passes over the volume in shuffled blocks of adjacent
        pages, each page resampled while hot, with occasional oblique-ray
        far touches; reshuffled per rendered frame."""
        while True:
            pass_pages = touch_repeat(
                shuffled_sweep(volume, rng, run_length=self.BLOCK_PAGES),
                self.RESAMPLE_TOUCHES)
            for page in inject_long(pass_pages, rng, volume,
                                    self.LONG_EVERY):
                yield page
