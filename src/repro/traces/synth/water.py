"""Water-spatial: molecular dynamics with spatial decomposition.

"Water calculates movements of molecules using a spatialized algorithm to
exploit data locality": molecules live in boxes, and each time step
processes a box together with its neighbour boxes.  The stream is a
sweep over boxes with immediate-neighbour revisits — strong short-range
locality over a small footprint, repeated for several time steps.
"""

from repro.traces.synth.base import SyntheticApp


class WaterApp(SyntheticApp):
    name = "water-spatial"
    problem_size = "15,625 molecules"
    footprint_pages = 1890
    lookups = 8488
    category = "irregular"

    #: Pages per spatial box.
    BOX_PAGES = 3
    #: Intra-box force evaluation re-reads each page while hot.
    BOX_TOUCHES = 3

    def _pattern(self, rng, footprint, lookups):
        produced = 0
        while produced < lookups:
            # One molecular-dynamics time step: sweep the boxes; each
            # box's pages are read repeatedly during force evaluation,
            # plus one far interaction page per box.
            for box_start in range(0, footprint, self.BOX_PAGES):
                box_end = min(box_start + self.BOX_PAGES, footprint)
                for _ in range(self.BOX_TOUCHES):
                    for page in range(box_start, box_end):
                        yield page
                        produced += 1
                        if produced >= lookups:
                            return
                # Long-range correction: a far molecule page.
                yield rng.randrange(footprint)
                produced += 1
                if produced >= lookups:
                    return
