"""Radix: parallel radix sort (irregular, phase-structured).

"During a phase, each process sorts a contiguous sequence of the keys ...
At the end of the phase, the results from each process are combined to
form a new array."  Each phase reads the local key segment sequentially
then scatters keys into the global output array in short sequential runs
(keys with equal digits land together).  The sequential structure inside
both halves is why prefetching pays off so well for Radix (Figure 8).
"""

from repro.traces.synth.base import (
    SyntheticApp,
    inject_long,
    shuffled_sweep,
    touch_repeat,
)


class RadixApp(SyntheticApp):
    name = "radix"
    problem_size = "4M keys"
    footprint_pages = 6393
    lookups = 11775
    category = "irregular"

    #: Scatter run length: consecutive pages per digit bucket.
    RUN_LENGTH = 6
    #: Output pages get written twice (two key batches land per page).
    SCATTER_TOUCHES = 2
    #: One access in LONG_EVERY re-reads a random page (the global
    #: histogram / rank exchange).
    LONG_EVERY = 8
    #: Hot histogram pages cycled between phases.
    HOT_PAGES = 32

    def _pattern(self, rng, footprint, lookups):
        half = footprint // 2
        produced = 0
        while produced < lookups:
            # Read the local key segment in order ...
            for page in inject_long(range(half), rng, footprint,
                                    self.LONG_EVERY):
                yield page
                produced += 1
                if produced >= lookups:
                    return
            # ... then scatter into the output region: random bucket
            # order, sequential pages inside a bucket, each page written
            # by a couple of key batches while hot.
            scatter = touch_repeat(
                shuffled_sweep(footprint - half, rng,
                               run_length=self.RUN_LENGTH),
                self.SCATTER_TOUCHES)
            for offset in scatter:
                yield half + offset
                produced += 1
                if produced >= lookups:
                    return
            # Rank/histogram combine between phases: a hot ring.
            for spin in range(footprint // 4):
                yield spin % self.HOT_PAGES
                produced += 1
                if produced >= lookups:
                    return
