"""Barnes: Barnes-Hut N-body simulation (irregular, spatially local).

"Each process gets a partition of the particles ... Communication in this
application is moderate as the particle partition exhibits spatial
locality."  The smallest miss rates in the suite: a modest footprint
(2,235 pages) re-touched ~16 times (35,904 lookups), with a hot set of
tree-top pages and a locality-preserving walk over the particle pages.
"""

from repro.traces.synth.base import SyntheticApp


class BarnesApp(SyntheticApp):
    name = "barnes"
    problem_size = "32K particles"
    footprint_pages = 2235
    lookups = 35904
    category = "irregular"

    #: One access in LONG_EVERY revisits a random far particle page
    #: (cross-partition gravity terms).
    LONG_EVERY = 20

    def _pattern(self, rng, footprint, lookups):
        # The hot working set: tree top + this partition's boundary pages.
        hot = max(8, footprint // 10)
        produced = 0
        # Tree build: one pass over the particle partition (exact
        # footprint coverage).
        for page in range(footprint):
            yield page
            produced += 1
            if produced >= lookups:
                return
        # Force-computation time steps: the boundary/tree pages are
        # exchanged over and over (the partition "exhibits spatial
        # locality"), with an occasional far touch.
        position = 0
        while produced < lookups:
            if produced % self.LONG_EVERY == 0:
                yield rng.randrange(footprint)
            else:
                position = (position + 1) % hot
                yield position
            produced += 1
