"""Synthetic SPLASH-2-like trace generators, one per paper application.

``APPS`` maps application name to generator class in the paper's Table 3
order; ``make_app(name)`` instantiates by name.  ``WORKLOADS`` is the
superset registry — Table 3 apps plus the post-paper workload families
(currently :class:`ZipfKVWorkload`) — for callers that accept any trace
generator; ``make_workload(name)`` instantiates from it.  The paper
tables only ever iterate ``APPS``/``TABLE_ORDER``, so new families never
perturb the reproduced results.
"""

from repro.errors import ConfigError
from repro.traces.synth.barnes import BarnesApp
from repro.traces.synth.base import DATA_BASE, StreamingNodeTrace, SyntheticApp
from repro.traces.synth.mixed import MixedWorkload
from repro.traces.synth.fft import FftApp
from repro.traces.synth.lu import LuApp
from repro.traces.synth.radix import RadixApp
from repro.traces.synth.raytrace import RaytraceApp
from repro.traces.synth.volrend import VolrendApp
from repro.traces.synth.water import WaterApp
from repro.traces.synth.zipf import ZipfKVWorkload

#: Table 3 order.
APPS = {
    "fft": FftApp,
    "lu": LuApp,
    "barnes": BarnesApp,
    "radix": RadixApp,
    "raytrace": RaytraceApp,
    "volrend": VolrendApp,
    "water-spatial": WaterApp,
}

#: Paper order for Tables 4/5/8 and Figure 7 (columns).
TABLE_ORDER = ("barnes", "fft", "lu", "radix", "raytrace", "volrend",
               "water-spatial")


#: Every named trace generator: Table 3 apps + post-paper families.
WORKLOADS = dict(APPS)
WORKLOADS["zipf-kv"] = ZipfKVWorkload


def make_app(name):
    """Instantiate a generator by application name."""
    try:
        return APPS[name]()
    except KeyError:
        raise ConfigError("unknown application %r (choose from %s)"
                          % (name, sorted(APPS)))


def make_workload(name):
    """Instantiate any registered workload (apps + post-paper families)."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise ConfigError("unknown workload %r (choose from %s)"
                          % (name, sorted(WORKLOADS)))


def all_apps():
    """Instances of every application, in Table 3 order."""
    return [cls() for cls in APPS.values()]


__all__ = [
    "APPS",
    "WORKLOADS",
    "TABLE_ORDER",
    "DATA_BASE",
    "MixedWorkload",
    "StreamingNodeTrace",
    "SyntheticApp",
    "BarnesApp",
    "FftApp",
    "LuApp",
    "RadixApp",
    "RaytraceApp",
    "VolrendApp",
    "WaterApp",
    "ZipfKVWorkload",
    "make_app",
    "make_workload",
    "all_apps",
]
