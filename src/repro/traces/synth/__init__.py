"""Synthetic SPLASH-2-like trace generators, one per paper application.

``APPS`` maps application name to generator class in the paper's Table 3
order; ``make_app(name)`` instantiates by name.
"""

from repro.errors import ConfigError
from repro.traces.synth.barnes import BarnesApp
from repro.traces.synth.base import DATA_BASE, SyntheticApp
from repro.traces.synth.mixed import MixedWorkload
from repro.traces.synth.fft import FftApp
from repro.traces.synth.lu import LuApp
from repro.traces.synth.radix import RadixApp
from repro.traces.synth.raytrace import RaytraceApp
from repro.traces.synth.volrend import VolrendApp
from repro.traces.synth.water import WaterApp

#: Table 3 order.
APPS = {
    "fft": FftApp,
    "lu": LuApp,
    "barnes": BarnesApp,
    "radix": RadixApp,
    "raytrace": RaytraceApp,
    "volrend": VolrendApp,
    "water-spatial": WaterApp,
}

#: Paper order for Tables 4/5/8 and Figure 7 (columns).
TABLE_ORDER = ("barnes", "fft", "lu", "radix", "raytrace", "volrend",
               "water-spatial")


def make_app(name):
    """Instantiate a generator by application name."""
    try:
        return APPS[name]()
    except KeyError:
        raise ConfigError("unknown application %r (choose from %s)"
                          % (name, sorted(APPS)))


def all_apps():
    """Instances of every application, in Table 3 order."""
    return [cls() for cls in APPS.values()]


__all__ = [
    "APPS",
    "TABLE_ORDER",
    "DATA_BASE",
    "MixedWorkload",
    "SyntheticApp",
    "BarnesApp",
    "FftApp",
    "LuApp",
    "RadixApp",
    "RaytraceApp",
    "VolrendApp",
    "WaterApp",
    "make_app",
    "all_apps",
]
