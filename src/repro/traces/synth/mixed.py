"""Mixed multiprogramming workloads — the paper's limitation #1.

"Our traces are from shared memory parallel programs ... Thus, they may
not reveal certain behaviors that multiple independent programs have"
(Section 7).  A :class:`MixedWorkload` composes the per-process streams
of *different* applications onto one node: each constituent app
contributes its application processes (its protocol process is kept —
each independent program brings its own runtime), pids are renumbered to
stay unique, and everything is serialized by timestamp.

Generation flows through the streaming record protocol like every other
workload: :meth:`iter_processes` yields the constituents' lazy process
streams with their pids renumbered *statically* — constituent process
``local_index`` of app ``app_index`` becomes ``node *
MAX_PROCESSES_PER_NIC + app_index * TRACE_PROCESSES_PER_NODE +
local_index`` — so every stream knows its pid without seeing any other
stream, :meth:`iter_node` is one flat ``merge_record_streams`` over
them, and peak memory is one pending record per constituent process.
The flat merge serializes identically to merging each app first and
then merging the apps: the ordering contract tie-breaks on pid before
stream position, and each pid lives in exactly one stream either way.

This is the workload the Shared UTLB-Cache's process tags and index
offsetting were designed for, finally exercised with heterogeneous
programs.
"""

from repro import params
from repro.errors import ConfigError
from repro.traces.merge import merge_record_streams, split_by_pid
from repro.traces.synth.base import StreamingNodeTrace, page_record_stream


class MixedWorkload:
    """Several independent applications timesharing one node."""

    def __init__(self, app_names, scale=1.0):
        # Imported here: the synth package's __init__ re-exports this
        # class, so a module-level import would be circular.
        from repro.traces.synth import make_app
        if not app_names:
            raise ConfigError("a mixed workload needs at least one app")
        self.apps = [make_app(name) for name in app_names]
        self.scale = scale
        total = sum(1 for _ in self.apps) * params.TRACE_PROCESSES_PER_NODE
        if total > params.MAX_PROCESSES_PER_NIC:
            raise ConfigError(
                "%d constituent processes exceed the NIC's %d process tags"
                % (total, params.MAX_PROCESSES_PER_NIC))
        self.name = "+".join(app.name for app in self.apps)

    def iter_page_streams(self, node=0, seed=0, scale=None):
        """Every constituent process's lazy ``(timestamp, page)`` stream
        with its renumbered pid.

        Renumbering is free in this form: a page stream never mentions
        its pid, so the constituents' streams pass through untouched and
        only the pairing changes.
        """
        scale = self.scale if scale is None else scale
        streams = []
        for app_index, app in enumerate(self.apps):
            base = (node * params.MAX_PROCESSES_PER_NIC
                    + app_index * params.TRACE_PROCESSES_PER_NODE)
            for local_index, (_, pages) in enumerate(
                    app.iter_page_streams(node, seed=seed * 131 + app_index,
                                          scale=scale)):
                streams.append((base + local_index, pages))
        return streams

    def iter_processes(self, node=0, seed=0, scale=None):
        """Every constituent process's lazy stream, pids renumbered.

        The :meth:`iter_page_streams` pairs wrapped into page-sized send
        records under their renumbered pids.
        """
        return [page_record_stream(node, pid, pages)
                for pid, pages in self.iter_page_streams(
                    node, seed=seed, scale=scale)]

    def iter_node(self, node=0, seed=0, scale=None):
        """One node's serialized trace of all constituent programs,
        as a lazy record stream (one pending record per process)."""
        return merge_record_streams(
            self.iter_processes(node, seed=seed, scale=scale))

    def generate_node(self, node=0, seed=0, scale=None):
        """The eager (list) form of :meth:`iter_node`."""
        return list(self.iter_node(node, seed=seed, scale=scale))

    def generate_cluster(self, nodes=params.TRACE_NODES, seed=0,
                         scale=None):
        return {node: self.generate_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def streaming_node(self, node=0, seed=0, scale=None):
        """One node's trace as a re-iterable :class:`StreamingNodeTrace`."""
        scale = self.scale if scale is None else scale
        return StreamingNodeTrace(self, node=node, seed=seed, scale=scale)

    def streaming_cluster(self, nodes=params.TRACE_NODES, seed=0,
                          scale=None):
        """Per-node streaming traces: ``{node: StreamingNodeTrace}``."""
        return {node: self.streaming_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def constituent_processes(self, records):
        """{app name: sorted pids} attribution of a generated trace."""
        per_app = len(split_by_pid(records)) // len(self.apps)
        pids = sorted(split_by_pid(records))
        out = {}
        for index, app in enumerate(self.apps):
            out[app.name] = pids[index * per_app:(index + 1) * per_app]
        return out
