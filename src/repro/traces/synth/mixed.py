"""Mixed multiprogramming workloads — the paper's limitation #1.

"Our traces are from shared memory parallel programs ... Thus, they may
not reveal certain behaviors that multiple independent programs have"
(Section 7).  A :class:`MixedWorkload` composes the per-process streams
of *different* applications onto one node: each constituent app
contributes its application processes (its protocol process is kept —
each independent program brings its own runtime), pids are renumbered to
stay unique, and everything is serialized by timestamp.

This is the workload the Shared UTLB-Cache's process tags and index
offsetting were designed for, finally exercised with heterogeneous
programs.
"""

from repro import params
from repro.errors import ConfigError
from repro.traces.merge import merge_streams, split_by_pid
from repro.traces.record import TraceRecord


class MixedWorkload:
    """Several independent applications timesharing one node."""

    def __init__(self, app_names, scale=1.0):
        # Imported here: the synth package's __init__ re-exports this
        # class, so a module-level import would be circular.
        from repro.traces.synth import make_app
        if not app_names:
            raise ConfigError("a mixed workload needs at least one app")
        self.apps = [make_app(name) for name in app_names]
        self.scale = scale
        total = sum(1 for _ in self.apps) * params.TRACE_PROCESSES_PER_NODE
        if total > params.MAX_PROCESSES_PER_NIC:
            raise ConfigError(
                "%d constituent processes exceed the NIC's %d process tags"
                % (total, params.MAX_PROCESSES_PER_NIC))
        self.name = "+".join(app.name for app in self.apps)

    def generate_node(self, node=0, seed=0, scale=None):
        """One node's serialized trace of all constituent programs."""
        scale = self.scale if scale is None else scale
        streams = []
        next_pid = node * params.MAX_PROCESSES_PER_NIC
        for index, app in enumerate(self.apps):
            # Each app generated with its own seed stream, then its pids
            # renumbered into this node's unique range.
            records = app.generate_node(node, seed=seed * 131 + index,
                                        scale=scale)
            pid_map = {}
            renumbered = []
            for record in records:
                if record.pid not in pid_map:
                    pid_map[record.pid] = next_pid
                    next_pid += 1
                renumbered.append(TraceRecord(
                    record.timestamp, record.node, pid_map[record.pid],
                    record.op, record.vaddr, record.nbytes))
            streams.append(renumbered)
        return merge_streams(streams)

    def generate_cluster(self, nodes=params.TRACE_NODES, seed=0,
                         scale=None):
        return {node: self.generate_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def constituent_processes(self, records):
        """{app name: sorted pids} attribution of a generated trace."""
        per_app = len(split_by_pid(records)) // len(self.apps)
        pids = sorted(split_by_pid(records))
        out = {}
        for index, app in enumerate(self.apps):
            out[app.name] = pids[index * per_app:(index + 1) * per_app]
        return out
