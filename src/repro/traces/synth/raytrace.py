"""Raytrace: task-farm ray tracing (irregular, queue-centred).

"Communication in Raytrace revolves around the task queues": a small set
of queue pages is touched constantly, while rays pull scene data from
effectively random pages of the (large) scene.  Scene reuse distances are
huge, so NI miss rates stay near the compulsory floor across cache sizes
(Table 4: 0.48 at 1K vs 0.43 at 16K).
"""

from repro.traces.synth.base import SyntheticApp, inject_long, shuffled_sweep


class RaytraceApp(SyntheticApp):
    name = "raytrace"
    problem_size = "256 x 256 car"
    footprint_pages = 6319
    lookups = 14594
    category = "irregular"

    #: Task-queue pages (constantly reused).
    QUEUE_PAGES = 16
    #: One access in QUEUE_PERIOD goes to the task queue.
    QUEUE_PERIOD = 5

    #: Fraction (1 in N scene touches) that re-reads a random far page
    #: (shadow/reflection rays leaving the current object).
    LONG_EVERY = 9

    def _pattern(self, rng, footprint, lookups):
        queue = min(self.QUEUE_PAGES, max(1, footprint // 16))
        scene = footprint - queue
        produced = 0
        scene_stream = self._scene_stream(rng, scene)
        while produced < lookups:
            if produced % self.QUEUE_PERIOD == 0:
                # Grab work from (or post results to) a task queue page.
                yield rng.randrange(queue)
            else:
                yield queue + next(scene_stream)
            produced += 1

    #: Probability a ray bundle re-reads the object page it just fetched.
    RETOUCH_PROB = 0.6

    def _scene_stream(self, rng, scene):
        """Rays visit scene objects in effectively random order, but a ray
        bundle often re-reads the object it is traversing while it is hot
        (object coherence), with occasional far re-reads (shadow rays)."""
        while True:
            def coherent_pass():
                for page in shuffled_sweep(scene, rng):
                    yield page
                    if rng.random() < self.RETOUCH_PROB:
                        yield page
            for page in inject_long(coherent_pass(), rng, scene,
                                    self.LONG_EVERY):
                yield page
