"""Datacenter-scale multi-tenant KV/RPC workload (zipfian popularity).

The SPLASH-2 models replay the paper's own Table 3 regime: a handful of
scientific processes with megabyte footprints.  Modern translation
designs (Victima, SPARTA — see PAPERS.md) are motivated by a different
regime: a server multiplexing *thousands of tenants* whose page
popularity is heavily skewed, with working sets far beyond any
translation cache.  :class:`ZipfKVWorkload` models one node of such a
service:

* ``server_processes`` worker processes per node handle requests.  The
  NIC's 4-bit process tag caps concurrently active processes per NIC at
  ``params.MAX_PROCESSES_PER_NIC`` (Figure 3), so the datacenter-scale
  axes are **tenants** and **lookups** — process count scales with
  cluster ``nodes``, exactly like a real fleet.
* Each tenant owns a contiguous region of ``pages_per_tenant`` pages in
  the shared SPMD data area.  A request picks its tenant by a zipfian
  draw over all tenants (``tenant_exponent`` — few tenants dominate
  traffic), then a page *within* the tenant by a second zipfian draw
  (``page_exponent`` — few keys dominate the tenant).
* Per-tenant skew knobs: tenants are spread over ``skew_variants``
  page-popularity exponents covering ``page_exponent * (1 +-
  skew_spread/2)``, and each tenant's popularity ranking is rotated to a
  tenant-specific hot page, so hot pages land in different cache sets
  across tenants (shared-cache tag pressure, not one global hot set).
* A small shared RPC/dispatch ring (``shared_pages``) is touched by all
  workers with probability ``shared_fraction`` per request — the
  cross-process contention component.

Generation is **streaming-only by construction**: per-process lazy
generators merged by timestamp (:func:`merge_record_streams`), sized so
the zipf distribution tables are O(tenants + skew_variants *
pages_per_tenant) — a function of the *footprint knobs*, never of the
trace length.  ``generate_node`` (the eager list form) exists for small
instances and tests; headline-scale traces should flow through
:meth:`streaming_node` into ``StreamCompiler``/``SweepRunner``, where
peak memory stays O(compiled size).

Every draw is a deterministic function of ``(seed, node, process)``,
like the SPLASH-2 generators: same inputs, byte-identical trace.
"""

import random
from bisect import bisect_left

from repro import params
from repro.errors import ConfigError
from repro.traces.merge import merge_record_streams
from repro.traces.synth.base import (
    DATA_BASE,
    MEAN_GAP_US,
    StreamingNodeTrace,
    page_record_stream,
)

#: Knuth's multiplicative hash constant: decorrelates per-tenant hot-page
#: offsets without per-tenant RNG state.
_TENANT_MIX = 2654435761

#: Zipf CDF tables, keyed by ``(population, exponent)``.  Bounded by the
#: workload's footprint knobs (tenant count plus one table per skew
#: variant), shared across instances and never pickled.
_CDF_CACHE = {}


def _zipf_cdf(population, exponent):
    """Cumulative (unnormalized) zipf weights for ranks ``1..population``."""
    key = (population, exponent)
    cdf = _CDF_CACHE.get(key)
    if cdf is None:
        total = 0.0
        cdf = []
        for rank in range(1, population + 1):
            total += rank ** -exponent
            cdf.append(total)
        _CDF_CACHE[key] = cdf
    return cdf


class ZipfKVWorkload:
    """One multi-tenant KV/RPC server node as a trace generator."""

    name = "zipf-kv"
    category = "irregular"

    def __init__(self, tenants=1000, server_processes=8,
                 pages_per_tenant=64, lookups_per_process=25000,
                 tenant_exponent=1.1, page_exponent=0.9,
                 skew_spread=0.5, skew_variants=16,
                 shared_pages=64, shared_fraction=0.04):
        if tenants < 1:
            raise ConfigError("tenants must be at least 1, got %r"
                              % (tenants,))
        if not 1 <= server_processes <= params.MAX_PROCESSES_PER_NIC:
            raise ConfigError(
                "server_processes must be in 1..%d (the NIC's process-tag "
                "space), got %r"
                % (params.MAX_PROCESSES_PER_NIC, server_processes))
        if pages_per_tenant < 1:
            raise ConfigError("pages_per_tenant must be at least 1, got %r"
                              % (pages_per_tenant,))
        if lookups_per_process < 1:
            raise ConfigError(
                "lookups_per_process must be at least 1, got %r"
                % (lookups_per_process,))
        if tenant_exponent <= 0 or page_exponent <= 0:
            raise ConfigError("zipf exponents must be positive")
        if not 0.0 <= skew_spread < 2.0:
            raise ConfigError("skew_spread must be in [0, 2), got %r"
                              % (skew_spread,))
        if skew_variants < 1:
            raise ConfigError("skew_variants must be at least 1, got %r"
                              % (skew_variants,))
        if shared_pages < 0:
            raise ConfigError("shared_pages must be non-negative, got %r"
                              % (shared_pages,))
        if not 0.0 <= shared_fraction < 1.0:
            raise ConfigError("shared_fraction must be in [0, 1), got %r"
                              % (shared_fraction,))
        self.tenants = tenants
        self.server_processes = server_processes
        self.pages_per_tenant = pages_per_tenant
        self.lookups_per_process = lookups_per_process
        self.tenant_exponent = tenant_exponent
        self.page_exponent = page_exponent
        self.skew_spread = skew_spread
        self.skew_variants = skew_variants
        self.shared_pages = shared_pages
        self.shared_fraction = shared_fraction
        self._check_footprint(self.tenants)

    # -- sizing -------------------------------------------------------------------

    def scaled_sizes(self, scale):
        """Effective (tenants, lookups_per_process) at a scale factor."""
        if scale <= 0:
            raise ConfigError("scale must be positive")
        tenants = max(1, int(round(self.tenants * scale)))
        lookups = max(1, int(round(self.lookups_per_process * scale)))
        return tenants, lookups

    def footprint_pages(self, scale=1.0):
        """Distinct data pages addressable at this scale (the knob-level
        footprint; a finite trace touches a zipf-weighted subset)."""
        tenants, _ = self.scaled_sizes(scale)
        return self.shared_pages + tenants * self.pages_per_tenant

    def node_lookups(self, scale=1.0):
        """Translation lookups one node's trace induces at this scale."""
        _, lookups = self.scaled_sizes(scale)
        return self.server_processes * lookups

    def _check_footprint(self, tenants):
        total = self.shared_pages + tenants * self.pages_per_tenant
        top = DATA_BASE + total * params.PAGE_SIZE
        if top > (1 << params.VA_BITS):
            raise ConfigError(
                "%d tenants x %d pages (+%d shared) overflow the %d-bit "
                "virtual address space above %#x"
                % (tenants, self.pages_per_tenant, self.shared_pages,
                   params.VA_BITS, DATA_BASE))

    # -- skew knobs ---------------------------------------------------------------

    def tenant_page_exponent(self, tenant):
        """The page-popularity exponent of one tenant (its skew knob)."""
        if self.skew_variants == 1 or self.skew_spread == 0.0:
            return self.page_exponent
        variant = (tenant * _TENANT_MIX) % self.skew_variants
        fraction = variant / (self.skew_variants - 1)
        return self.page_exponent * (1.0
                                     + self.skew_spread * (fraction - 0.5))

    def _tenant_offset(self, tenant):
        """Rotation of the tenant's popularity ranking onto its pages."""
        return (tenant * _TENANT_MIX) % self.pages_per_tenant

    # -- generation ----------------------------------------------------------------

    def iter_page_streams(self, node=0, seed=0, scale=1.0):
        """Per-process lazy ``(timestamp, page)`` streams with their pids.

        The pre-record form of the streaming protocol (see
        :meth:`SyntheticApp.iter_page_streams`): each stream regenerates
        independently from its own ``(seed, node, local_index)`` RNG, so
        parallel trace compilation can fan the processes out to workers
        and skip record construction.
        """
        tenants, lookups = self.scaled_sizes(scale)
        self._check_footprint(tenants)
        streams = []
        for local_index in range(self.server_processes):
            pid = node * params.MAX_PROCESSES_PER_NIC + local_index
            rng = random.Random(
                (seed * 2000003 + node) * 37 + local_index)
            streams.append((pid,
                            self._process_pages(rng, tenants, lookups)))
        return streams

    def iter_processes(self, node=0, seed=0, scale=1.0):
        """Per-process lazy request streams, in server-process order.

        The pre-merge form of the streaming protocol: the
        :meth:`iter_page_streams` draws wrapped into page-sized send
        records.
        """
        return [page_record_stream(node, pid, pages)
                for pid, pages in self.iter_page_streams(
                    node, seed=seed, scale=scale)]

    def iter_node(self, node=0, seed=0, scale=1.0):
        """One node's merged trace as a lazy record stream.

        The only generation path: per-process generators merged by
        timestamp, peak memory one pending record per server process
        plus the (footprint-bounded) zipf tables.
        """
        return merge_record_streams(
            self.iter_processes(node, seed=seed, scale=scale))

    def generate_node(self, node=0, seed=0, scale=1.0):
        """The eager (list) form — small instances and tests only."""
        return list(self.iter_node(node, seed=seed, scale=scale))

    def generate_cluster(self, nodes=params.TRACE_NODES, seed=0,
                         scale=1.0):
        """Per-node traces for the whole cluster: {node: [records]}."""
        return {node: self.generate_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def streaming_node(self, node=0, seed=0, scale=1.0):
        """One node's trace as a re-iterable :class:`StreamingNodeTrace`."""
        return StreamingNodeTrace(self, node=node, seed=seed, scale=scale)

    def streaming_cluster(self, nodes=params.TRACE_NODES, seed=0,
                          scale=1.0):
        """Per-node streaming traces: ``{node: StreamingNodeTrace}``."""
        return {node: self.streaming_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def _process_pages(self, rng, tenants, lookups):
        """One server process: lazy zipf-over-zipf ``(timestamp, page)``
        draws (pages absolute, offset to the SPMD data region)."""
        tenant_cdf = _zipf_cdf(tenants, self.tenant_exponent)
        tenant_total = tenant_cdf[-1]
        base_page = DATA_BASE >> params.PAGE_SHIFT
        ppt = self.pages_per_tenant
        shared = self.shared_pages
        shared_fraction = self.shared_fraction
        random_draw = rng.random
        randrange = rng.randrange
        gap_lo = MEAN_GAP_US // 2
        gap_hi = MEAN_GAP_US + MEAN_GAP_US // 2
        timestamp = randrange(0, MEAN_GAP_US)
        for _ in range(lookups):
            if shared and random_draw() < shared_fraction:
                page = randrange(shared)
            else:
                tenant = bisect_left(tenant_cdf,
                                     random_draw() * tenant_total)
                page_cdf = _zipf_cdf(ppt,
                                     self.tenant_page_exponent(tenant))
                rank = bisect_left(page_cdf, random_draw() * page_cdf[-1])
                page = (shared + tenant * ppt
                        + (self._tenant_offset(tenant) + rank) % ppt)
            yield timestamp, base_page + page
            timestamp += randrange(gap_lo, gap_hi)


    # -- reporting ---------------------------------------------------------------------

    def table3_row(self, scale=1.0):
        """Knob-level sizing summary (the Table 3 analogue)."""
        tenants, _ = self.scaled_sizes(scale)
        return {
            "application": self.name,
            "problem_size": "%d tenants x %d pages" % (tenants,
                                                       self.pages_per_tenant),
            "footprint_pages": self.footprint_pages(scale),
            "lookups": self.node_lookups(scale),
        }
