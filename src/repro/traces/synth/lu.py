"""LU: parallel dense LU matrix decomposition (regular, triangular).

LU factors a 4K x 4K matrix in block steps; step *k* broadcasts the pivot
block and updates the trailing (shrinking) submatrix.  Communication
revisits a suffix of the matrix on every step, so reuse distances stay
long — the paper's LU shows an almost cache-size-independent NI miss rate
(Table 4: ~0.49 from 1K to 16K entries).
"""

from repro.traces.synth.base import SyntheticApp, repeat_pattern


class LuApp(SyntheticApp):
    name = "lu"
    problem_size = "4K x 4K matrix"
    footprint_pages = 12507
    lookups = 25198
    category = "regular"

    #: Pages per pivot block.
    BLOCK_PAGES = 8

    def _pattern(self, rng, footprint, lookups):
        def make_pass(index):
            return self._factor_pass(footprint)

        return repeat_pattern(make_pass, lookups)

    def _factor_pass(self, footprint):
        """One factorization: each pivot block is fetched and then
        immediately re-read to update the trailing submatrix.

        The fetch is a first touch (it misses); the update re-reads the
        same block while it is hot (it hits anywhere).  Every pass over
        the large matrix therefore misses on half its accesses regardless
        of cache size — reproducing LU's famously flat miss curve
        (Table 4: ~0.49 from 1K to 16K entries).
        """
        block = self.BLOCK_PAGES
        for start in range(0, footprint, block):
            end = min(start + block, footprint)
            for page in range(start, end):       # broadcast of the block
                yield page
            for page in range(start, end):       # trailing update re-read
                yield page
