"""FFT: parallel 2-D Fast Fourier Transform (regular, strided).

"This program exhibits a high degree of data communication" — the largest
footprint-to-lookup ratio in the suite (each page is touched ~4 times,
Table 3: 10,803 pages / 43,132 lookups per node).  The transpose phases
access the matrix column-wise, i.e. with a stride of one matrix row of
pages; this strided pattern is why 16-page pre-pinning backfires for FFT
(Section 6.5): the pages after a strided touch are pre-pinned but never
accessed.
"""

from repro.traces.synth.base import (
    SyntheticApp,
    column_stride,
    repeat_pattern,
    sequential_sweep,
    strided_sweep,
    touch_repeat,
)


class FftApp(SyntheticApp):
    name = "fft"
    problem_size = "4M elements"
    footprint_pages = 10803
    lookups = 43132
    category = "regular"

    #: Each transposed page is recomputed in place right after it arrives.
    COMPUTE_TOUCHES = 3

    def _pattern(self, rng, footprint, lookups):
        stride = column_stride(footprint)

        def make_pass(index):
            if index == 0:
                # Initial 1-D FFTs: one row-major pass over the matrix.
                return sequential_sweep(footprint)
            # Transpose: fetch pages column-major (strided — the access
            # pattern that defeats pre-pinning, Section 6.5), then compute
            # on each page while it is hot.
            return touch_repeat(strided_sweep(footprint, stride),
                                self.COMPUTE_TOUCHES)

        return repeat_pattern(make_pass, lookups)
