"""Framework for the synthetic SPLASH-2-like communication traces.

The paper's traces come from seven SPLASH-2 applications running on a
home-based release-consistency SVM protocol over VMMC, on four 4-way SMP
nodes: "on each SMP, there are four application processes and a protocol
process, all of which use Myrinet" (Section 6).  We cannot rerun that
testbed, so each application is modelled as a *reference-stream generator*
whose per-node communication footprint and lookup count match Table 3 and
whose access-pattern class matches the paper's description of the
application (Section 6.1).

Model choices that matter for the results:

* SVM moves one 4 KB page per request, so every record is a page-sized
  send (the paper notes its SVM applications "typically transfer one page
  of data at a time").
* All processes place their shared-data region at the same virtual base
  address (real SPMD programs do) — this is what makes the no-offsetting
  cache configuration collide across processes (Table 8 "direct-nohash").
* Each node runs four application processes plus one protocol process;
  the protocol process hammers a small set of protocol/message pages.
* Per-process generators are deterministic functions of (seed, node, pid)
  and are merged by timestamp, exactly like the paper's serialized traces.
"""

import math
import random

from repro import params
from repro.errors import ConfigError
from repro.traces.merge import merge_record_streams
from repro.traces.record import OP_SEND, TraceRecord

#: Every process maps its communication region here (SPMD layout).
DATA_BASE = 0x10000000

#: Fraction of a node's footprint/lookups belonging to the SVM protocol
#: process; the four application processes split the rest evenly.
PROTOCOL_SHARE = 0.08

#: The protocol process reuses a small ring of message/control pages.
PROTOCOL_HOT_PAGES = 24

#: Mean microseconds between requests from one process.
MEAN_GAP_US = 40


def _pid_of(node, local_index):
    """Cluster-unique pid; at most 8 per node, well under the 4-bit tag."""
    return node * 8 + local_index


def page_record_stream(node, pid, pages):
    """Wrap a lazy ``(timestamp, page)`` stream into TraceRecords.

    The single record-construction point of the synthetic generators:
    every entry becomes one page-sized send at the page's address (SVM
    moves whole pages, so this is the only record shape any synthetic
    workload emits).
    """
    for timestamp, page in pages:
        yield TraceRecord(
            timestamp=timestamp,
            node=node,
            pid=pid,
            op=OP_SEND,
            vaddr=page << params.PAGE_SHIFT,
            nbytes=params.PAGE_SIZE)


class SyntheticApp:
    """Base class for one application's trace generator.

    Subclasses define the class attributes ``name``, ``problem_size``,
    ``footprint_pages``, ``lookups`` (the Table 3 per-node values), and
    ``category`` ('regular' or 'irregular'), plus :meth:`_pattern`, a
    generator of page indices in ``[0, footprint)`` for one application
    process.  The pattern contract: the first ``footprint`` *distinct*
    pages it produces must cover the whole range (so the process footprint
    is exact), and it must be able to produce at least ``lookups`` entries
    (it is truncated, never padded).
    """

    name = "base"
    problem_size = ""
    footprint_pages = 0
    lookups = 0
    category = "irregular"

    def _pattern(self, rng, footprint, lookups):
        raise NotImplementedError

    # -- sizing -------------------------------------------------------------------

    def scaled_sizes(self, scale):
        """(footprint, lookups) per node at a given scale factor."""
        if scale <= 0:
            raise ConfigError("scale must be positive")
        footprint = max(64, int(round(self.footprint_pages * scale)))
        lookups = max(footprint, int(round(self.lookups * scale)))
        return footprint, lookups

    def _process_sizes(self, scale):
        """Per-process (footprint, lookups) for the 4 app + 1 protocol
        processes, summing to (about) the node totals."""
        node_fp, node_lk = self.scaled_sizes(scale)
        proto_fp = max(PROTOCOL_HOT_PAGES, int(node_fp * PROTOCOL_SHARE))
        proto_lk = max(proto_fp, int(node_lk * PROTOCOL_SHARE))
        app_fp = (node_fp - proto_fp) // 4
        app_lk = (node_lk - proto_lk) // 4
        if app_fp <= 0 or app_lk <= 0:
            raise ConfigError("scale too small for %s" % (self.name,))
        sizes = [(app_fp, app_lk)] * 4 + [(proto_fp, proto_lk)]
        return sizes

    # -- generation ----------------------------------------------------------------

    def iter_page_streams(self, node=0, seed=0, scale=1.0):
        """Per-process lazy ``(timestamp, page)`` streams with their pids.

        The *pre-record* form of the streaming protocol: a list of
        ``(pid, stream)`` pairs in local-index order, each stream
        yielding ``(timestamp, absolute page number)`` — exactly the two
        values translation simulation consumes.  :meth:`iter_processes`
        wraps these same streams into :class:`TraceRecord` objects (one
        page-sized send per entry), so the two forms cannot drift;
        parallel trace compilation (:mod:`repro.traces.parallel`) drains
        this form directly and skips record construction entirely.
        """
        streams = []
        for local_index, (footprint, lookups) in enumerate(
                self._process_sizes(scale)):
            pid = _pid_of(node, local_index)
            rng = random.Random((seed * 1000003 + node) * 31 + local_index)
            if local_index < 4:
                pages = self._pattern(rng, footprint, lookups)
            else:
                pages = self._protocol_pattern(rng, footprint, lookups)
            streams.append((pid, self._timed_pages(rng, pages, lookups)))
        return streams

    def iter_processes(self, node=0, seed=0, scale=1.0):
        """The node's per-process lazy record streams, in process order.

        The *pre-merge* form of the streaming record protocol: one
        independently generatable, timestamp-sorted stream per process
        (each seeded by its own ``(seed, node, local_index)`` RNG), in
        local-index order.  :meth:`iter_node` is exactly
        ``merge_record_streams`` over this list.
        """
        return [page_record_stream(node, pid, pages)
                for pid, pages in self.iter_page_streams(
                    node, seed=seed, scale=scale)]

    def iter_node(self, node=0, seed=0, scale=1.0):
        """The serialized (merged) node trace as a *lazy* record stream.

        The streaming record protocol: per-process generators are merged
        by timestamp as they produce (``merge_record_streams``), so
        iterating holds one pending record per process — never the whole
        trace.  Each process's RNG draws happen in exactly the order the
        eager path made them (pattern and timestamp draws interleave on
        one private ``random.Random``), so ``list(iter_node(...))`` is
        byte-identical to what :meth:`generate_node` returns.
        """
        return merge_record_streams(
            self.iter_processes(node, seed=seed, scale=scale))

    def generate_node(self, node=0, seed=0, scale=1.0):
        """The serialized (merged) trace of one node, as a list."""
        return list(self.iter_node(node, seed=seed, scale=scale))

    def generate_cluster(self, nodes=params.TRACE_NODES, seed=0, scale=1.0):
        """Per-node traces for the whole cluster: {node: [records]}."""
        return {node: self.generate_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def streaming_node(self, node=0, seed=0, scale=1.0):
        """One node's trace as a re-iterable :class:`StreamingNodeTrace`.

        The bounded-memory input for :class:`~repro.sim.runner
        .SweepRunner` cells and ``StreamCompiler``: every iteration
        regenerates the identical records without ever materializing
        them.
        """
        return StreamingNodeTrace(self, node=node, seed=seed, scale=scale)

    def streaming_cluster(self, nodes=params.TRACE_NODES, seed=0,
                          scale=1.0):
        """Per-node streaming traces: ``{node: StreamingNodeTrace}``."""
        return {node: self.streaming_node(node, seed=seed, scale=scale)
                for node in range(nodes)}

    def _timed_pages(self, rng, pages, lookups):
        """Timestamp a page-index stream into lazy ``(timestamp, page)``
        pairs (pages absolute, i.e. offset to the SPMD data region)."""
        base_page = DATA_BASE >> params.PAGE_SHIFT
        timestamp = rng.randrange(0, MEAN_GAP_US)
        for count, page in enumerate(pages):
            if count >= lookups:
                break
            yield timestamp, base_page + page
            timestamp += rng.randrange(MEAN_GAP_US // 2,
                                       MEAN_GAP_US + MEAN_GAP_US // 2)


    def _protocol_pattern(self, rng, footprint, lookups):
        """The SVM protocol process: a hot ring of message/control pages
        plus a slowly growing set of per-page protocol metadata pages."""
        hot = min(PROTOCOL_HOT_PAGES, footprint)
        cold = footprint - hot
        produced = 0
        # Startup: walk the per-page protocol metadata once (cold pages),
        # mixing in the hot message ring.
        for cold_page in range(cold):
            yield hot + cold_page
            produced += 1
            if produced >= lookups:
                return
            if cold_page % 4 == 3:
                yield produced % hot
                produced += 1
                if produced >= lookups:
                    return
        # Steady state: cycle the hot message/control ring.
        while produced < lookups:
            yield produced % hot
            produced += 1

    # -- reporting ---------------------------------------------------------------------

    def table3_row(self, scale=1.0):
        footprint, lookups = self.scaled_sizes(scale)
        return {
            "application": self.name,
            "problem_size": self.problem_size,
            "footprint_pages": footprint,
            "lookups": lookups,
        }


class StreamingNodeTrace:
    """A re-iterable, lazily generated node trace.

    The streaming record protocol's carrier: every call to ``iter()``
    asks the workload for a fresh ``iter_node`` generator, so the same
    records come out every time without the trace ever existing as a
    list.  That re-iterability is the whole contract — consumers that
    need two passes (the reference engine enumerates pids before
    replaying; fingerprinting may retry with its fallback encoding)
    simply iterate again.

    Instances are cheap, picklable (the workload object plus three
    scalars), and valid ``SweepRunner`` cell inputs: the runner
    fingerprints and compiles them through the same streaming pass it
    uses for lists, but peak memory stays O(compiled size), not
    O(records).
    """

    __slots__ = ("app", "node", "seed", "scale")

    def __init__(self, app, node=0, seed=0, scale=1.0):
        self.app = app
        self.node = node
        self.seed = seed
        self.scale = scale

    def __iter__(self):
        return iter(self.app.iter_node(self.node, seed=self.seed,
                                       scale=self.scale))

    def __repr__(self):
        return ("StreamingNodeTrace(%s, node=%d, seed=%d, scale=%r)"
                % (self.app.name, self.node, self.seed, self.scale))


# -- shared pattern building blocks ------------------------------------------------


def sequential_sweep(footprint):
    """One pass over every page in address order."""
    return iter(range(footprint))


def strided_sweep(footprint, stride):
    """One pass over every page in a strided (column-major) order."""
    if stride <= 0:
        raise ConfigError("stride must be positive")
    for start in range(stride):
        for page in range(start, footprint, stride):
            yield page


def shuffled_sweep(footprint, rng, run_length=1):
    """One pass over every page in random order, optionally in short
    sequential runs (run_length > 1 models scatter with local structure).
    """
    if run_length <= 1:
        order = list(range(footprint))
        rng.shuffle(order)
        for page in order:
            yield page
        return
    starts = list(range(0, footprint, run_length))
    rng.shuffle(starts)
    for start in starts:
        for page in range(start, min(start + run_length, footprint)):
            yield page


def repeat_pattern(make_pass, lookups):
    """Chain passes produced by ``make_pass(pass_index)`` until ``lookups``
    accesses have been emitted."""
    produced = 0
    pass_index = 0
    while produced < lookups:
        for page in make_pass(pass_index):
            yield page
            produced += 1
            if produced >= lookups:
                return
        pass_index += 1


def column_stride(footprint):
    """A stride approximating the row length of a square matrix spread
    over ``footprint`` pages (used by FFT's transpose phases)."""
    return max(2, int(round(math.sqrt(footprint))))


def touch_repeat(pages, repeat):
    """Touch each page of ``pages`` ``repeat`` times consecutively.

    Models compute phases that re-read a freshly communicated page while
    it is still hot: the re-touches have near-zero reuse distance, so they
    hit in any reasonable cache — the key reason measured NI miss rates
    sit well below 1.0 even when every *pass* over the data misses.
    """
    for page in pages:
        for _ in range(repeat):
            yield page


def inject_long(pages, rng, footprint, every):
    """Interleave a uniform-random page after every ``every`` items.

    The random touches are *long-distance* re-references (protocol
    metadata, histograms, neighbour data): they miss while the footprint
    exceeds the cache and start hitting once it fits — the component that
    makes NI miss rates fall with cache size.  ``every=0`` disables.
    """
    count = 0
    for page in pages:
        yield page
        count += 1
        if every and count % every == 0:
            yield rng.randrange(footprint)
