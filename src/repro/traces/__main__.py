"""Trace-file command-line tool.

Usage::

    python -m repro.traces generate --app fft --out fft.bin [--scale S]
    python -m repro.traces info fft.bin
    python -m repro.traces simulate fft.bin [--mechanism utlb]
                                            [--cache-entries N] ...

``generate`` writes a synthetic application trace (binary format);
``info`` summarizes any trace file; ``simulate`` replays one through a
translation mechanism and prints the per-lookup rates.
"""

import argparse
import sys

from repro.sim.config import ENGINES, SimConfig
from repro.sim.sweep import MECHANISMS, run_on_traces
from repro.traces.io import read_binary, read_text, write_binary
from repro.traces.merge import merge_streams, split_by_node, split_by_pid
from repro.traces.record import count_lookups, footprint_pages
from repro.traces.synth import APPS, make_app


def _read_any(path):
    """Read a trace file, auto-detecting binary vs text."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic == b"UTLB":
        return list(read_binary(path))
    return list(read_text(path))


def cmd_generate(args):
    app = make_app(args.app)
    traces = app.generate_cluster(nodes=args.nodes, seed=args.seed,
                                  scale=args.scale)
    merged = merge_streams([traces[node] for node in sorted(traces)])
    count = write_binary(args.out, merged)
    print("wrote %d records (%d nodes, scale %.2f) to %s"
          % (count, args.nodes, args.scale, args.out))
    return 0


def cmd_info(args):
    records = _read_any(args.trace)
    if not records:
        print("%s: empty trace" % args.trace)
        return 0
    by_node = split_by_node(records)
    print("%s:" % args.trace)
    print("  records:   %d" % len(records))
    print("  lookups:   %d" % count_lookups(records))
    print("  footprint: %d pages" % footprint_pages(records))
    print("  nodes:     %d   processes: %d"
          % (len(by_node), len(split_by_pid(records))))
    print("  time span: %d .. %d"
          % (records[0].timestamp, records[-1].timestamp))
    ops = {}
    for record in records:
        ops[record.op] = ops.get(record.op, 0) + 1
    print("  operations: "
          + ", ".join("%s=%d" % kv for kv in sorted(ops.items())))
    return 0


def cmd_simulate(args):
    records = _read_any(args.trace)
    config = SimConfig(cache_entries=args.cache_entries,
                       associativity=args.associativity,
                       offsetting=not args.no_offsetting,
                       prefetch=args.prefetch,
                       prepin=args.prepin,
                       memory_limit_bytes=(args.memory_limit_mb
                                           * 1024 * 1024
                                           if args.memory_limit_mb else None),
                       pin_policy=args.pin_policy,
                       engine=args.engine)
    result = run_on_traces(split_by_node(records), config, args.mechanism)
    stats = result.stats
    print("mechanism=%s  %s" % (args.mechanism, config.describe()))
    print("  lookups:          %d" % stats.lookups)
    print("  check miss rate:  %.4f" % stats.check_miss_rate)
    print("  NI miss rate:     %.4f" % stats.ni_miss_rate)
    print("  unpin rate:       %.4f" % stats.unpin_rate)
    print("  interrupts:       %d" % stats.interrupts)
    print("  avg lookup cost:  %.2f us" % stats.avg_lookup_cost_us)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.traces")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic app trace")
    gen.add_argument("--app", choices=sorted(APPS), required=True)
    gen.add_argument("--out", required=True)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--nodes", type=int, default=1)
    gen.add_argument("--seed", type=int, default=1)
    gen.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="summarize a trace file")
    info.add_argument("trace")
    info.set_defaults(func=cmd_info)

    sim = sub.add_parser("simulate", help="replay a trace file")
    sim.add_argument("trace")
    sim.add_argument("--mechanism", choices=MECHANISMS, default="utlb")
    sim.add_argument("--cache-entries", type=int, default=8192)
    sim.add_argument("--associativity", type=int, default=1)
    sim.add_argument("--no-offsetting", action="store_true")
    sim.add_argument("--prefetch", type=int, default=1)
    sim.add_argument("--prepin", type=int, default=1)
    sim.add_argument("--memory-limit-mb", type=int, default=None)
    sim.add_argument("--pin-policy", default="lru",
                     choices=("lru", "mru", "lfu", "mfu", "random"))
    sim.add_argument("--engine", choices=ENGINES, default="fast",
                     help="replay engine (fast is bit-identical to "
                          "reference; reference is the oracle)")
    sim.set_defaults(func=cmd_simulate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
