"""Live trace capture from the functional VMMC stack.

The paper instrumented "the VMMC software to trace each send and remote
read request along with a globally-synchronized clock" (Section 6).  This
module is that instrumentation for the simulated stack: attach a
:class:`TraceRecorder` to one or more :class:`~repro.vmmc.library.VmmcLibrary`
instances and every ``send``/``fetch`` they post is recorded as a
:class:`~repro.traces.record.TraceRecord`.

The recorder's clock is globally synchronized by construction (one
counter shared by all libraries), mirroring the paper's hardware global
clock [31]; ties between same-instant requests are broken by arrival
order, exactly like the paper's serialization step.
"""

from repro.traces.record import OP_FETCH, OP_SEND, TraceRecord


class TraceRecorder:
    """Collects timestamped communication records from live libraries."""

    def __init__(self, time_per_request_us=1):
        if time_per_request_us <= 0:
            raise ValueError("clock increment must be positive")
        self.time_per_request_us = time_per_request_us
        self._records = []
        self._clock = 0

    def attach(self, library, node=None):
        """Instrument a VmmcLibrary; returns the library for chaining."""
        library.trace_recorder = self
        library.trace_node = (node if node is not None
                              else library.node_id)
        return library

    def record(self, library, op, vaddr, nbytes):
        """Called by the library on each send/fetch post."""
        if op not in (OP_SEND, OP_FETCH):
            raise ValueError("unknown traced operation %r" % (op,))
        self._records.append(TraceRecord(
            timestamp=self._clock,
            node=library.trace_node,
            pid=self._numeric_pid(library.pid),
            op=op,
            vaddr=vaddr,
            nbytes=nbytes))
        self._clock += self.time_per_request_us

    @staticmethod
    def _numeric_pid(pid):
        """Trace records carry numeric pids (binary format)."""
        if isinstance(pid, int):
            return pid
        return abs(hash(pid)) % (1 << 31)

    # -- results ---------------------------------------------------------------

    def records(self):
        """All records so far, in capture (= timestamp) order."""
        return list(self._records)

    def records_for_node(self, node):
        return [r for r in self._records if r.node == node]

    def __len__(self):
        return len(self._records)

    def clear(self):
        self._records = []
