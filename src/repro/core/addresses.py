"""Virtual/physical address arithmetic.

The paper works in terms of 32-bit virtual addresses, 4 KB pages, and
20-bit physical page numbers (the "physical address (20 bits)" field of the
UTLB-cache line formats in Figures 3 and 4).  This module centralizes the
bit manipulation so that the rest of the code never open-codes shifts.

Addresses are plain ``int`` for speed; these helpers validate and convert.
"""

from repro import params
from repro.errors import AddressError


def validate_vaddr(vaddr):
    """Return ``vaddr`` if it is a valid virtual address, else raise.

    >>> validate_vaddr(0x1000)
    4096
    """
    if not isinstance(vaddr, int) or isinstance(vaddr, bool):
        raise AddressError("virtual address must be an int, got %r" % (vaddr,))
    if not 0 <= vaddr < (1 << params.VA_BITS):
        raise AddressError(
            "virtual address %#x out of the %d-bit address space"
            % (vaddr, params.VA_BITS)
        )
    return vaddr


def vpage_of(vaddr):
    """Virtual page number containing ``vaddr``."""
    return validate_vaddr(vaddr) >> params.PAGE_SHIFT


def page_offset(vaddr):
    """Byte offset of ``vaddr`` within its page."""
    return validate_vaddr(vaddr) & params.PAGE_OFFSET_MASK


def vaddr_of_page(vpage, offset=0):
    """Virtual address of byte ``offset`` within virtual page ``vpage``."""
    if not 0 <= vpage < params.NUM_VPAGES:
        raise AddressError("virtual page %#x out of range" % (vpage,))
    if not 0 <= offset < params.PAGE_SIZE:
        raise AddressError("page offset %d out of range" % (offset,))
    return (vpage << params.PAGE_SHIFT) | offset


def page_range(vaddr, nbytes):
    """Virtual page numbers touched by the buffer ``[vaddr, vaddr+nbytes)``.

    Returns a ``range`` of virtual page numbers.  A zero-length buffer
    touches no pages.

    >>> list(page_range(0x0FFF, 2))   # straddles a page boundary
    [0, 1]
    """
    validate_vaddr(vaddr)
    if nbytes < 0:
        raise AddressError("buffer length must be non-negative")
    if nbytes == 0:
        return range(0)
    last = vaddr + nbytes - 1
    validate_vaddr(last)
    return range(vaddr >> params.PAGE_SHIFT, (last >> params.PAGE_SHIFT) + 1)


def split_at_page_boundaries(vaddr, nbytes):
    """Split a transfer into per-page (vaddr, nbytes) chunks.

    The VMMC Myrinet firmware "breaks down data transfer at 4 KB page
    boundaries" and performs translation lookups one page at a time (paper,
    footnote 1).  This generator reproduces that chunking.

    >>> list(split_at_page_boundaries(0x0FF0, 0x30))
    [(4080, 16), (4096, 32)]
    """
    validate_vaddr(vaddr)
    if nbytes < 0:
        raise AddressError("buffer length must be non-negative")
    remaining = nbytes
    cursor = vaddr
    while remaining > 0:
        room = params.PAGE_SIZE - (cursor & params.PAGE_OFFSET_MASK)
        chunk = min(room, remaining)
        yield cursor, chunk
        cursor += chunk
        remaining -= chunk


def directory_index(vpage):
    """Index into the top-level (directory) of a two-level table."""
    if not 0 <= vpage < params.NUM_VPAGES:
        raise AddressError("virtual page %#x out of range" % (vpage,))
    return vpage >> params.TABLE_BITS


def table_index(vpage):
    """Index into the second-level table of a two-level table."""
    if not 0 <= vpage < params.NUM_VPAGES:
        raise AddressError("virtual page %#x out of range" % (vpage,))
    return vpage & params.TABLE_INDEX_MASK


def vpage_from_indices(dir_index, tbl_index):
    """Reassemble a virtual page number from its two table indices."""
    if not 0 <= dir_index < params.DIRECTORY_ENTRIES:
        raise AddressError("directory index %d out of range" % (dir_index,))
    if not 0 <= tbl_index < params.TABLE_ENTRIES:
        raise AddressError("table index %d out of range" % (tbl_index,))
    return (dir_index << params.TABLE_BITS) | tbl_index
