"""Per-process UTLB: the original design of Section 3.1.

Each process gets a fixed-size translation table allocated in NIC SRAM.
The user library keeps a two-level lookup tree mapping virtual pages to
table slots, chooses slots itself, and evicts (unpins) translations when
the table fills.  Compared with Hierarchical-UTLB:

* the NIC never misses — the whole table is in SRAM, so every NIC lookup
  costs one SRAM reference;
* the table is small (SRAM is scarce), so *capacity evictions* replace NIC
  misses as the failure mode;
* slots fragment after complex access patterns (tracked by
  :meth:`PerProcessTranslationTable.fragmentation`).

The paper could not evaluate this variant against the shared cache for
lack of multi-program traces (Section 7); we implement it fully and
compare in an ablation benchmark.
"""

from repro import params
from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.lookup_tree import TwoLevelLookupTree
from repro.core.pinner import PinnedPagePool
from repro.core.stats import TranslationStats
from repro.core.translation_table import PerProcessTranslationTable
from repro.errors import ConfigError, PinningError


class PerProcessUtlb:
    """Per-process UTLB with a NIC-SRAM translation table.

    Parameters
    ----------
    num_slots:
        Translation table size in entries; bounded by NIC SRAM (the paper's
        Figure 1 shows 8192-entry tables).
    memory_limit_pages:
        Optional additional pinning budget; the effective limit is the
        smaller of this and ``num_slots``.
    """

    def __init__(self, pid, num_slots=8192, driver=None, cost_model=None,
                 memory_limit_pages=None, pin_policy="lru", prepin=1,
                 garbage_frame=None, seed=0):
        if prepin <= 0:
            raise ConfigError("prepin degree must be positive")
        limit = num_slots
        if memory_limit_pages is not None:
            limit = min(limit, memory_limit_pages)
        self.pid = pid
        if driver is None:
            from repro.core.utlb import CountingFrameDriver
            driver = CountingFrameDriver()
        self.driver = driver
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.prepin = prepin
        self.tree = TwoLevelLookupTree()
        self.table = PerProcessTranslationTable(pid, num_slots,
                                                garbage_frame=garbage_frame)
        self.pool = PinnedPagePool(limit, policy=pin_policy, seed=seed)
        self.stats = TranslationStats()
        self.capacity_evictions = 0

    # -- translation path -------------------------------------------------------

    def access_page(self, vpage):
        """Translate one virtual page; returns its physical frame."""
        stats = self.stats
        cm = self.cost_model
        stats.lookups += 1

        # 1) user-level lookup in the two-level tree (2 memory references).
        stats.check_time_us += cm.user_check_hit
        slot = self.tree.lookup(vpage)
        if slot is None:
            stats.check_misses += 1
            slot = self._pin_on_demand(vpage)
        self.pool.note_access(vpage)

        # 2) the user submits the *index*; the NIC reads the slot directly
        # from its SRAM table — a guaranteed hit (no I/O-bus traffic).
        stats.ni_accesses += 1
        stats.ni_hits += 1
        stats.ni_hit_time_us += cm.ni_check_hit
        return self.table.read_slot(slot)

    def _pin_on_demand(self, vpage):
        """Pin ``vpage`` (plus pre-pin successors) into free slots."""
        stats = self.stats
        cm = self.cost_model

        end = min(vpage + self.prepin, params.NUM_VPAGES)
        to_pin = [v for v in range(vpage, end) if v not in self.tree]
        if self.pool.limit_pages is not None:
            to_pin = to_pin[:self.pool.limit_pages]
        if vpage not in to_pin:
            raise PinningError("demand page %#x lost from pin batch" % (vpage,))

        # Capacity: evict enough translations to make room in the table
        # and under the pinning budget.
        for victim in self.pool.victims_for(len(to_pin)):
            self._evict_page(victim)
        while self.table.free_slots < len(to_pin):
            victim = self.pool.policy.select_victims(
                1, exclude=self.pool.held_pages())[0]
            self._evict_page(victim)

        slots = self.table.find_free_slots(len(to_pin))
        frames = self.driver.pin_pages(self.pid, to_pin)
        stats.pin_calls += 1
        stats.pages_pinned += len(to_pin)
        stats.pin_time_us += cm.pin_cost(len(to_pin))
        demand_slot = None
        for page, slot in zip(to_pin, slots):
            self.table.install(slot, page, frames[page])
            self.tree.install(page, slot)
            self.pool.note_pin(page)
            if page == vpage:
                demand_slot = slot
        return demand_slot

    def _evict_page(self, vpage):
        """Capacity eviction: free the slot and unpin the page."""
        stats = self.stats
        slot = self.tree.remove(vpage)
        self.table.free(slot)
        self.pool.note_unpin(vpage)
        self.driver.unpin_pages(self.pid, [vpage])
        self.capacity_evictions += 1
        stats.unpin_calls += 1
        stats.pages_unpinned += 1
        stats.unpin_time_us += self.cost_model.unpin_cost(1)

    # -- outstanding-send protection ------------------------------------------------

    def hold(self, vpage):
        self.pool.hold(vpage)

    def release(self, vpage):
        self.pool.release(vpage)

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self):
        """Tree, table, and pool must agree; slots must be consistent."""
        tree_pages = dict(self.tree.items())
        table_by_slot = {slot: (vpage, frame)
                         for slot, vpage, frame in self.table.items()}
        assert len(tree_pages) == len(table_by_slot), (
            "tree has %d entries, table has %d"
            % (len(tree_pages), len(table_by_slot)))
        for vpage, slot in tree_pages.items():
            assert slot in table_by_slot, "tree points at free slot %d" % slot
            assert table_by_slot[slot][0] == vpage, (
                "slot %d holds page %#x but tree says %#x"
                % (slot, table_by_slot[slot][0], vpage))
            assert vpage in self.pool, "page %#x mapped but not pinned" % vpage
        assert len(self.pool) == len(tree_pages)
        if self.pool.limit_pages is not None:
            assert len(self.pool) <= self.pool.limit_pages
        return True
