"""The two-level user-level lookup tree of the per-process UTLB.

Under the per-process UTLB (Section 3.1), the user library must remember,
for each pinned virtual page, *which slot* of the NIC translation table
holds its physical address.  The paper uses "a standard two-level page
table architecture": a directory of second-level tables, each entry either
invalid or holding a translation-table index.  "Only two memory references
are required to obtain the UTLB index for a given virtual page address."

The tree also counts those simulated memory references so the host-side
check cost can be charged faithfully.
"""

from repro import params
from repro.core import addresses
from repro.errors import TranslationError


class TwoLevelLookupTree:
    """vpage -> UTLB translation-table index, as a two-level tree."""

    def __init__(self):
        self._directory = {}        # dir index -> {table index -> utlb index}
        self.memory_references = 0
        self.entries = 0

    def lookup(self, vpage):
        """UTLB table index for ``vpage``, or None when not installed.

        Charges exactly two simulated memory references (directory +
        second-level entry), matching the paper's claim.
        """
        self.memory_references += 2
        second = self._directory.get(addresses.directory_index(vpage))
        if second is None:
            return None
        return second.get(addresses.table_index(vpage))

    def install(self, vpage, utlb_index):
        """Record that ``vpage``'s translation lives at ``utlb_index``."""
        if utlb_index is None or utlb_index < 0:
            raise TranslationError("invalid UTLB index %r" % (utlb_index,))
        second = self._directory.setdefault(addresses.directory_index(vpage), {})
        tbl = addresses.table_index(vpage)
        if tbl not in second:
            self.entries += 1
        second[tbl] = utlb_index

    def remove(self, vpage):
        """Forget ``vpage``; returns the index it held.

        Raises :class:`TranslationError` when the page was not installed.
        """
        dir_idx = addresses.directory_index(vpage)
        second = self._directory.get(dir_idx)
        tbl = addresses.table_index(vpage)
        if second is None or tbl not in second:
            raise TranslationError(
                "virtual page %#x is not in the lookup tree" % (vpage,))
        index = second.pop(tbl)
        self.entries -= 1
        if not second:
            del self._directory[dir_idx]
        return index

    def __contains__(self, vpage):
        second = self._directory.get(addresses.directory_index(vpage))
        return second is not None and addresses.table_index(vpage) in second

    def __len__(self):
        return self.entries

    def items(self):
        """All (vpage, utlb_index) pairs, ascending by vpage."""
        for dir_idx in sorted(self._directory):
            second = self._directory[dir_idx]
            for tbl_idx in sorted(second):
                yield (addresses.vpage_from_indices(dir_idx, tbl_idx),
                       second[tbl_idx])

    @property
    def second_level_tables(self):
        """Number of second-level tables currently allocated."""
        return len(self._directory)

    @property
    def memory_bytes(self):
        """Approximate memory footprint (4-byte entries, full tables)."""
        return (len(self._directory) * params.TABLE_ENTRIES * 4
                + params.DIRECTORY_ENTRIES * 4)
