"""Dynamic pinning limits: OS reclaim of pinned memory (Section 3.4).

"Enforcing a static limit on the number of pages a process can pin is
straightforward.  But, implementing a dynamic limit requires that the OS
synchronize with the user-level UTLB data structures when reclaiming
pinned physical pages."  The paper leaves this as discussion; this module
implements it.

A :class:`ReclaimCoordinator` stands between the OS's memory pressure and
the per-process UTLBs.  When the OS needs frames back it asks the
coordinator, which picks victim processes and *synchronizes with their
user-level structures*: victims are chosen by each process's own
replacement policy (never a page held by an outstanding send), and the
eviction runs through the standard UTLB unpin path, so the bit vector,
translation table, NIC cache, and pinned pool all stay coherent — the
invariants :meth:`HierarchicalUtlb.check_invariants` checks keep holding
across reclaims.

Observability: because every reclaim-driven eviction funnels through
``HierarchicalUtlb._unpin_page``, a tracer attached to the victim UTLB
sees the full NI_INVALIDATE-then-UNPIN sequence for each reclaimed page —
reclaim storms are visible (and invariant-checked) in the event stream
with no extra instrumentation here.
"""

from repro.errors import CapacityError, ConfigError


class ReclaimStats:
    __slots__ = ("reclaim_calls", "pages_reclaimed", "limit_changes")

    def __init__(self):
        self.reclaim_calls = 0
        self.pages_reclaimed = 0
        self.limit_changes = 0


class ReclaimCoordinator:
    """Coordinates dynamic pinning limits across a host's processes."""

    def __init__(self):
        self._utlbs = {}
        self.stats = ReclaimStats()

    def register(self, utlb):
        """Track a process's UTLB; returns it for chaining."""
        if utlb.pid in self._utlbs:
            raise ConfigError("pid %r already registered" % (utlb.pid,))
        self._utlbs[utlb.pid] = utlb
        return utlb

    def unregister(self, pid):
        self._utlbs.pop(pid, None)

    def pinned_pages(self, pid=None):
        """Pinned-page count for one process, or host-wide total."""
        if pid is not None:
            return len(self._utlbs[pid].pool)
        return sum(len(u.pool) for u in self._utlbs.values())

    # -- dynamic limits ------------------------------------------------------------

    def set_limit(self, pid, limit_pages):
        """Change a process's pinning limit at runtime.

        Shrinking below the current pinned count evicts the overflow
        immediately through the process's own policy.  Returns the number
        of pages evicted.
        """
        if limit_pages is not None and limit_pages <= 0:
            raise ConfigError("limit must be positive or None")
        try:
            utlb = self._utlbs[pid]
        except KeyError:
            raise ConfigError("pid %r not registered" % (pid,))
        utlb.pool.limit_pages = limit_pages
        self.stats.limit_changes += 1
        evicted = 0
        if limit_pages is not None:
            overflow = len(utlb.pool) - limit_pages
            if overflow > 0:
                evicted = self._evict_from(utlb, overflow)
        return evicted

    def reclaim(self, pages_needed):
        """OS memory pressure: free ``pages_needed`` pinned pages.

        Victim processes are chosen largest-pinner-first (the process
        hogging the most pinned memory yields first); within a process,
        its own replacement policy picks the pages.  Raises
        :class:`CapacityError` if the host cannot satisfy the request
        (everything remaining is held by outstanding sends).
        """
        if pages_needed <= 0:
            return 0
        self.stats.reclaim_calls += 1
        remaining = pages_needed
        # Iterate until satisfied; each round taps the biggest pinner.
        while remaining > 0:
            candidates = sorted(
                self._utlbs.values(),
                key=lambda u: self._evictable(u), reverse=True)
            if not candidates or self._evictable(candidates[0]) == 0:
                raise CapacityError(
                    "cannot reclaim %d more pages: all pinned pages are "
                    "held by outstanding sends" % (remaining,))
            victim = candidates[0]
            take = min(remaining, max(1, self._evictable(victim) // 2))
            remaining -= self._evict_from(victim, take)
        return pages_needed

    def _evictable(self, utlb):
        return len(utlb.pool) - len(utlb.pool.held_pages())

    def _evict_from(self, utlb, count):
        """Evict ``count`` pages from one process via its own policy."""
        count = min(count, self._evictable(utlb))
        if count <= 0:
            return 0
        victims = utlb.pool.policy.select_victims(
            count, exclude=utlb.pool.held_pages())
        for vpage in victims:
            utlb._unpin_page(vpage)
        self.stats.pages_reclaimed += len(victims)
        return len(victims)
