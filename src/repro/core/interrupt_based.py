"""The interrupt-based baseline (UNet-MM style, Sections 2 and 6.2).

The comparison point of the paper's evaluation: the NIC keeps the same
translation cache, but there is no user-level structure and no host-memory
translation table.  On every NIC translation miss, the NIC interrupts the
host CPU; the interrupt handler pins the page and installs its translation
directly into the NIC cache.  "The interrupt-based approach always unpins
a page that is evicted from the network interface translation cache" —
pinned pages and cached translations are the same set.

Consequences the experiments reproduce:

* every miss pays a 10 µs interrupt, though pin/unpin then run at kernel
  rates (no protection-domain crossing, Section 6.2);
* evictions force unpins, so small caches cause heavy unpin traffic
  (Table 4's Intr 'unpins' column), and translations cannot outlive cache
  residency.

Because a cache fill by one process can evict — and therefore unpin — a
page of *another* process, the mechanism is modelled per node, with
per-process state inside.
"""

from collections import OrderedDict

from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.stats import TranslationStats
from repro.errors import ConfigError, PinningError
from repro.obs.events import INTERRUPT, LOOKUP, PIN, UNPIN, Event


class _ProcessState:
    """Host-side bookkeeping for one process under the baseline."""

    __slots__ = ("pinned", "limit_pages", "stats")

    def __init__(self, limit_pages):
        self.pinned = OrderedDict()     # vpage -> frame, in miss (install) order
        self.limit_pages = limit_pages
        self.stats = TranslationStats()


class InterruptBasedNode:
    """All processes on one host sharing one NIC translation cache."""

    def __init__(self, cache, driver=None, cost_model=None, tracer=None):
        self.cache = cache
        if driver is None:
            from repro.core.utlb import CountingFrameDriver
            driver = CountingFrameDriver()
        self.driver = driver
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self._processes = {}
        self.tracer = tracer
        # Host-side events (LOOKUP / INTERRUPT / PIN / UNPIN); the NIC
        # cache events come from the shared cache's own tracer.
        self._trace = (tracer.emit if tracer is not None and tracer.enabled
                       else None)

    def register_process(self, pid, memory_limit_pages=None):
        """Add a process; returns its stats object."""
        if pid in self._processes:
            raise ConfigError("pid %r already registered" % (pid,))
        if memory_limit_pages is not None and memory_limit_pages <= 0:
            raise ConfigError("memory limit must be positive or None")
        self.cache.register_process(pid)
        state = _ProcessState(memory_limit_pages)
        self._processes[pid] = state
        return state.stats

    def stats_for(self, pid):
        return self._state(pid).stats

    def pinned_map(self, pid):
        """The live vpage -> frame map of ``pid``'s pinned pages.

        Under this mechanism pinned pages and cached translations are the
        same set, so membership here IS a NIC cache hit — the fast replay
        engine exploits exactly that.  Mutated in place; do not modify.
        """
        return self._state(pid).pinned

    def merged_stats(self):
        return TranslationStats.merged(
            s.stats for s in self._processes.values())

    def _state(self, pid):
        try:
            return self._processes[pid]
        except KeyError:
            raise ConfigError("pid %r not registered" % (pid,))

    # -- translation path ---------------------------------------------------------

    def access_page(self, pid, vpage):
        """Translate one page for ``pid``; returns its physical frame."""
        state = self._state(pid)
        stats = state.stats
        cm = self.cost_model
        stats.lookups += 1
        stats.ni_accesses += 1
        stats.ni_hit_time_us += cm.ni_check_hit
        if self._trace is not None:
            self._trace(Event(LOOKUP, pid, vpage))

        hit, frame = self.cache.lookup(pid, vpage)
        if hit:
            stats.ni_hits += 1
            return frame

        # Miss: interrupt the host.
        stats.ni_misses += 1
        stats.interrupts += 1
        stats.interrupt_time_us += cm.interrupt_cost
        if self._trace is not None:
            self._trace(Event(INTERRUPT, pid, vpage))
        return self._host_miss_handler(pid, state, vpage)

    def _host_miss_handler(self, pid, state, vpage):
        """The host interrupt handler: pin, enforce the limit, install."""
        cm = self.cost_model
        stats = state.stats
        if vpage in state.pinned:
            # The invariant pinned == cached means a missed page is never
            # pinned; seeing one indicates corrupted bookkeeping.
            raise PinningError(
                "pid %r: page %#x pinned but missed in the cache"
                % (pid, vpage))

        # Enforce the per-process pinning limit before pinning a new page.
        if (state.limit_pages is not None
                and len(state.pinned) >= state.limit_pages):
            victim_page = next(iter(state.pinned))
            self.cache.invalidate(pid, victim_page)
            self._unpin(pid, state, victim_page)

        frames = self.driver.pin_pages(pid, [vpage])
        frame = frames[vpage]
        stats.pin_calls += 1
        stats.pages_pinned += 1
        stats.pin_time_us += cm.kernel_pin_cost(1)
        state.pinned[vpage] = frame
        if self._trace is not None:
            self._trace(Event(PIN, pid, vpage, frame, 1))

        evicted_key = self.cache.fill(pid, vpage, frame)
        if evicted_key is not None:
            evicted_pid, evicted_page = evicted_key
            evicted_state = self._state(evicted_pid)
            self._unpin(evicted_pid, evicted_state, evicted_page)
        return frame

    def _unpin(self, pid, state, vpage):
        """Unpin a page whose translation left the cache (kernel rates)."""
        cm = self.cost_model
        stats = state.stats
        if vpage not in state.pinned:
            raise PinningError(
                "pid %r: evicted page %#x was not pinned" % (pid, vpage))
        del state.pinned[vpage]
        self.driver.unpin_pages(pid, [vpage])
        stats.unpin_calls += 1
        stats.pages_unpinned += 1
        stats.unpin_time_us += cm.kernel_unpin_cost(1)
        if self._trace is not None:
            # Always after the NI_EVICT/NI_INVALIDATE that removed the
            # translation: the baseline unpins exactly on evict.
            self._trace(Event(UNPIN, pid, vpage))

    # -- invariants --------------------------------------------------------------------

    def check_invariants(self):
        """pinned pages == cached translations, per process; limits hold."""
        cached = {}
        for (pid, vpage), frame in self.cache._cache.items():
            cached.setdefault(pid, {})[vpage] = frame
        for pid, state in self._processes.items():
            expect = cached.get(pid, {})
            assert dict(state.pinned) == expect, (
                "pid %r: pinned set %s != cached set %s"
                % (pid, sorted(state.pinned)[:8], sorted(expect)[:8]))
            if state.limit_pages is not None:
                assert len(state.pinned) <= state.limit_pages
        return True
