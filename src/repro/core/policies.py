"""User-level pinned-page replacement policies.

"UTLB predefines five replacement policies for applications to choose:
LRU, MRU, LFU, MFU, and RANDOM" (Section 3.4).  These policies decide
*which pinned virtual pages to unpin* when a process reaches its pinning
limit — they operate on the user library's pinned-page pool, not on the
NIC cache (the NIC cache has its own line replacement in ``cachesim``).

Every policy implements the same protocol:

* ``on_pin(vpage)``    — a page entered the pinned pool
* ``on_access(vpage)`` — a lookup touched a pinned page
* ``on_unpin(vpage)``  — a page left the pool
* ``select_victims(n, exclude=())`` — choose ``n`` pages to evict; pages in
  ``exclude`` must not be chosen (they are involved in outstanding sends —
  the correctness requirement at the end of Section 3.1).
"""

import heapq
import random
from collections import OrderedDict

from repro.errors import CapacityError, ConfigError


#: Shared empty exclusion set: eviction with no outstanding sends (the
#: overwhelmingly common case) allocates nothing.
_NO_EXCLUDE = frozenset()


class PinnedPagePolicy:
    """Base class: maintains the pool membership set."""

    name = "base"

    def __init__(self):
        self._pool = set()

    @property
    def pages(self):
        """The pinned-page set itself (read-only by convention).

        Exposed so replay fast paths can test membership without a
        method call per lookup; the set object is stable for the
        policy's lifetime and mutated in place.
        """
        return self._pool

    def on_pin(self, vpage):
        if vpage in self._pool:
            raise CapacityError("page %#x already in pinned pool" % (vpage,))
        self._pool.add(vpage)
        self._record_pin(vpage)

    def on_access(self, vpage):
        if vpage in self._pool:
            self._record_access(vpage)

    def on_unpin(self, vpage):
        if vpage not in self._pool:
            raise CapacityError("page %#x not in pinned pool" % (vpage,))
        self._pool.remove(vpage)
        self._record_unpin(vpage)

    def select_victims(self, n, exclude=()):
        """Pick ``n`` victims, skipping ``exclude``; raises when impossible."""
        if n <= 0:
            return []
        if exclude:
            exclude = set(exclude)
            eligible = len(self._pool) - len(self._pool & exclude)
        else:
            exclude = _NO_EXCLUDE
            eligible = len(self._pool)
        if eligible < n:
            raise CapacityError(
                "need %d victims but only %d eligible pinned pages"
                % (n, eligible))
        return self._choose(n, exclude)

    def __len__(self):
        return len(self._pool)

    def __contains__(self, vpage):
        return vpage in self._pool

    # subclass hooks --------------------------------------------------------

    def _record_pin(self, vpage):
        raise NotImplementedError

    def _record_access(self, vpage):
        raise NotImplementedError

    def _record_unpin(self, vpage):
        raise NotImplementedError

    def _choose(self, n, exclude):
        raise NotImplementedError


class _RecencyPolicy(PinnedPagePolicy):
    """Shared machinery for LRU and MRU: an access-ordered OrderedDict."""

    def __init__(self):
        super().__init__()
        self._order = OrderedDict()     # oldest access first

    def _record_pin(self, vpage):
        self._order[vpage] = True
        self._order.move_to_end(vpage)

    def _record_access(self, vpage):
        self._order.move_to_end(vpage)

    def _record_unpin(self, vpage):
        self._order.pop(vpage, None)

    def _scan(self, keys, n, exclude):
        victims = []
        for vpage in keys:
            if vpage in exclude:
                continue
            victims.append(vpage)
            if len(victims) == n:
                break
        return victims


class LruPolicy(_RecencyPolicy):
    """Evict the least recently used pinned pages (the paper's default)."""

    name = "lru"

    def _choose(self, n, exclude):
        return self._scan(self._order, n, exclude)


class MruPolicy(_RecencyPolicy):
    """Evict the most recently used pages — optimal for cyclic scans larger
    than the pool, where LRU evicts exactly what is needed next."""

    name = "mru"

    def _choose(self, n, exclude):
        return self._scan(reversed(self._order), n, exclude)


class _FrequencyPolicy(PinnedPagePolicy):
    """Shared machinery for LFU and MFU: access counters with a stable
    (count, sequence) tie-break so behaviour is deterministic."""

    def __init__(self):
        super().__init__()
        self._counts = {}
        self._sequence = {}
        self._next_seq = 0

    def _record_pin(self, vpage):
        self._counts[vpage] = 1
        self._sequence[vpage] = self._next_seq
        self._next_seq += 1

    def _record_access(self, vpage):
        self._counts[vpage] += 1

    def _record_unpin(self, vpage):
        self._counts.pop(vpage, None)
        self._sequence.pop(vpage, None)

    def _ranked(self, n, exclude, largest):
        candidates = ((count, self._sequence[vpage], vpage)
                      for vpage, count in self._counts.items()
                      if vpage not in exclude)
        if largest:
            chosen = heapq.nlargest(n, candidates)
        else:
            chosen = heapq.nsmallest(n, candidates)
        return [vpage for _, _, vpage in chosen]


class LfuPolicy(_FrequencyPolicy):
    """Evict the least frequently used pinned pages."""

    name = "lfu"

    def _choose(self, n, exclude):
        return self._ranked(n, exclude, largest=False)


class MfuPolicy(_FrequencyPolicy):
    """Evict the most frequently used pinned pages."""

    name = "mfu"

    def _choose(self, n, exclude):
        return self._ranked(n, exclude, largest=True)


class RandomPolicy(PinnedPagePolicy):
    """Evict uniformly at random (deterministic under a fixed seed)."""

    name = "random"

    def __init__(self, seed=0):
        super().__init__()
        self._rng = random.Random(seed)

    def _record_pin(self, vpage):
        pass

    def _record_access(self, vpage):
        pass

    def _record_unpin(self, vpage):
        pass

    def _choose(self, n, exclude):
        eligible = sorted(v for v in self._pool if v not in exclude)
        return self._rng.sample(eligible, n)


PIN_POLICIES = {
    "lru": LruPolicy,
    "mru": MruPolicy,
    "lfu": LfuPolicy,
    "mfu": MfuPolicy,
    "random": RandomPolicy,
}


def make_pin_policy(name, seed=0):
    """Instantiate one of the five predefined policies by name."""
    try:
        cls = PIN_POLICIES[name]
    except KeyError:
        raise ConfigError("unknown pin policy %r (choose from %s)"
                          % (name, sorted(PIN_POLICIES)))
    if cls is RandomPolicy:
        return cls(seed=seed)
    return cls()
