"""Hierarchical-UTLB: the mechanism the paper evaluates (Section 3.3).

One :class:`HierarchicalUtlb` instance embodies one process's translation
machinery end to end:

* user level — a pinned-status :class:`~repro.core.bitvector.BitVector`
  and a :class:`~repro.core.pinner.PinnedPagePool` (replacement policy +
  pinning limit);
* kernel level — a driver that pins pages and returns their frames;
* host memory — a :class:`HierarchicalTranslationTable` holding the
  translations of pinned pages;
* NIC — a :class:`~repro.core.shared_cache.SharedUtlbCache`, shared with
  the node's other processes, filled by (simulated) DMA on a miss, with
  optional prefetch of consecutive entries.

Every step charges the calibrated :class:`~repro.core.costs.CostModel`
into a :class:`~repro.core.stats.TranslationStats`, which is exactly the
instrumentation the paper's trace-driven simulator reports.
"""

from repro import params
from repro.core import addresses
from repro.core.bitvector import BitVector
from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.pinner import PinnedPagePool
from repro.core.stats import TranslationStats
from repro.core.translation_table import HierarchicalTranslationTable
from repro.errors import ConfigError, PinningError
from repro.obs.events import CHECK_MISS, ENTRY_FETCH, LOOKUP, PIN, UNPIN, Event


class CountingFrameDriver:
    """A minimal driver for simulation and unit tests.

    Hands out fresh frame numbers on pin and tracks the pinned set; it
    performs no real memory management.  The functional driver that pins
    real simulated memory is :class:`repro.vmmc.driver.VmmcDriver`.
    """

    def __init__(self):
        self._next_frame = 1
        self._pinned = {}           # (pid, vpage) -> frame
        self._pinned_per_pid = {}   # pid -> number of pinned pages

    def pin_pages(self, pid, vpages):
        """Pin ``vpages``; returns {vpage: frame}."""
        if type(vpages) is list and len(vpages) == 1:
            # Demand pinning (no pre-pin) always pins one page; skip the
            # loop scaffolding for it.
            vpage = vpages[0]
            key = (pid, vpage)
            if key in self._pinned:
                raise PinningError("page %#x already pinned" % (vpage,))
            frame = self._next_frame
            self._pinned[key] = frame
            self._pinned_per_pid[pid] = self._pinned_per_pid.get(pid, 0) + 1
            self._next_frame = frame + 1
            return {vpage: frame}
        frames = {}
        for vpage in vpages:
            key = (pid, vpage)
            if key in self._pinned:
                raise PinningError("page %#x already pinned" % (vpage,))
            self._pinned[key] = self._next_frame
            self._pinned_per_pid[pid] = self._pinned_per_pid.get(pid, 0) + 1
            frames[vpage] = self._next_frame
            self._next_frame += 1
        return frames

    def unpin_pages(self, pid, vpages):
        for vpage in vpages:
            try:
                del self._pinned[(pid, vpage)]
            except KeyError:
                raise PinningError("page %#x not pinned" % (vpage,))
            self._pinned_per_pid[pid] -= 1

    def pinned_count(self, pid):
        return self._pinned_per_pid.get(pid, 0)


class HierarchicalUtlb:
    """The full Hierarchical-UTLB stack for one process.

    Parameters
    ----------
    pid:
        Process identity, used to tag shared-cache entries.
    cache:
        The node's :class:`SharedUtlbCache` (shared across processes).
    driver:
        Object with ``pin_pages(pid, vpages) -> {vpage: frame}`` and
        ``unpin_pages(pid, vpages)``.
    memory_limit_pages:
        Per-process pinning limit (None = unlimited, the Table 4 setting).
    pin_policy:
        One of 'lru', 'mru', 'lfu', 'mfu', 'random' (Section 3.4).
    prepin:
        Pages pinned per check miss (sequential pre-pinning, Section 6.5).
    prefetch:
        Translation entries fetched per NIC miss (Section 6.4).
    tracer:
        Optional :class:`repro.obs.tracer.Tracer` receiving LOOKUP /
        CHECK_MISS / PIN / UNPIN / ENTRY_FETCH events (the NIC-side
        fill/hit/evict/invalidate events come from the shared cache).
        None or a disabled tracer costs one pointer test per branch.
    """

    def __init__(self, pid, cache, driver=None, cost_model=None,
                 memory_limit_pages=None, pin_policy="lru", prepin=1,
                 prefetch=1, garbage_frame=None, seed=0, tracer=None):
        if prepin <= 0:
            raise ConfigError("prepin degree must be positive")
        if prefetch <= 0:
            raise ConfigError("prefetch degree must be positive")
        self.pid = pid
        self.cache = cache
        self.driver = driver if driver is not None else CountingFrameDriver()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.prepin = prepin
        self.prefetch = prefetch
        self.bitvector = BitVector(params.NUM_VPAGES)
        self.table = HierarchicalTranslationTable(pid, garbage_frame=garbage_frame)
        self.pool = PinnedPagePool(memory_limit_pages, policy=pin_policy,
                                   seed=seed)
        self.stats = TranslationStats()
        self.tracer = tracer
        # Bound once: the per-event emit call when tracing, None when not
        # (one identity test per instrumented branch, nothing more).
        self._trace = (tracer.emit if tracer is not None and tracer.enabled
                       else None)
        cache.register_process(pid)

    # -- the translation path (Figure 2) ---------------------------------------

    def access_page(self, vpage):
        """Translate one virtual page; returns its physical frame.

        This is the unit the trace-driven analysis counts: the firmware
        splits transfers at page boundaries and performs one lookup per
        page (footnote 1).  It is the user-level check followed by the
        NIC-side lookup; the functional VMMC path runs the two phases
        separately (the library checks, the MCP translates).
        """
        self.user_check_page(vpage)
        return self.nic_translate_page(vpage)

    def user_check_page(self, vpage):
        """User-level phase: consult the bit vector, pin on a check miss.

        Counts one translation lookup (the paper's per-lookup unit).
        """
        stats = self.stats
        stats.lookups += 1
        stats.check_time_us += self.cost_model.user_check_hit
        trace = self._trace
        if trace is not None:
            trace(Event(LOOKUP, self.pid, vpage))
        if not self.bitvector.test(vpage):
            stats.check_misses += 1
            if trace is not None:
                trace(Event(CHECK_MISS, self.pid, vpage))
            self._pin_on_demand(vpage)
        self.pool.note_access(vpage)

    def nic_translate_page(self, vpage):
        """NIC-side phase: Shared UTLB-Cache lookup, DMA fill on a miss."""
        stats = self.stats
        stats.ni_accesses += 1
        stats.ni_hit_time_us += self.cost_model.ni_check_hit
        hit, frame = self.cache.lookup(self.pid, vpage)
        if hit:
            stats.ni_hits += 1
            return frame
        return self._handle_ni_miss(vpage)

    def ensure_pinned(self, vaddr, nbytes):
        """Pin every page of a buffer without counting translation lookups.

        Used by VMMC export and transfer redirection: receive buffers are
        pinned when exported (Section 4.1), which is setup work, not a
        communication-path lookup.  Pages already pinned are left alone.
        Returns the list of newly pinned virtual pages.
        """
        stats = self.stats
        cm = self.cost_model
        missing = [v for v in addresses.page_range(vaddr, nbytes)
                   if not self.bitvector.test(v)]
        if not missing:
            return []
        for victim in self.pool.victims_for(len(missing)):
            self._unpin_page(victim)
        frames = self.driver.pin_pages(self.pid, missing)
        stats.pin_calls += 1
        stats.pages_pinned += len(missing)
        stats.pin_time_us += cm.pin_cost(len(missing))
        self._install_pinned(missing, frames)
        return missing

    def translate_buffer(self, vaddr, nbytes):
        """Translate a user buffer into DMA chunks.

        Yields ``(frame, offset, length)`` triples, one per page crossed,
        performing a full translation lookup for each — the send path of
        Figure 2 plus the firmware's page-at-a-time splitting.
        """
        for chunk_va, chunk_len in addresses.split_at_page_boundaries(vaddr, nbytes):
            frame = self.access_page(addresses.vpage_of(chunk_va))
            yield frame, addresses.page_offset(chunk_va), chunk_len

    # -- check-miss handling: demand pinning (with optional pre-pinning) --------

    def _pin_on_demand(self, vpage):
        """Pin ``vpage`` (and pre-pin successors), evicting if needed."""
        stats = self.stats
        cm = self.cost_model

        # Sequential pre-pinning: try to pin `prepin` contiguous pages
        # starting at the missed one, skipping those already pinned.
        if self.prepin == 1:
            # Degenerate batch: the caller just proved the bit is clear.
            to_pin = [vpage]
        else:
            end = min(vpage + self.prepin, params.NUM_VPAGES)
            to_pin = [v for v in range(vpage, end)
                      if not self.bitvector.test(v)]
            if self.pool.limit_pages is not None:
                # Never pin a batch bigger than the whole budget.
                to_pin = to_pin[:self.pool.limit_pages]
            if vpage not in to_pin:
                raise PinningError(
                    "demand page %#x lost from pin batch" % (vpage,))

        for victim in self.pool.victims_for(len(to_pin)):
            self._unpin_page(victim)

        frames = self.driver.pin_pages(self.pid, to_pin)
        stats.pin_calls += 1
        stats.pages_pinned += len(to_pin)
        stats.pin_time_us += cm.pin_cost(len(to_pin))
        self._install_pinned(to_pin, frames)

    def _install_pinned(self, pages, frames):
        """Record one pin call's pages in every user-level structure."""
        trace = self._trace
        batch = len(pages)
        for page in pages:
            self.bitvector.set(page)
            self.table.install(page, frames[page])
            self.pool.note_pin(page)
            if trace is not None:
                # The batch size rides on the first page only, so the
                # stream distinguishes pin *calls* from pages pinned.
                trace(Event(PIN, self.pid, page, frames[page], batch))
                batch = None

    def _unpin_page(self, vpage):
        """Unpin one page: clear the bit, drop the table entry, and
        invalidate any NIC cache copy.  One ioctl per page (Section 6.5:
        'unpinning is still done one page at a time')."""
        stats = self.stats
        self.pool.note_unpin(vpage)
        self.bitvector.clear(vpage)
        self.table.invalidate(vpage)
        self.cache.invalidate(self.pid, vpage)
        self.driver.unpin_pages(self.pid, [vpage])
        stats.unpin_calls += 1
        stats.pages_unpinned += 1
        stats.unpin_time_us += self.cost_model.unpin_cost(1)
        if self._trace is not None:
            # After the cache invalidation above: the stream shows the
            # NIC entry dying before the page is unpinned.
            self._trace(Event(UNPIN, self.pid, vpage))

    def unpin_all(self):
        """Release every pinned page (process teardown)."""
        for vpage in list(self.bitvector.set_indices()):
            self._unpin_page(vpage)

    # -- NIC-miss handling: DMA fill with prefetch ---------------------------------

    def _handle_ni_miss(self, vpage):
        stats = self.stats
        cm = self.cost_model
        stats.ni_misses += 1
        block = self.table.read_block(vpage, self.prefetch)
        stats.entries_fetched += len(block)
        stats.ni_miss_time_us += cm.miss_cost(len(block))
        if self._trace is not None:
            self._trace(Event(ENTRY_FETCH, self.pid, vpage, None, len(block)))
        self.cache.fill_block(self.pid, block)
        # A cache eviction under UTLB requires no host action: the
        # translation stays alive in the host table (the key difference
        # from the interrupt-based approach, Section 6.2).
        frame = block[0][1]
        if frame is None:
            raise PinningError(
                "page %#x missed in NIC cache but is not in the translation "
                "table — pinned-state invariant broken" % (vpage,))
        return frame

    # -- outstanding-send protection -------------------------------------------------

    def hold(self, vpage):
        """Mark a page as involved in an outstanding send (not evictable)."""
        self.pool.hold(vpage)

    def release(self, vpage):
        self.pool.release(vpage)

    # -- invariants (used heavily by the test suite) -----------------------------------

    def check_invariants(self):
        """Verify the cross-structure consistency the design promises.

        * bit vector, pinned pool, and host table agree exactly;
        * every NIC cache entry for this pid is backed by the host table;
        * the pinning limit is respected.
        Raises AssertionError on violation.
        """
        bits = set(self.bitvector.set_indices())
        table_pages = {vpage for vpage, _ in self.table.mapped_pages()}
        pool_pages = {v for v in bits if v in self.pool}
        assert bits == table_pages, (
            "bit vector and translation table disagree: %s"
            % sorted(bits ^ table_pages)[:8])
        assert bits == pool_pages and len(self.pool) == len(bits), (
            "bit vector and pinned pool disagree")
        for vpage, frame in self.cache.entries_for(self.pid):
            backing = self.table.lookup(vpage)
            assert backing == frame, (
                "NIC cache entry for page %#x (%r) not backed by the table "
                "(%r)" % (vpage, frame, backing))
        if self.pool.limit_pages is not None:
            assert len(self.pool) <= self.pool.limit_pages, (
                "pinning limit exceeded: %d > %d"
                % (len(self.pool), self.pool.limit_pages))
        return True
