"""Utopia-style hybrid restrictive/flexible translation (PAPERS.md).

Utopia splits physical memory into a *restrictive* region — pages whose
translation is a pure function of the virtual page number, so no lookup
structure is consulted at all — and a *flexible* region holding
everything that cannot be placed restrictively.  Transplanted to the
NIC: half the SRAM entries form a direct-indexed restrictive array (one
probe, no tags walked, no evictions — an entry leaves only when its page
is unpinned), and the other half remain a conventional set-associative
flexible table for spillover.

A fill tries the restrictive slot first; if the slot is taken by another
page (or the page already lives in the flexible table) it spills to the
flexible side.  Exactly one copy of any translation exists at a time, so
an unpin invalidation finds it wherever it lives.
"""

from repro.core.shared_cache import SharedUtlbCache
from repro.obs.events import NI_FILL, NI_HIT, NI_INVALIDATE, Event


class UtopiaCache(SharedUtlbCache):
    """Half direct-indexed restrictive slots, half flexible spillover.

    ``num_entries`` is the *total* budget: ``num_entries // 2``
    restrictive slots plus the remainder as the flexible
    :class:`SharedUtlbCache`.  The flexible half keeps the base cache's
    associativity/offsetting knobs; the restrictive half is indexed by a
    per-process golden-ratio hash of the virtual page number.
    """

    def __init__(self, num_entries, *args, **kwargs):
        rest_slots = num_entries // 2
        if rest_slots < 1:
            raise ValueError(
                "UtopiaCache needs at least 2 entries, got %d" % num_entries)
        super().__init__(num_entries - rest_slots, *args, **kwargs)
        self._rest_slots = rest_slots
        self._rest = {}             # slot -> ((pid, vpage), frame)
        self._rest_tags = {}        # pid -> registration index
        #: Fills answered by a free/matching restrictive slot (the
        #: "no lookup cost" population; the rest spilled to flexible).
        self.restrictive_fills = 0

    # -- placement ----------------------------------------------------------

    def register_process(self, pid):
        offset = super().register_process(pid)
        self._rest_tags.setdefault(pid, len(self._rest_tags))
        return offset

    def _rest_slot(self, pid, vpage):
        tag = self._rest_tags[pid]
        return (vpage + tag * self.OFFSET_MULTIPLIER) % self._rest_slots

    # -- the NIC fast path --------------------------------------------------

    def lookup(self, pid, vpage):
        entry = self._rest.get(self._rest_slot(pid, vpage))
        if entry is not None and entry[0] == (pid, vpage):
            stats = self._cache.stats
            stats.accesses += 1
            stats.hits += 1
            if self._trace is not None:
                self._trace(Event(NI_HIT, pid, vpage, entry[1]))
            return True, entry[1]
        return super().lookup(pid, vpage)

    def fill(self, pid, vpage, frame, demand=True):
        key = (pid, vpage)
        slot = self._rest_slot(pid, vpage)
        entry = self._rest.get(slot)
        if (entry is not None and entry[0] == key) or (
                entry is None and key not in self._cache):
            # Restrictive placement: the slot already holds this page, or
            # it is free and no flexible copy exists (never two copies —
            # invalidation must find the one translation).
            self._rest[slot] = (key, frame)
            self._cache.stats.fills += 1
            self.restrictive_fills += 1
            if self._trace is not None:
                self._trace(Event(NI_FILL, pid, vpage, frame,
                                  1 if demand else 0))
            return None
        return super().fill(pid, vpage, frame, demand=demand)

    # -- invalidation -------------------------------------------------------

    def invalidate(self, pid, vpage):
        slot = self._rest_slot(pid, vpage)
        entry = self._rest.get(slot)
        if entry is not None and entry[0] == (pid, vpage):
            del self._rest[slot]
            self._cache.stats.invalidations += 1
            if self._trace is not None:
                self._trace(Event(NI_INVALIDATE, pid, vpage))
            return True
        return super().invalidate(pid, vpage)

    def invalidate_process(self, pid):
        victims = [slot for slot, (key, _f) in self._rest.items()
                   if key[0] == pid]
        for slot in victims:
            key, _frame = self._rest.pop(slot)
            self._cache.stats.invalidations += 1
            if self._trace is not None:
                self._trace(Event(NI_INVALIDATE, key[0], key[1]))
        return len(victims) + super().invalidate_process(pid)

    # -- inspection ---------------------------------------------------------

    @property
    def num_entries(self):
        """Total budget: restrictive slots plus flexible entries."""
        return self._cache.num_entries + self._rest_slots

    @property
    def restrictive_slots(self):
        return self._rest_slots

    def __contains__(self, key):
        if key[0] in self._rest_tags:
            entry = self._rest.get(self._rest_slot(*key))
            if entry is not None and entry[0] == key:
                return True
        return key in self._cache

    def __len__(self):
        return len(self._rest) + len(self._cache)

    def entries_for(self, pid):
        rest = [(key[1], frame) for key, frame in self._rest.values()
                if key[0] == pid]
        return rest + super().entries_for(pid)
