"""The Shared UTLB-Cache: the NIC-resident translation cache (Section 3.2).

One cache per network interface, shared by every process using it.  Each
entry is keyed by ``(process tag, virtual page)`` — the Figure 4 line
format (4-bit process tag, 8-bit virtual-address tag, 20-bit physical
address) generalized to exact keys — and holds the physical frame number.

The cache supports the paper's *index offsetting* technique (Section 6.3):
each process's virtual page numbers are offset by a process-dependent
constant before indexing, so identical indices from different processes
hash to different cache sets.  Disabling offsetting gives the
"direct-nohash" rows of Table 8.

A :class:`~repro.cachesim.classify.ThreeCClassifier` can ride along to
produce the Figure 7 miss breakdown.
"""

from repro import params
from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.classify import ThreeCClassifier
from repro.errors import CapacityError, ConfigError
from repro.obs.events import NI_EVICT, NI_FILL, NI_HIT, NI_INVALIDATE, Event


class SharedUtlbCache:
    """NIC translation cache shared across processes.

    Parameters
    ----------
    num_entries:
        Total cache entries (the paper's implementation used 8 K).
    associativity:
        1 for direct-mapped (the paper's recommendation), 2 or 4 for the
        Table 8 comparison points.
    offsetting:
        Apply the per-process index offset hash (True for the paper's
        "direct"/"2-way"/"4-way" rows; False for "direct-nohash").
    classify:
        Attach a 3C miss classifier (needed for Figure 7).
    tracer:
        Optional :class:`repro.obs.tracer.Tracer` receiving NI_HIT /
        NI_FILL / NI_EVICT / NI_INVALIDATE events, attributed to the
        owning process of each entry.  None or a disabled tracer costs
        one pointer test per operation.
    """

    def __init__(self, num_entries=params.DEFAULT_UTLB_CACHE_ENTRIES,
                 associativity=1, offsetting=True, classify=False,
                 replacement="lru", max_processes=params.MAX_PROCESSES_PER_NIC,
                 tracer=None):
        if max_processes <= 0:
            raise ConfigError("max_processes must be positive")
        self.offsetting = offsetting
        self.max_processes = max_processes
        self._offsets = {}
        self._cache = SetAssociativeCache(
            num_entries, associativity,
            index_fn=self._index_of, replacement=replacement)
        self.classifier = (ThreeCClassifier(num_entries) if classify else None)
        self.tracer = tracer
        self._trace = (tracer.emit if tracer is not None and tracer.enabled
                       else None)

    # -- process registration -------------------------------------------------

    #: Multiplier decorrelating per-process offsets (golden-ratio hash).
    OFFSET_MULTIPLIER = 0x9E3779B1

    def register_process(self, pid):
        """Assign ``pid`` its index offset; idempotent.

        The "process-dependent constant" of Section 3.2: each process tag
        is spread by a golden-ratio multiplicative hash so that identical
        virtual page numbers from different processes land in
        decorrelated cache sets.  (A simple ``tag * num_sets / 16``
        spacing clusters neighbouring tags and leaves systematic
        conflicts when hot regions exceed the spacing.)
        """
        if pid in self._offsets:
            return self._offsets[pid]
        if len(self._offsets) >= self.max_processes:
            raise CapacityError(
                "NIC already has %d registered processes (tag space is "
                "%d bits)" % (len(self._offsets), params.PROCESS_TAG_BITS))
        tag = len(self._offsets)
        offset = (tag * self.OFFSET_MULTIPLIER) % self._cache.num_sets
        self._offsets[pid] = offset
        return offset

    def is_registered(self, pid):
        return pid in self._offsets

    def _index_of(self, key):
        pid, vpage = key
        if self.offsetting:
            try:
                offset = self._offsets[pid]
            except KeyError:
                raise CapacityError("process %r not registered with the NIC"
                                    % (pid,))
            return vpage + offset
        return vpage

    # -- the NIC fast path ------------------------------------------------------

    def lookup(self, pid, vpage):
        """Probe the cache for a translation.  Returns (hit, frame)."""
        hit, frame = self._cache.lookup((pid, vpage))
        if self.classifier is not None:
            self.classifier.observe_access((pid, vpage), hit)
        if hit and self._trace is not None:
            self._trace(Event(NI_HIT, pid, vpage, frame))
        return hit, frame

    def fill(self, pid, vpage, frame, demand=True):
        """Install a translation; returns the evicted (pid, vpage) key or
        None.  ``demand=False`` marks a prefetch fill, which updates the
        classifier's shadow without counting an access."""
        evicted = self._cache.insert((pid, vpage), frame)
        if self.classifier is not None and not demand:
            self.classifier.observe_fill((pid, vpage))
        if self._trace is not None:
            if evicted is not None:
                self._trace(Event(NI_EVICT, evicted[0][0], evicted[0][1]))
            self._trace(Event(NI_FILL, pid, vpage, frame,
                              1 if demand else 0))
        if evicted is None:
            return None
        return evicted[0]

    def fill_block(self, pid, entries):
        """Install a prefetched block of ``(vpage, frame_or_None)`` pairs.

        The first pair is the demand miss (already counted by
        :meth:`lookup`); the rest are prefetches.  Invalid (None) frames
        are skipped — "translations for contiguous application pages must
        be available during a miss" for prefetch to help (Section 6.4).
        Returns the list of evicted keys.
        """
        evicted = []
        first = True
        for vpage, frame in entries:
            if frame is None:
                first = False
                continue
            victim = self.fill(pid, vpage, frame, demand=first)
            first = False
            if victim is not None:
                evicted.append(victim)
        return evicted

    # -- invalidation -------------------------------------------------------------

    def invalidate(self, pid, vpage):
        """Drop one translation (page was unpinned).  Returns True if found."""
        dropped = self._cache.invalidate((pid, vpage))
        if dropped:
            if self.classifier is not None:
                self.classifier.observe_invalidate((pid, vpage))
            if self._trace is not None:
                self._trace(Event(NI_INVALIDATE, pid, vpage))
        return dropped

    def invalidate_process(self, pid):
        """Drop every translation belonging to ``pid`` (process exit)."""
        victims = [key for key, _ in self._cache.items() if key[0] == pid]
        dropped = self._cache.invalidate_where(lambda k, v: k[0] == pid)
        if self.classifier is not None:
            for key in victims:
                self.classifier.observe_invalidate(key)
        if self._trace is not None:
            for key in victims:
                self._trace(Event(NI_INVALIDATE, key[0], key[1]))
        return dropped

    # -- inspection -----------------------------------------------------------------

    @property
    def stats(self):
        return self._cache.stats

    @property
    def num_entries(self):
        return self._cache.num_entries

    @property
    def associativity(self):
        return self._cache.associativity

    @property
    def num_sets(self):
        return self._cache.num_sets

    def __contains__(self, key):
        return key in self._cache

    def __len__(self):
        return len(self._cache)

    def entries_for(self, pid):
        """All (vpage, frame) pairs cached for one process."""
        return [(key[1], frame) for key, frame in self._cache.items()
                if key[0] == pid]

    def sram_bytes(self):
        """SRAM consumed, at the Figure 3 entry width."""
        return self.num_entries * params.UTLB_CACHE_ENTRY_BYTES


class ShadowedUtlbCache(SharedUtlbCache):
    """A :class:`SharedUtlbCache` that mirrors its contents in exact-key
    per-process dicts.

    The fast replay engine resolves the common case — a translation
    already cached — with one dict probe (``vpage in cache.shadow[pid]``)
    instead of the full indexed lookup, then batches the skipped hit
    accounting through :meth:`credit_shadow_hits`.  Every mutation path
    (fill, eviction, invalidate, process flush) keeps the shadow coherent,
    so ``shadow[pid]`` is always exactly the set of cached translations
    for ``pid``.

    Only sound as a lookup substitute for direct-mapped caches without a
    miss classifier: with ``associativity > 1`` a real lookup must touch
    the within-set replacement state, and with ``classify=True`` it must
    feed the 3C classifier — neither happens on the shadow path.  The
    simulator enforces that; the shadow itself stays coherent regardless.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: pid -> {vpage: frame}; dict objects are stable for the cache's
        #: lifetime (cleared in place), so hot loops may bind them once.
        self.shadow = {}

    def register_process(self, pid):
        offset = super().register_process(pid)
        self.shadow.setdefault(pid, {})
        return offset

    def fill(self, pid, vpage, frame, demand=True):
        evicted = super().fill(pid, vpage, frame, demand=demand)
        if evicted is not None:
            epid, evpage = evicted
            self.shadow[epid].pop(evpage, None)
        self.shadow.setdefault(pid, {})[vpage] = frame
        return evicted

    def invalidate(self, pid, vpage):
        dropped = super().invalidate(pid, vpage)
        if dropped:
            self.shadow[pid].pop(vpage, None)
        return dropped

    def invalidate_process(self, pid):
        dropped = super().invalidate_process(pid)
        if pid in self.shadow:
            self.shadow[pid].clear()
        return dropped

    def credit_shadow_hits(self, count):
        """Batch-account ``count`` lookups answered from the shadow.

        Each would have been a hit in the real cache; the counters end up
        exactly where per-lookup accounting would have left them.
        """
        stats = self._cache.stats
        stats.accesses += count
        stats.hits += count
