"""Translation tables: the protected vpage -> physical-frame structures.

Two variants, mirroring Sections 3.1 and 3.3:

* :class:`PerProcessTranslationTable` — the original per-process UTLB: a
  fixed-size array of slots in NIC SRAM.  The *user* picks the slots (via
  the driver), so the table can fragment; the class tracks that.

* :class:`HierarchicalTranslationTable` — the Hierarchical-UTLB table: a
  two-level page table in host memory keyed directly by virtual page
  number, with the top-level directory resident in NIC SRAM.  Entries exist
  only for pages the process has explicitly pinned.  Second-level tables
  can be swapped out (the Section 3.3 "rare situations" extension): their
  directory entry then holds a disk block number, and touching them must
  interrupt the host.

Both tables implement the garbage-page trick of Section 4.2: reads of
invalid entries resolve to a pinned garbage frame so a buggy or malicious
user request can never reach another process's memory.
"""

from repro import params
from repro.core import addresses
from repro.errors import AddressError, CapacityError, TranslationError

#: Bound once: the install/lookup/read_block paths run per simulated miss,
#: so the two-level index split is open-coded against these constants
#: (same checks and messages as the ``addresses`` helpers).
_NUM_VPAGES = params.NUM_VPAGES
_TABLE_BITS = params.TABLE_BITS
_TABLE_MASK = params.TABLE_INDEX_MASK


class TableSwappedError(TranslationError):
    """A second-level translation table is on disk; the host must page it in."""

    def __init__(self, dir_index, disk_block):
        super().__init__(
            "second-level table %d is swapped out (disk block %d)"
            % (dir_index, disk_block))
        self.dir_index = dir_index
        self.disk_block = disk_block


class HierarchicalTranslationTable:
    """Two-level host-memory translation table for one process."""

    def __init__(self, pid, garbage_frame=None):
        self.pid = pid
        self.garbage_frame = garbage_frame
        self._directory = {}         # dir index -> {table index -> frame}
        self._swapped = {}           # dir index -> (disk block, saved table)
        self._next_disk_block = 0
        self.entries = 0
        self.installs = 0
        self.invalidations = 0

    # -- host-side maintenance (driven by the device driver) -----------------

    def install(self, vpage, frame):
        """Store the physical frame of a newly pinned virtual page."""
        if frame is None or frame < 0:
            raise TranslationError("invalid frame %r" % (frame,))
        if not 0 <= vpage < _NUM_VPAGES:
            raise AddressError("virtual page %#x out of range" % (vpage,))
        dir_idx = vpage >> _TABLE_BITS
        if self._swapped:
            self._require_resident(dir_idx)
        second = self._directory.setdefault(dir_idx, {})
        tbl = vpage & _TABLE_MASK
        if tbl not in second:
            self.entries += 1
        second[tbl] = frame
        self.installs += 1

    def invalidate(self, vpage):
        """Remove the entry for an unpinned page; returns its frame."""
        if not 0 <= vpage < _NUM_VPAGES:
            raise AddressError("virtual page %#x out of range" % (vpage,))
        dir_idx = vpage >> _TABLE_BITS
        if self._swapped:
            self._require_resident(dir_idx)
        second = self._directory.get(dir_idx)
        tbl = vpage & _TABLE_MASK
        if second is None or tbl not in second:
            raise TranslationError(
                "pid %r: no translation for page %#x" % (self.pid, vpage))
        frame = second.pop(tbl)
        self.entries -= 1
        self.invalidations += 1
        if not second:
            del self._directory[dir_idx]
        return frame

    # -- NIC-side reads -------------------------------------------------------

    def lookup(self, vpage):
        """Frame for ``vpage`` or None when no translation is installed.

        Raises :class:`TableSwappedError` when the covering second-level
        table has been swapped to disk — the NIC must then interrupt the
        host rather than DMA from a stale physical address.
        """
        if not 0 <= vpage < _NUM_VPAGES:
            raise AddressError("virtual page %#x out of range" % (vpage,))
        dir_idx = vpage >> _TABLE_BITS
        if self._swapped:
            self._require_resident(dir_idx)
        second = self._directory.get(dir_idx)
        if second is None:
            return None
        return second.get(vpage & _TABLE_MASK)

    def lookup_or_garbage(self, vpage):
        """Like :meth:`lookup` but resolves invalid entries to the garbage
        frame (the Section 4.2 safety net).  Raises when no garbage frame
        was configured."""
        frame = self.lookup(vpage)
        if frame is not None:
            return frame
        if self.garbage_frame is None:
            raise TranslationError(
                "pid %r: page %#x unmapped and no garbage frame configured"
                % (self.pid, vpage))
        return self.garbage_frame

    def read_block(self, vpage, count):
        """Read up to ``count`` consecutive entries starting at ``vpage``.

        This models the miss-handling DMA: one bus transaction reads a
        contiguous run of entries from the second-level table containing
        ``vpage``.  The run is truncated at that table's boundary (a single
        DMA cannot cross into a different physical page).  Returns a list
        of ``(vpage, frame_or_None)`` pairs — invalid entries are included
        as None so the cache-fill logic can skip them.
        """
        if count <= 0:
            raise TranslationError("block size must be positive")
        if not 0 <= vpage < _NUM_VPAGES:
            raise AddressError("virtual page %#x out of range" % (vpage,))
        dir_idx = vpage >> _TABLE_BITS
        if self._swapped:
            self._require_resident(dir_idx)
        second = self._directory.get(dir_idx)
        if count == 1:
            # The no-prefetch configuration: one entry, no range walk.
            return [(vpage,
                     None if second is None else second.get(vpage & _TABLE_MASK))]
        if second is None:
            second = {}
        start_tbl = vpage & _TABLE_MASK
        end_tbl = min(start_tbl + count, params.TABLE_ENTRIES)
        base = dir_idx << _TABLE_BITS
        out = []
        for tbl in range(start_tbl, end_tbl):
            out.append((base | tbl, second.get(tbl)))
        return out

    # -- second-level table paging (Section 3.3 extension) --------------------

    def swap_out_table(self, dir_index):
        """Move a second-level table to 'disk'; returns its disk block."""
        if dir_index in self._swapped:
            raise TranslationError(
                "table %d is already swapped out" % (dir_index,))
        table = self._directory.pop(dir_index, {})
        block = self._next_disk_block
        self._next_disk_block += 1
        self._swapped[dir_index] = (block, table)
        return block

    def swap_in_table(self, dir_index):
        """Bring a swapped second-level table back into memory."""
        try:
            _, table = self._swapped.pop(dir_index)
        except KeyError:
            raise TranslationError(
                "table %d is not swapped out" % (dir_index,))
        if table:
            self._directory[dir_index] = table

    def is_table_resident(self, dir_index):
        return dir_index not in self._swapped

    def _require_resident(self, dir_index):
        if dir_index in self._swapped:
            block, _ = self._swapped[dir_index]
            raise TableSwappedError(dir_index, block)

    # -- inspection -----------------------------------------------------------

    def __len__(self):
        return self.entries

    def __contains__(self, vpage):
        dir_idx = addresses.directory_index(vpage)
        if dir_idx in self._swapped:
            _, table = self._swapped[dir_idx]
            return addresses.table_index(vpage) in table
        second = self._directory.get(dir_idx)
        return second is not None and addresses.table_index(vpage) in second

    def mapped_pages(self):
        """All resident (vpage, frame) pairs, ascending by vpage."""
        for dir_idx in sorted(self._directory):
            second = self._directory[dir_idx]
            for tbl in sorted(second):
                yield addresses.vpage_from_indices(dir_idx, tbl), second[tbl]

    @property
    def second_level_tables(self):
        return len(self._directory)

    @property
    def memory_bytes(self):
        """Host memory held by resident second-level tables (4 B entries)."""
        return len(self._directory) * params.TABLE_ENTRIES * 4


class PerProcessTranslationTable:
    """Fixed-size per-process translation table in NIC SRAM (Section 3.1).

    Slots hold ``(vpage, frame)``; uninstalled slots read as the garbage
    frame.  The *user library* chooses slot numbers, so the class exposes
    free-slot search and fragmentation accounting.
    """

    def __init__(self, pid, num_slots=8192, garbage_frame=None):
        if num_slots <= 0:
            raise CapacityError("translation table needs at least one slot")
        self.pid = pid
        self.num_slots = num_slots
        self.garbage_frame = garbage_frame
        self._slots = {}            # slot -> (vpage, frame)
        self.installs = 0
        self.evictions = 0

    def _check_slot(self, slot):
        if not 0 <= slot < self.num_slots:
            raise TranslationError(
                "slot %r outside table of %d slots" % (slot, self.num_slots))

    def install(self, slot, vpage, frame):
        """Fill ``slot`` with the translation of ``vpage``."""
        self._check_slot(slot)
        if slot in self._slots:
            raise TranslationError("slot %d is occupied" % (slot,))
        self._slots[slot] = (vpage, frame)
        self.installs += 1

    def free(self, slot):
        """Invalidate ``slot``; returns the (vpage, frame) it held."""
        self._check_slot(slot)
        try:
            entry = self._slots.pop(slot)
        except KeyError:
            raise TranslationError("slot %d is already free" % (slot,))
        self.evictions += 1
        return entry

    def read_slot(self, slot):
        """NIC-side read of a slot: the frame, or the garbage frame for a
        free/garbage slot (never an error — Section 4.2)."""
        self._check_slot(slot)
        entry = self._slots.get(slot)
        if entry is not None:
            return entry[1]
        if self.garbage_frame is None:
            raise TranslationError(
                "slot %d free and no garbage frame configured" % (slot,))
        return self.garbage_frame

    def find_free_slots(self, count):
        """First ``count`` free slot numbers (ascending); raises
        :class:`CapacityError` when fewer remain."""
        if count <= 0:
            return []
        free = []
        for slot in range(self.num_slots):
            if slot not in self._slots:
                free.append(slot)
                if len(free) == count:
                    return free
        raise CapacityError(
            "pid %r: need %d free slots, only %d available"
            % (self.pid, count, len(free)))

    @property
    def used_slots(self):
        return len(self._slots)

    @property
    def free_slots(self):
        return self.num_slots - len(self._slots)

    def fragmentation(self):
        """1 - (largest contiguous free run / total free slots).

        0.0 means all free space is one run; approaching 1.0 means free
        slots are scattered — the problem Hierarchical-UTLB eliminates
        (Section 3.3).
        """
        if not self._slots:
            return 0.0
        total_free = self.free_slots
        if total_free == 0:
            return 0.0
        largest = run = 0
        for slot in range(self.num_slots):
            if slot in self._slots:
                run = 0
            else:
                run += 1
                largest = max(largest, run)
        return 1.0 - largest / total_free

    def items(self):
        """All (slot, vpage, frame) triples, ascending by slot."""
        for slot in sorted(self._slots):
            vpage, frame = self._slots[slot]
            yield slot, vpage, frame
