"""Core UTLB mechanisms — the paper's primary contribution.

Public surface:

* :class:`HierarchicalUtlb` — the evaluated mechanism ("UTLB" in the paper)
* :class:`PerProcessUtlb` — the original per-process design (Section 3.1)
* :class:`InterruptBasedNode` — the interrupt-based baseline
* :class:`SharedUtlbCache` — the NIC translation cache
* :class:`CostModel` — the calibrated microsecond cost model
* :class:`TranslationStats` — per-run counters and rates
* the five pinned-page replacement policies (Section 3.4)
"""

from repro.core.bitvector import BitVector
from repro.core.costs import CostModel, DEFAULT_COST_MODEL
from repro.core.interrupt_based import InterruptBasedNode
from repro.core.interrupt_per_process import InterruptPerProcessUtlb
from repro.core.lookup_tree import TwoLevelLookupTree
from repro.core.per_process import PerProcessUtlb
from repro.core.pinner import PinnedPagePool
from repro.core.policies import (
    PIN_POLICIES,
    LfuPolicy,
    LruPolicy,
    MfuPolicy,
    MruPolicy,
    RandomPolicy,
    make_pin_policy,
)
from repro.core.reclaim import ReclaimCoordinator
from repro.core.shared_cache import SharedUtlbCache
from repro.core.stats import TranslationStats
from repro.core.translation_table import (
    HierarchicalTranslationTable,
    PerProcessTranslationTable,
    TableSwappedError,
)
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb

__all__ = [
    "BitVector",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "CountingFrameDriver",
    "HierarchicalTranslationTable",
    "HierarchicalUtlb",
    "InterruptBasedNode",
    "InterruptPerProcessUtlb",
    "LfuPolicy",
    "LruPolicy",
    "MfuPolicy",
    "MruPolicy",
    "PIN_POLICIES",
    "PerProcessTranslationTable",
    "PerProcessUtlb",
    "PinnedPagePool",
    "RandomPolicy",
    "ReclaimCoordinator",
    "SharedUtlbCache",
    "TableSwappedError",
    "TranslationStats",
    "TwoLevelLookupTree",
    "make_pin_policy",
]
