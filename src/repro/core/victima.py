"""Victima-style cache-resident translation (PAPERS.md: Victima).

Victima's idea, transplanted to the NIC: translation entries live in a
cache that is *shared with data traffic* instead of a dedicated SRAM
array.  Translations gain capacity when data pressure is low, but data
fills steal ways back — each steal evicts whichever translation entry
the replacement policy would victimize in the pressured set.

The simulation models the data side as a deterministic background load:
every :data:`repro.params.VICTIMA_PRESSURE_PERIOD` translation lookups,
one data line claims a way.  The pressured set walks the index space by
the same golden-ratio stride the per-process offsets use, so pressure is
spread uniformly and the whole sequence is a pure function of the lookup
stream — identical under the fast and reference engines by construction.

Pressure evictions are *capacity* evictions seen by the rest of the
stack exactly like a conflict eviction: the entry leaves the cache (an
``NI_EVICT`` event), the page stays pinned, and the next lookup re-misses
and re-fetches.
"""

from repro import params
from repro.core.shared_cache import SharedUtlbCache
from repro.obs.events import NI_EVICT, Event


class VictimaCache(SharedUtlbCache):
    """A :class:`SharedUtlbCache` under modeled data-cache pressure.

    Identical geometry, indexing, and fill behaviour to the base cache;
    the only addition is the pressure clock ticked by every lookup.
    """

    def __init__(self, *args, **kwargs):
        self.pressure_period = kwargs.pop(
            "pressure_period", params.VICTIMA_PRESSURE_PERIOD)
        super().__init__(*args, **kwargs)
        self._pressure_clock = 0
        #: Distinct data fills that walked the index stride so far; the
        #: pressured set is a function of this count alone.
        self._fill_seq = 0
        #: Translation entries lost to data fills (a subset of
        #: ``stats.evictions``, which also counts conflict evictions).
        self.pressure_evictions = 0

    def lookup(self, pid, vpage):
        result = super().lookup(pid, vpage)
        self._pressure_clock += 1
        if self._pressure_clock >= self.pressure_period:
            self._pressure_clock = 0
            self._data_fill()
        return result

    def _data_fill(self):
        """One data line claims a way: evict the policy's victim from the
        pressured set (a no-op when the set holds no translations)."""
        self._fill_seq += 1
        index = (self._fill_seq * self.OFFSET_MULTIPLIER) % self.num_sets
        evicted = self._cache.evict_one(index)
        if evicted is None:
            return
        self.pressure_evictions += 1
        (epid, epage), _frame = evicted
        if self._trace is not None:
            self._trace(Event(NI_EVICT, epid, epage))
