"""The original VMMC baseline: per-process NIC tables, interrupt-managed.

Related work (Section 2): "The VMMC [16] ... for the Myrinet PC cluster
employs this approach.  It uses a per-process translation table on the
network interface" with the host interrupted on each translation miss.

This completes the design-space matrix the paper's mechanisms span:

|                     | per-process NIC table        | shared NIC cache      |
|---------------------|------------------------------|-----------------------|
| user-managed        | PerProcessUtlb (S3.1)        | HierarchicalUtlb (S3.3)|
| interrupt-managed   | **this module** (VMMC [16])  | InterruptBasedNode (UNet-MM) |

Semantics: each process owns a fixed slice of NIC SRAM holding
(vpage -> frame) entries.  A lookup that misses interrupts the host; the
kernel pins the page, installs the entry (evicting + unpinning the LRU
entry when the table is full), and resumes the NIC.  Pinned pages are
exactly the table's contents, like the UNet-MM baseline.
"""

from collections import OrderedDict

from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.stats import TranslationStats
from repro.errors import ConfigError


class InterruptPerProcessUtlb:
    """Interrupt-managed per-process translation table for one process."""

    def __init__(self, pid, num_slots=512, driver=None, cost_model=None,
                 memory_limit_pages=None):
        if num_slots <= 0:
            raise ConfigError("table needs at least one slot")
        if memory_limit_pages is not None and memory_limit_pages <= 0:
            raise ConfigError("memory limit must be positive or None")
        self.pid = pid
        self.num_slots = num_slots
        if driver is None:
            from repro.core.utlb import CountingFrameDriver
            driver = CountingFrameDriver()
        self.driver = driver
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.limit_pages = memory_limit_pages
        self._table = OrderedDict()        # vpage -> frame, LRU order
        self.stats = TranslationStats()

    @property
    def capacity(self):
        """Effective entries: SRAM slots, tightened by the memory limit."""
        if self.limit_pages is None:
            return self.num_slots
        return min(self.num_slots, self.limit_pages)

    def access_page(self, vpage):
        """Translate one page; interrupt-and-install on a miss."""
        stats = self.stats
        cm = self.cost_model
        stats.lookups += 1
        stats.ni_accesses += 1
        stats.ni_hit_time_us += cm.ni_check_hit

        frame = self._table.get(vpage)
        if frame is not None:
            stats.ni_hits += 1
            self._table.move_to_end(vpage)
            return frame

        # Miss: interrupt the host; the kernel pins and installs.
        stats.ni_misses += 1
        stats.interrupts += 1
        stats.interrupt_time_us += cm.interrupt_cost
        if len(self._table) >= self.capacity:
            victim, _ = self._table.popitem(last=False)
            self.driver.unpin_pages(self.pid, [victim])
            stats.unpin_calls += 1
            stats.pages_unpinned += 1
            stats.unpin_time_us += cm.kernel_unpin_cost(1)
        frame = self.driver.pin_pages(self.pid, [vpage])[vpage]
        stats.pin_calls += 1
        stats.pages_pinned += 1
        stats.pin_time_us += cm.kernel_pin_cost(1)
        self._table[vpage] = frame
        return frame

    # -- inspection -----------------------------------------------------------

    def resident_pages(self):
        return sorted(self._table)

    def __len__(self):
        return len(self._table)

    def check_invariants(self):
        """Pinned set == table contents; capacity respected."""
        assert len(self._table) <= self.capacity
        if hasattr(self.driver, "pinned_count"):
            assert self.driver.pinned_count(self.pid) == len(self._table), (
                "driver pins (%d) != table entries (%d)"
                % (self.driver.pinned_count(self.pid), len(self._table)))
        return True


def simulate_node_intr_pp(records, config, sram_entries=None,
                          check_invariants=False):
    """Trace-driven replay of the original-VMMC baseline for one node.

    The SRAM budget (default: the config's cache_entries, for parity with
    the other mechanisms) is split evenly among the node's processes.
    """
    from repro.core.utlb import CountingFrameDriver
    from repro.sim.simulator import NodeResult
    from repro.traces.merge import split_by_pid

    pids = sorted(split_by_pid(records))
    budget = sram_entries if sram_entries is not None else config.cache_entries
    slots = max(1, budget // max(1, len(pids)))
    driver = CountingFrameDriver()
    utlbs = {pid: InterruptPerProcessUtlb(
        pid, num_slots=slots, driver=driver,
        cost_model=config.cost_model,
        memory_limit_pages=config.memory_limit_pages)
        for pid in pids}

    for record in records:
        utlb = utlbs[record.pid]
        for vpage in record.pages():
            utlb.access_page(vpage)

    if check_invariants:
        for utlb in utlbs.values():
            utlb.check_invariants()

    per_pid = {pid: utlb.stats for pid, utlb in utlbs.items()}
    stats = TranslationStats.merged(per_pid.values())
    return NodeResult(stats, per_pid, cache={"slots_per_process": slots})
