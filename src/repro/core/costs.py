"""The calibrated cost model (microseconds) from the paper's measurements.

Every constant here is a number the paper publishes for its Myrinet /
300 MHz Pentium-II / Windows NT 4.0 implementation:

* Table 1 — host-side costs: user-level bit-map check (min/max), page
  pinning, page unpinning, as functions of the number of pages per call.
* Table 2 — network-interface costs: a constant 0.8 µs cache-hit lookup,
  and DMA/total-miss costs as functions of the number of translation
  entries fetched per miss.
* Section 6.2 — the lookup-cost equations, a 0.5 µs user-level check, a
  10 µs cost to invoke the system interrupt handler, and the note that the
  interrupt-based mechanism's pin/unpin run in kernel context ("adjusted to
  factor out context switches").

Batch costs are stored as measurement tables and interpolated piecewise-
linearly; outside the measured range the last segment's slope extrapolates.
The linear fits are excellent (pinning is ~24 µs + 2.8 µs/page), matching
the paper's observation that DMA setup / syscall entry dominates small
batches.
"""

import math

from repro.errors import ConfigError

#: Measured batch sizes common to Tables 1 and 2.
MEASURED_SIZES = (1, 2, 4, 8, 16, 32)

#: Table 1 rows (µs).
CHECK_MIN_TABLE = (0.2, 0.2, 0.2, 0.2, 0.2, 0.2)
CHECK_MAX_TABLE = (0.4, 0.6, 0.6, 0.6, 0.6, 0.7)
PIN_TABLE = (27.0, 30.0, 36.0, 47.0, 70.0, 115.0)
UNPIN_TABLE = (25.0, 30.0, 36.0, 50.0, 80.0, 139.0)

#: Table 2 rows (µs).
DMA_TABLE = (1.5, 1.6, 1.6, 1.9, 2.1, 2.5)
MISS_TABLE = (1.8, 1.9, 1.9, 2.3, 2.8, 3.2)


def _interpolate(table, n):
    """Piecewise-linear interpolation of ``table`` over MEASURED_SIZES."""
    if n <= 0:
        raise ConfigError("batch size must be positive, got %r" % (n,))
    sizes = MEASURED_SIZES
    if n <= sizes[0]:
        return table[0]
    for i in range(1, len(sizes)):
        if n <= sizes[i]:
            lo_n, hi_n = sizes[i - 1], sizes[i]
            lo_v, hi_v = table[i - 1], table[i]
            return lo_v + (hi_v - lo_v) * (n - lo_n) / (hi_n - lo_n)
    # Extrapolate beyond the last measured point with the final slope.
    slope = (table[-1] - table[-2]) / (sizes[-1] - sizes[-2])
    return table[-1] + slope * (n - sizes[-1])


def accumulated_cost(unit_cost_us, count, start=0.0):
    """Total simulated time after charging ``unit_cost_us``, ``count`` times.

    Bit-identical to the per-event accumulation loop::

        total = start
        for _ in range(count):
            total += unit_cost_us

    but usually O(log(total / unit)) instead of O(count), which is what
    lets the fast replay engine drop per-lookup float additions from its
    hot path and still reproduce the reference engine's stats exactly.
    (``count * unit`` is not bit-identical to repeated addition, and
    ``sum()`` uses compensated summation on new Pythons, so neither is a
    substitute.)

    The shortcut: while the accumulator stays inside one binade, its ulp
    is constant, so adding the same non-negative constant rounds to the
    same fixed multiple of that ulp every time — an exact arithmetic
    progression that collapses into one multiply-add.  Regimes where the
    constant-increment argument does not hold (round-half-even ties,
    non-positive values, subnormals, binade boundaries) step one
    addition at a time, so the function is never less exact than — and
    at worst a small constant factor slower than — the plain loop.
    """
    if count < 0:
        raise ConfigError("count must be non-negative, got %r" % (count,))
    total = start + 0.0
    unit = unit_cost_us + 0.0
    remaining = count
    while remaining > 0:
        stepped = total + unit
        remaining -= 1
        if stepped == total:
            # Fixpoint: the cost is absorbed by rounding (or is zero), so
            # every later addition leaves the accumulator unchanged too.
            return stepped
        total = stepped
        if remaining == 0 or unit <= 0.0 or total <= 0.0:
            continue
        ulp = math.ulp(total)
        ratio = unit / ulp              # exact: ulp is a power of two
        if not math.isfinite(ratio):
            continue                    # subnormal accumulator; step plainly
        whole = math.floor(ratio)
        fraction = ratio - whole        # exact for the same reason
        if fraction == 0.5:
            continue                    # tie — increment depends on parity
        per_add = (whole + 1 if fraction > 0.5 else whole) * ulp
        if per_add <= 0.0:
            continue
        # Constant increments are only valid while every exact sum stays
        # below the binade boundary; stop a few increments short of it.
        boundary = math.ldexp(1.0, math.frexp(total)[1])
        jump = int((boundary - total) / per_add) - 3
        if jump > remaining:
            jump = remaining
        if jump < 1:
            continue
        # jump * per_add is a multiple of ulp below the boundary, so the
        # multiply and the add are both exact.
        total += jump * per_add
        remaining -= jump
    return total


class CostModel:
    """Microsecond costs for every primitive the simulators charge.

    All parameters default to the paper's published values; experiments
    that explore other hardware points (ablations) override them.

    Parameters
    ----------
    user_check_hit:
        Host-side cost of a user-level lookup that finds all pages pinned
        (Section 6.2 uses 0.5 µs).
    ni_check_hit:
        NIC-side cost of a translation-cache hit (0.8 µs, Table 2).
    interrupt_cost:
        Cost to invoke the host interrupt handler from the NIC (10 µs).
    context_switch_cost:
        The protection-domain crossing included in the user-level pin/unpin
        measurements but absent when pinning from an interrupt handler;
        subtracted to derive the kernel rates (Section 6.2).
    """

    def __init__(self,
                 user_check_hit=0.5,
                 ni_check_hit=0.8,
                 interrupt_cost=10.0,
                 context_switch_cost=10.0,
                 pin_table=PIN_TABLE,
                 unpin_table=UNPIN_TABLE,
                 dma_table=DMA_TABLE,
                 miss_table=MISS_TABLE,
                 check_min_table=CHECK_MIN_TABLE,
                 check_max_table=CHECK_MAX_TABLE):
        for name, table in (("pin_table", pin_table),
                            ("unpin_table", unpin_table),
                            ("dma_table", dma_table),
                            ("miss_table", miss_table),
                            ("check_min_table", check_min_table),
                            ("check_max_table", check_max_table)):
            if len(table) != len(MEASURED_SIZES):
                raise ConfigError(
                    "%s must have %d points" % (name, len(MEASURED_SIZES)))
        self.user_check_hit = user_check_hit
        self.ni_check_hit = ni_check_hit
        self.interrupt_cost = interrupt_cost
        self.context_switch_cost = context_switch_cost
        self._pin = tuple(pin_table)
        self._unpin = tuple(unpin_table)
        self._dma = tuple(dma_table)
        self._miss = tuple(miss_table)
        self._check_min = tuple(check_min_table)
        self._check_max = tuple(check_max_table)
        # Interpolation is pure, and replay asks for the same handful of
        # batch sizes millions of times — memoize per (table, size).
        self._memo = {}

    def _interpolated(self, name, table, n):
        key = (name, n)
        value = self._memo.get(key)
        if value is None:
            value = self._memo[key] = _interpolate(table, n)
        return value

    def to_dict(self):
        """Every calibration constant as a JSON-safe dict.

        Used by the sweep result cache to fingerprint a configuration: two
        cost models with identical parameters hash identically.
        """
        return {
            "user_check_hit": self.user_check_hit,
            "ni_check_hit": self.ni_check_hit,
            "interrupt_cost": self.interrupt_cost,
            "context_switch_cost": self.context_switch_cost,
            "pin_table": list(self._pin),
            "unpin_table": list(self._unpin),
            "dma_table": list(self._dma),
            "miss_table": list(self._miss),
            "check_min_table": list(self._check_min),
            "check_max_table": list(self._check_max),
        }

    def unit_costs(self):
        """The five per-event constants of the no-prefetch UTLB fast path.

        With ``prefetch == 1`` and ``prepin == 1`` every charged event is
        one of exactly five fixed prices — check, NIC hit probe, pin one
        page, unpin one page, miss-fetch one entry — so a whole replay's
        time fields are reproducible from event *counts* alone (via
        :func:`accumulated_cost`).  The analytic axis solver ships this
        dict to its workers instead of the full model.
        """
        return {
            "check": self.user_check_hit,
            "ni_hit": self.ni_check_hit,
            "pin": self.pin_cost(1),
            "unpin": self.unpin_cost(1),
            "miss": self.miss_cost(1),
        }

    # -- host-side ----------------------------------------------------------

    def check_cost(self, num_pages, worst_case=False):
        """Cost of the user-level bit-map check over ``num_pages`` pages."""
        if worst_case:
            return self._interpolated("check_max", self._check_max, num_pages)
        return self._interpolated("check_min", self._check_min, num_pages)

    def pin_cost(self, num_pages):
        """User-level (ioctl) cost to pin ``num_pages`` pages in one call."""
        return self._interpolated("pin", self._pin, num_pages)

    def unpin_cost(self, num_pages):
        """User-level (ioctl) cost to unpin ``num_pages`` pages."""
        return self._interpolated("unpin", self._unpin, num_pages)

    def kernel_pin_cost(self, num_pages):
        """Pin cost when already in kernel mode (interrupt-based baseline)."""
        return max(0.0, self.pin_cost(num_pages) - self.context_switch_cost)

    def kernel_unpin_cost(self, num_pages):
        """Unpin cost when already in kernel mode."""
        return max(0.0, self.unpin_cost(num_pages) - self.context_switch_cost)

    # -- NIC-side -----------------------------------------------------------

    def dma_cost(self, num_entries):
        """NIC cost to DMA ``num_entries`` translation entries from host
        memory over the I/O bus (Table 2, 'DMA cost')."""
        return self._interpolated("dma", self._dma, num_entries)

    def miss_cost(self, num_entries):
        """Total NIC cost of a translation-cache miss that fetches
        ``num_entries`` entries (Table 2, 'total miss cost'): the
        second-level table address computation plus the DMA."""
        return self._interpolated("miss", self._miss, num_entries)

    def ni_probe_cost(self, associativity, miss_rate):
        """Average per-lookup probe cost of a set-associative cache.

        "Since the Shared UTLB-Cache is implemented in Myrinet firmware,
        the network interface processor can only check one cache entry at
        a time.  Therefore, the cost per translation lookup is higher in
        a set-associative UTLB cache than a direct-mapped cache"
        (Section 6.3).  A hit checks (associativity+1)/2 entries on
        average; a miss checks all of them.  Each probe costs the
        measured direct-mapped hit time (0.8 µs = one probe).
        """
        if associativity < 1:
            raise ConfigError("associativity must be at least 1")
        if not 0.0 <= miss_rate <= 1.0:
            raise ConfigError("miss rate must be in [0, 1]")
        hit_probes = (associativity + 1) / 2.0
        expected = ((1.0 - miss_rate) * hit_probes
                    + miss_rate * associativity)
        return self.ni_check_hit * expected

    # -- the Section 6.2 lookup-cost equations --------------------------------

    def utlb_lookup_cost(self, check_miss_rate, ni_miss_rate, unpin_rate,
                         pages_per_pin=1, pages_per_unpin=1,
                         entries_per_miss=1):
        """Average per-lookup cost of the UTLB mechanism.

        Implements ``lookup_utlb`` from Section 6.2::

            user_check_hit
            + user_pin_cost  * check_miss_rate
            + ni_check_hit
            + ni_miss_cost   * ni_miss_rate
            + user_unpin_cost * unpin_rate

        Rates are per-lookup averages, exactly as Tables 4 and 5 report
        them.  ``pages_per_pin`` amortizes pre-pinning: a check miss that
        pins k pages pays ``pin_cost(k)`` but the rate already reflects the
        reduced number of pin calls.
        """
        return (self.user_check_hit
                + self.pin_cost(pages_per_pin) * check_miss_rate
                + self.ni_check_hit
                + self.miss_cost(entries_per_miss) * ni_miss_rate
                + self.unpin_cost(pages_per_unpin) * unpin_rate)

    def intr_lookup_cost(self, ni_miss_rate, unpin_rate,
                         pages_per_pin=1, pages_per_unpin=1):
        """Average per-lookup cost of the interrupt-based mechanism.

        Implements ``lookup_intr`` from Section 6.2::

            ni_check
            + (intr_cost + kernel_pin_cost) * ni_miss_rate
            + unpin_kernel_cost * unpin_rate
        """
        return (self.ni_check_hit
                + (self.interrupt_cost
                   + self.kernel_pin_cost(pages_per_pin)) * ni_miss_rate
                + self.kernel_unpin_cost(pages_per_unpin) * unpin_rate)


#: A shared default instance with the paper's calibration.
DEFAULT_COST_MODEL = CostModel()
