"""Per-run translation statistics.

The trace-driven analysis in Section 6 reports everything as per-lookup
averages: check misses, network-interface translation misses, and unpinned
pages, each divided by the total number of lookups (Tables 4 and 5).
:class:`TranslationStats` accumulates the raw event counts plus simulated
time, and derives those rates.

The fast replay engine counts hot-path events (check hits, NIC cache
hits) without charging time per event; :meth:`charge_check_hits` and
:meth:`charge_ni_hits` apply the whole batch at end-of-replay,
bit-identical to per-event accumulation (see
:func:`repro.core.costs.accumulated_cost`).
"""

from repro.core.costs import accumulated_cost


class TranslationStats:
    """Counters for one simulated translation mechanism run."""

    FIELDS = (
        "lookups",
        "check_misses",
        "ni_accesses",
        "ni_hits",
        "ni_misses",
        "ni_evictions",
        "pin_calls",
        "pages_pinned",
        "unpin_calls",
        "pages_unpinned",
        "interrupts",
        "entries_fetched",
    )

    TIME_FIELDS = (
        "check_time_us",
        "pin_time_us",
        "unpin_time_us",
        "ni_hit_time_us",
        "ni_miss_time_us",
        "interrupt_time_us",
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)
        for field in self.TIME_FIELDS:
            setattr(self, field, 0.0)

    # -- derived rates (per lookup, as the paper reports) ---------------------

    def _rate(self, count):
        return count / self.lookups if self.lookups else 0.0

    @property
    def check_miss_rate(self):
        """Check misses per lookup (Table 4 'check misses')."""
        return self._rate(self.check_misses)

    @property
    def ni_miss_rate(self):
        """NIC translation misses per lookup (Table 4 'NI misses')."""
        return self._rate(self.ni_misses)

    @property
    def unpin_rate(self):
        """Pages unpinned per lookup (Table 4 'unpins')."""
        return self._rate(self.pages_unpinned)

    @property
    def pin_rate(self):
        """Pages pinned per lookup."""
        return self._rate(self.pages_pinned)

    @property
    def interrupt_rate(self):
        return self._rate(self.interrupts)

    @property
    def total_time_us(self):
        return sum(getattr(self, f) for f in self.TIME_FIELDS)

    @property
    def avg_lookup_cost_us(self):
        """Average measured cost per lookup (what Table 6 reports)."""
        return self.total_time_us / self.lookups if self.lookups else 0.0

    @property
    def amortized_pin_cost_us(self):
        """Pin time per lookup (Table 7 'pin' rows)."""
        return self.pin_time_us / self.lookups if self.lookups else 0.0

    @property
    def amortized_unpin_cost_us(self):
        """Unpin time per lookup (Table 7 'unpin' rows)."""
        return self.unpin_time_us / self.lookups if self.lookups else 0.0

    # -- batched hot-path charging (the fast replay engine) -------------------

    def charge_check_hits(self, count, unit_cost_us):
        """Account ``count`` user-level check hits in one batch.

        Equivalent — to the bit — to ``count`` sequential lookups that
        each charged ``unit_cost_us`` into ``check_time_us``.
        """
        if count:
            self.lookups += count
            self.check_time_us = accumulated_cost(
                unit_cost_us, count, self.check_time_us)

    def charge_ni_hits(self, count, unit_cost_us):
        """Account ``count`` NIC translation-cache hits in one batch.

        Equivalent — to the bit — to ``count`` sequential NIC lookups
        that each hit and charged ``unit_cost_us`` into
        ``ni_hit_time_us``.
        """
        if count:
            self.ni_accesses += count
            self.ni_hits += count
            self.ni_hit_time_us = accumulated_cost(
                unit_cost_us, count, self.ni_hit_time_us)

    # -- combination ----------------------------------------------------------

    def merge(self, other):
        """Accumulate another stats object into this one (in place)."""
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        for field in self.TIME_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    @classmethod
    def merged(cls, stats_iter):
        """A new stats object summing every element of ``stats_iter``."""
        total = cls()
        for stats in stats_iter:
            total.merge(stats)
        return total

    # -- serialization (result cache + cross-process transport) ---------------

    def to_dict(self):
        """Raw counters and times as a JSON-safe dict (lossless)."""
        out = {field: getattr(self, field) for field in self.FIELDS}
        out.update({field: getattr(self, field) for field in self.TIME_FIELDS})
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a stats object from :meth:`to_dict` output.

        Unknown keys (e.g. the derived rates a :meth:`snapshot` adds) are
        ignored, so snapshots deserialize too.
        """
        stats = cls()
        for field in cls.FIELDS:
            setattr(stats, field, int(data.get(field, 0)))
        for field in cls.TIME_FIELDS:
            setattr(stats, field, float(data.get(field, 0.0)))
        return stats

    def snapshot(self):
        """All counters, times, and derived rates as a plain dict."""
        out = {field: getattr(self, field) for field in self.FIELDS}
        out.update({field: getattr(self, field) for field in self.TIME_FIELDS})
        out.update({
            "check_miss_rate": self.check_miss_rate,
            "ni_miss_rate": self.ni_miss_rate,
            "unpin_rate": self.unpin_rate,
            "pin_rate": self.pin_rate,
            "avg_lookup_cost_us": self.avg_lookup_cost_us,
        })
        return out

    def __repr__(self):
        return ("TranslationStats(lookups=%d, check_miss_rate=%.4f, "
                "ni_miss_rate=%.4f, unpin_rate=%.4f)" % (
                    self.lookups, self.check_miss_rate,
                    self.ni_miss_rate, self.unpin_rate))
