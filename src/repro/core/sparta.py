"""SPARTA-style range translation for pinned extents (PAPERS.md).

Pinned communication buffers are overwhelmingly *contiguous*: the pages
of one pin batch receive consecutive frames, so a base+bounds segment
entry — (first vpage, last vpage, first frame) — translates the whole
extent in one comparison.  This cache stores segments instead of pages:
a fill that extends a segment's upper bound (virtually *and* physically
contiguous with its last page) is absorbed into the existing entry;
everything else opens a fresh single-page segment.  Fragmented pinning
degenerates gracefully to one entry per page.

One segment entry costs :data:`repro.params.SPARTA_RANGE_ENTRY_COST`
page-entry slots of SRAM (base, bounds, and frame fields), so a
``num_entries`` budget holds ``num_entries // cost`` segments — fewer
slots than the page-grained cache, but each slot can cover an arbitrary
extent.  Segments are replaced LRU as whole units; evicting a segment
evicts every page it covers (one ``NI_EVICT`` per page, so the event
stream and counters stay page-grained like every other design's).

Unpinning a page punches a hole in its segment: translations for the
remaining pages stay exact (the per-page frame map is authoritative;
base/bounds only gate upper-bound extension).
"""

from repro import params
from repro.cachesim.cache import CacheStats
from repro.errors import CapacityError, ConfigError
from repro.obs.events import NI_EVICT, NI_FILL, NI_HIT, NI_INVALIDATE, Event


class _Segment:
    """One base+bounds entry: a pid's contiguous-ish pinned extent."""

    __slots__ = ("pid", "lo", "hi", "pages")

    def __init__(self, pid, vpage, frame):
        self.pid = pid
        self.lo = vpage
        self.hi = vpage
        self.pages = {vpage: frame}     # authoritative per-page frames


class SpartaRangeCache:
    """NIC translation cache of base+bounds segments.

    Drop-in for :class:`~repro.core.shared_cache.SharedUtlbCache` in the
    simulator's cache slot: same constructor signature, lookup/fill/
    invalidate surface, stats object, and event vocabulary.  Range
    entries are direct-compared (a handful of bounds registers), so only
    the direct-mapped, unclassified configuration is meaningful.
    """

    def __init__(self, num_entries=params.DEFAULT_UTLB_CACHE_ENTRIES,
                 associativity=1, offsetting=True, classify=False,
                 replacement="lru", max_processes=params.MAX_PROCESSES_PER_NIC,
                 tracer=None):
        if associativity != 1:
            raise ConfigError(
                "sparta-range is a bounds-register file, not a set-"
                "associative array (associativity must be 1, got %d)"
                % associativity)
        if classify:
            raise ConfigError("sparta-range has no 3C miss classifier")
        if max_processes <= 0:
            raise ConfigError("max_processes must be positive")
        self.num_entries = num_entries
        self.associativity = 1
        self.offsetting = offsetting
        self.max_processes = max_processes
        self.segment_capacity = max(
            1, num_entries // params.SPARTA_RANGE_ENTRY_COST)
        self.classifier = None
        self.stats = CacheStats()
        self.tracer = tracer
        self._trace = (tracer.emit if tracer is not None and tracer.enabled
                       else None)
        self._pids = set()
        self._segments = {}         # segment id -> _Segment (LRU order)
        self._page_map = {}         # (pid, vpage) -> segment id
        self._next_sid = 0

    # -- process registration ------------------------------------------------

    def register_process(self, pid):
        """Track ``pid``; idempotent, bounded by the process tag space."""
        if pid in self._pids:
            return 0
        if len(self._pids) >= self.max_processes:
            raise CapacityError(
                "NIC already has %d registered processes (tag space is "
                "%d bits)" % (len(self._pids), params.PROCESS_TAG_BITS))
        self._pids.add(pid)
        return 0

    def is_registered(self, pid):
        return pid in self._pids

    # -- the NIC fast path ---------------------------------------------------

    def lookup(self, pid, vpage):
        """Probe the segment file.  Returns (hit, frame)."""
        stats = self.stats
        stats.accesses += 1
        sid = self._page_map.get((pid, vpage))
        if sid is None:
            stats.misses += 1
            return False, None
        stats.hits += 1
        segment = self._segments.pop(sid)   # LRU touch: move to MRU end
        self._segments[sid] = segment
        frame = segment.pages[vpage]
        if self._trace is not None:
            self._trace(Event(NI_HIT, pid, vpage, frame))
        return True, frame

    def fill(self, pid, vpage, frame, demand=True):
        """Install a translation; returns the first evicted (pid, vpage)
        key or None.  Extends an existing segment when the new page is
        virtually and physically contiguous with its upper bound."""
        key = (pid, vpage)
        evicted = None
        sid = self._page_map.get(key)
        if sid is not None:
            segment = self._segments.pop(sid)
            self._segments[sid] = segment
            segment.pages[vpage] = frame
        else:
            sid = self._coalesce_target(pid, vpage, frame)
            if sid is not None:
                segment = self._segments.pop(sid)
                self._segments[sid] = segment
                segment.hi = vpage
                segment.pages[vpage] = frame
                self._page_map[key] = sid
            else:
                if len(self._segments) >= self.segment_capacity:
                    evicted = self._evict_lru()
                sid = self._next_sid
                self._next_sid += 1
                self._segments[sid] = _Segment(pid, vpage, frame)
                self._page_map[key] = sid
        self.stats.fills += 1
        if self._trace is not None:
            self._trace(Event(NI_FILL, pid, vpage, frame,
                              1 if demand else 0))
        return evicted

    def _coalesce_target(self, pid, vpage, frame):
        """The segment id ``(pid, vpage, frame)`` extends upward, or None."""
        sid = self._page_map.get((pid, vpage - 1))
        if sid is None:
            return None
        segment = self._segments[sid]
        if segment.hi != vpage - 1:
            return None
        if segment.pages[vpage - 1] + 1 != frame:
            return None                 # virtually but not physically adjacent
        return sid

    def _evict_lru(self):
        """Drop the least-recently-used segment; every covered page leaves
        the cache.  Returns the first evicted (pid, vpage) key."""
        sid = next(iter(self._segments))
        segment = self._segments.pop(sid)
        first = None
        for vpage in segment.pages:
            if first is None:
                first = (segment.pid, vpage)
            del self._page_map[(segment.pid, vpage)]
            self.stats.evictions += 1
            if self._trace is not None:
                self._trace(Event(NI_EVICT, segment.pid, vpage))
        return first

    def fill_block(self, pid, entries):
        """Install a prefetched block of ``(vpage, frame_or_None)`` pairs.

        Same contract as :meth:`SharedUtlbCache.fill_block`: the first
        pair is the demand miss, invalid frames are skipped, and the
        list of evicted keys is returned.
        """
        evicted = []
        first = True
        for vpage, frame in entries:
            if frame is None:
                first = False
                continue
            victim = self.fill(pid, vpage, frame, demand=first)
            first = False
            if victim is not None:
                evicted.append(victim)
        return evicted

    # -- invalidation --------------------------------------------------------

    def invalidate(self, pid, vpage):
        """Drop one translation (page was unpinned).  Returns True if
        found.  Removing an interior page punches a hole: the segment's
        remaining pages stay translated by the per-page frame map."""
        key = (pid, vpage)
        sid = self._page_map.pop(key, None)
        if sid is None:
            return False
        segment = self._segments[sid]
        del segment.pages[vpage]
        if not segment.pages:
            del self._segments[sid]
        else:
            if vpage == segment.lo:
                segment.lo = min(segment.pages)
            if vpage == segment.hi:
                segment.hi = max(segment.pages)
        self.stats.invalidations += 1
        if self._trace is not None:
            self._trace(Event(NI_INVALIDATE, pid, vpage))
        return True

    def invalidate_process(self, pid):
        """Drop every translation belonging to ``pid`` (process exit)."""
        victims = [key for key in self._page_map if key[0] == pid]
        for key in victims:
            self.invalidate(*key)
        return len(victims)

    # -- inspection ----------------------------------------------------------

    @property
    def num_segments(self):
        return len(self._segments)

    def __contains__(self, key):
        return key in self._page_map

    def __len__(self):
        return len(self._page_map)

    def entries_for(self, pid):
        """All (vpage, frame) pairs cached for one process."""
        pairs = []
        for segment in self._segments.values():
            if segment.pid == pid:
                pairs.extend(segment.pages.items())
        return pairs

    def sram_bytes(self):
        """SRAM consumed, at the Figure 3 entry width."""
        return self.num_entries * params.UTLB_CACHE_ENTRY_BYTES
