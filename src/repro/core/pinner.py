"""The pinned-page pool: per-process pinning budget and eviction.

"An important issue related to the replacement policies is how to manage
the amount of physical memory that a user process can pin" (Section 3.4).
The pool enforces a static per-process limit: when pinning new pages would
exceed it, victims are selected by the configured user-level replacement
policy and unpinned (one page at a time, as the paper's implementation
does — Section 6.5).

Pages involved in outstanding send requests are protected from eviction —
the correctness requirement at the end of Section 3.1.  Callers mark them
with :meth:`hold` / :meth:`release`.
"""

from repro.core.policies import make_pin_policy
from repro.errors import CapacityError, PinningError


class PinnedPagePool:
    """Tracks one process's pinned pages against a pinning limit."""

    def __init__(self, limit_pages=None, policy="lru", seed=0):
        if limit_pages is not None and limit_pages <= 0:
            raise CapacityError("pinning limit must be positive or None")
        self.limit_pages = limit_pages
        if isinstance(policy, str):
            self.policy = make_pin_policy(policy, seed=seed)
        else:
            self.policy = policy
        self._held = {}             # vpage -> hold count (outstanding sends)

    # -- membership -----------------------------------------------------------

    def note_pin(self, vpage):
        self.policy.on_pin(vpage)

    def note_access(self, vpage):
        self.policy.on_access(vpage)

    def note_unpin(self, vpage):
        if self._held.get(vpage):
            raise PinningError(
                "page %#x has outstanding sends; cannot unpin" % (vpage,))
        self.policy.on_unpin(vpage)

    def __contains__(self, vpage):
        return vpage in self.policy

    def __len__(self):
        return len(self.policy)

    @property
    def pinned_pages(self):
        """The live pinned-page set (mutated in place; do not modify).

        Replay fast paths bind this once and probe it per lookup instead
        of paying a method call per page.
        """
        return self.policy.pages

    # -- outstanding-send protection ---------------------------------------------

    def hold(self, vpage):
        """Protect a page from eviction while a send is outstanding."""
        if vpage not in self.policy:
            raise PinningError("page %#x is not pinned" % (vpage,))
        self._held[vpage] = self._held.get(vpage, 0) + 1

    def release(self, vpage):
        """Drop one hold on a page."""
        count = self._held.get(vpage, 0)
        if count == 0:
            raise PinningError("page %#x has no outstanding hold" % (vpage,))
        if count == 1:
            del self._held[vpage]
        else:
            self._held[vpage] = count - 1

    def held_pages(self):
        return set(self._held)

    # -- capacity -------------------------------------------------------------------

    def room_for(self, n):
        """True when ``n`` more pages fit without eviction."""
        if self.limit_pages is None:
            return True
        return len(self.policy) + n <= self.limit_pages

    def victims_for(self, n):
        """Pages that must be unpinned before ``n`` new pages can be pinned.

        Returns [] when there is room.  Raises :class:`CapacityError` when
        the limit cannot be met even after evicting everything evictable
        (all pages held, or the request alone exceeds the limit).
        """
        if self.limit_pages is None:
            return []
        overflow = len(self.policy) + n - self.limit_pages
        if overflow <= 0:
            return []
        if n > self.limit_pages:
            raise CapacityError(
                "request of %d pages exceeds the pinning limit of %d"
                % (n, self.limit_pages))
        # Pass the hold map directly: it is only iterated when non-empty,
        # so the common no-outstanding-sends case allocates nothing.
        return self.policy.select_victims(overflow, exclude=self._held)
