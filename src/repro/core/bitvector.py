"""Pinned-status bit vector — the Hierarchical-UTLB user-level structure.

Under Hierarchical-UTLB "the user-level library only needs a bit array to
maintain the memory-pinning status of virtual pages" (Section 3.3).  The
vector answers, per virtual page, "is this page pinned (and therefore is
its translation installed in the host translation table)?".

Implemented on a ``bytearray`` so that single-bit operations are O(1)
regardless of how many bits are set.  (An arbitrary-precision int makes
``set``/``clear`` copy the whole word string — O(highest set bit) — which
turns pin-heavy trace replay quadratic.)
"""

import re

from repro.errors import AddressError

#: C-speed scan for occupied bytes (so sparse vectors enumerate fast).
_NONZERO_BYTE = re.compile(rb"[^\x00]")


class BitVector:
    """A growable bit vector indexed by non-negative ints."""

    def __init__(self, nbits=0):
        if nbits < 0:
            raise AddressError("bit vector size must be non-negative")
        self._bytes = bytearray((nbits + 7) >> 3)
        self._count = 0
        self.nbits = nbits      # advisory size; indexes beyond it still work

    def _check_index(self, index):
        # test/set/clear pre-screen with `type(index) is int and index >= 0`
        # (true for every plain valid index, false for bools) and only
        # fall in here for the leftovers: int subclasses pass, everything
        # else raises — keep the two in agreement.
        if not isinstance(index, int) or isinstance(index, bool) or index < 0:
            raise AddressError("bit index must be a non-negative int, got %r"
                               % (index,))

    def _grow_for(self, byte_index):
        need = byte_index + 1 - len(self._bytes)
        if need > 0:
            self._bytes.extend(bytes(need))

    def test(self, index):
        """True when bit ``index`` is set."""
        if not (type(index) is int and index >= 0):
            self._check_index(index)
        data = self._bytes
        byte = index >> 3
        return byte < len(data) and bool(data[byte] & (1 << (index & 7)))

    def set(self, index):
        """Set bit ``index``; returns True when the bit changed."""
        if not (type(index) is int and index >= 0):
            self._check_index(index)
        byte = index >> 3
        mask = 1 << (index & 7)
        self._grow_for(byte)
        data = self._bytes
        if data[byte] & mask:
            return False
        data[byte] |= mask
        self._count += 1
        return True

    def clear(self, index):
        """Clear bit ``index``; returns True when the bit changed."""
        if not (type(index) is int and index >= 0):
            self._check_index(index)
        data = self._bytes
        byte = index >> 3
        mask = 1 << (index & 7)
        if byte >= len(data) or not data[byte] & mask:
            return False
        data[byte] &= ~mask
        self._count -= 1
        return True

    def all_set(self, start, count):
        """True when bits [start, start+count) are all set.

        This is the user-level 'check' of Figure 2: are all pages of the
        buffer already pinned?
        """
        self._check_index(start)
        if count < 0:
            raise AddressError("count must be non-negative")
        data = self._bytes
        size = len(data)
        for index in range(start, start + count):
            byte = index >> 3
            if byte >= size or not data[byte] & (1 << (index & 7)):
                return False
        return True

    def clear_indices(self, start, count):
        """Indices in [start, start+count) whose bits are clear (ascending)."""
        self._check_index(start)
        if count < 0:
            raise AddressError("count must be non-negative")
        data = self._bytes
        size = len(data)
        missing = []
        for index in range(start, start + count):
            byte = index >> 3
            if byte >= size or not data[byte] & (1 << (index & 7)):
                missing.append(index)
        return missing

    def set_indices(self):
        """All set indices, ascending.  O(occupied bytes), not O(capacity)."""
        out = []
        append = out.append
        data = bytes(self._bytes)
        for match in _NONZERO_BYTE.finditer(data):
            byte_index = match.start()
            byte = data[byte_index]
            base = byte_index << 3
            for bit in range(8):
                if byte & (1 << bit):
                    append(base + bit)
        return out

    @property
    def count(self):
        """Number of set bits."""
        return self._count

    def __len__(self):
        return self.nbits

    def __contains__(self, index):
        return self.test(index)

    def __repr__(self):
        return "BitVector(set=%d)" % (self._count,)
