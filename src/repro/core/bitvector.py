"""Pinned-status bit vector — the Hierarchical-UTLB user-level structure.

Under Hierarchical-UTLB "the user-level library only needs a bit array to
maintain the memory-pinning status of virtual pages" (Section 3.3).  The
vector answers, per virtual page, "is this page pinned (and therefore is
its translation installed in the host translation table)?".

Implemented on a Python arbitrary-precision int: single-bit operations are
O(1) amortized and range scans are cheap via mask extraction.
"""

from repro.errors import AddressError


class BitVector:
    """A growable bit vector indexed by non-negative ints."""

    def __init__(self, nbits=0):
        if nbits < 0:
            raise AddressError("bit vector size must be non-negative")
        self._bits = 0
        self._count = 0
        self.nbits = nbits      # advisory size; indexes beyond it still work

    def _check_index(self, index):
        if not isinstance(index, int) or isinstance(index, bool) or index < 0:
            raise AddressError("bit index must be a non-negative int, got %r"
                               % (index,))

    def test(self, index):
        """True when bit ``index`` is set."""
        self._check_index(index)
        return bool((self._bits >> index) & 1)

    def set(self, index):
        """Set bit ``index``; returns True when the bit changed."""
        self._check_index(index)
        mask = 1 << index
        if self._bits & mask:
            return False
        self._bits |= mask
        self._count += 1
        return True

    def clear(self, index):
        """Clear bit ``index``; returns True when the bit changed."""
        self._check_index(index)
        mask = 1 << index
        if not self._bits & mask:
            return False
        self._bits &= ~mask
        self._count -= 1
        return True

    def all_set(self, start, count):
        """True when bits [start, start+count) are all set.

        This is the user-level 'check' of Figure 2: are all pages of the
        buffer already pinned?
        """
        self._check_index(start)
        if count < 0:
            raise AddressError("count must be non-negative")
        if count == 0:
            return True
        mask = ((1 << count) - 1) << start
        return (self._bits & mask) == mask

    def clear_indices(self, start, count):
        """Indices in [start, start+count) whose bits are clear (ascending)."""
        self._check_index(start)
        if count < 0:
            raise AddressError("count must be non-negative")
        window = (self._bits >> start) & ((1 << count) - 1)
        missing = []
        for offset in range(count):
            if not (window >> offset) & 1:
                missing.append(start + offset)
        return missing

    def set_indices(self):
        """All set indices, ascending.  O(set bits)."""
        out = []
        bits = self._bits
        index = 0
        while bits:
            lsb = bits & -bits
            out.append(lsb.bit_length() - 1)
            bits ^= lsb
        return out

    @property
    def count(self):
        """Number of set bits."""
        return self._count

    def __len__(self):
        return self.nbits

    def __contains__(self, index):
        return self.test(index)

    def __repr__(self):
        return "BitVector(set=%d)" % (self._count,)
