"""One function per paper table/figure (the per-experiment index lives in
DESIGN.md).

Every function returns plain data (dicts keyed by application / cache
size) and has a ``render_*`` companion that formats it the way the paper
prints it.  ``run_all`` executes the whole evaluation section and returns
the rendered report — that is what EXPERIMENTS.md records.

Scaling: ``scale`` shrinks every application's footprint and lookup count
proportionally (useful for quick runs); per-process memory limits (Tables
5 and 7) are scaled by the same factor so the pressure ratio — limit vs
footprint — matches the paper's setup at any scale.

Execution: every replay-backed function takes a ``runner`` — a
:class:`~repro.sim.runner.SweepRunner` — and submits its whole grid of
cells at once, so one call fans out over worker processes and reuses the
on-disk result cache.  With no runner the shared serial default is used;
``run_all`` builds its own (workers from ``REPRO_WORKERS``, cache under
``REPRO_CACHE_DIR`` or the user cache directory) so re-running the
evaluation only replays cells whose inputs changed.
"""

from repro import params
from repro.core.costs import DEFAULT_COST_MODEL, MEASURED_SIZES
from repro.sim.config import SimConfig
from repro.sim.report import (
    format_table,
    render_breakdown_chart,
    render_line_chart,
)
from repro.sim.runner import (
    SweepCell,
    SweepRunner,
    default_cache_dir,
    default_runner,
    workers_from_env,
)
from repro.sim.sweep import (
    generate_traces,
    sweep_associativity,
    sweep_prefetch,
)
from repro.traces.record import count_lookups, footprint_pages
from repro.traces.synth import TABLE_ORDER, make_app

#: Default experiment geometry (the paper's cluster).
DEFAULT_NODES = params.TRACE_NODES
DEFAULT_SEED = 1

#: Cache sizes of Tables 4/5/8.
SIZES = params.CACHE_SIZE_SWEEP


def _scaled_limit_pages(limit_bytes, scale):
    """A memory limit in pages, shrunk with the trace scale."""
    pages = limit_bytes // params.PAGE_SIZE
    return max(16, int(round(pages * scale)))


def _apps(names=None):
    return [make_app(name) for name in (names or TABLE_ORDER)]


# ---------------------------------------------------------------------------
# Table 1 — host-side operation costs
# ---------------------------------------------------------------------------

def table1(cost_model=None):
    """Host overheads: check (min/max), pin, unpin vs pages per call."""
    cm = cost_model or DEFAULT_COST_MODEL
    return {
        "num_pages": list(MEASURED_SIZES),
        "check_min": [cm.check_cost(n) for n in MEASURED_SIZES],
        "check_max": [cm.check_cost(n, worst_case=True)
                      for n in MEASURED_SIZES],
        "pin": [cm.pin_cost(n) for n in MEASURED_SIZES],
        "unpin": [cm.unpin_cost(n) for n in MEASURED_SIZES],
    }


def render_table1(data):
    headers = ["num pages"] + [str(n) for n in data["num_pages"]]
    rows = [
        ["check min (us)"] + [round(v, 1) for v in data["check_min"]],
        ["check max (us)"] + [round(v, 1) for v in data["check_max"]],
        ["pin (us)"] + [round(v, 1) for v in data["pin"]],
        ["unpin (us)"] + [round(v, 1) for v in data["unpin"]],
    ]
    return format_table(headers, rows,
                        title="Table 1: UTLB overhead on the host processor",
                        precision=1)


# ---------------------------------------------------------------------------
# Table 2 — network-interface costs
# ---------------------------------------------------------------------------

def table2(cost_model=None):
    """NIC overheads: DMA and total miss cost vs entries fetched."""
    cm = cost_model or DEFAULT_COST_MODEL
    return {
        "num_entries": list(MEASURED_SIZES),
        "dma_cost": [cm.dma_cost(n) for n in MEASURED_SIZES],
        "miss_cost": [cm.miss_cost(n) for n in MEASURED_SIZES],
        "hit_cost": cm.ni_check_hit,
    }


def render_table2(data):
    headers = ["num entries"] + [str(n) for n in data["num_entries"]]
    rows = [
        ["DMA cost (us)"] + [round(v, 1) for v in data["dma_cost"]],
        ["total miss cost (us)"] + [round(v, 1) for v in data["miss_cost"]],
    ]
    table = format_table(
        headers, rows,
        title="Table 2: UTLB overhead on the network interface",
        precision=1)
    return table + "\n(hit cost is a constant %.1f us)" % data["hit_cost"]


# ---------------------------------------------------------------------------
# Table 3 — workload characteristics
# ---------------------------------------------------------------------------

def table3(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED):
    """Problem size, per-node footprint and lookup count of each app."""
    data = {}
    for app in _apps():
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        fp = sum(footprint_pages(t) for t in traces.values()) / len(traces)
        lk = sum(count_lookups(t) for t in traces.values()) / len(traces)
        data[app.name] = {
            "problem_size": app.problem_size,
            "footprint_pages": fp,
            "lookups": lk,
            "target_footprint": app.footprint_pages,
            "target_lookups": app.lookups,
        }
    return data


def render_table3(data):
    headers = ["Application", "Problem Size", "Footprint (4KB pages)",
               "# translation lookups"]
    rows = [[name,
             data[name]["problem_size"],
             int(round(data[name]["footprint_pages"])),
             int(round(data[name]["lookups"]))]
            for name in data]
    return format_table(
        headers, rows,
        title="Table 3: Application problem size, communication memory "
              "footprint, lookup frequency (per node)")


# ---------------------------------------------------------------------------
# Tables 4 and 5 — UTLB vs interrupt-based
# ---------------------------------------------------------------------------

def _utlb_vs_intr(scale, nodes, seed, sizes, memory_limit_bytes,
                  runner=None):
    runner = runner or default_runner()
    limit = (None if memory_limit_bytes is None
             else _scaled_limit_pages(memory_limit_bytes, scale)
             * params.PAGE_SIZE)
    base = SimConfig(memory_limit_bytes=limit)
    data = {}
    for app in _apps():
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        cells = []
        for size in sizes:
            config = base.replace(cache_entries=size)
            cells.append(SweepCell((app.name, size, "utlb"), traces,
                                   config, "utlb"))
            cells.append(SweepCell((app.name, size, "intr"), traces,
                                   config, "intr"))
        results = runner.run_cells(cells)
        per_size = {}
        for index, size in enumerate(sizes):
            utlb = results[2 * index].stats
            intr = results[2 * index + 1].stats
            per_size[size] = {
                "utlb": {
                    "check_misses": utlb.check_miss_rate,
                    "ni_misses": utlb.ni_miss_rate,
                    "unpins": utlb.unpin_rate,
                    "stats": utlb,
                },
                "intr": {
                    "ni_misses": intr.ni_miss_rate,
                    "unpins": intr.unpin_rate,
                    "stats": intr,
                },
            }
        data[app.name] = per_size
    return data


def table4(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED, sizes=SIZES,
           runner=None):
    """UTLB vs Intr per-lookup rates with infinite host memory."""
    return _utlb_vs_intr(scale, nodes, seed, sizes, None, runner=runner)


def table5(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED, sizes=SIZES,
           memory_limit_bytes=params.TABLE5_MEMORY_LIMIT_BYTES, runner=None):
    """UTLB vs Intr per-lookup rates with a 4 MB per-process limit."""
    return _utlb_vs_intr(scale, nodes, seed, sizes, memory_limit_bytes,
                         runner=runner)


def _render_utlb_vs_intr(data, title):
    apps = list(data)
    sizes = list(next(iter(data.values())))
    headers = (["Cache", "Characteristic"]
               + ["%s:UTLB" % a for a in apps]
               + ["%s:Intr" % a for a in apps])
    rows = []
    for size in sizes:
        for metric, label in (("check_misses", "check misses"),
                              ("ni_misses", "NI misses"),
                              ("unpins", "unpins")):
            row = ["%dK" % (size // 1024) if metric == "check_misses" else "",
                   label]
            for app in apps:
                cell = data[app][size]["utlb"].get(metric)
                row.append("" if cell is None else round(cell, 2))
            for app in apps:
                cell = data[app][size]["intr"].get(metric)
                row.append("" if cell is None else round(cell, 2))
            rows.append(row)
    return format_table(headers, rows, title=title)


def render_table4(data):
    return _render_utlb_vs_intr(
        data,
        "Table 4: UTLB vs Intr per-lookup rates (infinite host memory, "
        "direct-mapped cache with index offsetting, no prefetch)")


def render_table5(data):
    return _render_utlb_vs_intr(
        data,
        "Table 5: UTLB vs Intr per-lookup rates (4 MB host memory limit, "
        "direct-mapped cache with index offsetting, no prefetch)")


# ---------------------------------------------------------------------------
# Table 6 — average lookup cost
# ---------------------------------------------------------------------------

def table6(table4_data=None, scale=1.0, nodes=DEFAULT_NODES,
           seed=DEFAULT_SEED, sizes=(1024, 4096, 16384),
           apps=("barnes", "fft"), cost_model=None, runner=None):
    """Average translation lookup cost (us): UTLB vs Intr.

    Applies the Section 6.2 cost equations to the measured Table 4 rates,
    and also reports the simulator's directly accumulated per-lookup time
    (the two agree — that is a built-in cross-check of the cost model).
    """
    cm = cost_model or DEFAULT_COST_MODEL
    if table4_data is None:
        table4_data = _utlb_vs_intr(scale, nodes, seed, sizes, None,
                                    runner=runner)
    data = {}
    for app in apps:
        per_size = {}
        for size in sizes:
            cell = table4_data[app][size]
            utlb = cell["utlb"]
            intr = cell["intr"]
            per_size[size] = {
                "utlb_us": cm.utlb_lookup_cost(
                    utlb["check_misses"], utlb["ni_misses"], utlb["unpins"]),
                "intr_us": cm.intr_lookup_cost(
                    intr["ni_misses"], intr["unpins"]),
                "utlb_measured_us": utlb["stats"].avg_lookup_cost_us,
                "intr_measured_us": intr["stats"].avg_lookup_cost_us,
            }
        data[app] = per_size
    return data


def render_table6(data):
    apps = list(data)
    sizes = list(next(iter(data.values())))
    headers = ["Cache Entries"]
    for app in apps:
        headers += ["%s:UTLB" % app, "%s:Intr" % app]
    rows = []
    for size in sizes:
        row = ["%dK" % (size // 1024)]
        for app in apps:
            row.append("%.1f us" % data[app][size]["utlb_us"])
            row.append("%.1f us" % data[app][size]["intr_us"])
        rows.append(row)
    return format_table(
        headers, rows,
        title="Table 6: Average lookup cost, UTLB vs Intr (infinite host "
              "memory, no prefetch, index offsetting)")


# ---------------------------------------------------------------------------
# Table 7 — sequential pre-pinning
# ---------------------------------------------------------------------------

def table7(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED,
           cache_entries=params.DEFAULT_UTLB_CACHE_ENTRIES,
           memory_limit_bytes=params.TABLE7_MEMORY_LIMIT_BYTES,
           prepin_degrees=(1, 16), runner=None):
    """Amortized pin/unpin cost per lookup for pre-pinning strategies.

    The paper's "16 MB limit" is read as a per-node budget shared by the
    node's five processes (the SVM processes share one memory pool on
    each SMP): that is the reading under which the limit binds for the
    large-footprint applications and FFT's published pre-pinning
    pathology (unpin cost exploding to ~93 us/lookup) reproduces.
    """
    runner = runner or default_runner()
    per_process = memory_limit_bytes // params.TRACE_PROCESSES_PER_NODE
    limit = (_scaled_limit_pages(per_process, scale)
             * params.PAGE_SIZE)
    data = {}
    for app in _apps():
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        cells = [SweepCell((app.name, "prepin", degree), traces,
                           SimConfig(cache_entries=cache_entries,
                                     memory_limit_bytes=limit,
                                     prepin=degree), "utlb")
                 for degree in prepin_degrees]
        results = runner.run_cells(cells)
        per_degree = {}
        for degree, result in zip(prepin_degrees, results):
            stats = result.stats
            per_degree[degree] = {
                "pin_us": stats.amortized_pin_cost_us,
                "unpin_us": stats.amortized_unpin_cost_us,
                "pages_pinned": stats.pages_pinned,
                "pages_unpinned": stats.pages_unpinned,
                "ni_misses": stats.ni_miss_rate,
            }
        data[app.name] = per_degree
    return data


def render_table7(data):
    apps = list(data)
    degrees = list(next(iter(data.values())))
    headers = ["Cost", "pages"] + apps
    rows = []
    for metric, label in (("pin_us", "pin"), ("unpin_us", "unpin")):
        for index, degree in enumerate(degrees):
            row = [label if index == 0 else "", degree]
            row += [round(data[app][degree][metric], 1) for app in apps]
            rows.append(row)
    return format_table(
        headers, rows,
        title="Table 7: Amortized pinning and unpinning cost (us/lookup) "
              "per page-pinning strategy (16 MB limit)",
        precision=1)


# ---------------------------------------------------------------------------
# Table 8 — cache size and associativity
# ---------------------------------------------------------------------------

def table8(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED, sizes=SIZES,
           runner=None):
    """Overall Shared UTLB-Cache miss rates vs size and associativity."""
    data = {}
    for app in _apps():
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        grid = sweep_associativity(traces, sizes, SimConfig(), runner=runner)
        data[app.name] = {
            key: result.stats.ni_miss_rate for key, result in grid.items()
        }
    return data


def render_table8(data):
    apps = list(data)
    keys = list(next(iter(data.values())))
    sizes = sorted({size for size, _ in keys})
    labels = ("direct", "2-way", "4-way", "direct-nohash")
    headers = ["Cache", "Associativity"] + apps
    rows = []
    for size in sizes:
        for index, label in enumerate(labels):
            row = ["%dK" % (size // 1024) if index == 0 else "", label]
            row += [round(data[app][(size, label)], 2) for app in apps]
            rows.append(row)
    return format_table(
        headers, rows,
        title="Table 8: Overall miss rates in the Shared UTLB-Cache vs "
              "cache size and associativity")


# ---------------------------------------------------------------------------
# Figure 7 — miss-class breakdown
# ---------------------------------------------------------------------------

def figure7(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED,
            sizes=(1024, 4096, 8192, 16384), runner=None):
    """3C breakdown of NIC translation-cache misses per app and size."""
    runner = runner or default_runner()
    data = {}
    for app in _apps():
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        cells = [SweepCell((app.name, "3c", size), traces,
                           SimConfig(cache_entries=size, classify=True),
                           "utlb")
                 for size in sizes]
        results = runner.run_cells(cells)
        data[app.name] = {size: result.breakdown.rates()
                          for size, result in zip(sizes, results)}
    return data


def render_figure7(data):
    entries = []
    for app, per_size in data.items():
        for size, rates in per_size.items():
            entries.append(("%s %2dK" % (app, size // 1024), rates))
    chart = render_breakdown_chart(entries)
    return ("Figure 7: Breakdown of translation cache miss rates\n"
            "(infinite host memory, direct-mapped, no prefetch)\n" + chart)


# ---------------------------------------------------------------------------
# Figure 8 — prefetching
# ---------------------------------------------------------------------------

def figure8(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED,
            sizes=SIZES, degrees=params.PREFETCH_SWEEP, app_name="radix",
            runner=None):
    """Radix miss rate and lookup cost vs prefetch degree and size."""
    app = make_app(app_name)
    traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
    grid = sweep_prefetch(traces, sizes, degrees, SimConfig(),
                          runner=runner)
    data = {}
    for (size, degree), result in grid.items():
        data.setdefault(size, {})[degree] = {
            "miss_rate": result.stats.ni_miss_rate,
            "lookup_cost_us": result.stats.avg_lookup_cost_us,
        }
    return data


def render_figure8(data):
    miss_series = {}
    cost_series = {}
    for size, per_degree in data.items():
        label = "%dK" % (size // 1024)
        miss_series[label] = sorted(
            (degree, cell["miss_rate"])
            for degree, cell in per_degree.items())
        cost_series[label] = sorted(
            (degree, cell["lookup_cost_us"])
            for degree, cell in per_degree.items())
    return (
        "Figure 8a: RADIX cache miss rate vs prefetch degree\n"
        + render_line_chart(miss_series, x_label="entries fetched per miss",
                            y_label="miss rate")
        + "\n\nFigure 8b: RADIX average lookup cost (us) vs prefetch degree\n"
        + render_line_chart(cost_series, x_label="entries fetched per miss",
                            y_label="lookup cost (us)"))


# ---------------------------------------------------------------------------
# Table 8 companion — effective NIC lookup cost per organisation
# ---------------------------------------------------------------------------

def table8_cost(table8_data, cost_model=None):
    """Turn Table 8's miss rates into effective NIC lookup costs.

    "When the actual cost of lookup is considered, the set-associative
    caches lose to the direct-map cache" (Section 6.3): the firmware
    probes set entries serially, so each extra way costs another 0.8 µs
    probe on average.  Effective cost per lookup =
    probe cost(assoc, miss rate) + miss_cost(1) * miss rate.

    Returns {app: {(size, org): cost_us}} over the Table 8 grid.
    """
    cm = cost_model or DEFAULT_COST_MODEL
    assoc_of = {"direct": 1, "2-way": 2, "4-way": 4, "direct-nohash": 1}
    data = {}
    for app, cells in table8_data.items():
        out = {}
        for (size, org), miss_rate in cells.items():
            assoc = assoc_of[org]
            out[(size, org)] = (cm.ni_probe_cost(assoc, miss_rate)
                                + cm.miss_cost(1) * miss_rate)
        data[app] = out
    return data


def render_table8_cost(data):
    apps = list(data)
    keys = list(next(iter(data.values())))
    sizes = sorted({size for size, _ in keys})
    labels = ("direct", "2-way", "4-way", "direct-nohash")
    headers = ["Cache", "Associativity"] + apps
    rows = []
    for size in sizes:
        for index, label in enumerate(labels):
            row = ["%dK" % (size // 1024) if index == 0 else "", label]
            row += [round(data[app][(size, label)], 2) for app in apps]
            rows.append(row)
    return format_table(
        headers, rows,
        title="Table 8 companion: effective NIC lookup cost (us) with "
              "serial firmware probing — the Section 6.3 argument for "
              "direct mapping")


# ---------------------------------------------------------------------------
# Extension: N-way mechanism comparison over the Table 4 grid
# ---------------------------------------------------------------------------

#: The default comparison set: the paper's two evaluated designs plus
#: the three modern translation mechanisms from the registry.  ``pp``
#: (per-process UTLB) joins when callers ask for ``all`` — its numbers
#: are flat across cache sizes because it has no shared cache.
COMPARE_MECHANISMS = ("utlb", "intr", "victima", "utopia", "sparta-range")


def mechanism_table(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED,
                    sizes=(1024, 16384), mechanisms=None, runner=None,
                    apps=None):
    """Table-4-style grid replayed once per registered mechanism.

    Every application runs at every cache size under every mechanism in
    ``mechanisms`` (default :data:`COMPARE_MECHANISMS`), through the same
    :class:`~repro.sim.runner.SweepRunner` fan-out as the paper tables.
    ``apps`` overrides the workload list (default: Table 3 order) —
    the hook the post-paper families (``zipf-kv``) ride in on.  Returns
    ``{app: {size: {mechanism: {"ni_misses", "unpins",
    "lookup_cost_us", "stats"}}}}``.
    """
    runner = runner or default_runner()
    mechanisms = tuple(mechanisms or COMPARE_MECHANISMS)
    data = {}
    for app in (apps if apps is not None else _apps()):
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        cells = []
        for size in sizes:
            for mechanism in mechanisms:
                config = SimConfig(cache_entries=size, mechanism=mechanism)
                cells.append(SweepCell((app.name, size, mechanism),
                                       traces, config))
        results = runner.run_cells(cells)
        per_size = {}
        index = 0
        for size in sizes:
            per_mech = {}
            for mechanism in mechanisms:
                stats = results[index].stats
                index += 1
                per_mech[mechanism] = {
                    "ni_misses": stats.ni_miss_rate,
                    "unpins": stats.unpin_rate,
                    "lookup_cost_us": stats.avg_lookup_cost_us,
                    "stats": stats,
                }
            per_size[size] = per_mech
        data[app.name] = per_size
    return data


def render_mechanism_table(data):
    apps = list(data)
    sizes = list(next(iter(data.values())))
    mechanisms = list(next(iter(next(iter(data.values())).values())))
    headers = (["Cache", "Mechanism"]
               + ["%s:NI" % a for a in apps]
               + ["%s:us" % a for a in apps])
    rows = []
    for size in sizes:
        for index, mechanism in enumerate(mechanisms):
            row = ["%dK" % (size // 1024) if index == 0 else "", mechanism]
            for app in apps:
                row.append(round(data[app][size][mechanism]["ni_misses"], 2))
            for app in apps:
                row.append(
                    round(data[app][size][mechanism]["lookup_cost_us"], 2))
            rows.append(row)
    return format_table(
        headers, rows,
        title="Mechanism comparison: NI miss rate and average lookup "
              "cost (us/lookup) per mechanism over the Table 4 grid")


# ---------------------------------------------------------------------------
# Extension: per-component cost breakdown (not a paper table; explains
# *why* Table 6 comes out the way it does)
# ---------------------------------------------------------------------------

def cost_breakdown(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED,
                   cache_entries=params.DEFAULT_UTLB_CACHE_ENTRIES,
                   runner=None):
    """Per-lookup time split into its components, per app and mechanism.

    Components: user check, pinning, NIC hit, NIC miss handling,
    unpinning, interrupts — the terms of the Section 6.2 equations,
    measured separately.
    """
    runner = runner or default_runner()
    data = {}
    for app in _apps():
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        config = SimConfig(cache_entries=cache_entries)
        mechanisms = ("utlb", "intr")
        results = runner.run_cells(
            [SweepCell((app.name, "breakdown", mechanism), traces, config,
                       mechanism)
             for mechanism in mechanisms])
        per_mech = {}
        for mechanism, result in zip(mechanisms, results):
            stats = result.stats
            lookups = stats.lookups or 1
            per_mech[mechanism] = {
                "check_us": stats.check_time_us / lookups,
                "pin_us": stats.pin_time_us / lookups,
                "ni_hit_us": stats.ni_hit_time_us / lookups,
                "ni_miss_us": stats.ni_miss_time_us / lookups,
                "unpin_us": stats.unpin_time_us / lookups,
                "interrupt_us": stats.interrupt_time_us / lookups,
                "total_us": stats.avg_lookup_cost_us,
            }
        data[app.name] = per_mech
    return data


BREAKDOWN_COMPONENTS = ("check_us", "pin_us", "ni_hit_us", "ni_miss_us",
                        "unpin_us", "interrupt_us")


def render_cost_breakdown(data):
    headers = (["app", "mechanism"]
               + [c[:-3] for c in BREAKDOWN_COMPONENTS] + ["total"])
    rows = []
    for app, per_mech in data.items():
        for mechanism, cell in per_mech.items():
            rows.append([app, mechanism]
                        + [round(cell[c], 2) for c in BREAKDOWN_COMPONENTS]
                        + [round(cell["total_us"], 2)])
    return format_table(
        headers, rows,
        title="Per-lookup cost breakdown (us) by component "
              "(the Section 6.2 equation terms, measured)")


# ---------------------------------------------------------------------------
# Run everything
# ---------------------------------------------------------------------------

def make_runner(workers=None, cache_dir=None, trace_dir=None):
    """The evaluation's default :class:`SweepRunner`.

    ``workers=None`` reads ``REPRO_WORKERS`` (default 1).
    ``cache_dir=None`` enables the cache at its default location
    (``REPRO_CACHE_DIR`` or the user cache dir); pass ``cache_dir=False``
    to disable caching.  ``trace_dir`` (a directory path) dumps one JSONL
    event stream per traceable cell — see
    :class:`~repro.sim.runner.SweepRunner`.
    """
    if workers is None:
        workers = workers_from_env()
    if cache_dir is None:
        cache_dir = default_cache_dir()
    elif cache_dir is False:
        cache_dir = None
    return SweepRunner(workers=workers, cache_dir=cache_dir,
                       trace_dir=trace_dir)


def run_all(scale=1.0, nodes=DEFAULT_NODES, seed=DEFAULT_SEED, stream=None,
            runner=None, workers=None, cache_dir=None):
    """Run the full evaluation; returns the rendered report string.

    ``stream`` (e.g. sys.stdout) receives each section as it finishes so
    long runs show progress.  With no ``runner``, one is built via
    :func:`make_runner` — parallel if ``workers`` (or ``REPRO_WORKERS``)
    says so, caching on by default so a re-run only replays cells whose
    inputs changed.  The runner's ``metrics`` attribute holds the
    machine-readable per-cell report afterwards.
    """
    owned = runner is None
    if owned:
        runner = make_runner(workers=workers, cache_dir=cache_dir)
    sections = []

    def emit(text):
        sections.append(text)
        if stream is not None:
            stream.write(text + "\n\n")
            stream.flush()

    try:
        emit(render_table1(table1()))
        emit(render_table2(table2()))
        emit(render_table3(table3(scale=scale, nodes=nodes, seed=seed)))
        t4 = table4(scale=scale, nodes=nodes, seed=seed, runner=runner)
        emit(render_table4(t4))
        emit(render_table5(table5(scale=scale, nodes=nodes, seed=seed,
                                  runner=runner)))
        emit(render_table6(table6(table4_data=t4)))
        emit(render_table7(table7(scale=scale, nodes=nodes, seed=seed,
                                  runner=runner)))
        t8 = table8(scale=scale, nodes=nodes, seed=seed, runner=runner)
        emit(render_table8(t8))
        emit(render_table8_cost(table8_cost(t8)))
        emit(render_figure7(figure7(scale=scale, nodes=nodes, seed=seed,
                                    runner=runner)))
        emit(render_figure8(figure8(scale=scale, nodes=nodes, seed=seed,
                                    runner=runner)))
    finally:
        if owned:
            runner.close()
    return "\n\n".join(sections)
