"""Parameter sweeps over the trace-driven simulators.

Sweeps regenerate each application's traces once and replay them under
many configurations — the expensive part of a sweep is the replay, not
the generation, but reusing traces also guarantees every configuration
sees the identical reference stream (as the paper's methodology does).
"""

from repro.errors import ConfigError
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.pp_simulator import simulate_node_pp
from repro.sim.simulator import ClusterResult, simulate_node

MECHANISMS = ("utlb", "intr", "pp")


def run_on_traces(traces, config, mechanism="utlb"):
    """Replay per-node traces (dict node -> records) under one config.

    Mechanisms: 'utlb' (Hierarchical-UTLB + Shared UTLB-Cache), 'intr'
    (interrupt-based baseline), 'pp' (per-process UTLB, Section 3.1).
    """
    if mechanism == "utlb":
        simulate = simulate_node
    elif mechanism == "intr":
        simulate = simulate_node_intr
    elif mechanism == "pp":
        simulate = simulate_node_pp
    else:
        raise ConfigError("unknown mechanism %r (use one of %s)"
                          % (mechanism, MECHANISMS))
    results = [simulate(traces[node], config) for node in sorted(traces)]
    return ClusterResult(results)


def generate_traces(app, nodes=4, seed=0, scale=1.0):
    """Per-node traces for one application (cached by callers)."""
    return app.generate_cluster(nodes=nodes, seed=seed, scale=scale)


def sweep_cache_sizes(traces, sizes, base_config, mechanism="utlb"):
    """{cache size: ClusterResult} over the given entry counts."""
    return {size: run_on_traces(traces,
                                base_config.replace(cache_entries=size),
                                mechanism)
            for size in sizes}


def sweep_associativity(traces, sizes, base_config, associativities=(1, 2, 4),
                        include_nohash=True):
    """Table 8 grid: {(size, label): ClusterResult}.

    Labels are 'direct', '2-way', '4-way' (all with index offsetting) and
    'direct-nohash' (direct-mapped, no offsetting).
    """
    grid = {}
    for size in sizes:
        for assoc in associativities:
            label = "direct" if assoc == 1 else "%d-way" % assoc
            config = base_config.replace(cache_entries=size,
                                         associativity=assoc,
                                         offsetting=True)
            grid[(size, label)] = run_on_traces(traces, config, "utlb")
        if include_nohash:
            config = base_config.replace(cache_entries=size,
                                         associativity=1,
                                         offsetting=False)
            grid[(size, "direct-nohash")] = run_on_traces(traces, config,
                                                          "utlb")
    return grid


def sweep_prefetch(traces, sizes, degrees, base_config, couple_prepin=True):
    """Figure 8 grid: {(size, prefetch degree): ClusterResult}.

    ``couple_prepin`` sets the pre-pinning degree equal to the prefetch
    degree: Section 6.5 explains that prefetch only pays off when
    "translations for contiguous application pages [are] available during
    a miss", and sequential pre-pinning is the paper's way to ensure that.
    Without it, compulsory NIC misses have no valid neighbours to fetch.
    """
    grid = {}
    for size in sizes:
        for degree in degrees:
            config = base_config.replace(
                cache_entries=size, prefetch=degree,
                prepin=(degree if couple_prepin else base_config.prepin))
            grid[(size, degree)] = run_on_traces(traces, config, "utlb")
    return grid


def sweep_policies(traces, base_config, policies=("lru", "mru", "lfu",
                                                  "mfu", "random")):
    """{policy: ClusterResult} for the five Section 3.4 pin policies."""
    return {policy: run_on_traces(traces,
                                  base_config.replace(pin_policy=policy),
                                  "utlb")
            for policy in policies}
