"""Parameter sweeps over the trace-driven simulators.

Sweeps regenerate each application's traces once and replay them under
many configurations — the expensive part of a sweep is the replay, not
the generation, but reusing traces also guarantees every configuration
sees the identical reference stream (as the paper's methodology does).

Every sweep builds its full grid of cells up front and hands them to a
:class:`~repro.sim.runner.SweepRunner`, so one call parallelises over
both grid cells and the nodes inside each cell, and benefits from the
runner's on-disk result cache.  Passing no runner keeps the historical
serial, cache-less behaviour.
"""

from repro.sim.config import SimConfig  # noqa: F401  (re-export convenience)
from repro.sim.runner import MECHANISMS, SweepCell, default_runner

__all__ = [
    "MECHANISMS",
    "generate_traces",
    "run_on_traces",
    "sweep_associativity",
    "sweep_cache_sizes",
    "sweep_memory_limits",
    "sweep_policies",
    "sweep_prefetch",
]


def run_on_traces(traces, config, mechanism="utlb", runner=None):
    """Replay per-node traces (dict node -> records) under one config.

    Mechanisms: 'utlb' (Hierarchical-UTLB + Shared UTLB-Cache), 'intr'
    (interrupt-based baseline), 'pp' (per-process UTLB, Section 3.1).
    """
    runner = runner or default_runner()
    return runner.run(traces, config, mechanism)


def generate_traces(app, nodes=4, seed=0, scale=1.0):
    """Per-node traces for one application (cached by callers).

    Prefers the workload's re-iterable streaming form when it has one
    (every synthetic generator does): the records are byte-identical to
    the eager lists — fingerprints, cache keys, and results unchanged —
    but sweeps never hold a full record list, so peak memory is the
    compiled streams, not the ~100x-larger record objects.  Workloads
    without a streaming protocol (``MixedWorkload``'s merge-order pid
    renumbering is inherently eager) fall back to materialized lists.
    """
    streaming = getattr(app, "streaming_cluster", None)
    if streaming is not None:
        return streaming(nodes=nodes, seed=seed, scale=scale)
    return app.generate_cluster(nodes=nodes, seed=seed, scale=scale)


def sweep_cache_sizes(traces, sizes, base_config, mechanism="utlb",
                      runner=None):
    """{cache size: ClusterResult} over the given entry counts."""
    runner = runner or default_runner()
    cells = [SweepCell(size, traces, base_config.replace(cache_entries=size),
                       mechanism)
             for size in sizes]
    return dict(zip(sizes, runner.run_cells(cells)))


def sweep_associativity(traces, sizes, base_config, associativities=(1, 2, 4),
                        include_nohash=True, runner=None):
    """Table 8 grid: {(size, label): ClusterResult}.

    Labels are 'direct', '2-way', '4-way' (all with index offsetting) and
    'direct-nohash' (direct-mapped, no offsetting).
    """
    runner = runner or default_runner()
    cells = []
    for size in sizes:
        for assoc in associativities:
            label = "direct" if assoc == 1 else "%d-way" % assoc
            config = base_config.replace(cache_entries=size,
                                         associativity=assoc,
                                         offsetting=True)
            cells.append(SweepCell((size, label), traces, config, "utlb"))
        if include_nohash:
            config = base_config.replace(cache_entries=size,
                                         associativity=1,
                                         offsetting=False)
            cells.append(SweepCell((size, "direct-nohash"), traces, config,
                                   "utlb"))
    return {cell.label: result
            for cell, result in zip(cells, runner.run_cells(cells))}


def sweep_memory_limits(traces, limits_bytes, base_config, mechanism="utlb",
                        runner=None):
    """{memory limit (bytes or None): ClusterResult} over pinning limits.

    The Table 5 axis proper: identical configuration, varying only the
    per-process pinnable-memory budget.  Under the default LRU pin
    policy and a direct-mapped cache this whole axis is
    analytic-eligible — the runner answers it with one pass per node
    regardless of how many limits are swept, which is what makes dense
    memory-pressure curves (hundreds of points) practical.
    """
    runner = runner or default_runner()
    cells = [SweepCell(limit, traces,
                       base_config.replace(memory_limit_bytes=limit),
                       mechanism)
             for limit in limits_bytes]
    return dict(zip(limits_bytes, runner.run_cells(cells)))


def sweep_prefetch(traces, sizes, degrees, base_config, couple_prepin=True,
                   runner=None):
    """Figure 8 grid: {(size, prefetch degree): ClusterResult}.

    ``couple_prepin`` sets the pre-pinning degree equal to the prefetch
    degree: Section 6.5 explains that prefetch only pays off when
    "translations for contiguous application pages [are] available during
    a miss", and sequential pre-pinning is the paper's way to ensure that.
    Without it, compulsory NIC misses have no valid neighbours to fetch.
    """
    runner = runner or default_runner()
    cells = []
    for size in sizes:
        for degree in degrees:
            config = base_config.replace(
                cache_entries=size, prefetch=degree,
                prepin=(degree if couple_prepin else base_config.prepin))
            cells.append(SweepCell((size, degree), traces, config, "utlb"))
    return {cell.label: result
            for cell, result in zip(cells, runner.run_cells(cells))}


def sweep_policies(traces, base_config, policies=("lru", "mru", "lfu",
                                                  "mfu", "random"),
                   runner=None):
    """{policy: ClusterResult} for the five Section 3.4 pin policies."""
    runner = runner or default_runner()
    cells = [SweepCell(policy, traces,
                       base_config.replace(pin_policy=policy), "utlb")
             for policy in policies]
    return dict(zip(policies, runner.run_cells(cells)))
