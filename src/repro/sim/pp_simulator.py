"""Trace-driven simulator for the per-process UTLB (Section 3.1).

The paper could not evaluate the per-process design against the Shared
UTLB-Cache for lack of traces (Section 7).  This simulator replays the
same traces the other two mechanisms replay, with each process's
translation table carved out of a fixed NIC SRAM budget — making the
three-way comparison (per-process vs shared-cache vs interrupt-based)
possible.
"""

from repro import params
from repro.core.per_process import PerProcessUtlb
from repro.core.stats import TranslationStats
from repro.core.utlb import CountingFrameDriver
from repro.sim.simulator import ClusterResult, NodeResult

#: NIC SRAM the paper's implementation devoted to translation (32 KB at
#: 4 bytes/entry = 8 K entries), shared by a node's processes.
DEFAULT_SRAM_ENTRIES = params.DEFAULT_UTLB_CACHE_ENTRIES


def simulate_node_pp(records, config, sram_entries=DEFAULT_SRAM_ENTRIES,
                     check_invariants=False):
    """Replay one node's trace under per-process UTLB tables.

    The SRAM budget is divided evenly among the node's processes —
    exactly the static allocation drawback Section 3.2 identifies.
    ``config`` supplies the memory limit, pin policy, prepin degree, and
    cost model; cache geometry fields are ignored (there is no cache).
    """
    pids = sorted({record.pid for record in records})
    slots = max(1, sram_entries // max(1, len(pids)))
    driver = CountingFrameDriver()
    limit = config.memory_limit_pages
    utlbs = {
        pid: PerProcessUtlb(
            pid, num_slots=slots, driver=driver,
            cost_model=config.cost_model, memory_limit_pages=limit,
            pin_policy=config.pin_policy, prepin=config.prepin,
            seed=config.seed)
        for pid in pids
    }

    for record in records:
        utlb = utlbs[record.pid]
        for vpage in record.pages():
            utlb.access_page(vpage)

    if check_invariants:
        for utlb in utlbs.values():
            utlb.check_invariants()

    per_pid = {pid: utlb.stats for pid, utlb in utlbs.items()}
    stats = TranslationStats.merged(per_pid.values())
    capacity_evictions = sum(u.capacity_evictions for u in utlbs.values())
    result = NodeResult(stats, per_pid, cache={
        "slots_per_process": slots,
        "capacity_evictions": capacity_evictions,
    })
    return result


def simulate_app_pp(app, config, nodes=4, seed=0, scale=1.0,
                    sram_entries=DEFAULT_SRAM_ENTRIES,
                    check_invariants=False):
    """Simulate every node of an application under per-process UTLBs."""
    traces = app.generate_cluster(nodes=nodes, seed=seed, scale=scale)
    results = [simulate_node_pp(traces[node], config,
                                sram_entries=sram_entries,
                                check_invariants=check_invariants)
               for node in sorted(traces)]
    return ClusterResult(results)
