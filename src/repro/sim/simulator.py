"""The UTLB trace-driven simulator (Section 6).

"The simulator mimics the behavior of a network interface translation
cache, the host-side UTLB driver, and user-level library.  The simulator
reads traces, serializes the communication requests using the time stamps
in the trace, and derives detailed statistics on translation misses, and
the number of page pinnings and unpinnings."

One :func:`simulate_node` call replays one node's merged trace against a
fresh NIC (Shared UTLB-Cache) with one :class:`HierarchicalUtlb` per
process; :func:`simulate_app` runs every node of a synthetic application
and aggregates.
"""

from repro.core.shared_cache import SharedUtlbCache
from repro.core.stats import TranslationStats
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb
from repro.traces.merge import split_by_pid


class NodeResult:
    """Outcome of simulating one node's trace."""

    def __init__(self, stats, per_pid, cache, breakdown=None):
        self.stats = stats              # merged TranslationStats
        self.per_pid = per_pid          # pid -> TranslationStats
        self.cache = cache              # cache stats snapshot (dict)
        self.breakdown = breakdown      # MissBreakdown or None

    def to_dict(self):
        """JSON-safe dict: the result-cache and worker-transport format."""
        return {
            "stats": self.stats.to_dict(),
            "per_pid": {str(pid): stats.to_dict()
                        for pid, stats in self.per_pid.items()},
            "cache": self.cache,
            "breakdown": (None if self.breakdown is None
                          else self.breakdown.to_dict()),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a node result from :meth:`to_dict` output."""
        from repro.cachesim.classify import MissBreakdown
        breakdown = data.get("breakdown")
        return cls(
            TranslationStats.from_dict(data["stats"]),
            {int(pid): TranslationStats.from_dict(stats)
             for pid, stats in data["per_pid"].items()},
            data["cache"],
            None if breakdown is None else MissBreakdown.from_dict(breakdown))

    def __repr__(self):
        return "NodeResult(%r)" % (self.stats,)


class ClusterResult:
    """Aggregated outcome over all nodes of one application run."""

    def __init__(self, node_results):
        self.node_results = node_results
        self.stats = TranslationStats.merged(
            r.stats for r in node_results)
        self.breakdown = None
        if node_results and node_results[0].breakdown is not None:
            from repro.cachesim.classify import MissBreakdown
            self.breakdown = MissBreakdown.merged(
                r.breakdown for r in node_results)

    @property
    def per_node(self):
        return self.node_results

    def to_dict(self):
        """JSON-safe dict (per-node; aggregates are recomputed on load)."""
        return {"nodes": [r.to_dict() for r in self.node_results]}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a cluster result from :meth:`to_dict` output."""
        return cls([NodeResult.from_dict(n) for n in data["nodes"]])


def simulate_node(records, config, check_invariants=False):
    """Replay one node's (timestamp-sorted) trace under ``config``."""
    cache = SharedUtlbCache(
        config.cache_entries,
        associativity=config.associativity,
        offsetting=config.offsetting,
        classify=config.classify)
    driver = CountingFrameDriver()
    utlbs = {}
    limit = config.memory_limit_pages
    for pid in sorted(split_by_pid(records)):
        utlbs[pid] = HierarchicalUtlb(
            pid, cache, driver=driver, cost_model=config.cost_model,
            memory_limit_pages=limit, pin_policy=config.pin_policy,
            prepin=config.prepin, prefetch=config.prefetch,
            seed=config.seed)

    for record in records:
        utlb = utlbs[record.pid]
        for vpage in record.pages():
            utlb.access_page(vpage)

    if check_invariants:
        for utlb in utlbs.values():
            utlb.check_invariants()

    per_pid = {pid: utlb.stats for pid, utlb in utlbs.items()}
    stats = TranslationStats.merged(per_pid.values())
    breakdown = cache.classifier.breakdown if cache.classifier else None
    return NodeResult(stats, per_pid, cache.stats.snapshot(), breakdown)


def simulate_app(app, config, nodes=4, seed=0, scale=1.0,
                 check_invariants=False):
    """Simulate every node of a synthetic application; aggregate."""
    traces = app.generate_cluster(nodes=nodes, seed=seed, scale=scale)
    results = [simulate_node(traces[node], config,
                             check_invariants=check_invariants)
               for node in sorted(traces)]
    return ClusterResult(results)
