"""The UTLB trace-driven simulator (Section 6).

"The simulator mimics the behavior of a network interface translation
cache, the host-side UTLB driver, and user-level library.  The simulator
reads traces, serializes the communication requests using the time stamps
in the trace, and derives detailed statistics on translation misses, and
the number of page pinnings and unpinnings."

One :func:`simulate_node` call replays one node's merged trace against a
fresh NIC (Shared UTLB-Cache) with one :class:`HierarchicalUtlb` per
process; :func:`simulate_app` runs every node of a synthetic application
and aggregates.
"""

from repro.core.shared_cache import SharedUtlbCache, ShadowedUtlbCache
from repro.core.stats import TranslationStats
from repro.core.utlb import CountingFrameDriver, HierarchicalUtlb
from repro.sim import kernels
from repro.traces.compile import compile_streams


class NodeResult:
    """Outcome of simulating one node's trace."""

    def __init__(self, stats, per_pid, cache, breakdown=None):
        self.stats = stats              # merged TranslationStats
        self.per_pid = per_pid          # pid -> TranslationStats
        self.cache = cache              # cache stats snapshot (dict)
        self.breakdown = breakdown      # MissBreakdown or None

    def to_dict(self):
        """JSON-safe dict: the result-cache and worker-transport format."""
        return {
            "stats": self.stats.to_dict(),
            "per_pid": {str(pid): stats.to_dict()
                        for pid, stats in self.per_pid.items()},
            "cache": self.cache,
            "breakdown": (None if self.breakdown is None
                          else self.breakdown.to_dict()),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a node result from :meth:`to_dict` output."""
        from repro.cachesim.classify import MissBreakdown
        breakdown = data.get("breakdown")
        return cls(
            TranslationStats.from_dict(data["stats"]),
            {int(pid): TranslationStats.from_dict(stats)
             for pid, stats in data["per_pid"].items()},
            data["cache"],
            None if breakdown is None else MissBreakdown.from_dict(breakdown))

    def __repr__(self):
        return "NodeResult(%r)" % (self.stats,)


class ClusterResult:
    """Aggregated outcome over all nodes of one application run."""

    def __init__(self, node_results):
        self.node_results = node_results
        self.stats = TranslationStats.merged(
            r.stats for r in node_results)
        self.breakdown = None
        if node_results and node_results[0].breakdown is not None:
            from repro.cachesim.classify import MissBreakdown
            self.breakdown = MissBreakdown.merged(
                r.breakdown for r in node_results)

    @property
    def per_node(self):
        return self.node_results

    def to_dict(self):
        """JSON-safe dict (per-node; aggregates are recomputed on load)."""
        return {"nodes": [r.to_dict() for r in self.node_results]}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a cluster result from :meth:`to_dict` output."""
        return cls([NodeResult.from_dict(n) for n in data["nodes"]])


def simulate_node(records, config, check_invariants=False, compiled=None):
    """Replay one node's (timestamp-sorted) trace under ``config``.

    Dispatches on ``config.engine``: ``fast`` (the default) replays
    compiled page streams through a counter-only hot path; ``kernel``
    answers eligible cells with the vectorized batch kernels of
    :mod:`repro.sim.kernels` and takes the fast path for everything
    else; ``reference`` replays record-at-a-time through the full
    machinery.  All three are bit-identical in output
    (``NodeResult.to_dict()`` equality — the differential tests enforce
    it).

    ``compiled`` optionally passes precompiled streams for ``records``
    (:func:`compile_streams` output); the sweep runner uses it to compile
    each node's trace once per batch instead of once per cell.  The
    reference engine ignores it.

    An enabled ``config.tracer`` forces the reference path regardless of
    engine: the fast engine's hot loop is counter-only and cannot feed an
    event stream.  With no tracer (or a NullTracer) the fast path runs
    unchanged — byte- and speed-identical to an untraced build.
    ``check_invariants`` also forces the kernel tier down to fast — the
    kernel computes counts, not the live structures the invariant walk
    inspects.
    """
    if config.engine == "reference" or config.traced:
        return _simulate_node_reference(records, config, check_invariants)
    if (config.engine == "kernel" and not check_invariants
            and kernels.utlb_kernel_eligible(config)):
        if compiled is None:
            compiled = compile_streams(records)
        return NodeResult.from_dict(
            kernels.replay_node_dict(compiled, config))
    return _simulate_node_fast(records, config, check_invariants, compiled)


def _build_node(pids, config, shadowed=False, cache_factory=None):
    """One node's NIC cache, frame driver, and per-process UTLB stacks.

    ``pids`` must be sorted: registration order assigns the per-process
    index offsets, so it is part of the simulated configuration.

    ``cache_factory(config, tracer)`` optionally supplies the NIC cache
    model — how the mechanism registry swaps in Victima/Utopia/SPARTA
    designs while reusing the whole replay stack.  ``shadowed`` is
    ignored when a factory is given (the shadow fast path assumes the
    base cache's exact-key semantics).
    """
    tracer = config.tracer if config.traced else None
    if cache_factory is not None:
        cache = cache_factory(config, tracer)
    else:
        cache_cls = ShadowedUtlbCache if shadowed else SharedUtlbCache
        cache = cache_cls(
            config.cache_entries,
            associativity=config.associativity,
            offsetting=config.offsetting,
            classify=config.classify,
            tracer=tracer)
    driver = CountingFrameDriver()
    limit = config.memory_limit_pages
    utlbs = {}
    for pid in pids:
        utlbs[pid] = HierarchicalUtlb(
            pid, cache, driver=driver, cost_model=config.cost_model,
            memory_limit_pages=limit, pin_policy=config.pin_policy,
            prepin=config.prepin, prefetch=config.prefetch,
            seed=config.seed, tracer=tracer)
    return cache, utlbs


def _node_result(cache, utlbs, check_invariants):
    if check_invariants:
        for utlb in utlbs.values():
            utlb.check_invariants()
    per_pid = {pid: utlb.stats for pid, utlb in utlbs.items()}
    stats = TranslationStats.merged(per_pid.values())
    breakdown = cache.classifier.breakdown if cache.classifier else None
    return NodeResult(stats, per_pid, cache.stats.snapshot(), breakdown)


def _simulate_node_reference(records, config, check_invariants=False,
                             cache_factory=None):
    """The oracle: record-at-a-time replay, one full lookup per page."""
    pids = sorted({record.pid for record in records})
    cache, utlbs = _build_node(pids, config, cache_factory=cache_factory)

    for record in records:
        utlb = utlbs[record.pid]
        for vpage in record.pages():
            utlb.access_page(vpage)

    return _node_result(cache, utlbs, check_invariants)


def _simulate_node_fast(records, config, check_invariants=False,
                        compiled=None, cache_factory=None):
    """Compiled-stream replay with a counter-only hot path.

    The common case — page already pinned, translation already in the
    NIC cache — touches no simulation machinery at all: one or two dict/
    set probes and a counter bump.  Check misses and NIC misses fall back
    to the exact reference-path methods, so all state transitions (pin,
    evict, fill, invalidate) are byte-identical by construction.  The
    skipped per-event costs are constant increments, so they are applied
    in one exact batch at end of replay
    (:meth:`TranslationStats.charge_check_hits` /
    :meth:`~TranslationStats.charge_ni_hits`).

    The NIC-cache shadow dict is only a sound lookup substitute when a
    hit has no side effect beyond counters: direct-mapped (no within-set
    replacement state to touch) and no 3C classifier (which observes
    every access).  Other configurations still skip the user-level check
    on pinned pages but probe the real cache per lookup.

    Real traces interleave pids at record granularity (often one page per
    record), so the loop runs per lookup over the compiled interleaved
    arrays with per-pid state prebound in dense-index lists — the sets,
    shadow dicts, and bound methods are all stable objects mutated in
    place, so binding them once is sound.
    """
    if compiled is None:
        compiled = compile_streams(records)
    # A custom cache model (mechanism registry) disables the shadow-dict
    # shortcut: its lookups may have side effects (pressure clocks,
    # segment LRU order) the shadow would skip.  The non-shadow branches
    # below probe the real cache on every lookup, exactly like the
    # reference engine, so they stay byte-identical for any cache model.
    shadow_ok = (cache_factory is None
                 and config.associativity == 1 and not config.classify)
    cache, utlbs = _build_node(compiled.pids, config, shadowed=shadow_ok,
                               cache_factory=cache_factory)
    limit = config.memory_limit_pages

    # Per-pid state, indexed by the compiled dense pid index.
    order = compiled.pid_order
    pinneds = [utlbs[pid].pool.pinned_pages for pid in order]
    user_checks = [utlbs[pid].user_check_page for pid in order]
    nic_translates = [utlbs[pid].nic_translate_page for pid in order]
    check_counts = [0] * len(order)     # check hit, NIC probe still ran
    hit_counts = [0] * len(order)       # check hit + NIC hit: counters only
    pairs = zip(compiled.index_stream, compiled.page_stream)

    if shadow_ok:
        shadows = [cache.shadow[pid] for pid in order]
        if limit is None:
            # Hottest loop: no pinning limit means victim order is never
            # consulted, so policy touches can be skipped too.
            for i, vpage in pairs:
                if vpage in shadows[i]:
                    hit_counts[i] += 1
                elif vpage in pinneds[i]:
                    check_counts[i] += 1
                    nic_translates[i](vpage)
                else:
                    user_checks[i](vpage)
                    nic_translates[i](vpage)
        else:
            # A pinning limit makes eviction order observable: every
            # check hit must still touch the replacement policy.
            note_accesses = [utlbs[pid].pool.policy.on_access
                             for pid in order]
            for i, vpage in pairs:
                if vpage in shadows[i]:
                    hit_counts[i] += 1
                    note_accesses[i](vpage)
                elif vpage in pinneds[i]:
                    check_counts[i] += 1
                    note_accesses[i](vpage)
                    nic_translates[i](vpage)
                else:
                    user_checks[i](vpage)
                    nic_translates[i](vpage)
    elif limit is None:
        for i, vpage in pairs:
            if vpage in pinneds[i]:
                check_counts[i] += 1
            else:
                user_checks[i](vpage)
            nic_translates[i](vpage)
    else:
        note_accesses = [utlbs[pid].pool.policy.on_access for pid in order]
        for i, vpage in pairs:
            if vpage in pinneds[i]:
                check_counts[i] += 1
                note_accesses[i](vpage)
            else:
                user_checks[i](vpage)
            nic_translates[i](vpage)

    cm = config.cost_model
    shadow_hits = 0
    for i, pid in enumerate(order):
        stats = utlbs[pid].stats
        stats.charge_check_hits(check_counts[i] + hit_counts[i],
                                cm.user_check_hit)
        stats.charge_ni_hits(hit_counts[i], cm.ni_check_hit)
        shadow_hits += hit_counts[i]
    if shadow_hits:
        cache.credit_shadow_hits(shadow_hits)

    return _node_result(cache, utlbs, check_invariants)


def simulate_app(app, config, nodes=4, seed=0, scale=1.0,
                 check_invariants=False):
    """Simulate every node of a synthetic application; aggregate."""
    traces = app.generate_cluster(nodes=nodes, seed=seed, scale=scale)
    results = [simulate_node(traces[node], config,
                             check_invariants=check_invariants)
               for node in sorted(traces)]
    return ClusterResult(results)
