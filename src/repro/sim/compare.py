"""Automated paper-vs-measured comparison.

Runs the reproduction's experiments and lines the results up against the
published numbers in :mod:`repro.paperdata`, computing absolute deltas
and checking the paper's qualitative findings ("shape criteria")
programmatically.  ``python -m repro --compare`` prints the report.
"""

from repro import paperdata
from repro.sim import experiments as exp
from repro.sim.report import format_table


def compare_table3(scale=1.0, nodes=4, seed=1):
    """Side-by-side footprints and lookup counts."""
    measured = exp.table3(scale=scale, nodes=nodes, seed=seed)
    rows = []
    for app, paper in paperdata.TABLE3.items():
        got = measured[app]
        # Scale the paper targets to the run's scale for the comparison.
        fp_target = paper["footprint"] * scale
        lk_target = paper["lookups"] * scale
        rows.append([
            app,
            int(round(fp_target)), int(round(got["footprint_pages"])),
            int(round(lk_target)), int(round(got["lookups"])),
        ])
    return rows, format_table(
        ["app", "paper fp", "measured fp", "paper lookups",
         "measured lookups"],
        rows, title="Table 3: paper vs measured (scaled)")


def compare_table4(scale=1.0, nodes=4, seed=1, sizes=(1024, 16384),
                   runner=None):
    """Side-by-side NI miss rates and the shape criteria."""
    measured = exp.table4(scale=scale, nodes=nodes, seed=seed, sizes=sizes,
                          runner=runner)
    rows = []
    findings = []
    for app in paperdata.TABLE4:
        for size in sizes:
            # Paper values exist only at the published cache sizes; scaled
            # or custom sweeps compare shape on the measured side only.
            paper_cell = paperdata.TABLE4[app].get(size)
            paper_check = paper_cell["utlb"][0] if paper_cell else "-"
            paper_ni = paper_cell["utlb"][1] if paper_cell else "-"
            paper_unpins = paper_cell["intr"][1] if paper_cell else "-"
            got = measured[app][size]
            rows.append([
                app, "%dK" % (size // 1024),
                paper_check, round(got["utlb"]["check_misses"], 2),
                paper_ni, round(got["utlb"]["ni_misses"], 2),
                paper_unpins,
                round(got["intr"]["unpins"], 2),
            ])
    # Shape criteria, evaluated on the measured data:
    findings.append((
        "UTLB unpins == 0 everywhere (infinite memory)",
        all(measured[a][s]["utlb"]["unpins"] == 0.0
            for a in measured for s in sizes)))
    findings.append((
        "UTLB and Intr NI miss rates identical",
        all(abs(measured[a][s]["utlb"]["ni_misses"]
                - measured[a][s]["intr"]["ni_misses"]) < 1e-9
            for a in measured for s in sizes)))
    findings.append((
        "Intr unpins fall with cache size",
        all(measured[a][sizes[0]]["intr"]["unpins"]
            >= measured[a][sizes[-1]]["intr"]["unpins"] - 1e-9
            for a in measured)))
    findings.append((
        "NI miss rates fall (or stay flat) with cache size",
        all(measured[a][sizes[0]]["utlb"]["ni_misses"]
            >= measured[a][sizes[-1]]["utlb"]["ni_misses"] - 0.02
            for a in measured)))
    table = format_table(
        ["app", "cache", "paper check", "got check", "paper NI",
         "got NI", "paper Intr unpins", "got Intr unpins"],
        rows, title="Table 4: paper vs measured")
    verdicts = "\n".join("  [%s] %s" % ("ok" if passed else "FAIL", name)
                         for name, passed in findings)
    return findings, table + "\nshape criteria:\n" + verdicts


def compare_table8(scale=1.0, nodes=4, seed=1, sizes=(1024, 16384),
                   runner=None):
    """The associativity findings, checked programmatically."""
    measured = exp.table8(scale=scale, nodes=nodes, seed=seed, sizes=sizes,
                          runner=runner)
    findings = []
    direct_close = all(
        measured[a][(s, "direct")] <= measured[a][(s, "4-way")] + 0.08
        for a in measured for s in sizes)
    findings.append(("direct (offset) within 0.08 of 4-way", direct_close))
    nohash_worse = sum(
        1 for a in measured for s in sizes
        if measured[a][(s, "direct-nohash")] > measured[a][(s, "direct")])
    findings.append((
        "direct-nohash worse than direct on most cells (%d/%d)"
        % (nohash_worse, len(measured) * len(sizes)),
        nohash_worse >= 0.7 * len(measured) * len(sizes)))
    verdicts = "\n".join("  [%s] %s" % ("ok" if passed else "FAIL", name)
                         for name, passed in findings)
    return findings, "Table 8 shape criteria:\n" + verdicts


def compare_mechanisms(scale=1.0, nodes=4, seed=1, sizes=(1024, 16384),
                       mechanisms=None, runner=None, apps=None):
    """N-way mechanism comparison with cross-mechanism shape criteria.

    Runs :func:`exp.mechanism_table` over ``mechanisms`` (default: the
    registry's comparison set) and checks the relationships the designs
    predict; ``apps`` narrows or extends the workload list (e.g. a
    small ``zipf-kv`` instance for the skewed-regime parity gate).
    Returns ``(findings, text)`` like the other comparisons.
    """
    measured = exp.mechanism_table(scale=scale, nodes=nodes, seed=seed,
                                   sizes=sizes, mechanisms=mechanisms,
                                   runner=runner, apps=apps)
    first = next(iter(measured.values()))
    present = list(next(iter(first.values())))
    findings = []
    if "utlb" in present and "intr" in present:
        findings.append((
            "UTLB and Intr NI miss rates identical",
            all(abs(measured[a][s]["utlb"]["ni_misses"]
                    - measured[a][s]["intr"]["ni_misses"]) < 1e-9
                for a in measured for s in sizes)))
    if "utlb" in present and "victima" in present:
        findings.append((
            "Victima (data-cache pressure) never beats plain UTLB",
            all(measured[a][s]["victima"]["ni_misses"]
                >= measured[a][s]["utlb"]["ni_misses"] - 1e-9
                for a in measured for s in sizes)))
    findings.append((
        "every mechanism's NI miss rate falls (or stays flat) with "
        "cache size",
        all(measured[a][sizes[0]][m]["ni_misses"]
            >= measured[a][sizes[-1]][m]["ni_misses"] - 0.05
            for a in measured for m in present)))
    # ``intr`` unpins by design (interrupt-based replacement); ``pp``
    # unpins whenever a process's pinned working set overflows its
    # static slot share — the Section 3.2 drawback, invisible in the
    # Table-3 regime but immediate under skewed datacenter working sets
    # (zipf-kv).  Both are the mechanism behaving as specified, so the
    # criterion covers the shared-cache designs only.
    findings.append((
        "no shared-cache mechanism unpins under infinite host memory",
        all(measured[a][s][m]["unpins"] == 0.0
            for a in measured for s in sizes for m in present
            if m not in ("intr", "pp"))))
    table = exp.render_mechanism_table(measured)
    verdicts = "\n".join("  [%s] %s" % ("ok" if passed else "FAIL", name)
                         for name, passed in findings)
    return findings, table + "\nmechanism criteria:\n" + verdicts


def run_comparison(scale=1.0, nodes=4, seed=1, stream=None, runner=None):
    """The full comparison report; returns the text."""
    sections = []
    for _, text in (compare_table3(scale, nodes, seed),
                    compare_table4(scale, nodes, seed, runner=runner),
                    compare_table8(scale, nodes, seed, runner=runner)):
        sections.append(text)
        if stream is not None:
            stream.write(text + "\n\n")
            stream.flush()
    return "\n\n".join(sections)
