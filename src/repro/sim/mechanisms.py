"""The translation-mechanism registry.

Mechanism selection used to be string dispatch scattered across
``SimConfig``, the sweep runner, and the simulators.  This module makes
a mechanism a first-class object: a :class:`Mechanism` descriptor
bundles the name, the node-replay entry point, the eligibility
predicates the planner consults (fast/stream-store path, analytic axis
solver, event tracing), the eager configuration validator, and the
default cost model.  Everything that used to switch on a name string now
asks the descriptor.

Registered designs
------------------

``utlb``
    The paper's Hierarchical UTLB (Section 3-4): user-level check,
    pin-on-demand, shared NIC translation cache.
``intr``
    The interrupt-based baseline (Section 6.2): the host CPU handles
    every NIC translation miss; pinned pages and cached translations
    are the same set.
``pp``
    Per-process NIC SRAM partitions (the Section 2 strawman).
``victima``
    Cache-resident translation à la Victima: the NIC cache shares
    capacity with modeled data traffic, which periodically steals ways
    back (:class:`~repro.core.victima.VictimaCache`).
``utopia``
    Hybrid restrictive/flexible mapping à la Utopia: half the entries
    form a direct-indexed no-conflict region, spillover goes to a
    conventional flexible table (:class:`~repro.core.utopia.UtopiaCache`).
``sparta-range``
    Range translation à la SPARTA: contiguous pinned extents collapse
    into base+bounds segments, fragments cost one segment per page
    (:class:`~repro.core.sparta.SpartaRangeCache`).

The three modern designs reuse the UTLB host stack (user-level check,
pin-on-demand, prefetch) and both replay engines wholesale — they differ
only in the NIC cache model, injected via the simulator's
``cache_factory`` hook — so every differential, invariant, and parity
gate applies to them unchanged.

Adding a mechanism: build a :class:`Mechanism` and :func:`register` it
(see ``docs/mechanisms.md``).  The registry is ordered (insertion
order), and everything downstream — CLI choices, the CI mechanism
matrix, the N-way comparison — enumerates it, so a new entry is picked
up everywhere at once.
"""

from repro.core.costs import DEFAULT_COST_MODEL, CostModel
from repro.core.sparta import SpartaRangeCache
from repro.core.utopia import UtopiaCache
from repro.core.victima import VictimaCache
from repro.errors import ConfigError
from repro.sim import intr_simulator as _intr
from repro.sim import kernels as _kernels
from repro.sim import pp_simulator as _pp
from repro.sim import simulator as _sim


class Mechanism:
    """One translation mechanism: entry point, predicates, defaults.

    Parameters
    ----------
    name:
        The registry key; what ``SimConfig(mechanism=...)`` and the CLI
        accept, and what travels in cache keys and metrics.
    simulate:
        ``simulate(records, config, check_invariants=False, compiled=None)``
        replaying one node's trace to a
        :class:`~repro.sim.simulator.NodeResult`.
    description:
        One line for ``--help`` and the comparison table.
    traceable:
        True when the reference path emits the ``repro.obs`` event
        stream (the runner's ``trace_dir`` skips non-traceable cells).
    validate:
        ``validate(config)`` raising :class:`~repro.errors.ConfigError`
        for configurations this mechanism cannot honour — called eagerly
        from ``SimConfig.__init__``, so an ineligible combination fails
        at construction instead of silently degrading deep in a replay.
    streams_eligible:
        ``predicate(config)`` — may this unit ship as a compiled-stream
        key over the shared store (no records pickled)?  Checked only
        after the engine gate (``fast``/``kernel`` and untraced).
    analytic_eligible:
        ``predicate(config)`` — may the one-pass axis solver answer
        cells of this mechanism?  Checked after the same engine gate.
    kernel_eligible:
        ``predicate(config)`` — may the vectorized batch kernels of
        :mod:`repro.sim.kernels` answer this cell?  Checked only when
        the config asks for ``engine="kernel"`` and is untraced;
        ineligible cells silently take the fast path (``kernel`` is an
        optimization tier, never a model change).
    cost_model:
        Zero-argument factory for the default
        :class:`~repro.core.costs.CostModel` when the config passes
        none; defaults to the paper-calibrated model.
    """

    __slots__ = ("name", "simulate", "description", "traceable",
                 "_validate", "_streams", "_analytic", "_kernel",
                 "_cost_model")

    def __init__(self, name, simulate, description="", traceable=False,
                 validate=None, streams_eligible=None,
                 analytic_eligible=None, kernel_eligible=None,
                 cost_model=None):
        self.name = name
        self.simulate = simulate
        self.description = description
        self.traceable = traceable
        self._validate = validate
        self._streams = streams_eligible
        self._analytic = analytic_eligible
        self._kernel = kernel_eligible
        self._cost_model = cost_model

    def validate(self, config):
        """Raise :class:`ConfigError` if ``config`` is unusable here."""
        if self._validate is not None:
            self._validate(config)

    def streams_eligible(self, config):
        """True when replay consumes compiled streams (fast or kernel,
        untraced, plus any mechanism-specific structural requirements)."""
        if config.engine not in ("fast", "kernel") or config.traced:
            return False
        if self._streams is None:
            return False
        return self._streams(config)

    def analytic_eligible(self, config):
        """True when the analytic axis solver models this cell exactly."""
        if config.engine not in ("fast", "kernel") or config.traced:
            return False
        if self._analytic is None:
            return False
        return self._analytic(config)

    def kernel_eligible(self, config):
        """True when the batch kernels answer this cell (vs fast fallback)."""
        if config.engine != "kernel" or config.traced:
            return False
        if self._kernel is None:
            return False
        return self._kernel(config)

    def default_cost_model(self):
        """The cost model used when the config passes none."""
        if self._cost_model is None:
            return DEFAULT_COST_MODEL
        return self._cost_model()

    def __repr__(self):
        return "Mechanism(%r)" % (self.name,)


#: Name -> :class:`Mechanism`, in registration order (the order every
#: enumeration — CLI choices, comparison tables, the CI matrix — uses).
REGISTRY = {}


def register(mechanism):
    """Add ``mechanism`` to the registry; the name must be free."""
    if mechanism.name in REGISTRY:
        raise ConfigError(
            "mechanism %r is already registered" % (mechanism.name,))
    REGISTRY[mechanism.name] = mechanism
    return mechanism


def resolve(mechanism):
    """The :class:`Mechanism` for a name; instances pass through.

    An unknown name raises :class:`ConfigError` naming the value and the
    registered choices — the registry-wide analogue of the eager
    ``pin_policy`` validation.
    """
    if isinstance(mechanism, Mechanism):
        return mechanism
    try:
        return REGISTRY[mechanism]
    except KeyError:
        raise ConfigError(
            "unknown mechanism %r (use one of %s)"
            % (mechanism, tuple(REGISTRY))) from None


def lookup(mechanism):
    """Like :func:`resolve` but returns None for unknown names.

    For planner predicates that must stay total (a corrupted cell should
    fail at dispatch, in the worker, not while planning).
    """
    if isinstance(mechanism, Mechanism):
        return mechanism
    return REGISTRY.get(mechanism)


def mechanism_names():
    """Registered mechanism names, in registration order."""
    return tuple(REGISTRY)


# ---------------------------------------------------------------------------
# Validators and predicates
# ---------------------------------------------------------------------------

def _validate_intr(config):
    # The interrupt baseline's fast path (which the kernel tier also
    # rides) needs a direct-mapped, unclassified cache; anything else
    # must ask for the reference engine explicitly instead of silently
    # falling back to it.
    if config.engine in ("fast", "kernel") and (config.associativity != 1
                                                or config.classify):
        raise ConfigError(
            "mechanism 'intr' has no fast path for associativity=%d "
            "classify=%r; use engine=\"reference\""
            % (config.associativity, config.classify))


def _no_classifier(name):
    def validate(config):
        if config.classify:
            raise ConfigError(
                "mechanism %r has no 3C miss classifier "
                "(classify=True is only modeled for 'utlb')" % (name,))
    return validate


def _validate_victima(config):
    _no_classifier("victima")(config)


def _validate_utopia(config):
    _no_classifier("utopia")(config)
    flexible = config.cache_entries - config.cache_entries // 2
    if config.cache_entries < 2:
        raise ConfigError(
            "mechanism 'utopia' needs at least 2 cache entries to split "
            "restrictive/flexible, got %d" % (config.cache_entries,))
    if flexible % config.associativity:
        raise ConfigError(
            "mechanism 'utopia': the flexible half (%d entries) is not "
            "divisible by associativity=%d"
            % (flexible, config.associativity))


def _validate_sparta(config):
    _no_classifier("sparta-range")(config)
    if config.associativity != 1:
        raise ConfigError(
            "mechanism 'sparta-range' is a bounds-register file "
            "(associativity must be 1, got %d)" % (config.associativity,))


def _utlb_analytic(config):
    # Exactly the fast engine's default path: unclassified, one page per
    # pin call and one entry per miss fetch, LRU pinned-page replacement
    # by *name* (policy instances may diverge from the modeled LRU).
    return (not config.classify
            and config.prefetch == 1
            and config.prepin == 1
            and config.pin_policy == "lru")


# ---------------------------------------------------------------------------
# Cache factories and simulate wrappers for the cache-model mechanisms
# ---------------------------------------------------------------------------

def _victima_cache(config, tracer):
    return VictimaCache(
        config.cache_entries,
        associativity=config.associativity,
        offsetting=config.offsetting,
        classify=config.classify,
        tracer=tracer)


def _utopia_cache(config, tracer):
    return UtopiaCache(
        config.cache_entries,
        associativity=config.associativity,
        offsetting=config.offsetting,
        classify=config.classify,
        tracer=tracer)


def _sparta_cache(config, tracer):
    return SpartaRangeCache(
        config.cache_entries,
        associativity=config.associativity,
        offsetting=config.offsetting,
        classify=config.classify,
        tracer=tracer)


def _cache_model_simulate(cache_factory):
    """A ``simulate`` entry point: the UTLB stack over a custom NIC cache.

    Dispatches exactly like :func:`repro.sim.simulator.simulate_node`,
    resolving the engine functions through the module at call time so
    the suite-wide invariant-checking monkeypatch covers these
    mechanisms too.
    """
    def simulate(records, config, check_invariants=False, compiled=None):
        if config.engine == "reference" or config.traced:
            return _sim._simulate_node_reference(
                records, config, check_invariants,
                cache_factory=cache_factory)
        return _sim._simulate_node_fast(
            records, config, check_invariants, compiled,
            cache_factory=cache_factory)
    return simulate


# ---------------------------------------------------------------------------
# Default cost models
# ---------------------------------------------------------------------------

#: Victima probes a big shared cache (tag walk + way steal arbitration),
#: so a NIC-side hit costs more than the dedicated SRAM array's.
VICTIMA_COST_MODEL = CostModel(ni_check_hit=1.6)

#: Utopia's restrictive region is direct-indexed — most hits skip the
#: tag walk entirely, so the blended hit cost undercuts the base array.
UTOPIA_COST_MODEL = CostModel(ni_check_hit=0.4)

#: SPARTA compares a handful of bounds registers per probe: cheaper than
#: a full indexed lookup, dearer than Utopia's computed slot.
SPARTA_COST_MODEL = CostModel(ni_check_hit=0.6)


# ---------------------------------------------------------------------------
# Built-in registrations (ordered: the paper pair, the strawman, then
# the modern designs)
# ---------------------------------------------------------------------------

register(Mechanism(
    "utlb", _sim.simulate_node,
    description="Hierarchical UTLB: user check + shared NIC cache (paper)",
    traceable=True,
    streams_eligible=lambda config: True,
    analytic_eligible=_utlb_analytic,
    kernel_eligible=_kernels.utlb_kernel_eligible,
))

register(Mechanism(
    "intr", _intr.simulate_node_intr,
    description="Interrupt-based baseline: host CPU services NIC misses",
    traceable=True,
    validate=_validate_intr,
    streams_eligible=lambda config: (config.associativity == 1
                                     and not config.classify),
))

register(Mechanism(
    "pp", _pp.simulate_node_pp,
    description="Per-process NIC SRAM partitions (Section 2 strawman)",
))

register(Mechanism(
    "victima", _cache_model_simulate(_victima_cache),
    description="Cache-resident translation under data-fill pressure "
                "(Victima)",
    traceable=True,
    validate=_validate_victima,
    streams_eligible=lambda config: True,
    cost_model=lambda: VICTIMA_COST_MODEL,
))

register(Mechanism(
    "utopia", _cache_model_simulate(_utopia_cache),
    description="Hybrid restrictive/flexible mapping (Utopia)",
    traceable=True,
    validate=_validate_utopia,
    streams_eligible=lambda config: True,
    cost_model=lambda: UTOPIA_COST_MODEL,
))

register(Mechanism(
    "sparta-range", _cache_model_simulate(_sparta_cache),
    description="Base+bounds segments over contiguous pinned extents "
                "(SPARTA)",
    traceable=True,
    validate=_validate_sparta,
    streams_eligible=lambda config: True,
    cost_model=lambda: SPARTA_COST_MODEL,
))
