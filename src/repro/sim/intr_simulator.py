"""Trace-driven simulator for the interrupt-based baseline.

"We also developed a simulator for the interrupt-based approach where the
network interface interrupts its host CPU on a translation miss, and the
CPU handles page pinning, unpinning, and installing new translation
entries" (Section 6).  Mirror of :mod:`repro.sim.simulator` driving
:class:`~repro.core.interrupt_based.InterruptBasedNode`.
"""

from repro.core.interrupt_based import InterruptBasedNode
from repro.core.shared_cache import SharedUtlbCache
from repro.core.stats import TranslationStats
from repro.core.utlb import CountingFrameDriver
from repro.sim.simulator import ClusterResult, NodeResult
from repro.traces.compile import compile_streams


def simulate_node_intr(records, config, check_invariants=False,
                       compiled=None):
    """Replay one node's trace under the interrupt-based mechanism.

    The cache structure is identical to the UTLB runs ("we assume that
    the cache structures are the same for both cases", Section 6.2); only
    the miss handling differs.  Prefetch does not apply: the interrupt
    handler installs exactly the missed entry.  ``compiled`` optionally
    passes precompiled streams (see :func:`~repro.sim.simulator.simulate_node`).

    Engine dispatch matches the UTLB simulator: the fast counter-only
    path needs a direct-mapped cache, no classifier, and no enabled
    tracer (``config.traced`` routes through the reference path, which
    emits the full event stream).  ``engine="kernel"`` rides the fast
    path — this mechanism registers no batch kernel.
    """
    fast = (config.engine in ("fast", "kernel")
            and config.associativity == 1
            and not config.classify and not config.traced)
    if not fast:
        return _simulate_node_intr_reference(records, config,
                                             check_invariants)
    return _simulate_node_intr_fast(records, config, check_invariants,
                                    compiled)


def _build_intr_node(config):
    """One node's shared cache and interrupt-based host state."""
    tracer = config.tracer if config.traced else None
    cache = SharedUtlbCache(
        config.cache_entries,
        associativity=config.associativity,
        offsetting=config.offsetting,
        classify=config.classify,
        tracer=tracer)
    node = InterruptBasedNode(cache, driver=CountingFrameDriver(),
                              cost_model=config.cost_model, tracer=tracer)
    return cache, node


def _intr_result(cache, node, pids, check_invariants):
    if check_invariants:
        node.check_invariants()
    per_pid = {pid: node.stats_for(pid) for pid in pids}
    stats = TranslationStats.merged(per_pid.values())
    breakdown = cache.classifier.breakdown if cache.classifier else None
    return NodeResult(stats, per_pid, cache.stats.snapshot(), breakdown)


def _simulate_node_intr_reference(records, config, check_invariants=False):
    """The oracle: record-at-a-time replay through the full machinery."""
    cache, node = _build_intr_node(config)
    limit = config.memory_limit_pages
    pids = sorted({record.pid for record in records})
    for pid in pids:
        node.register_process(pid, memory_limit_pages=limit)
    for record in records:
        for vpage in record.pages():
            node.access_page(record.pid, vpage)
    return _intr_result(cache, node, pids, check_invariants)


def _simulate_node_intr_fast(records, config, check_invariants=False,
                             compiled=None):
    """Compiled-stream replay with a counter-only hot path.

    Same eligibility rule as the UTLB fast engine: pinned pages and
    cached translations are the same set under this mechanism, so a dict
    probe decides hit vs miss exactly.  A hit's only effects are counters
    plus constant time increments, batched after replay; misses run the
    full interrupt path.
    """
    cache, node = _build_intr_node(config)
    limit = config.memory_limit_pages
    if compiled is None:
        compiled = compile_streams(records)
    pids = compiled.pids
    for pid in pids:
        node.register_process(pid, memory_limit_pages=limit)
    # Per-lookup loop over the interleaved arrays (pids interleave at
    # record granularity, so per-segment dispatch would dominate);
    # the pinned maps are stable dicts mutated in place.
    order = compiled.pid_order
    pinneds = [node.pinned_map(pid) for pid in order]
    hit_counts = [0] * len(order)
    access = node.access_page
    for i, vpage in zip(compiled.index_stream, compiled.page_stream):
        if vpage in pinneds[i]:
            hit_counts[i] += 1
        else:
            access(order[i], vpage)
    cm = config.cost_model
    total_hits = 0
    for i, pid in enumerate(order):
        hits = hit_counts[i]
        if hits:
            stats = node.stats_for(pid)
            stats.lookups += hits
            stats.charge_ni_hits(hits, cm.ni_check_hit)
            total_hits += hits
    if total_hits:
        cache.stats.accesses += total_hits
        cache.stats.hits += total_hits
    return _intr_result(cache, node, pids, check_invariants)


def simulate_app_intr(app, config, nodes=4, seed=0, scale=1.0,
                      check_invariants=False):
    """Simulate every node of an application under the baseline."""
    traces = app.generate_cluster(nodes=nodes, seed=seed, scale=scale)
    results = [simulate_node_intr(traces[node], config,
                                  check_invariants=check_invariants)
               for node in sorted(traces)]
    return ClusterResult(results)
