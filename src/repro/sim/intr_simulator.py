"""Trace-driven simulator for the interrupt-based baseline.

"We also developed a simulator for the interrupt-based approach where the
network interface interrupts its host CPU on a translation miss, and the
CPU handles page pinning, unpinning, and installing new translation
entries" (Section 6).  Mirror of :mod:`repro.sim.simulator` driving
:class:`~repro.core.interrupt_based.InterruptBasedNode`.
"""

from repro.core.interrupt_based import InterruptBasedNode
from repro.core.shared_cache import SharedUtlbCache
from repro.core.stats import TranslationStats
from repro.core.utlb import CountingFrameDriver
from repro.sim.simulator import ClusterResult, NodeResult
from repro.traces.merge import split_by_pid


def simulate_node_intr(records, config, check_invariants=False):
    """Replay one node's trace under the interrupt-based mechanism.

    The cache structure is identical to the UTLB runs ("we assume that
    the cache structures are the same for both cases", Section 6.2); only
    the miss handling differs.  Prefetch does not apply: the interrupt
    handler installs exactly the missed entry.
    """
    cache = SharedUtlbCache(
        config.cache_entries,
        associativity=config.associativity,
        offsetting=config.offsetting,
        classify=config.classify)
    node = InterruptBasedNode(cache, driver=CountingFrameDriver(),
                              cost_model=config.cost_model)
    limit = config.memory_limit_pages
    for pid in sorted(split_by_pid(records)):
        node.register_process(pid, memory_limit_pages=limit)

    for record in records:
        for vpage in record.pages():
            node.access_page(record.pid, vpage)

    if check_invariants:
        node.check_invariants()

    per_pid = {pid: node.stats_for(pid)
               for pid in sorted(split_by_pid(records))}
    stats = TranslationStats.merged(per_pid.values())
    breakdown = cache.classifier.breakdown if cache.classifier else None
    return NodeResult(stats, per_pid, cache.stats.snapshot(), breakdown)


def simulate_app_intr(app, config, nodes=4, seed=0, scale=1.0,
                      check_invariants=False):
    """Simulate every node of an application under the baseline."""
    traces = app.generate_cluster(nodes=nodes, seed=seed, scale=scale)
    results = [simulate_node_intr(traces[node], config,
                                  check_invariants=check_invariants)
               for node in sorted(traces)]
    return ClusterResult(results)
