"""Simulation configuration for the trace-driven analysis (Section 6)."""

from repro import params
from repro.core.policies import PIN_POLICIES
from repro.errors import ConfigError
from repro.sim.mechanisms import resolve


#: Valid trace-replay engines: ``fast`` (compiled page streams with a
#: counter-only hot path), ``kernel`` (fast plus vectorized numpy batch
#: kernels for the cells they model — everything else falls back to the
#: fast path) and ``reference`` (record-at-a-time replay through the
#: full :class:`HierarchicalUtlb` machinery).  All three are
#: bit-identical in output; ``reference`` exists as the oracle.
ENGINES = ("fast", "kernel", "reference")


class SimConfig:
    """Parameters of one trace-driven simulation run.

    Defaults reproduce the headline configuration of Table 4: an 8K-entry
    direct-mapped NIC cache with index offsetting, no prefetch, no
    pre-pinning, infinite host memory, LRU pinned-page replacement.
    """

    def __init__(self,
                 cache_entries=params.DEFAULT_UTLB_CACHE_ENTRIES,
                 associativity=1,
                 offsetting=True,
                 prefetch=1,
                 prepin=1,
                 memory_limit_bytes=None,
                 pin_policy="lru",
                 classify=False,
                 cost_model=None,
                 seed=0,
                 engine="fast",
                 tracer=None,
                 mechanism="utlb"):
        if cache_entries <= 0:
            raise ConfigError("cache_entries must be positive")
        if associativity <= 0 or cache_entries % associativity:
            raise ConfigError("associativity must divide cache_entries")
        if prefetch <= 0 or prepin <= 0:
            raise ConfigError("prefetch and prepin degrees must be positive")
        if memory_limit_bytes is not None and memory_limit_bytes <= 0:
            raise ConfigError("memory limit must be positive or None")
        if engine not in ENGINES:
            raise ConfigError("unknown engine %r (choose from %s)"
                              % (engine, list(ENGINES)))
        # Fail at construction, not thousands of lookups into a replay
        # when the first pinning-limit eviction finally asks the policy
        # factory for an unknown name.  Policy *instances* (user-defined
        # replacement, as in examples/custom_replacement_policy.py) pass
        # through untouched — only string names are checked.
        if isinstance(pin_policy, str) and pin_policy not in PIN_POLICIES:
            raise ConfigError("unknown pin policy %r (choose from %s)"
                              % (pin_policy, sorted(PIN_POLICIES)))
        # Mechanism names resolve through the registry (unknown names
        # raise ConfigError with the valid choices); Mechanism instances
        # pass through.  Only the *name* is stored — the config stays a
        # plain picklable value object.
        mech = resolve(mechanism)
        self.mechanism = mech.name
        self.cache_entries = cache_entries
        self.associativity = associativity
        self.offsetting = offsetting
        self.prefetch = prefetch
        self.prepin = prepin
        self.memory_limit_bytes = memory_limit_bytes
        self.pin_policy = pin_policy
        self.classify = classify
        #: Remember whether the cost model was defaulted: ``replace()``
        #: re-derives a defaulted model, so switching mechanism picks up
        #: the new mechanism's default instead of freezing the old one.
        self._defaulted_cost_model = cost_model is None
        self.cost_model = (cost_model if cost_model is not None
                           else mech.default_cost_model())
        self.seed = seed
        self.engine = engine
        #: Optional :class:`repro.obs.tracer.Tracer` receiving the run's
        #: event stream.  None (or a disabled tracer, e.g. NullTracer)
        #: keeps the fast engine's counter-only hot loop byte- and
        #: speed-identical; an enabled tracer routes replay through the
        #: event-emitting reference path.  Never part of the simulated
        #: configuration: results are identical with or without it.
        self.tracer = tracer
        # Last, with the full state assembled: the mechanism's own eager
        # validation.  An engine/geometry combination the mechanism's
        # eligibility rules out fails here, at construction — not by
        # silently degrading to the reference path deep in the runner.
        mech.validate(self)

    @property
    def traced(self):
        """True when an enabled tracer is attached (events will flow)."""
        return self.tracer is not None and getattr(
            self.tracer, "enabled", True)

    @property
    def memory_limit_pages(self):
        """The per-process pinning limit in pages (None = unlimited)."""
        if self.memory_limit_bytes is None:
            return None
        return max(1, self.memory_limit_bytes // params.PAGE_SIZE)

    def replace(self, **overrides):
        """A copy of this config with some fields overridden."""
        fields = dict(
            cache_entries=self.cache_entries,
            associativity=self.associativity,
            offsetting=self.offsetting,
            prefetch=self.prefetch,
            prepin=self.prepin,
            memory_limit_bytes=self.memory_limit_bytes,
            pin_policy=self.pin_policy,
            classify=self.classify,
            # A defaulted cost model stays defaulted, so
            # replace(mechanism=...) re-derives the new mechanism's
            # default instead of carrying the old one across.
            cost_model=(None if self._defaulted_cost_model
                        else self.cost_model),
            seed=self.seed,
            engine=self.engine,
            tracer=self.tracer,
            mechanism=self.mechanism,
        )
        fields.update(overrides)
        return SimConfig(**fields)

    def to_dict(self):
        """Every field as a JSON-safe dict (cost model expanded).

        This is the cache-fingerprint form: any change to any field —
        including a cost-model constant — yields a different dict and
        therefore a different cache key.
        """
        return {
            "mechanism": self.mechanism,
            "cache_entries": self.cache_entries,
            "associativity": self.associativity,
            "offsetting": self.offsetting,
            "prefetch": self.prefetch,
            "prepin": self.prepin,
            "memory_limit_bytes": self.memory_limit_bytes,
            "pin_policy": self.pin_policy,
            "classify": self.classify,
            "cost_model": self.cost_model.to_dict(),
            "seed": self.seed,
            "engine": self.engine,
            # Tracers never change results, but a traced cell must not be
            # answered from the result cache (the events would be lost) —
            # the runner skips caching for traced cells, and the distinct
            # fingerprint is belt-and-braces on top.
            "tracer": (type(self.tracer).__name__ if self.traced else None),
        }

    def describe(self):
        limit = ("inf" if self.memory_limit_bytes is None
                 else "%dMB" % (self.memory_limit_bytes // (1024 * 1024)))
        hashing = "offset" if self.offsetting else "nohash"
        text = ("cache=%d assoc=%d %s prefetch=%d prepin=%d mem=%s policy=%s "
                "engine=%s"
                % (self.cache_entries, self.associativity, hashing,
                   self.prefetch, self.prepin, limit, self.pin_policy,
                   self.engine))
        if self.mechanism != "utlb":
            text += " mech=%s" % (self.mechanism,)
        if self.traced:
            text += " traced"
        return text

    def __repr__(self):
        return "SimConfig(%s)" % (self.describe(),)
